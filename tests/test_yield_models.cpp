// Tests for the yield-model catalogue (paper references [7]-[12], Eq. 3).
#include "yield/models.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "yield/defect_density.hpp"

namespace lsiq::yield_model {
namespace {

TEST(YieldModels, AllModelsAgreeAtZeroDefects) {
  EXPECT_DOUBLE_EQ(poisson_yield(0.0), 1.0);
  EXPECT_DOUBLE_EQ(murphy_yield(0.0), 1.0);
  EXPECT_DOUBLE_EQ(seeds_yield(0.0), 1.0);
  EXPECT_DOUBLE_EQ(price_yield(0.0), 1.0);
  EXPECT_DOUBLE_EQ(negative_binomial_yield(0.0, 0.5), 1.0);
}

TEST(YieldModels, KnownValuesAtOneDefectPerChip) {
  EXPECT_NEAR(poisson_yield(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(murphy_yield(1.0), std::pow(1.0 - std::exp(-1.0), 2.0), 1e-12);
  EXPECT_NEAR(seeds_yield(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(price_yield(1.0), 0.5, 1e-12);
}

TEST(YieldModels, OrderingForLargeChips) {
  // For lambda >> 1, clustering helps: Poisson is the most pessimistic and
  // Price (Bose-Einstein, maximal clustering) the most optimistic; Seeds'
  // exp(-sqrt) sits between Murphy and Price at lambda = 6.
  const double lambda = 6.0;
  EXPECT_LT(poisson_yield(lambda), murphy_yield(lambda));
  EXPECT_LT(murphy_yield(lambda), seeds_yield(lambda));
  EXPECT_LT(seeds_yield(lambda), price_yield(lambda));
}

TEST(YieldModels, AllMonotoneDecreasingInDefects) {
  double prev_p = 1.1;
  double prev_m = 1.1;
  double prev_s = 1.1;
  double prev_pr = 1.1;
  double prev_nb = 1.1;
  for (double lambda = 0.0; lambda <= 10.0; lambda += 0.25) {
    EXPECT_LT(poisson_yield(lambda), prev_p);
    EXPECT_LT(murphy_yield(lambda), prev_m);
    EXPECT_LT(seeds_yield(lambda), prev_s + 1e-15);
    EXPECT_LT(price_yield(lambda), prev_pr);
    EXPECT_LT(negative_binomial_yield(lambda, 0.5), prev_nb);
    prev_p = poisson_yield(lambda);
    prev_m = murphy_yield(lambda);
    prev_s = seeds_yield(lambda);
    prev_pr = price_yield(lambda);
    prev_nb = negative_binomial_yield(lambda, 0.5);
  }
}

TEST(NegativeBinomial, RecoversPoissonAsVarianceVanishes) {
  for (double lambda = 0.5; lambda <= 5.0; lambda += 0.5) {
    EXPECT_NEAR(negative_binomial_yield(lambda, 1e-9),
                poisson_yield(lambda), 1e-6);
    EXPECT_DOUBLE_EQ(negative_binomial_yield(lambda, 0.0),
                     poisson_yield(lambda));
  }
}

TEST(NegativeBinomial, RecoversPriceAtUnitVarianceRatio) {
  // X = 1 gives y = 1/(1 + lambda): Bose-Einstein / Price.
  for (double lambda = 0.5; lambda <= 5.0; lambda += 0.5) {
    EXPECT_NEAR(negative_binomial_yield(lambda, 1.0), price_yield(lambda),
                1e-12);
  }
}

TEST(NegativeBinomial, Equation3SpotValue) {
  // y = (1 + X lambda)^(-1/X): X=0.5, lambda=4 -> 3^-2 = 1/9.
  EXPECT_NEAR(negative_binomial_yield(4.0, 0.5), 1.0 / 9.0, 1e-12);
}

TEST(NegativeBinomial, InversionRoundTrip) {
  for (double x : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    for (double lambda : {0.1, 1.0, 2.5, 7.0}) {
      const double y = negative_binomial_yield(lambda, x);
      EXPECT_NEAR(defects_per_chip_for_yield(y, x), lambda,
                  1e-9 * std::max(1.0, lambda));
    }
  }
}

TEST(NegativeBinomial, SevenPercentYieldLikeThePaperExample) {
  // The paper's LSI chip had y ~= 0.07; check the implied defect count is
  // recovered consistently.
  const double lambda = defects_per_chip_for_yield(0.07, 0.5);
  EXPECT_NEAR(negative_binomial_yield(lambda, 0.5), 0.07, 1e-12);
  EXPECT_GT(lambda, 2.0);  // a low-yield chip carries several defects
}

TEST(DefectCountPmf, SumsToOneAndMatchesYieldAtZero) {
  for (double x : {0.0, 0.5, 1.0}) {
    const double lambda = 2.5;
    double total = 0.0;
    for (unsigned k = 0; k < 200; ++k) {
      total += defect_count_pmf(k, lambda, x);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "X=" << x;
    EXPECT_NEAR(defect_count_pmf(0, lambda, x),
                negative_binomial_yield(lambda, x), 1e-12);
  }
}

TEST(DefectCountPmf, MeanMatchesLambda) {
  const double lambda = 3.0;
  const double x = 0.7;
  double mean = 0.0;
  for (unsigned k = 1; k < 400; ++k) {
    mean += k * defect_count_pmf(k, lambda, x);
  }
  EXPECT_NEAR(mean, lambda, 1e-6);
}

TEST(ClusterAlpha, IsReciprocal) {
  EXPECT_DOUBLE_EQ(cluster_alpha(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cluster_alpha(2.0), 0.5);
  EXPECT_THROW(cluster_alpha(0.0), ContractViolation);
}

TEST(YieldModels, DomainChecks) {
  EXPECT_THROW(poisson_yield(-1.0), ContractViolation);
  EXPECT_THROW(negative_binomial_yield(1.0, -0.1), ContractViolation);
  EXPECT_THROW(defects_per_chip_for_yield(0.0, 0.5), ContractViolation);
  EXPECT_THROW(defects_per_chip_for_yield(1.5, 0.5), ContractViolation);
}

TEST(DefectModel, YieldAndShrinkScenario) {
  // Section 8: shrinking features by 0.7 shrinks area by ~half and raises
  // yield.
  const DefectModel model(Process{0.8, 0.5}, 4.0);  // lambda = 3.2
  EXPECT_NEAR(model.defects_per_chip(), 3.2, 1e-12);
  const double y0 = model.yield();
  const DefectModel shrunk = model.shrunk(0.7);
  EXPECT_NEAR(shrunk.area(), 4.0 * 0.49, 1e-12);
  EXPECT_GT(shrunk.yield(), y0);
}

TEST(DefectModel, FromYieldRoundTrip) {
  const DefectModel model = DefectModel::from_yield(0.07, 2.0, 0.5);
  EXPECT_NEAR(model.yield(), 0.07, 1e-12);
  EXPECT_NEAR(model.area(), 2.0, 1e-12);
}

TEST(ProcessEstimate, RecoversNegativeBinomialParameters) {
  // Sample per-die counts from NB(mean=2, X=0.5) and re-estimate.
  lsiq::util::Rng rng(5);
  std::vector<std::size_t> counts;
  const double die_area = 0.5;
  for (int i = 0; i < 50000; ++i) {
    counts.push_back(static_cast<std::size_t>(
        rng.negative_binomial(2.0, /*shape=*/2.0)));  // X = 1/shape = 0.5
  }
  const ProcessEstimate e =
      estimate_process_from_defect_counts(counts, die_area);
  EXPECT_NEAR(e.mean_defects_per_chip, 2.0, 0.05);
  EXPECT_NEAR(e.defect_density, 4.0, 0.1);
  EXPECT_NEAR(e.variance_ratio, 0.5, 0.05);
  EXPECT_EQ(e.sample_size, counts.size());
}

TEST(ProcessEstimate, PoissonSampleClampsVarianceRatioNearZero) {
  lsiq::util::Rng rng(7);
  std::vector<std::size_t> counts;
  for (int i = 0; i < 50000; ++i) {
    counts.push_back(static_cast<std::size_t>(rng.poisson(3.0)));
  }
  const ProcessEstimate e =
      estimate_process_from_defect_counts(counts, 1.0);
  EXPECT_NEAR(e.variance_ratio, 0.0, 0.02);
  EXPECT_NEAR(e.mean_defects_per_chip, 3.0, 0.05);
}

TEST(ProcessEstimate, RoundTripsThroughEquation3) {
  // Estimated (D0, X) + the yield formula should reproduce the sample's
  // empirical yield (fraction of zero-defect dies).
  lsiq::util::Rng rng(11);
  std::vector<std::size_t> counts;
  std::size_t zero = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto k = static_cast<std::size_t>(
        rng.negative_binomial(1.5, 1.0));  // X = 1
    if (k == 0) ++zero;
    counts.push_back(k);
  }
  const ProcessEstimate e =
      estimate_process_from_defect_counts(counts, 1.0);
  const double predicted = negative_binomial_yield(
      e.mean_defects_per_chip, e.variance_ratio);
  EXPECT_NEAR(predicted, static_cast<double>(zero) / 50000.0, 0.01);
}

TEST(ProcessEstimate, DomainChecks) {
  EXPECT_THROW(estimate_process_from_defect_counts({1}, 1.0),
               ContractViolation);
  EXPECT_THROW(estimate_process_from_defect_counts({1, 2}, 0.0),
               ContractViolation);
  EXPECT_THROW(estimate_process_from_defect_counts({0, 0, 0}, 1.0),
               ContractViolation);
}

TEST(DefectModel, DomainChecks) {
  EXPECT_THROW(DefectModel(Process{-1.0, 0.5}, 1.0), ContractViolation);
  EXPECT_THROW(DefectModel(Process{1.0, 0.5}, 0.0), ContractViolation);
  const DefectModel model(Process{1.0, 0.5}, 1.0);
  EXPECT_THROW((void)model.shrunk(0.0), ContractViolation);
}

}  // namespace
}  // namespace lsiq::yield_model
