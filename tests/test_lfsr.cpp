// Unit tests for the Galois LFSR pattern source.
#include "tpg/lfsr.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::tpg {
namespace {

TEST(Lfsr, EightBitPolynomialIsMaximalLength) {
  // A maximal-length 8-bit LFSR visits all 255 nonzero states.
  Lfsr lfsr(8, 1);
  std::set<std::uint64_t> states;
  for (int i = 0; i < 255; ++i) {
    states.insert(lfsr.state());
    lfsr.next_bit();
  }
  EXPECT_EQ(states.size(), 255u);
  EXPECT_EQ(lfsr.state(), 1u);  // back to the seed after one full period
}

TEST(Lfsr, SixteenBitPolynomialIsMaximalLength) {
  Lfsr lfsr(16, 0xACE1);
  const std::uint64_t start = lfsr.state();
  std::uint64_t steps = 0;
  do {
    lfsr.next_bit();
    ++steps;
  } while (lfsr.state() != start && steps <= 70000);
  EXPECT_EQ(steps, 65535u);
}

TEST(Lfsr, ZeroSeedIsFixedUp) {
  Lfsr lfsr(32, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, StateNeverReachesZero) {
  Lfsr lfsr(8, 0x5A);
  for (int i = 0; i < 1000; ++i) {
    lfsr.next_bit();
    EXPECT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr, PeriodReporting) {
  EXPECT_EQ(Lfsr(8).period(), 255u);
  EXPECT_EQ(Lfsr(16).period(), 65535u);
  EXPECT_EQ(Lfsr(32).period(), 4294967295u);
}

TEST(Lfsr, UnsupportedWidthRejected) {
  EXPECT_THROW(Lfsr(7), Error);
  EXPECT_THROW(Lfsr(65), Error);
}

TEST(Lfsr, OutputBitsAreBalanced) {
  Lfsr lfsr(32, 0xDEADBEEF);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (lfsr.next_bit()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(LfsrPatterns, ShapeAndDeterminism) {
  const sim::PatternSet a = lfsr_patterns(10, 37, 123);
  const sim::PatternSet b = lfsr_patterns(10, 37, 123);
  ASSERT_EQ(a.size(), 37u);
  ASSERT_EQ(a.input_count(), 10u);
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a.pattern(p), b.pattern(p));
  }
}

TEST(LfsrPatterns, DifferentSeedsDiffer) {
  const sim::PatternSet a = lfsr_patterns(10, 20, 1);
  const sim::PatternSet b = lfsr_patterns(10, 20, 2);
  bool differ = false;
  for (std::size_t p = 0; p < a.size() && !differ; ++p) {
    differ = a.pattern(p) != b.pattern(p);
  }
  EXPECT_TRUE(differ);
}

TEST(RandomWalkPatterns, StartsAtZeroAndFlipsExactlyKPerStep) {
  const sim::PatternSet p = random_walk_patterns(12, 50, 2, 9);
  ASSERT_EQ(p.size(), 50u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_FALSE(p.bit(0, i));
  }
  for (std::size_t t = 1; t < p.size(); ++t) {
    int changed = 0;
    for (std::size_t i = 0; i < 12; ++i) {
      if (p.bit(t, i) != p.bit(t - 1, i)) ++changed;
    }
    EXPECT_EQ(changed, 2) << "step " << t;
  }
}

TEST(RandomWalkPatterns, DeterministicPerSeed) {
  const sim::PatternSet a = random_walk_patterns(8, 30, 1, 3);
  const sim::PatternSet b = random_walk_patterns(8, 30, 1, 3);
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.pattern(t), b.pattern(t));
  }
}

TEST(RandomWalkPatterns, DomainChecks) {
  EXPECT_THROW(random_walk_patterns(8, 10, 0, 1), ContractViolation);
  EXPECT_THROW(random_walk_patterns(8, 10, 9, 1), ContractViolation);
}

TEST(LfsrPatterns, BitsAreRoughlyBalanced) {
  const sim::PatternSet p = lfsr_patterns(16, 4000, 7);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (p.bit(i, j)) ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / (4000.0 * 16.0), 0.5, 0.02);
}

}  // namespace
}  // namespace lsiq::tpg
