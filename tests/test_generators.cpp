// Functional verification of the structural circuit generators: every
// generated netlist is simulated against its arithmetic/logic reference,
// exhaustively where feasible and by random sampling otherwise.
#include "circuit/generators.hpp"

#include <gtest/gtest.h>

#include "fault/fault_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/pattern.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::circuit {
namespace {

using sim::ParallelSimulator;

/// Run one fully specified pattern through the circuit; inputs are given in
/// pattern-input order as the bits of `input_bits`.
std::vector<bool> run(const Circuit& c, std::uint64_t input_bits) {
  const std::size_t n = c.pattern_inputs().size();
  std::vector<bool> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = ((input_bits >> i) & 1ULL) != 0;
  }
  ParallelSimulator sim(c);
  return sim.simulate_single(in);
}

std::uint64_t bits_to_uint(const std::vector<bool>& bits, std::size_t first,
                           std::size_t count) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (bits[first + i]) v |= (1ULL << i);
  }
  return v;
}

TEST(C17, MatchesNandLevelTruthTable) {
  const Circuit c = make_c17();
  ASSERT_EQ(c.pattern_inputs().size(), 5u);
  for (std::uint64_t x = 0; x < 32; ++x) {
    const bool g1 = (x >> 0) & 1;
    const bool g2 = (x >> 1) & 1;
    const bool g3 = (x >> 2) & 1;
    const bool g6 = (x >> 3) & 1;
    const bool g7 = (x >> 4) & 1;
    const bool g10 = !(g1 && g3);
    const bool g11 = !(g3 && g6);
    const bool g16 = !(g2 && g11);
    const bool g19 = !(g11 && g7);
    const bool g22 = !(g10 && g16);
    const bool g23 = !(g16 && g19);
    const std::vector<bool> out = run(c, x);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], g22) << "x=" << x;
    EXPECT_EQ(out[1], g23) << "x=" << x;
  }
}

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, AddsExhaustively) {
  const int w = GetParam();
  const Circuit c = make_ripple_carry_adder(w);
  ASSERT_EQ(c.pattern_inputs().size(), static_cast<std::size_t>(2 * w + 1));
  const std::uint64_t limit = 1ULL << w;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      for (std::uint64_t cin = 0; cin <= 1; ++cin) {
        const std::uint64_t input =
            a | (b << w) | (cin << (2 * w));
        const std::vector<bool> out = run(c, input);
        const std::uint64_t sum = bits_to_uint(out, 0, w);
        const std::uint64_t cout = out[static_cast<std::size_t>(w)] ? 1 : 0;
        EXPECT_EQ(sum | (cout << w), a + b + cin)
            << "w=" << w << " a=" << a << " b=" << b << " cin=" << cin;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, AdderWidth, ::testing::Values(1, 2, 3, 4));

TEST(Adder, WideAdderRandomSpotChecks) {
  const int w = 16;
  const Circuit c = make_ripple_carry_adder(w);
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.uniform_below(1ULL << w);
    const std::uint64_t b = rng.uniform_below(1ULL << w);
    const std::uint64_t cin = rng.uniform_below(2);
    const std::vector<bool> out = run(c, a | (b << w) | (cin << (2 * w)));
    const std::uint64_t sum =
        bits_to_uint(out, 0, w) | ((out[w] ? 1ULL : 0ULL) << w);
    EXPECT_EQ(sum, a + b + cin);
  }
}

class MultiplierWidth : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierWidth, MultipliesExhaustively) {
  const int w = GetParam();
  const Circuit c = make_array_multiplier(w);
  ASSERT_EQ(c.primary_outputs().size(), static_cast<std::size_t>(2 * w));
  const std::uint64_t limit = 1ULL << w;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const std::vector<bool> out = run(c, a | (b << w));
      EXPECT_EQ(bits_to_uint(out, 0, static_cast<std::size_t>(2 * w)), a * b)
          << "w=" << w << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, MultiplierWidth,
                         ::testing::Values(2, 3, 4));

TEST(Multiplier, EightBitRandomSpotChecks) {
  const Circuit c = make_array_multiplier(8);
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.uniform_below(256);
    const std::uint64_t b = rng.uniform_below(256);
    const std::vector<bool> out = run(c, a | (b << 8));
    EXPECT_EQ(bits_to_uint(out, 0, 16), a * b);
  }
}

TEST(Multiplier, SixteenBitSizeIsLsiScale) {
  // The stand-in for the paper's 25k-transistor chip: check it is big.
  const Circuit c = make_array_multiplier(16);
  const CircuitStats s = c.stats();
  EXPECT_GT(s.combinational_gates, 1200u);
  EXPECT_EQ(s.primary_inputs, 32u);
  EXPECT_EQ(s.primary_outputs, 32u);
}

class MajorityInputs : public ::testing::TestWithParam<int> {};

TEST_P(MajorityInputs, MatchesPopcountThreshold) {
  const int n = GetParam();
  const Circuit c = make_majority(n);
  for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
    const int ones = __builtin_popcountll(x);
    const std::vector<bool> out = run(c, x);
    EXPECT_EQ(out[0], ones > n / 2) << "n=" << n << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(OddInputs, MajorityInputs,
                         ::testing::Values(3, 5, 7));

class ParityInputs : public ::testing::TestWithParam<int> {};

TEST_P(ParityInputs, MatchesXorReduction) {
  const int n = GetParam();
  const Circuit c = make_parity_tree(n);
  const std::uint64_t limit =
      n <= 12 ? (1ULL << n) : 4096;  // exhaustive when feasible
  util::Rng rng(11);
  for (std::uint64_t t = 0; t < limit; ++t) {
    const std::uint64_t x =
        n <= 12 ? t : rng.uniform_below(1ULL << n);
    const std::vector<bool> out = run(c, x);
    EXPECT_EQ(out[0], (__builtin_popcountll(x) & 1) != 0)
        << "n=" << n << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParityInputs,
                         ::testing::Values(2, 3, 5, 8, 16));

class MuxSelectBits : public ::testing::TestWithParam<int> {};

TEST_P(MuxSelectBits, SelectsTheAddressedInput) {
  const int s = GetParam();
  const int leaves = 1 << s;
  const Circuit c = make_mux_tree(s);
  util::Rng rng(13);
  const int trials = s <= 3 ? -1 : 500;  // exhaustive for small trees
  if (trials < 0) {
    for (std::uint64_t data = 0; data < (1ULL << leaves); ++data) {
      for (std::uint64_t sel = 0; sel < (1ULL << s); ++sel) {
        const std::vector<bool> out =
            run(c, data | (sel << leaves));
        EXPECT_EQ(out[0], ((data >> sel) & 1ULL) != 0);
      }
    }
  } else {
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t data = rng.uniform_below(1ULL << leaves);
      const std::uint64_t sel = rng.uniform_below(1ULL << s);
      const std::vector<bool> out = run(c, data | (sel << leaves));
      EXPECT_EQ(out[0], ((data >> sel) & 1ULL) != 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MuxSelectBits, ::testing::Values(1, 2, 3, 4));

class DecoderBits : public ::testing::TestWithParam<int> {};

TEST_P(DecoderBits, OneHotWhenEnabled) {
  const int n = GetParam();
  const Circuit c = make_decoder(n);
  for (std::uint64_t addr = 0; addr < (1ULL << n); ++addr) {
    for (std::uint64_t en = 0; en <= 1; ++en) {
      const std::vector<bool> out = run(c, addr | (en << n));
      for (std::uint64_t row = 0; row < (1ULL << n); ++row) {
        const bool expected = (en != 0) && (row == addr);
        EXPECT_EQ(out[row], expected)
            << "n=" << n << " addr=" << addr << " en=" << en;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecoderBits, ::testing::Values(1, 2, 3, 4));

class ComparatorWidth : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorWidth, ThreeWayOutcome) {
  const int w = GetParam();
  const Circuit c = make_comparator(w);
  const std::uint64_t limit = 1ULL << w;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const std::vector<bool> out = run(c, a | (b << w));
      ASSERT_EQ(out.size(), 3u);
      EXPECT_EQ(out[0], a < b) << "a=" << a << " b=" << b;
      EXPECT_EQ(out[1], a == b) << "a=" << a << " b=" << b;
      EXPECT_EQ(out[2], a > b) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, ComparatorWidth,
                         ::testing::Values(1, 2, 3, 4));

TEST(Alu, AllOpcodesAgainstReference) {
  const int w = 4;
  const Circuit c = make_alu(w);
  util::Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.uniform_below(1ULL << w);
    const std::uint64_t b = rng.uniform_below(1ULL << w);
    const std::uint64_t op = rng.uniform_below(8);
    const std::uint64_t cin = rng.uniform_below(2);
    const std::uint64_t input =
        a | (b << w) | (op << (2 * w)) | (cin << (2 * w + 3));
    const std::vector<bool> out = run(c, input);
    const std::uint64_t y = bits_to_uint(out, 0, static_cast<std::size_t>(w));
    const std::uint64_t mask = (1ULL << w) - 1;
    std::uint64_t expect = 0;
    switch (op) {
      case 0: expect = a & b; break;
      case 1: expect = a | b; break;
      case 2: expect = a ^ b; break;
      case 3: expect = ~(a | b) & mask; break;
      case 4: expect = (a + b + cin) & mask; break;
      case 5: expect = (a + (~b & mask) + 1) & mask; break;
      case 6: expect = a; break;
      case 7: expect = ~a & mask; break;
      default: break;
    }
    EXPECT_EQ(y, expect) << "op=" << op << " a=" << a << " b=" << b
                         << " cin=" << cin;
    if (op == 4) {
      const bool cout = out[static_cast<std::size_t>(w)];
      EXPECT_EQ(cout, ((a + b + cin) >> w) != 0);
    }
  }
}

class CarrySelectConfig
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CarrySelectConfig, AddsExhaustively) {
  const auto [w, block] = GetParam();
  const Circuit c = make_carry_select_adder(w, block);
  const std::uint64_t limit = 1ULL << w;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      for (std::uint64_t cin = 0; cin <= 1; ++cin) {
        const std::vector<bool> out =
            run(c, a | (b << w) | (cin << (2 * w)));
        const std::uint64_t sum =
            bits_to_uint(out, 0, static_cast<std::size_t>(w)) |
            ((out[static_cast<std::size_t>(w)] ? 1ULL : 0ULL) << w);
        EXPECT_EQ(sum, a + b + cin)
            << "w=" << w << " block=" << block << " a=" << a << " b=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, CarrySelectConfig,
                         ::testing::Values(std::make_pair(4, 2),
                                           std::make_pair(4, 4),
                                           std::make_pair(5, 2),
                                           std::make_pair(6, 3)));

TEST(CarrySelect, WideRandomSpotChecks) {
  const int w = 16;
  const Circuit c = make_carry_select_adder(w, 4);
  util::Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.uniform_below(1ULL << w);
    const std::uint64_t b = rng.uniform_below(1ULL << w);
    const std::uint64_t cin = rng.uniform_below(2);
    const std::vector<bool> out = run(c, a | (b << w) | (cin << (2 * w)));
    const std::uint64_t sum =
        bits_to_uint(out, 0, w) | ((out[w] ? 1ULL : 0ULL) << w);
    EXPECT_EQ(sum, a + b + cin);
  }
}

class BarrelWidth : public ::testing::TestWithParam<int> {};

TEST_P(BarrelWidth, RotatesExhaustively) {
  const int w = GetParam();
  const Circuit c = make_barrel_rotator(w);
  int stages = 0;
  while ((1 << stages) < w) ++stages;
  const std::uint64_t data_limit = 1ULL << w;
  util::Rng rng(37);
  const std::uint64_t trials = w <= 4 ? data_limit : 512;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t data =
        w <= 4 ? t : rng.uniform_below(data_limit);
    for (std::uint64_t shift = 0;
         shift < (1ULL << stages); ++shift) {
      const std::vector<bool> out =
          run(c, data | (shift << w));
      const std::uint64_t mask = data_limit - 1;
      const std::uint64_t expect =
          ((data << shift) | (data >> (w - shift))) & mask;
      EXPECT_EQ(bits_to_uint(out, 0, static_cast<std::size_t>(w)),
                shift == 0 ? data : expect)
          << "w=" << w << " data=" << data << " shift=" << shift;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BarrelWidth, ::testing::Values(2, 4, 8, 16));

class ScanAccumulatorWidth : public ::testing::TestWithParam<int> {};

TEST_P(ScanAccumulatorWidth, CombinationalFrameComputesSum) {
  // Under the full-scan model the accumulator's single frame computes
  // a + state; the sum drives both the outputs and the DFF D pins.
  const int w = GetParam();
  const Circuit c = make_scan_accumulator(w);
  ASSERT_EQ(c.flip_flops().size(), static_cast<std::size_t>(w));
  ASSERT_EQ(c.pattern_inputs().size(), static_cast<std::size_t>(2 * w));
  const std::uint64_t limit = 1ULL << w;
  util::Rng rng(41);
  const std::uint64_t trials = w <= 4 ? limit * limit : 300;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t a =
        w <= 4 ? (t % limit) : rng.uniform_below(limit);
    const std::uint64_t s =
        w <= 4 ? (t / limit) : rng.uniform_below(limit);
    const std::vector<bool> out = run(c, a | (s << w));
    // Outputs: sum bits then carry, followed by the DFF capture values
    // (equal to the sum bits).
    const std::uint64_t sum =
        bits_to_uint(out, 0, static_cast<std::size_t>(w)) |
        ((out[static_cast<std::size_t>(w)] ? 1ULL : 0ULL) << w);
    EXPECT_EQ(sum, a + s) << "w=" << w << " a=" << a << " s=" << s;
    for (int i = 0; i < w; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(w + 1 + i)],
                out[static_cast<std::size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ScanAccumulatorWidth,
                         ::testing::Values(1, 2, 4, 8));

TEST(ScanAccumulator, FaultSimEnginesAgree) {
  const Circuit c = make_scan_accumulator(4);
  const auto faults = lsiq::fault::FaultList::full_universe(c);
  util::Rng rng(43);
  sim::PatternSet patterns(c.pattern_inputs().size());
  patterns.append_random(96, rng);
  const auto serial = lsiq::fault::simulate_serial(faults, patterns);
  const auto ppsfp = lsiq::fault::simulate_ppsfp(faults, patterns);
  for (std::size_t cl = 0; cl < serial.first_detection.size(); ++cl) {
    EXPECT_EQ(serial.first_detection[cl], ppsfp.first_detection[cl]);
  }
}

TEST(NewGenerators, RejectBadParameters) {
  EXPECT_THROW(make_carry_select_adder(0, 1), ContractViolation);
  EXPECT_THROW(make_carry_select_adder(4, 5), ContractViolation);
  EXPECT_THROW(make_carry_select_adder(4, 0), ContractViolation);
  EXPECT_THROW(make_barrel_rotator(3), ContractViolation);
  EXPECT_THROW(make_barrel_rotator(128), ContractViolation);
}

TEST(RandomDag, IsValidAndDeterministic) {
  RandomDagSpec spec;
  spec.inputs = 12;
  spec.gates = 150;
  spec.seed = 42;
  const Circuit a = make_random_dag(spec);
  const Circuit b = make_random_dag(spec);
  EXPECT_EQ(a.gate_count(), b.gate_count());
  EXPECT_GT(a.primary_outputs().size(), 0u);
  // Determinism: identical structure gate by gate.
  for (GateId id = 0; id < a.gate_count(); ++id) {
    EXPECT_EQ(a.gate(id).type, b.gate(id).type);
    EXPECT_EQ(a.gate(id).fanin, b.gate(id).fanin);
  }
}

TEST(RandomDag, DifferentSeedsGiveDifferentCircuits) {
  RandomDagSpec spec_a;
  spec_a.seed = 1;
  RandomDagSpec spec_b;
  spec_b.seed = 2;
  const Circuit a = make_random_dag(spec_a);
  const Circuit b = make_random_dag(spec_b);
  bool any_difference = a.gate_count() != b.gate_count();
  for (GateId id = 0; !any_difference && id < a.gate_count(); ++id) {
    any_difference = a.gate(id).type != b.gate(id).type ||
                     a.gate(id).fanin != b.gate(id).fanin;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomDag, EveryInputIsConsumed) {
  RandomDagSpec spec;
  spec.inputs = 10;
  spec.gates = 80;
  spec.seed = 3;
  const Circuit c = make_random_dag(spec);
  for (const GateId in : c.primary_inputs()) {
    EXPECT_FALSE(c.gate(in).fanout.empty())
        << "dangling input " << c.gate(in).name;
  }
}

TEST(RandomDag, RejectsBadSpecs) {
  RandomDagSpec too_few_inputs;
  too_few_inputs.inputs = 1;
  EXPECT_THROW(make_random_dag(too_few_inputs), ContractViolation);
  RandomDagSpec no_gates;
  no_gates.gates = 0;
  EXPECT_THROW(make_random_dag(no_gates), ContractViolation);
  RandomDagSpec narrow_fanin;
  narrow_fanin.max_fanin = 1;
  EXPECT_THROW(make_random_dag(narrow_fanin), ContractViolation);
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(make_ripple_carry_adder(0), ContractViolation);
  EXPECT_THROW(make_array_multiplier(1), ContractViolation);
  EXPECT_THROW(make_majority(4), ContractViolation);
  EXPECT_THROW(make_majority(11), ContractViolation);
  EXPECT_THROW(make_parity_tree(1), ContractViolation);
  EXPECT_THROW(make_mux_tree(0), ContractViolation);
  EXPECT_THROW(make_decoder(9), ContractViolation);
  EXPECT_THROW(make_comparator(0), ContractViolation);
  EXPECT_THROW(make_alu(0), ContractViolation);
}

}  // namespace
}  // namespace lsiq::circuit
