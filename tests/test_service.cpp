// Tests for the flow service: admission control, priority ordering,
// cancellation (queued and running), drain/shutdown semantics, store
// resume, batch equivalence, bounded-cache eviction under load, the wire
// protocol, and a full socket round trip.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace lsiq::service {
namespace {

namespace fs = std::filesystem;

/// A tiny spec that runs in milliseconds (c17: 22 collapsed classes).
constexpr const char* kGoodSpec =
    "circuit = c17\n"
    "source = lfsr\n"
    "patterns = 64\n"
    "observe = full\n"
    "engine = ppsfp\n";

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Failpoints::instance().clear();
    dir_ = fs::path(::testing::TempDir()) / "lsiq_service" /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { util::Failpoints::instance().clear(); }

  std::string write_spec(const std::string& name,
                         const std::string& text = kGoodSpec) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path.string();
  }

  /// A spec over `circuit` (fast: 16 LFSR patterns, full observation).
  std::string write_circuit_spec(const std::string& circuit) {
    return write_spec(circuit + ".spec", "circuit = " + circuit +
                                            "\n"
                                            "source = lfsr\n"
                                            "patterns = 16\n"
                                            "observe = full\n"
                                            "engine = ppsfp\n"
                                            "chips = 0\n"
                                            "yield = 0.1\n"
                                            "n0 = 5\n");
  }

  std::string store_path() const { return (dir_ / "store.jsonl").string(); }

  /// Deterministic-test options: 1 lane (ordering is observable), no
  /// backoff sleeping.
  ServiceOptions lane1_options() {
    ServiceOptions options;
    options.num_workers = 1;
    options.store_path = store_path();
    options.spool_dir = dir_.string();
    options.retry.backoff_initial_ms = 0;
    return options;
  }

  /// Spin until job `id` reports kRunning (a submit was picked up).
  static void wait_until_running(FlowService& service, std::uint64_t id) {
    for (int i = 0; i < 2000; ++i) {
      const std::optional<JobInfo> info = service.status(id);
      ASSERT_TRUE(info.has_value());
      if (info->state == JobState::kRunning) return;
      if (info->state == JobState::kDone) return;  // too fast — fine
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "job " << id << " never started running";
  }

  /// The store's record lines, in completion (append) order.
  std::vector<flow::BatchRecord> store_lines() const {
    std::vector<flow::BatchRecord> records;
    std::ifstream in(store_path());
    std::string line;
    while (std::getline(in, line)) {
      const std::optional<flow::BatchRecord> record =
          flow::BatchRecord::from_jsonl(line);
      if (record.has_value()) records.push_back(*record);
    }
    return records;
  }

  fs::path dir_;
};

// ---- basic lifecycle ----

TEST_F(ServiceTest, SubmitRunsToOkRecord) {
  const std::string spec = write_spec("a.spec");
  FlowService service(lane1_options());
  const std::uint64_t id = service.submit(spec);
  const JobInfo done = service.wait(id);
  EXPECT_EQ(done.state, JobState::kDone);
  EXPECT_EQ(done.record.status, "ok");
  EXPECT_EQ(done.record.error_code, ErrorCode::kOk);
  EXPECT_EQ(done.record.attempts, 1);
  EXPECT_EQ(done.record.spec, spec);
  EXPECT_GT(done.record.patterns, 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.queued, 0u);

  // The record landed in the journal too.
  ASSERT_EQ(store_lines().size(), 1u);
  EXPECT_EQ(store_lines()[0].status, "ok");
}

TEST_F(ServiceTest, StatusAndWaitRejectUnknownJobs) {
  FlowService service(lane1_options());
  EXPECT_FALSE(service.status(99).has_value());
  EXPECT_FALSE(service.cancel(99));
  try {
    service.wait(99);
    FAIL() << "wait(99) should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

// ---- equivalence with the batch runner ----

TEST_F(ServiceTest, ServiceStoreIsCanonicallyEquivalentToBatch) {
  // The same specs through run_batch and through the daemon queue must
  // produce canonically identical result stores: same records, only the
  // volatile fields (wall_ms, resumed) may differ.
  const std::vector<std::string> specs = {
      write_spec("a.spec"),
      write_spec("b.spec",
                 "circuit = adder8\nsource = lfsr\npatterns = 32\n"
                 "observe = full\nengine = ppsfp\nchips = 0\n"
                 "yield = 0.1\nn0 = 5\n"),
      write_spec("c.spec",
                 "circuit = c17\nsource = lfsr\npatterns = 128\n"
                 "observe = full\nengine = ppsfp\n"),
  };

  flow::BatchOptions batch_options;
  batch_options.num_workers = 2;
  batch_options.checkpoint = (dir_ / "batch.jsonl").string();
  batch_options.retry.backoff_initial_ms = 0;
  flow::run_batch(specs, batch_options);

  {
    ServiceOptions options = lane1_options();
    options.num_workers = 2;
    FlowService service(options);
    for (const std::string& spec : specs) service.submit(spec);
    service.drain();
  }

  const std::map<std::string, flow::BatchRecord> batch_records =
      flow::load_result_store(batch_options.checkpoint);
  const std::map<std::string, flow::BatchRecord> service_records =
      flow::load_result_store(store_path());
  ASSERT_EQ(batch_records.size(), specs.size());
  ASSERT_EQ(service_records.size(), specs.size());
  for (const auto& [spec, record] : batch_records) {
    const auto it = service_records.find(spec);
    ASSERT_NE(it, service_records.end()) << spec;
    EXPECT_EQ(record.canonical_jsonl(), it->second.canonical_jsonl());
  }
}

// ---- priority ordering ----

TEST_F(ServiceTest, HigherPriorityRunsFirst) {
  // One lane; the first job sleeps at the lane boundary, so the next two
  // are both queued when it finishes — the higher priority one must win
  // even though it was submitted later. Store append order IS completion
  // order.
  util::Failpoints::instance().arm_from_string("service.job=sleep(150,1)");
  const std::string first = write_spec("first.spec");
  const std::string low = write_spec("low.spec");
  const std::string high = write_spec("high.spec");
  FlowService service(lane1_options());
  const std::uint64_t a = service.submit(first);
  wait_until_running(service, a);
  service.submit(low, /*priority=*/0);
  service.submit(high, /*priority=*/5);
  service.drain();

  const std::vector<flow::BatchRecord> lines = store_lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].spec, first);
  EXPECT_EQ(lines[1].spec, high);
  EXPECT_EQ(lines[2].spec, low);
}

// ---- admission control ----

TEST_F(ServiceTest, FullQueueRefusesWithQueueFull) {
  util::Failpoints::instance().arm_from_string("service.job=sleep(200,1)");
  ServiceOptions options = lane1_options();
  options.max_queue = 2;
  FlowService service(options);
  const std::uint64_t a = service.submit(write_spec("a.spec"));
  wait_until_running(service, a);
  service.submit(write_spec("b.spec"));
  service.submit(write_spec("c.spec"));
  try {
    service.submit(write_spec("d.spec"));
    FAIL() << "submit beyond max_queue should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQueueFull);
    EXPECT_TRUE(e.transient());  // a polite client backs off and retries
  }
  EXPECT_EQ(service.stats().rejected, 1u);
  service.drain();
  // The admitted jobs all completed despite the refusal.
  EXPECT_EQ(service.stats().completed, 3u);
}

TEST_F(ServiceTest, DrainStopsAdmissionWithShutdownCode) {
  FlowService service(lane1_options());
  service.submit(write_spec("a.spec"));
  service.drain();
  EXPECT_TRUE(service.draining());
  try {
    service.submit(write_spec("b.spec"));
    FAIL() << "submit after drain should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kShutdown);
    EXPECT_FALSE(e.transient());  // a draining service never re-opens
  }
}

// ---- cancellation ----

TEST_F(ServiceTest, CancelQueuedJobCommitsImmediateCancelledRecord) {
  util::Failpoints::instance().arm_from_string("service.job=sleep(200,1)");
  FlowService service(lane1_options());
  const std::uint64_t a = service.submit(write_spec("a.spec"));
  wait_until_running(service, a);
  const std::uint64_t b = service.submit(write_spec("b.spec"));
  EXPECT_TRUE(service.cancel(b));
  // The record exists NOW — no waiting on the lane.
  const std::optional<JobInfo> info = service.status(b);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_EQ(info->record.status, "failed");
  EXPECT_EQ(info->record.error_code, ErrorCode::kCancelled);
  EXPECT_FALSE(info->record.transient);
  EXPECT_EQ(info->record.attempts, 0);  // never ran
  service.drain();
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST_F(ServiceTest, CancelRunningJobUnwindsThroughCancelScope) {
  // The job sleeps 400ms at the "flow.grade" checkpoint INSIDE the run;
  // the cancel flag flips mid-sleep and the post-sleep poll throws
  // CancelledError through the retry boundary into a structured record.
  util::Failpoints::instance().arm_from_string("flow.grade=sleep(400,1)");
  FlowService service(lane1_options());
  const std::uint64_t id = service.submit(write_spec("a.spec"));
  wait_until_running(service, id);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(service.cancel(id));
  const JobInfo done = service.wait(id);
  EXPECT_EQ(done.record.status, "failed");
  EXPECT_EQ(done.record.error_code, ErrorCode::kCancelled);
  EXPECT_FALSE(done.record.transient);  // cancelled work is not retried
  EXPECT_EQ(done.record.attempts, 1);
}

TEST_F(ServiceTest, CancelDoneJobHasNoEffect) {
  FlowService service(lane1_options());
  const std::uint64_t id = service.submit(write_spec("a.spec"));
  service.wait(id);
  EXPECT_FALSE(service.cancel(id));
  EXPECT_EQ(service.status(id)->record.status, "ok");
}

TEST_F(ServiceTest, ShutdownCancelsQueuedJobs) {
  util::Failpoints::instance().arm_from_string("service.job=sleep(150,1)");
  FlowService service(lane1_options());
  const std::uint64_t a = service.submit(write_spec("a.spec"));
  wait_until_running(service, a);
  const std::uint64_t b = service.submit(write_spec("b.spec"));
  service.shutdown();
  // a finished (or was cancelled mid-run); b never ran.
  const std::optional<JobInfo> info = service.status(b);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_EQ(info->record.error_code, ErrorCode::kCancelled);
  EXPECT_EQ(info->record.attempts, 0);
}

// ---- failure injection at the lane boundary ----

TEST_F(ServiceTest, ServiceJobFailpointBecomesStructuredRecord) {
  util::Failpoints::instance().arm_from_string("service.job=error(io,1)");
  FlowService service(lane1_options());
  const std::uint64_t id = service.submit(write_spec("a.spec"));
  const JobInfo done = service.wait(id);
  EXPECT_EQ(done.record.status, "failed");
  EXPECT_EQ(done.record.error_code, ErrorCode::kIo);
  EXPECT_TRUE(done.record.transient);
  // The lane survived: the next job runs normally.
  const std::uint64_t next = service.submit(write_spec("b.spec"));
  EXPECT_EQ(service.wait(next).record.status, "ok");
}

TEST_F(ServiceTest, TransientFlowFailureIsRetriedInsideTheJob) {
  // Same retry semantics as the batch runner: a fails-once transient
  // error inside the run is absorbed by the second attempt.
  util::Failpoints::instance().arm_from_string(
      "flow.run=error(transient,1)");
  FlowService service(lane1_options());
  const std::uint64_t id = service.submit(write_spec("a.spec"));
  const JobInfo done = service.wait(id);
  EXPECT_EQ(done.record.status, "ok");
  EXPECT_EQ(done.record.attempts, 2);
}

// ---- store resume ----

TEST_F(ServiceTest, RestartResumesUnchangedOkSpecsFromStore) {
  const std::string spec = write_spec("a.spec");
  flow::BatchRecord first_record;
  {
    FlowService service(lane1_options());
    first_record = service.wait(service.submit(spec)).record;
  }
  // "Restart": a fresh service on the same store. The unchanged spec
  // resolves instantly as a resumed record with identical canonical form.
  {
    FlowService service(lane1_options());
    const std::uint64_t id = service.submit(spec);
    const std::optional<JobInfo> info = service.status(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::kDone);  // no queueing, no running
    EXPECT_TRUE(info->record.resumed);
    EXPECT_EQ(info->record.canonical_jsonl(),
              first_record.canonical_jsonl());
    EXPECT_EQ(service.stats().resumed, 1u);
  }
  // The journal now holds two records for the spec; last-wins loading
  // sees the resumed one.
  EXPECT_EQ(store_lines().size(), 2u);
  EXPECT_TRUE(flow::load_result_store(store_path()).at(spec).resumed);
}

TEST_F(ServiceTest, ChangedSpecIsNotResumed) {
  const std::string spec = write_spec("a.spec");
  {
    FlowService service(lane1_options());
    service.wait(service.submit(spec));
  }
  write_spec("a.spec",
             "circuit = c17\nsource = lfsr\npatterns = 32\n"
             "observe = full\nengine = ppsfp\n");
  {
    FlowService service(lane1_options());
    const JobInfo done = service.wait(service.submit(spec));
    EXPECT_FALSE(done.record.resumed);
    EXPECT_EQ(done.record.patterns, 32u);
    EXPECT_EQ(service.stats().resumed, 0u);
  }
}

// ---- bounded cache under load (the daemon memory contract) ----

TEST_F(ServiceTest, HundredJobRunStaysUnderCacheBoundWithEvictions) {
  // 120 jobs cycling over 12 distinct products through a cache bounded
  // well below the sum of their costs: evictions must happen, the live
  // cost must stay under the bound, and every job must still be "ok"
  // (an evicted artifact rebuilds on demand).
  const std::vector<std::string> circuits = {
      "adder4",  "adder6", "adder8",  "parity8", "parity16", "mux8",
      "decoder4", "majority5", "comparator4", "alu4", "barrel8", "c17"};
  std::vector<std::string> specs;
  specs.reserve(circuits.size());
  std::size_t total_cost = 0;
  for (const std::string& circuit : circuits) {
    specs.push_back(write_circuit_spec(circuit));
    // Learn each artifact's cost the same way the cache charges it.
    flow::ArtifactCache probe;
    const auto artifacts =
        probe.get(circuit, fault_model::FaultModel::kStuckAt);
    total_cost += flow::ArtifactCache::cost_of(*artifacts);
  }
  // One node short of the full working set: all twelve entries can never
  // be live at once (eviction MUST fire), yet any single entry fits, so
  // cost <= bound is a real invariant (the MRU exemption never applies).
  const std::size_t bound = total_cost - 1;

  ServiceOptions options = lane1_options();
  options.num_workers = 2;
  options.cache_max_cost = bound;
  FlowService service(options);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 120; ++i) {
    ids.push_back(service.submit(specs[i % specs.size()]));
  }
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 120u);
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.cost, bound);
  EXPECT_EQ(stats.cache.max_cost, bound);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 120u);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(service.status(id)->record.status, "ok");
  }
}

// ---- the wire protocol ----

TEST(ServiceProtocol, RequestRoundTrips) {
  Request request;
  request.op = "submit";
  request.spec = "specs/a \"quoted\".spec";
  request.priority = 7;
  request.deadline_ms = 1500;
  const std::optional<Request> parsed =
      parse_request(format_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, "submit");
  EXPECT_EQ(parsed->spec, request.spec);
  EXPECT_EQ(parsed->priority, 7);
  EXPECT_EQ(parsed->deadline_ms, 1500);
  EXPECT_FALSE(parsed->has_job);

  Request job_request;
  job_request.op = "cancel";
  job_request.job = 42;
  job_request.has_job = true;
  const std::optional<Request> parsed_job =
      parse_request(format_request(job_request));
  ASSERT_TRUE(parsed_job.has_value());
  EXPECT_TRUE(parsed_job->has_job);
  EXPECT_EQ(parsed_job->job, 42u);
}

TEST(ServiceProtocol, MalformedLinesParseToNothing) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("not json").has_value());
  EXPECT_FALSE(parse_request("{\"spec\":\"x\"}").has_value());  // no op
  EXPECT_FALSE(parse_request("{\"op\":1}").has_value());  // op not string
}

TEST(ServiceProtocol, ErrorResponsesCarryTheTaxonomy) {
  namespace json = util::json;
  const std::string line =
      error_response(ErrorCode::kQueueFull, "queue is full");
  std::map<std::string, json::Value> values;
  ASSERT_TRUE(json::parse_flat_object(line, &values));
  using Kind = json::Value::Kind;
  EXPECT_FALSE(json::find(values, "ok", Kind::kBool)->boolean);
  EXPECT_EQ(json::find(values, "error_code", Kind::kString)->text,
            "queue_full");
  EXPECT_TRUE(json::find(values, "transient", Kind::kBool)->boolean);
}

// ---- socket round trip ----

TEST_F(ServiceTest, SocketServerRoundTrip) {
  const std::string socket = (dir_ / "flowd.sock").string();
  ServiceOptions options = lane1_options();
  FlowService service(options);

  namespace json = util::json;
  using Kind = json::Value::Kind;
  const auto parse = [](const std::string& line) {
    std::map<std::string, json::Value> values;
    EXPECT_TRUE(json::parse_flat_object(line, &values)) << line;
    return values;
  };

  auto server = std::make_unique<SocketServer>(service, socket);
  std::thread serving([&] { server->serve(); });

  {
    SocketClient client(socket);
    client.send_line("{\"op\":\"ping\"}");
    const auto pong = parse(client.read_line());
    EXPECT_TRUE(json::find(pong, "ok", Kind::kBool)->boolean);

    // Inline submit: the server spools the text and runs the file.
    Request submit;
    submit.op = "submit";
    submit.spec_text = kGoodSpec;
    client.send_line(format_request(submit));
    const auto submitted = parse(client.read_line());
    ASSERT_TRUE(json::find(submitted, "ok", Kind::kBool)->boolean);
    const auto id = static_cast<std::uint64_t>(
        json::find(submitted, "job", Kind::kNumber)->number);

    // Poll to done over the same connection, then fetch the record.
    while (true) {
      client.send_line("{\"op\":\"status\",\"job\":" + std::to_string(id) +
                       "}");
      const auto status = parse(client.read_line());
      if (json::find(status, "state", Kind::kString)->text == "done") break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    client.send_line("{\"op\":\"result\",\"job\":" + std::to_string(id) +
                     "}");
    const auto result = parse(client.read_line());
    EXPECT_EQ(json::find(result, "status", Kind::kString)->text, "ok");
    EXPECT_GT(json::find(result, "patterns", Kind::kNumber)->number, 0.0);

    // Unknown jobs are a structured refusal, not a dropped connection.
    client.send_line("{\"op\":\"result\",\"job\":999}");
    const auto missing = parse(client.read_line());
    EXPECT_FALSE(json::find(missing, "ok", Kind::kBool)->boolean);
    EXPECT_EQ(json::find(missing, "error_code", Kind::kString)->text,
              "not_found");

    // Malformed and unknown-op lines too.
    client.send_line("garbage");
    EXPECT_EQ(parse(client.read_line())
                  .at("error_code")
                  .text,
              "parse");
    client.send_line("{\"op\":\"frobnicate\"}");
    EXPECT_EQ(parse(client.read_line()).at("error_code").text, "parse");

    // list: header line with a count, then one line per job.
    client.send_line("{\"op\":\"list\"}");
    const auto header = parse(client.read_line());
    const auto count = static_cast<std::size_t>(
        json::find(header, "count", Kind::kNumber)->number);
    EXPECT_EQ(count, 1u);
    const auto row = parse(client.read_line());
    EXPECT_EQ(json::find(row, "state", Kind::kString)->text, "done");
  }

  // A second connection shuts the server down cleanly.
  {
    SocketClient client(socket);
    client.send_line("{\"op\":\"shutdown\"}");
    const auto bye = parse(client.read_line());
    EXPECT_TRUE(json::find(bye, "ok", Kind::kBool)->boolean);
  }
  serving.join();
  server.reset();
  EXPECT_FALSE(fs::exists(socket));  // the server unlinked its socket
}

TEST_F(ServiceTest, AcceptFailpointDropsConnectionNotDaemon) {
  const std::string socket = (dir_ / "flowd.sock").string();
  FlowService service(lane1_options());
  SocketServer server(service, socket);
  std::thread serving([&] { server.serve(); });

  util::Failpoints::instance().arm_from_string(
      "service.accept=error(io,1)");
  {
    // First connection is dropped by the injected accept failure.
    SocketClient client(socket);
    client.send_line("{\"op\":\"ping\"}");
    EXPECT_THROW(client.read_line(), IoError);
  }
  {
    // The daemon survived and serves the next client.
    SocketClient client(socket);
    client.send_line("{\"op\":\"ping\"}");
    EXPECT_NE(client.read_line().find("\"ok\":true"), std::string::npos);
    client.send_line("{\"op\":\"shutdown\"}");
    client.read_line();
  }
  serving.join();
}

// ---- multi-client hardening ----

TEST_F(ServiceTest, OverMaxConnectionsGetsStructuredQueueFullRefusal) {
  const std::string socket = (dir_ / "flowd.sock").string();
  FlowService service(lane1_options());
  SocketServerOptions server_options;
  server_options.max_connections = 1;
  SocketServer server(service, socket, server_options);
  std::thread serving([&] { server.serve(); });

  {
    // The first client claims the only slot (the answered ping proves
    // its handler is attached) and then just sits there — exactly the
    // hung client that used to wedge the sequential accept loop.
    SocketClient holder(socket);
    holder.send_line("{\"op\":\"ping\"}");
    EXPECT_NE(holder.read_line().find("\"ok\":true"), std::string::npos);

    // The second client is refused with a parseable error line, not
    // left queueing behind the hung peer.
    SocketClient refused(socket);
    const std::string line = refused.read_line();
    EXPECT_NE(line.find("\"error_code\":\"queue_full\""), std::string::npos)
        << line;
    EXPECT_THROW(refused.read_line(), IoError);  // then EOF
  }

  // The slot is released on disconnect — but asynchronously (the
  // holder's handler has to notice the EOF first), so retry until the
  // next client is admitted rather than racing the release.
  for (int attempt = 0;; ++attempt) {
    ASSERT_LT(attempt, 2000) << "slot never released";
    SocketClient client(socket);
    client.send_line("{\"op\":\"shutdown\"}");
    std::string line;
    try {
      line = client.read_line();
    } catch (const IoError&) {
      continue;  // refused-and-closed before the request line landed
    }
    if (line.find("\"error_code\":\"queue_full\"") != std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    break;
  }
  serving.join();
}

TEST_F(ServiceTest, IdleConnectionGetsStructuredDeadlineRefusal) {
  const std::string socket = (dir_ / "flowd.sock").string();
  FlowService service(lane1_options());
  SocketServerOptions server_options;
  server_options.idle_timeout_ms = 50;
  SocketServer server(service, socket, server_options);
  std::thread serving([&] { server.serve(); });

  {
    // Connect and send nothing: the idle timer answers with a
    // structured deadline error and closes the connection.
    SocketClient idle(socket);
    const std::string line = idle.read_line();
    EXPECT_NE(line.find("\"error_code\":\"deadline\""), std::string::npos)
        << line;
    EXPECT_THROW(idle.read_line(), IoError);  // then EOF
  }

  // The timed-out connection freed its slot; the daemon still serves.
  {
    SocketClient client(socket);
    client.send_line("{\"op\":\"ping\"}");
    EXPECT_NE(client.read_line().find("\"ok\":true"), std::string::npos);
    client.send_line("{\"op\":\"shutdown\"}");
    client.read_line();
  }
  serving.join();
}

TEST_F(ServiceTest, AcceptFailpointDoesNotLeakAConnectionSlot) {
  const std::string socket = (dir_ / "flowd.sock").string();
  FlowService service(lane1_options());
  SocketServerOptions server_options;
  server_options.max_connections = 1;
  SocketServer server(service, socket, server_options);
  std::thread serving([&] { server.serve(); });

  // The failpoint fires after accept() but before the slot claim; the
  // dropped connection must not consume the single slot.
  util::Failpoints::instance().arm_from_string(
      "service.accept=error(io,1)");
  {
    SocketClient dropped(socket);
    dropped.send_line("{\"op\":\"ping\"}");
    EXPECT_THROW(dropped.read_line(), IoError);
  }
  {
    // With the slot intact, the next client is admitted, not refused
    // with queue_full.
    SocketClient client(socket);
    client.send_line("{\"op\":\"ping\"}");
    EXPECT_NE(client.read_line().find("\"ok\":true"), std::string::npos);
    client.send_line("{\"op\":\"shutdown\"}");
    client.read_line();
  }
  serving.join();
}

}  // namespace
}  // namespace lsiq::service
