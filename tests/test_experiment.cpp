// Integration tests: the full Section 5/7 experiment pipeline on a virtual
// process line — expressed as flow::FlowSpecs over an explicit pattern
// program (the translation of the removed wafer::run_chip_test_experiment
// entry point) — with ground-truth recovery and an Eq. 8 validation the
// original paper could not perform.
#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "core/reject_model.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "wafer/chip_model.hpp"

namespace lsiq::wafer {
namespace {

using circuit::Circuit;
using fault::FaultList;

struct Setup {
  const Circuit& circuit;
  const FaultList& faults;
  const sim::PatternSet& patterns;
};

/// An 8-bit multiplier driven by 600 LFSR patterns reaches well past the
/// 65% coverage Table 1 needs. The circuit is a stable static so the
/// FaultList's reference into it stays valid (see fault_list.hpp lifetime
/// note).
const Setup& setup() {
  static const Circuit circuit = circuit::make_array_multiplier(8);
  static const FaultList faults = FaultList::full_universe(circuit);
  static const sim::PatternSet patterns =
      tpg::lfsr_patterns(circuit.pattern_inputs().size(), 600, 1981);
  static const Setup s{circuit, faults, patterns};
  return s;
}

/// The experiment as a spec: the setup's program as an explicit source,
/// full observation, single-threaded PPSFP, Table-1 strobes by default.
flow::FlowSpec experiment_spec() {
  flow::FlowSpec spec;
  spec.source.kind = "explicit";
  spec.source.patterns = setup().patterns;
  spec.lot.chip_count = 277;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;
  spec.engine.kind = "ppsfp";
  spec.analysis.strobe_coverages = flow::table1_strobes();
  return spec;
}

TEST(Experiment, StrobeTableIsWellFormed) {
  const flow::FlowSpec spec = experiment_spec();
  const flow::FlowResult r = flow::run(setup().faults, spec);

  ASSERT_EQ(r.table.size(), spec.analysis.strobe_coverages.size());
  for (std::size_t i = 0; i < r.table.size(); ++i) {
    const StrobeRow& row = r.table[i];
    EXPECT_GE(row.actual_coverage, row.target_coverage);
    EXPECT_GT(row.pattern_index, 0u);
    if (i > 0) {
      EXPECT_GE(row.pattern_index, r.table[i - 1].pattern_index);
      EXPECT_GE(row.cumulative_failed, r.table[i - 1].cumulative_failed);
    }
    EXPECT_NEAR(row.cumulative_fraction,
                static_cast<double>(row.cumulative_failed) / 277.0, 1e-12);
  }
  EXPECT_GE(r.final_coverage(), 0.65);
}

TEST(Experiment, LotMatchesRequestedGroundTruth) {
  flow::FlowSpec spec = experiment_spec();
  spec.lot.chip_count = 5000;
  spec.lot.seed = 7;
  const flow::FlowResult r = flow::run(setup().faults, spec);
  EXPECT_NEAR(r.lot->realized_yield(), 0.07, 0.012);
  EXPECT_NEAR(r.lot->realized_n0(), 8.0, 0.15);
}

TEST(Experiment, EstimatorsRecoverGroundTruthOnLargeLot) {
  flow::FlowSpec spec = experiment_spec();
  spec.lot.chip_count = 20000;  // large lot: sampling noise mostly gone
  spec.lot.yield = 0.20;
  spec.lot.n0 = 6.0;
  spec.lot.seed = 13;
  const flow::FlowResult r = flow::run(setup().faults, spec);

  const auto points = r.points();
  const int discrete = quality::estimate_n0_discrete(points, spec.lot.yield);
  EXPECT_NEAR(static_cast<double>(discrete), 6.0, 1.0);
  const quality::FitResult ls =
      quality::estimate_n0_least_squares(points, spec.lot.yield);
  EXPECT_NEAR(ls.n0, 6.0, 0.8);
}

TEST(Experiment, EmpiricalRejectRateMatchesEquation8) {
  // The validation the 1981 authors could not do: with ground truth known,
  // the measured escape rate of the virtual line must match r(f) at the
  // program's final coverage, within binomial error.
  flow::FlowSpec spec = experiment_spec();
  spec.lot.chip_count = 50000;
  spec.lot.yield = 0.30;
  spec.lot.n0 = 5.0;
  spec.lot.seed = 17;
  const flow::FlowResult r = flow::run(setup().faults, spec);

  const double f = r.final_coverage();
  const double predicted =
      quality::field_reject_rate(f, spec.lot.yield, spec.lot.n0);
  const double measured = r.test->empirical_reject_rate();
  const auto [lo, hi] = util::wilson_interval(
      r.test->shipped_defective_count(), r.test->passed_count());
  EXPECT_GT(predicted, 0.0);
  // The prediction must fall inside (a slightly widened) confidence band.
  const double slack = 0.35 * predicted;
  EXPECT_GE(predicted, lo - slack)
      << "measured " << measured << " predicted " << predicted;
  EXPECT_LE(predicted, hi + slack)
      << "measured " << measured << " predicted " << predicted;
}

TEST(Experiment, PhysicalLotRunsEndToEnd) {
  flow::FlowSpec spec = experiment_spec();
  spec.lot.chip_count = 2000;
  PhysicalLotSpec physical;
  physical.chip_count = 2000;
  physical.defects_per_chip = 2.66;  // ~7% NB yield at X = 0.5
  physical.variance_ratio = 0.5;
  physical.extra_faults_per_defect = 2.0;
  physical.seed = 19;
  spec.lot.physical = physical;
  const flow::FlowResult r = flow::run(setup().faults, spec);
  EXPECT_EQ(r.lot->size(), 2000u);
  // Ground truth is the realization for physical lots.
  EXPECT_DOUBLE_EQ(r.lot->true_n0, r.lot->realized_n0());
  EXPECT_GT(r.lot->true_n0, 1.5);
  // The fallout curve still rises and the estimators still run.
  const auto points = r.points();
  EXPECT_GT(points.back().fraction_failed, points.front().fraction_failed);
  const quality::FitResult fit = quality::estimate_n0_least_squares(
      points, r.lot->realized_yield());
  EXPECT_GT(fit.n0, 1.0);
}

TEST(Experiment, UnreachableStrobeThrows) {
  flow::FlowSpec spec = experiment_spec();
  // One stubborn fault class survives the LFSR program.
  spec.analysis.strobe_coverages = {1.0};
  EXPECT_THROW(flow::run(setup().faults, spec), lsiq::Error);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const flow::FlowSpec spec = experiment_spec();
  const flow::FlowResult a = flow::run(setup().faults, spec);
  const flow::FlowResult b = flow::run(setup().faults, spec);
  ASSERT_EQ(a.table.size(), b.table.size());
  for (std::size_t i = 0; i < a.table.size(); ++i) {
    EXPECT_EQ(a.table[i].cumulative_failed, b.table[i].cumulative_failed);
    EXPECT_EQ(a.table[i].pattern_index, b.table[i].pattern_index);
  }
}

}  // namespace
}  // namespace lsiq::wafer
