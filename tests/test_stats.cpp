// Unit tests for util/stats.
#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(RunningStats, HandComputedMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, StableUnderLargeOffset) {
  // Welford must survive values with a huge common offset.
  RunningStats s;
  for (const double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(LinearRegression, ExactLineRecovered) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearRegression, NoisyDataRSquaredBelowOne) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.1};
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(LinearRegression, ConstantYGivesZeroSlope) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {5.0, 5.0, 5.0};
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

TEST(LinearRegression, RejectsDegenerateInput) {
  EXPECT_THROW(linear_regression({1.0}, {2.0}), ContractViolation);
  EXPECT_THROW(linear_regression({1.0, 1.0}, {2.0, 3.0}), ContractViolation);
  EXPECT_THROW(linear_regression({1.0, 2.0}, {2.0}), ContractViolation);
}

TEST(RegressionThroughOrigin, ExactProportionality) {
  EXPECT_NEAR(regression_through_origin({1.0, 2.0, 4.0}, {3.0, 6.0, 12.0}),
              3.0, 1e-12);
}

TEST(RegressionThroughOrigin, SinglePointIsRatio) {
  // The paper's P'(0) = 0.41 / 0.05 single-strobe computation.
  EXPECT_NEAR(regression_through_origin({0.05}, {0.41}), 8.2, 1e-12);
}

TEST(RegressionThroughOrigin, RejectsAllZeroX) {
  EXPECT_THROW(regression_through_origin({0.0, 0.0}, {1.0, 2.0}),
               ContractViolation);
}

TEST(Percentile, MedianAndQuartiles) {
  const std::vector<double> xs = {15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_NEAR(percentile(xs, 25.0), 20.0, 1e-12);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_NEAR(percentile(xs, 30.0), 3.0, 1e-12);
}

TEST(Percentile, RejectsBadArguments) {
  EXPECT_THROW(percentile({}, 50.0), ContractViolation);
  EXPECT_THROW(percentile({1.0}, -1.0), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101.0), ContractViolation);
}

TEST(KsStatistic, PerfectFitIsSmall) {
  // Sample = model quantiles; the KS distance is bounded by 1/n.
  std::vector<double> sample;
  std::vector<double> cdf;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const double u = (i + 0.5) / n;
    sample.push_back(u);
    cdf.push_back(u);
  }
  EXPECT_LE(ks_statistic(sample, cdf), 0.5 / n + 1e-12);
}

TEST(KsStatistic, DetectsGrossMismatch) {
  // Sample concentrated at 0.9 versus a uniform model.
  std::vector<double> sample(50, 0.9);
  std::vector<double> cdf(50, 0.9);  // uniform CDF evaluated at 0.9
  EXPECT_NEAR(ks_statistic(sample, cdf), 0.9, 1e-9);
}

TEST(ChiSquare, ZeroForExactMatch) {
  EXPECT_DOUBLE_EQ(
      chi_square_statistic({10.0, 20.0, 30.0}, {10.0, 20.0, 30.0}), 0.0);
}

TEST(ChiSquare, HandComputedValue) {
  // (12-10)^2/10 + (8-10)^2/10 = 0.8
  EXPECT_NEAR(chi_square_statistic({12.0, 8.0}, {10.0, 10.0}), 0.8, 1e-12);
}

TEST(ChiSquare, SkipsEmptyExpectedCells) {
  EXPECT_DOUBLE_EQ(chi_square_statistic({5.0, 0.0}, {5.0, 0.0}), 0.0);
}

TEST(WilsonInterval, CoversPointEstimate) {
  const auto [lo, hi] = wilson_interval(30, 100);
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.3);
  EXPECT_GT(lo, 0.2);
  EXPECT_LT(hi, 0.4);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpperBound) {
  const auto [lo, hi] = wilson_interval(0, 50);
  EXPECT_NEAR(lo, 0.0, 1e-12);
  EXPECT_GT(hi, 0.0);
  EXPECT_LT(hi, 0.15);
}

TEST(WilsonInterval, AllSuccesses) {
  const auto [lo, hi] = wilson_interval(50, 50);
  EXPECT_LT(lo, 1.0);
  EXPECT_GT(lo, 0.85);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto [lo_small, hi_small] = wilson_interval(10, 100);
  const auto [lo_big, hi_big] = wilson_interval(1000, 10000);
  EXPECT_LT(hi_big - lo_big, hi_small - lo_small);
}

TEST(WilsonInterval, RejectsBadArguments) {
  EXPECT_THROW(wilson_interval(1, 0), ContractViolation);
  EXPECT_THROW(wilson_interval(5, 4), ContractViolation);
}

}  // namespace
}  // namespace lsiq::util
