// Tests for SCOAP testability measures.
#include "tpg/scoap.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"

namespace lsiq::tpg {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

TEST(Scoap, InputsAndConstants) {
  Circuit c("basics");
  const GateId a = c.add_input("a");
  const GateId zero = c.add_gate(GateType::kConst0, {}, "zero");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId y =
      c.add_gate(GateType::kAnd, {a, one}, "y");
  const GateId z = c.add_gate(GateType::kOr, {a, zero}, "z");
  c.mark_output(y);
  c.mark_output(z);
  c.finalize();

  const TestabilityMeasures m = compute_scoap(c);
  EXPECT_EQ(m.cc0[a], 1u);
  EXPECT_EQ(m.cc1[a], 1u);
  EXPECT_EQ(m.cc0[zero], 0u);
  EXPECT_EQ(m.cc1[zero], kScoapInfinity);  // cannot drive a constant to 1
  EXPECT_EQ(m.cc1[one], 0u);
  EXPECT_EQ(m.cc0[one], kScoapInfinity);
}

TEST(Scoap, AndGateControllability) {
  Circuit c("and");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  EXPECT_EQ(m.cc1[y], 3u);  // both inputs to 1: 1 + 1 + 1
  EXPECT_EQ(m.cc0[y], 2u);  // cheapest input to 0: 1 + 1
  EXPECT_EQ(m.observability[y], 0u);  // primary output
  // Observing `a` through the AND needs b at 1: CO = 0 + 1 + 1.
  EXPECT_EQ(m.observability[a], 2u);
}

TEST(Scoap, InverterChainAccumulatesCost) {
  Circuit c("chain");
  GateId prev = c.add_input("a");
  for (int i = 0; i < 4; ++i) {
    prev = c.add_gate(GateType::kNot, {prev}, "n" + std::to_string(i));
  }
  c.mark_output(prev);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  // Each inverter adds 1; four inverters from a PI of cost 1.
  EXPECT_EQ(std::max(m.cc0[prev], m.cc1[prev]), 5u);
  // Observability of the PI grows with depth.
  EXPECT_EQ(m.observability[c.find("a")], 4u);
}

TEST(Scoap, XorControllabilityUsesCheapestParitySplit) {
  Circuit c("xor");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kXor, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  // 0: both equal (1+1)+1; 1: one of each (1+1)+1.
  EXPECT_EQ(m.cc0[y], 3u);
  EXPECT_EQ(m.cc1[y], 3u);
}

TEST(Scoap, ParityRootCostGrowsWithTreeWidth) {
  // XOR has no controlling value: every input must be assigned, so the
  // root's controllability grows with tree width (unlike AND/OR chains,
  // where SCOAP's min-rule keeps one-side control cheap).
  const Circuit narrow = circuit::make_parity_tree(4);
  const Circuit wide = circuit::make_parity_tree(16);
  const TestabilityMeasures mn = compute_scoap(narrow);
  const TestabilityMeasures mw = compute_scoap(wide);
  const GateId root_n = narrow.primary_outputs().front();
  const GateId root_w = wide.primary_outputs().front();
  EXPECT_GT(mw.cc1[root_w], mn.cc1[root_n]);
  EXPECT_GT(mw.cc0[root_w], mn.cc0[root_n]);
}

TEST(Scoap, CarryChainStaysCheapByMinRule) {
  // Documents the min-rule behaviour the parity test contrasts with: the
  // ripple adder's final carry is SCOAP-cheap to control (set the top
  // bits' AND directly) even though it is structurally deep.
  const Circuit c = circuit::make_ripple_carry_adder(8);
  const TestabilityMeasures m = compute_scoap(c);
  const GateId cout = c.primary_outputs().back();
  EXPECT_LT(m.cc1[cout], 8u);
}

TEST(Scoap, StemObservabilityIsBestBranch) {
  // s fans out to a cheap path (BUF to output) and an expensive one
  // (AND with a side condition): stem CO must take the cheap branch.
  Circuit c("branch");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId s = c.add_gate(GateType::kBuf, {a}, "s");
  const GateId cheap = c.add_gate(GateType::kBuf, {s}, "cheap");
  const GateId costly = c.add_gate(GateType::kAnd, {s, b}, "costly");
  c.mark_output(cheap);
  c.mark_output(costly);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  EXPECT_EQ(m.observability[s], 1u);  // through the buffer
}

TEST(Scoap, UnobservableLogicGetsInfinity) {
  // A gate feeding only a constant-blocked cone keeps infinite CO... the
  // closest constructible case: a gate whose only path runs through an
  // AND with a constant-0 side input.
  Circuit c("blocked");
  const GateId a = c.add_input("a");
  const GateId zero = c.add_gate(GateType::kConst0, {}, "zero");
  const GateId mid = c.add_gate(GateType::kNot, {a}, "mid");
  const GateId y = c.add_gate(GateType::kAnd, {mid, zero}, "y");
  c.mark_output(y);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  // Observing `mid` requires zero == 1: impossible.
  EXPECT_EQ(m.observability[mid], kScoapInfinity);
}

TEST(Scoap, DetectionCostRanksRedundantFaultsLast) {
  Circuit c("red");
  const GateId a = c.add_input("a");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId y = c.add_gate(GateType::kOr, {a, one}, "y");
  c.mark_output(y);
  c.finalize();
  const TestabilityMeasures m = compute_scoap(c);
  // y stuck-at-1 is undetectable: activation needs y = 0, which needs the
  // constant at 0.
  EXPECT_GE(fault_detection_cost(c, m, fault::Fault{y, -1, true}),
            kScoapInfinity);
  // y stuck-at-0 is easy.
  EXPECT_LT(fault_detection_cost(c, m, fault::Fault{y, -1, false}), 10u);
}

TEST(Scoap, CostCorrelatesWithRandomPatternDetectability) {
  // Property: among faults detected by a random program, the late-detected
  // ones should have higher average SCOAP cost than the early ones.
  const Circuit c = circuit::make_alu(4);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityMeasures m = compute_scoap(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 512, 23);
  const fault::FaultSimResult r = simulate_ppsfp(faults, patterns);

  double early_cost = 0.0;
  std::size_t early_n = 0;
  double late_cost = 0.0;
  std::size_t late_n = 0;
  for (std::size_t cl = 0; cl < faults.class_count(); ++cl) {
    if (r.first_detection[cl] < 0) continue;
    const std::uint32_t cost =
        fault_detection_cost(c, m, faults.representatives()[cl]);
    if (cost >= kScoapInfinity) continue;
    if (r.first_detection[cl] < 8) {
      early_cost += cost;
      ++early_n;
    } else if (r.first_detection[cl] >= 64) {
      late_cost += cost;
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0u);
  ASSERT_GT(late_n, 0u);
  EXPECT_GT(late_cost / static_cast<double>(late_n),
            early_cost / static_cast<double>(early_n));
}

}  // namespace
}  // namespace lsiq::tpg
