// Unit tests for util/numeric: log-space helpers and compensated sums.
#include "util/numeric.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(LogGamma, MatchesFactorialsAtIntegers) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), ContractViolation);
  EXPECT_THROW(log_gamma(-1.0), ContractViolation);
}

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-12);
}

TEST(LogFactorial, LargeValuesViaLgamma) {
  // 100! via Stirling-grade lgamma; reference value of ln(100!).
  EXPECT_NEAR(log_factorial(100), 363.73937555556349, 1e-9);
}

TEST(LogFactorial, CacheBoundaryIsSeamless) {
  // Values straddling the 64-entry cache must agree with lgamma.
  for (std::int64_t n = 60; n <= 70; ++n) {
    EXPECT_NEAR(log_factorial(n), std::lgamma(static_cast<double>(n) + 1.0),
                1e-10)
        << "n = " << n;
  }
}

TEST(LogFactorial, RejectsNegative) {
  EXPECT_THROW(log_factorial(-1), ContractViolation);
}

TEST(LogBinomial, SmallCasesExact) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(6, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial(6, 6)), 1.0, 1e-12);
}

TEST(LogBinomial, SymmetryProperty) {
  for (std::int64_t n = 1; n <= 40; ++n) {
    for (std::int64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9);
    }
  }
}

TEST(LogBinomial, PascalIdentity) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k) in linear space.
  for (std::int64_t n = 2; n <= 30; ++n) {
    for (std::int64_t k = 1; k < n; ++k) {
      const double lhs = std::exp(log_binomial(n, k));
      const double rhs =
          std::exp(log_binomial(n - 1, k - 1)) +
          std::exp(log_binomial(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-6 * lhs);
    }
  }
}

TEST(LogBinomial, RejectsBadArguments) {
  EXPECT_THROW(log_binomial(5, 6), ContractViolation);
  EXPECT_THROW(log_binomial(5, -1), ContractViolation);
  EXPECT_THROW(log_binomial(-2, 0), ContractViolation);
}

TEST(LogSumExp, BasicIdentities) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  EXPECT_NEAR(log_sum_exp(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogSumExp, HandlesExtremeMagnitudeGap) {
  // exp(-1000) is invisible next to exp(0).
  EXPECT_NEAR(log_sum_exp(0.0, -1000.0), 0.0, 1e-12);
  EXPECT_NEAR(log_sum_exp(-1000.0, 0.0), 0.0, 1e-12);
}

TEST(LogSumExp, NegativeInfinityIsIdentity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_sum_exp(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_sum_exp(1.5, ninf), 1.5);
}

TEST(Log1mExp, MatchesNaiveInSafeRange) {
  for (double x = -10.0; x < -0.01; x += 0.1) {
    EXPECT_NEAR(log1m_exp(x), std::log(1.0 - std::exp(x)), 1e-12);
  }
}

TEST(Log1mExp, StableNearZero) {
  // 1 - e^-1e-12 ~ 1e-12; naive subtraction loses all digits.
  EXPECT_NEAR(log1m_exp(-1e-12), std::log(1e-12), 1e-3);
}

TEST(Log1mExp, RejectsNonNegative) {
  EXPECT_THROW(log1m_exp(0.0), ContractViolation);
  EXPECT_THROW(log1m_exp(0.5), ContractViolation);
}

TEST(Clamp01, ClampsBothSides) {
  EXPECT_DOUBLE_EQ(clamp01(-0.25), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(1.25), 1.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
}

TEST(AlmostEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
  EXPECT_TRUE(almost_equal(1e6, 1e6 * (1.0 + 1e-10)));
}

TEST(Linspace, EndpointsAndSpacing) {
  const std::vector<double> xs = linspace(0.0, 1.0, 11);
  ASSERT_EQ(xs.size(), 11u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i] - xs[i - 1], 0.1, 1e-12);
  }
}

TEST(Linspace, TwoPointsDegenerate) {
  const std::vector<double> xs = linspace(-3.0, 7.0, 2);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_DOUBLE_EQ(xs[0], -3.0);
  EXPECT_DOUBLE_EQ(xs[1], 7.0);
}

TEST(Linspace, RejectsTooFewPoints) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), ContractViolation);
}

TEST(Logspace, GeometricSpacing) {
  const std::vector<double> xs = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_NEAR(xs[0], 1.0, 1e-12);
  EXPECT_NEAR(xs[1], 10.0, 1e-9);
  EXPECT_NEAR(xs[2], 100.0, 1e-7);
  EXPECT_NEAR(xs[3], 1000.0, 1e-9);
}

TEST(Logspace, RejectsBadRange) {
  EXPECT_THROW(logspace(0.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(logspace(2.0, 1.0, 4), ContractViolation);
}

TEST(KahanSum, RecoversSmallTermsNextToLargeOnes) {
  // 1 + 1e-16 * 1e4 accumulated naively loses the tail entirely.
  KahanSum acc;
  acc.add(1.0);
  for (int i = 0; i < 10000; ++i) {
    acc.add(1e-16);
  }
  EXPECT_NEAR(acc.value(), 1.0 + 1e-12, 1e-16);
}

TEST(KahanSum, NeumaierHandlesLargeAfterSmall) {
  // Classic Kahan fails when the addend exceeds the running sum; the
  // Neumaier variant must not.
  KahanSum acc;
  acc.add(1.0);
  acc.add(1e100);
  acc.add(1.0);
  acc.add(-1e100);
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
}

TEST(KahanSum, ResetClears) {
  KahanSum acc;
  acc.add(42.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(KahanTotal, MatchesExactSumOnAlternatingSeries) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(i % 2 == 0 ? 0.1 : -0.1);
  }
  EXPECT_NEAR(kahan_total(xs), 0.0, 1e-15);
}

}  // namespace
}  // namespace lsiq::util
