// Cross-module integration properties: chains that no single-module test
// exercises end to end.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "core/detection.hpp"
#include "core/estimation.hpp"
#include "core/fault_distribution.hpp"
#include "core/reject_model.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "flow/flow.hpp"
#include "tpg/atpg.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/scoap.hpp"
#include "util/rng.hpp"
#include "wafer/wafer_map.hpp"

namespace lsiq {
namespace {

TEST(Integration, ExactEscapeYieldMatchesUrnMonteCarlo) {
  // Eq. 6 with the exact hypergeometric q0 against a direct simulation of
  // the urn experiment: N sites, m covered, chip fault counts from Eq. 1.
  const unsigned N = 200;
  const unsigned m = 120;
  const double f = static_cast<double>(m) / N;
  const double y = 0.3;
  const double n0 = 5.0;

  const quality::FaultDistribution dist(y, n0);
  util::Rng rng(11);
  std::size_t escapes = 0;
  const int chips = 400000;
  for (int i = 0; i < chips; ++i) {
    const unsigned n = std::min(dist.sample(rng), N);
    if (n == 0) continue;  // good chips are not escapes
    bool all_uncovered = true;
    for (const std::uint64_t site :
         rng.sample_without_replacement(N, n)) {
      if (site < m) {  // treat sites [0, m) as the covered ones
        all_uncovered = false;
        break;
      }
    }
    if (all_uncovered) ++escapes;
  }
  const double measured = static_cast<double>(escapes) / chips;
  const double exact = quality::escape_yield_exact(f, y, n0, N);
  EXPECT_NEAR(measured, exact, 4.0 * std::sqrt(exact / chips) + 1e-4);
}

TEST(Integration, AtpgProgramDrivesTheFullExperiment) {
  // ATPG builds the tester program; the experiment characterizes a lot
  // with it; the estimators recover the ground truth.
  const circuit::Circuit chip = circuit::make_array_multiplier(6);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);

  tpg::AtpgOptions options;
  options.random_patterns = 64;
  options.seed = 3;
  const tpg::AtpgResult atpg = generate_tests(faults, options);
  ASSERT_GE(atpg.coverage, 0.99);

  // Pad the deterministic program with extra random patterns so the
  // fallout curve has room after full coverage is reached.
  sim::PatternSet program = atpg.patterns;
  util::Rng rng(5);
  program.append_random(64, rng);

  flow::FlowSpec spec;
  spec.source.kind = "explicit";
  spec.source.patterns = std::move(program);
  spec.engine.kind = "ppsfp";
  spec.lot.chip_count = 20000;
  spec.lot.yield = 0.25;
  spec.lot.n0 = 5.0;
  spec.lot.seed = 21;
  spec.analysis.strobe_coverages = {0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9};
  const flow::FlowResult result = flow::run(faults, spec);

  const quality::FitResult fit =
      quality::estimate_n0_least_squares(result.points(), spec.lot.yield);
  EXPECT_NEAR(fit.n0, 5.0, 0.7);
}

TEST(Integration, ScoapGuidedAtpgClosesCarrySelectAdder) {
  // The carry-select adder's speculative blocks hang off constants, which
  // makes some faults redundant; the SCOAP-guided flow must close every
  // non-redundant fault without aborts.
  const circuit::Circuit chip = circuit::make_carry_select_adder(8, 4);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const tpg::TestabilityMeasures scoap = tpg::compute_scoap(chip);

  tpg::AtpgOptions options;
  options.random_patterns = 128;
  options.podem.scoap = &scoap;
  const tpg::AtpgResult result = generate_tests(faults, options);
  EXPECT_EQ(result.aborted_classes, 0u);
  EXPECT_DOUBLE_EQ(result.effective_coverage, 1.0);
  EXPECT_GT(result.redundant_classes, 0u)
      << "the constant-driven hypothesis adders should contain "
         "provably-redundant faults";
}

TEST(Integration, WaferLotRunsTheSection5Procedure) {
  // Wafer-map dies (spatial gradient) through the tester and estimators.
  const circuit::Circuit chip = circuit::make_array_multiplier(6);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const sim::PatternSet program =
      tpg::lfsr_patterns(chip.pattern_inputs().size(), 256, 31);
  const fault::FaultSimResult graded = simulate_ppsfp(faults, program);
  const fault::CoverageCurve curve = graded.curve(faults, program.size());

  wafer::WaferSpec spec;
  spec.wafer_diameter = 250.0;
  spec.center_defect_density = 0.02;
  spec.edge_density_multiplier = 3.0;
  spec.extra_faults_per_defect = 1.5;
  spec.seed = 9;
  const wafer::WaferMap map = wafer::WaferMap::generate(faults, spec);
  const wafer::ChipLot lot = map.to_lot();
  const wafer::LotTestResult tested =
      wafer::test_lot(lot, graded, program.size());

  std::vector<quality::CoveragePoint> points;
  for (const double target : {0.1, 0.2, 0.35, 0.5, 0.7, 0.9}) {
    ASSERT_TRUE(curve.reaches(target));
    const std::size_t t = curve.patterns_for_coverage(target);
    points.push_back(quality::CoveragePoint{
        curve.coverage_after(t), tested.fraction_failed_within(t)});
  }
  const quality::FitResult fit =
      quality::estimate_n0_least_squares(points, map.yield());
  // Clustered spatial lots bias the fit low, but it must stay in a sane
  // band around the realized value.
  EXPECT_GT(fit.n0, 1.0);
  EXPECT_LT(fit.n0, map.mean_faults_per_defective_die() + 1.0);
}

TEST(Integration, RandomWalkProgramRisesMoreSlowlyThanLfsr) {
  // The functional-style random walk covers faults more slowly per
  // pattern than LFSR noise — the property the Table 1 reproduction leans
  // on (alongside strobe schedules).
  const circuit::Circuit chip = circuit::make_alu(4);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const std::size_t count = 64;
  const fault::FaultSimResult walk = simulate_ppsfp(
      faults, tpg::random_walk_patterns(chip.pattern_inputs().size(), count,
                                        1, 7));
  const fault::FaultSimResult noise = simulate_ppsfp(
      faults, tpg::lfsr_patterns(chip.pattern_inputs().size(), count, 7));
  const fault::CoverageCurve walk_curve = walk.curve(faults, count);
  const fault::CoverageCurve noise_curve = noise.curve(faults, count);
  EXPECT_LT(walk_curve.coverage_after(16), noise_curve.coverage_after(16));
}

TEST(Integration, QkDistributionMatchesFaultSimulatorStatistics) {
  // Eq. 4's hypergeometric detection-count distribution against measured
  // per-chip detected-fault counts on a real circuit and program.
  const circuit::Circuit chip = circuit::make_ripple_carry_adder(6);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const sim::PatternSet program =
      tpg::lfsr_patterns(chip.pattern_inputs().size(), 48, 13);
  const fault::FaultSimResult graded = simulate_ppsfp(faults, program);

  // Covered-universe size m (weighted) and N.
  const auto N = static_cast<unsigned>(faults.fault_count());
  const auto m = static_cast<unsigned>(graded.covered_faults);

  // Chips with exactly n = 4 faults drawn uniformly from the universe:
  // the number of *covered* faults per chip is hypergeometric(k; n, m, N).
  util::Rng rng(17);
  const unsigned n = 4;
  std::vector<std::size_t> histogram(n + 1, 0);
  const int chips = 200000;
  // Precompute per-universe-fault coverage flags.
  std::vector<char> covered(faults.fault_count(), 0);
  for (std::size_t u = 0; u < faults.fault_count(); ++u) {
    covered[u] = graded.first_detection[faults.class_of(u)] >= 0 ? 1 : 0;
  }
  for (int i = 0; i < chips; ++i) {
    unsigned k = 0;
    for (const std::uint64_t site :
         rng.sample_without_replacement(faults.fault_count(), n)) {
      if (covered[static_cast<std::size_t>(site)] != 0) ++k;
    }
    ++histogram[k];
  }
  for (unsigned k = 0; k <= n; ++k) {
    const double expected = quality::qk_hypergeometric(k, n, m, N);
    const double measured =
        static_cast<double>(histogram[k]) / static_cast<double>(chips);
    EXPECT_NEAR(measured, expected,
                4.0 * std::sqrt(expected / chips) + 1e-3)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace lsiq
