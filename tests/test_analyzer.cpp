// Tests for the QualityAnalyzer facade.
#include "core/quality_analyzer.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coverage_requirement.hpp"
#include "core/reject_model.hpp"
#include "util/error.hpp"

namespace lsiq::quality {
namespace {

std::vector<CoveragePoint> table1_points() {
  return {{0.05, 0.41}, {0.08, 0.48}, {0.10, 0.52}, {0.15, 0.67},
          {0.20, 0.75}, {0.30, 0.82}, {0.36, 0.87}, {0.45, 0.91},
          {0.50, 0.92}, {0.65, 0.93}};
}

TEST(Analyzer, DirectParametersDelegateToModel) {
  const QualityAnalyzer analyzer(0.07, 8.0);
  EXPECT_DOUBLE_EQ(analyzer.yield(), 0.07);
  EXPECT_DOUBLE_EQ(analyzer.n0(), 8.0);
  EXPECT_EQ(analyzer.method(), CharacterizationMethod::kGiven);
  for (const double f : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(analyzer.reject_rate(f),
                     field_reject_rate(f, 0.07, 8.0));
    EXPECT_DOUBLE_EQ(analyzer.escape_yield_at(f),
                     escape_yield(f, 0.07, 8.0));
    EXPECT_DOUBLE_EQ(analyzer.tester_fallout(f),
                     reject_fraction(f, 0.07, 8.0));
  }
}

TEST(Analyzer, DppmIsRejectRateScaled) {
  const QualityAnalyzer analyzer(0.3, 5.0);
  EXPECT_DOUBLE_EQ(analyzer.dppm(0.8), analyzer.reject_rate(0.8) * 1e6);
}

TEST(Analyzer, RequiredCoverageMatchesSolver) {
  const QualityAnalyzer analyzer(0.07, 8.0);
  for (const double r : {0.01, 0.001}) {
    EXPECT_DOUBLE_EQ(analyzer.required_coverage(r),
                     required_fault_coverage(r, 0.07, 8.0));
    EXPECT_DOUBLE_EQ(analyzer.wadsack_coverage(r),
                     wadsack_required_coverage(r, 0.07));
    EXPECT_DOUBLE_EQ(analyzer.williams_brown_coverage(r),
                     williams_brown_required_coverage(r, 0.07));
  }
}

TEST(Analyzer, FromLotDataSlope) {
  const QualityAnalyzer analyzer = QualityAnalyzer::from_lot_data(
      table1_points(), 0.07, CharacterizationMethod::kSlope);
  EXPECT_EQ(analyzer.method(), CharacterizationMethod::kSlope);
  EXPECT_GT(analyzer.n0(), 5.0);
  EXPECT_LT(analyzer.n0(), 12.0);
}

TEST(Analyzer, FromLotDataDiscreteFitMatchesPaper) {
  const QualityAnalyzer analyzer = QualityAnalyzer::from_lot_data(
      table1_points(), 0.07, CharacterizationMethod::kDiscreteFit);
  // The paper eyeballed 8; the numeric SSE fit gives 9 (see EXPERIMENTS.md).
  EXPECT_GE(analyzer.n0(), 8.0);
  EXPECT_LE(analyzer.n0(), 9.0);
}

TEST(Analyzer, FromLotDataLeastSquares) {
  const QualityAnalyzer analyzer = QualityAnalyzer::from_lot_data(
      table1_points(), 0.07, CharacterizationMethod::kLeastSquares);
  EXPECT_NEAR(analyzer.n0(), 8.0, 1.0);
}

TEST(Analyzer, FromLotDataRejectsGivenMethod) {
  EXPECT_THROW(QualityAnalyzer::from_lot_data(
                   table1_points(), 0.07, CharacterizationMethod::kGiven),
               Error);
}

TEST(Analyzer, UnknownYieldJointFit) {
  const QualityAnalyzer analyzer =
      QualityAnalyzer::from_lot_data_unknown_yield(table1_points());
  EXPECT_NEAR(analyzer.yield(), 0.07, 0.03);
  EXPECT_NEAR(analyzer.n0(), 8.0, 2.0);
}

TEST(Analyzer, ReportMentionsAllThreeModels) {
  const QualityAnalyzer analyzer(0.07, 8.0);
  const std::string report = analyzer.report();
  EXPECT_NE(report.find("Wadsack"), std::string::npos);
  EXPECT_NE(report.find("Williams-Brown"), std::string::npos);
  EXPECT_NE(report.find("n0"), std::string::npos);
  EXPECT_NE(report.find("0.0700"), std::string::npos);
}

TEST(Analyzer, ReportUsesRequestedTargets) {
  const QualityAnalyzer analyzer(0.2, 4.0);
  const std::string report = analyzer.report({0.02});
  EXPECT_NE(report.find("0.02000"), std::string::npos);
}

TEST(Analyzer, DomainChecks) {
  EXPECT_THROW(QualityAnalyzer(0.0, 8.0), ContractViolation);
  EXPECT_THROW(QualityAnalyzer(1.0, 8.0), ContractViolation);
  EXPECT_THROW(QualityAnalyzer(0.5, 0.9), ContractViolation);
}

TEST(MethodName, AllEnumeratorsNamed) {
  EXPECT_EQ(method_name(CharacterizationMethod::kGiven), "given parameters");
  EXPECT_EQ(method_name(CharacterizationMethod::kSlope),
            "initial-slope estimate");
  EXPECT_EQ(method_name(CharacterizationMethod::kDiscreteFit),
            "discrete curve fit");
  EXPECT_EQ(method_name(CharacterizationMethod::kLeastSquares),
            "least-squares fit");
}

}  // namespace
}  // namespace lsiq::quality
