// Shard-fold property tests: the balanced split, the pure-scatter fold,
// and the headline guarantee — simulate_sharded's first_detection is
// byte-identical to simulate_ppsfp for every shard count, width, fault
// model, and a pattern program ending in a partial 64-pattern block.
#include "fault/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault_model/universe.hpp"
#include "sim/pattern.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using fault_model::FaultModel;
using sim::PatternSet;

// ---- ShardPlan ----

TEST(ShardPlan, SplitIsBalancedContiguousAndCovering) {
  for (const std::size_t classes : {std::size_t{1}, std::size_t{22},
                                    std::size_t{97}, std::size_t{100}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{7}, std::size_t{16}}) {
      const ShardPlan plan = ShardPlan::split(classes, shards);
      ASSERT_EQ(plan.shard_count(), shards);
      EXPECT_EQ(plan.class_count(), classes);
      std::size_t covered = 0;
      std::size_t min_size = classes;
      std::size_t max_size = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const ShardRange& range = plan.shard(s);
        EXPECT_EQ(range.begin, covered) << "shards must be contiguous";
        EXPECT_LE(range.begin, range.end);
        covered = range.end;
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
      }
      EXPECT_EQ(covered, classes) << "shards must cover every class";
      EXPECT_LE(max_size - min_size, 1u) << "sizes differ by at most one";
    }
  }
}

TEST(ShardPlan, MoreShardsThanClassesLeavesSurplusShardsEmpty) {
  const ShardPlan plan = ShardPlan::split(3, 7);
  ASSERT_EQ(plan.shard_count(), 7u);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(plan.shard(s).size(), 1u);
  for (std::size_t s = 3; s < 7; ++s) EXPECT_EQ(plan.shard(s).size(), 0u);
}

TEST(ShardPlan, ZeroShardsIsAContractViolation) {
  EXPECT_THROW((void)ShardPlan::split(10, 0), ContractViolation);
}

TEST(ShardPlan, FoldScattersEachShardsRange) {
  const ShardPlan plan = ShardPlan::split(5, 2);  // [0,3) and [3,5)
  std::vector<std::vector<std::int64_t>> per_shard(2);
  // Entries outside a shard's own range must be ignored by the fold.
  per_shard[0] = {10, 11, 12, -7, -7};
  per_shard[1] = {-7, -7, -7, 13, -1};
  const std::vector<std::int64_t> folded = fold_shards(plan, per_shard);
  EXPECT_EQ(folded, (std::vector<std::int64_t>{10, 11, 12, 13, -1}));

  EXPECT_THROW((void)fold_shards(plan, {per_shard[0]}), ContractViolation);
  per_shard[1].pop_back();
  EXPECT_THROW((void)fold_shards(plan, per_shard), ContractViolation);
}

// ---- the fold guarantee on real universes ----

/// mult16 with a program whose final block is partial (300 = 4 full
/// 64-pattern blocks + 44 lanes), so the fold must preserve the
/// partial-block mask semantics too.
class ShardFold : public ::testing::Test {
 protected:
  ShardFold() : circuit_(circuit::make_array_multiplier(16)) {}

  void expect_fold_identical(FaultModel model) {
    const FaultList faults = fault_model::universe(circuit_, model);
    const PatternSet patterns =
        tpg::lfsr_patterns(circuit_.pattern_inputs().size(), 300, 1981);
    const FaultSimResult unsharded = simulate_ppsfp(faults, patterns);

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{7}}) {
      for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
        ShardedOptions options;
        options.shards = shards;
        options.width = width;
        const FaultSimResult sharded =
            simulate_sharded(faults, patterns, nullptr, options);
        // Byte-identical, not merely equal coverage: the whole
        // first_detection vector is the contract.
        EXPECT_EQ(unsharded.first_detection, sharded.first_detection)
            << shards << " shards, width " << width;
        EXPECT_EQ(unsharded.covered_faults, sharded.covered_faults);
        EXPECT_EQ(unsharded.detected_classes, sharded.detected_classes);
        EXPECT_DOUBLE_EQ(unsharded.coverage, sharded.coverage);
      }
    }
  }

  Circuit circuit_;
};

TEST_F(ShardFold, StuckAtUniverseFoldsByteIdentical) {
  expect_fold_identical(FaultModel::kStuckAt);
}

TEST_F(ShardFold, TransitionUniverseFoldsByteIdentical) {
  expect_fold_identical(FaultModel::kTransition);
}

TEST_F(ShardFold, BoundaryInsideACollapsedClassFaultRangeIsSafe) {
  // A collapsed class owns a contiguous run of member faults; a shard
  // boundary at an arbitrary class index lands between two classes whose
  // fault ranges abut, so one class's members are never divided. Force
  // boundaries at every "awkward" position by grading with shard counts
  // that do not divide the class count, including class_count - 1 (one
  // shard of 2 classes, the rest singletons).
  const FaultList faults =
      fault_model::universe(circuit_, FaultModel::kStuckAt);
  const PatternSet patterns =
      tpg::lfsr_patterns(circuit_.pattern_inputs().size(), 100, 7);
  const FaultSimResult unsharded = simulate_ppsfp(faults, patterns);
  const std::size_t classes = faults.class_count();
  ASSERT_GT(classes, 2u);
  for (const std::size_t shards : {classes - 1, classes, classes + 5}) {
    ShardedOptions options;
    options.shards = shards;
    const FaultSimResult sharded =
        simulate_sharded(faults, patterns, nullptr, options);
    EXPECT_EQ(unsharded.first_detection, sharded.first_detection)
        << shards << " shards over " << classes << " classes";
  }
}

TEST_F(ShardFold, MultiThreadedShardsFoldByteIdentical) {
  const FaultList faults =
      fault_model::universe(circuit_, FaultModel::kStuckAt);
  const PatternSet patterns =
      tpg::lfsr_patterns(circuit_.pattern_inputs().size(), 300, 3);
  const FaultSimResult unsharded = simulate_ppsfp(faults, patterns);
  ShardedOptions options;
  options.shards = 3;
  options.width = 4;
  options.num_threads = 4;  // MT engine inside each shard
  const FaultSimResult sharded =
      simulate_sharded(faults, patterns, nullptr, options);
  EXPECT_EQ(unsharded.first_detection, sharded.first_detection);
}

TEST(ShardSim, RejectsUnsupportedWidth) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = fault_model::universe(c, FaultModel::kStuckAt);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 64, 1);
  ShardedOptions options;
  options.width = 3;
  EXPECT_THROW((void)simulate_sharded(faults, patterns, nullptr, options),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::fault
