// Tests for the persistent worker pool, with emphasis on the exception
// contract: a throw inside a pool task must surface in the caller as a
// normal exception (first-exception capture + rethrow), never reach
// std::terminate, and never poison later jobs on the same pool.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(ResolveWorkerCount, ExplicitCountsPassThrough) {
  EXPECT_EQ(resolve_worker_count(1), 1u);
  EXPECT_EQ(resolve_worker_count(2), 2u);
  EXPECT_EQ(resolve_worker_count(17), 17u);
}

TEST(ResolveWorkerCount, ZeroMeansOnePerHardwareThread) {
  const std::size_t resolved = resolve_worker_count(0);
  EXPECT_GE(resolved, 1u);  // never zero, even if hw concurrency is unknown
  // The pool follows the same convention — its lane count IS the resolved
  // count, by construction.
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), resolved);
}

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(pool.size());
  pool.run([&](std::size_t lane) { ++hits[lane]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run([](std::size_t lane) {
                 if (lane == 1) throw std::runtime_error("lane 1 failed");
               }),
               std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsWhenEveryLaneThrows) {
  ThreadPool pool(4);
  try {
    pool.run([](std::size_t lane) {
      throw std::runtime_error("lane " + std::to_string(lane));
    });
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error& e) {
    // Exactly one of the lane messages, intact — not a mangled mixture.
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("lane ", 0), 0u) << what;
  }
}

TEST(ThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  // The failed job must not leak its exception into the next one.
  std::atomic<int> ran{0};
  EXPECT_NO_THROW(pool.run([&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 2);
  // And a second failure is reported afresh.
  EXPECT_THROW(
      pool.run([](std::size_t) { throw std::logic_error("again"); }),
      std::logic_error);
}

TEST(ThreadPool, NonThrowingLanesCompleteWhenOneThrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(pool.size());
  EXPECT_THROW(pool.run([&](std::size_t lane) {
                 ++hits[lane];
                 if (lane == 0) throw std::runtime_error("lane 0");
               }),
               std::runtime_error);
  // run() waits for every lane before rethrowing, so all lanes ran.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ThrowFromGradingLanePropagates) {
  // The PPSFP-MT shape: each lane owns a Propagator and grades faults.
  // Calling detect_word without begin_block violates the propagator's
  // contract; the resulting ContractViolation must travel from the worker
  // thread to the caller instead of terminating the process.
  const circuit::Circuit c = circuit::make_c17();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  auto compiled = std::make_shared<const circuit::CompiledCircuit>(c);

  ThreadPool pool(2);
  std::vector<fault::Propagator> propagators;
  propagators.reserve(pool.size());
  for (std::size_t t = 0; t < pool.size(); ++t) {
    propagators.emplace_back(compiled);
  }
  const std::vector<std::uint64_t> good(compiled->node_count(), 0);
  EXPECT_THROW(pool.run([&](std::size_t lane) {
                 // Deliberately skip begin_block: stale-sync contract.
                 (void)propagators[lane].detect_word(
                     faults.representatives().front(), good);
               }),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::util
