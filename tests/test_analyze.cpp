// Table-driven tests for the static netlist analyzer: every lint rule has
// a minimal netlist that triggers it (asserting the exact rule id, object
// and message of the diagnostic) and a near-miss that must stay clean of
// that rule — the analyze-layer counterpart of test_flow_validate.cpp.
#include "analyze/analyze.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analyze/rule.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"

namespace lsiq::analyze {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

/// Options with every class enabled so a table case sees its rule fire
/// regardless of which class it belongs to.
Options all_on() {
  Options options;
  options.structure = Policy::kError;
  options.dead_logic = Policy::kWarn;
  options.untestable = Policy::kWarn;
  return options;
}

bool has_diagnostic(const Report& report, Rule rule,
                    const std::string& object, const std::string& message) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule && d.object == object && d.message == message) {
      return true;
    }
  }
  return false;
}

bool has_rule(const Report& report, Rule rule) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) return true;
  }
  return false;
}

struct Case {
  const char* name;
  Rule rule;
  std::function<Circuit()> trigger;    ///< must fire `rule` with the
  const char* object;                  ///<   exact object and
  const char* message;                 ///<   exact message below
  std::function<Circuit()> near_miss;  ///< must stay clean of `rule`
};

const Case kCases[] = {
    {"combinational cycle",
     Rule::kCycle,
     [] {
       // x and y feed each other: only expressible through the set_fanin
       // rewiring seam, which is the point — add_gate alone cannot build
       // the damage this rule reports.
       Circuit c("cyclic");
       const GateId a = c.add_input("a");
       const GateId x = c.add_gate(GateType::kAnd, {a, a}, "x");
       const GateId y = c.add_gate(GateType::kAnd, {x, a}, "y");
       c.set_fanin(x, {y, a});
       c.mark_output(y);
       return c;
     },
     "y",
     "combinational cycle: y -> x -> y",
     [] {
       // The same feedback shape broken by a scan flip-flop is legal.
       Circuit c("dff_loop");
       const GateId a = c.add_input("a");
       const GateId d = c.add_dff("d");
       const GateId x = c.add_gate(GateType::kAnd, {a, d}, "x");
       c.connect_dff(d, x);
       c.mark_output(x);
       return c;
     }},
    {"floating gate",
     Rule::kFloatingGate,
     [] {
       Circuit c("floating");
       const GateId a = c.add_input("a");
       const GateId x = c.add_gate(GateType::kAnd, {a, a}, "x");
       c.set_fanin(x, {});
       c.mark_output(x);
       return c;
     },
     "x",
     "AND gate has no fanin (undriven net)",
     [] {
       // A constant source legitimately has no fanin.
       Circuit c("tied");
       const GateId a = c.add_input("a");
       const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
       const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
       c.mark_output(x);
       return c;
     }},
    {"unconnected flip-flop",
     Rule::kUnconnectedDff,
     [] {
       Circuit c("open_dff");
       const GateId a = c.add_input("a");
       const GateId d = c.add_dff("d");
       const GateId x = c.add_gate(GateType::kAnd, {a, d}, "x");
       c.mark_output(x);
       return c;
     },
     "d",
     "flip-flop D input was never connected (connect_dff)",
     [] {
       Circuit c("closed_dff");
       const GateId a = c.add_input("a");
       const GateId d = c.add_dff("d");
       const GateId x = c.add_gate(GateType::kAnd, {a, d}, "x");
       c.connect_dff(d, x);
       c.mark_output(x);
       return c;
     }},
    {"nothing observable",
     Rule::kNoObservedOutput,
     [] {
       Circuit c("blind");
       const GateId a = c.add_input("a");
       c.add_gate(GateType::kNot, {a}, "x");
       return c;  // no output, no flip-flop
     },
     "blind",
     "circuit has no primary output and no flip-flop D input: nothing is "
     "observable",
     [] {
       // No primary output, but a connected flip-flop's D input observes.
       Circuit c("dff_observed");
       const GateId a = c.add_input("a");
       const GateId d = c.add_dff("d");
       const GateId x = c.add_gate(GateType::kNot, {a}, "x");
       c.connect_dff(d, x);
       return c;
     }},
    {"nothing controllable",
     Rule::kNoPatternInput,
     [] {
       Circuit c("inert");
       const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
       const GateId x = c.add_gate(GateType::kNot, {t}, "x");
       c.mark_output(x);
       return c;  // no input, no flip-flop
     },
     "inert",
     "circuit has no primary input and no flip-flop: nothing is "
     "controllable",
     [] {
       Circuit c("driven");
       const GateId a = c.add_input("a");
       const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
       const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
       c.mark_output(x);
       return c;
     }},
    {"dangling gate",
     Rule::kDanglingGate,
     [] {
       Circuit c("dangling");
       const GateId a = c.add_input("a");
       c.add_gate(GateType::kNot, {a}, "x");
       const GateId y = c.add_gate(GateType::kBuf, {a}, "y");
       c.mark_output(y);
       return c;
     },
     "x",
     "gate output drives nothing and is not observed",
     [] {
       Circuit c("used");
       const GateId a = c.add_input("a");
       const GateId x = c.add_gate(GateType::kNot, {a}, "x");
       c.mark_output(x);
       const GateId y = c.add_gate(GateType::kBuf, {a}, "y");
       c.mark_output(y);
       return c;
     }},
    {"unused input",
     Rule::kUnusedInput,
     [] {
       Circuit c("spare_pin");
       const GateId a = c.add_input("a");
       c.add_input("b");
       const GateId x = c.add_gate(GateType::kBuf, {a}, "x");
       c.mark_output(x);
       return c;
     },
     "b",
     "primary input drives nothing",
     [] {
       Circuit c("both_used");
       const GateId a = c.add_input("a");
       const GateId b = c.add_input("b");
       const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
       c.mark_output(x);
       return c;
     }},
    {"unobservable gate",
     Rule::kUnobservableGate,
     [] {
       // x's only route runs through an AND whose other pin is tied to the
       // controlling value: the cone is dead even though nothing dangles.
       Circuit c("masked");
       const GateId a = c.add_input("a");
       const GateId b = c.add_input("b");
       const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
       const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
       const GateId y = c.add_gate(GateType::kAnd, {x, t}, "y");
       c.mark_output(y);
       return c;
     },
     "x",
     "no path to an observed point (every route is dead or blocked by "
     "constants)",
     [] {
       // Tie the side pin to the NON-controlling value and the route is
       // alive.
       Circuit c("passing");
       const GateId a = c.add_input("a");
       const GateId b = c.add_input("b");
       const GateId t = c.add_gate(GateType::kConst1, {}, "tie1");
       const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
       const GateId y = c.add_gate(GateType::kAnd, {x, t}, "y");
       c.mark_output(y);
       return c;
     }},
    {"constant line",
     Rule::kConstantLine,
     [] {
       Circuit c("tied_or");
       const GateId a = c.add_input("a");
       const GateId t = c.add_gate(GateType::kConst1, {}, "tie1");
       const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
       c.mark_output(x);
       return c;
     },
     "x",
     "line is constant 1 under every input (tied constants reach it)",
     [] {
       // AND with a tied 1 still depends on `a`: no constant line.
       Circuit c("tied_and");
       const GateId a = c.add_input("a");
       const GateId t = c.add_gate(GateType::kConst1, {}, "tie1");
       const GateId x = c.add_gate(GateType::kAnd, {a, t}, "x");
       c.mark_output(x);
       return c;
     }},
    {"untestable fault (activation)",
     Rule::kUntestableFault,
     [] {
       Circuit c("tied_site");
       const GateId a = c.add_input("a");
       const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
       const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
       c.mark_output(x);
       return c;
     },
     "tie0/out s-a-0",
     "statically untestable: the line already holds the stuck value on "
     "every pattern",
     [] {
       Circuit c("free");
       const GateId a = c.add_input("a");
       const GateId b = c.add_input("b");
       const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
       c.mark_output(x);
       return c;
     }},
};

TEST(Analyze, TableOfRules) {
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    const Report triggered = analyze(c.trigger(), all_on());
    EXPECT_TRUE(has_diagnostic(triggered, c.rule, c.object, c.message))
        << "expected " << rule_name(c.rule) << " on '" << c.object
        << "'; got " << triggered.diagnostics.size()
        << " diagnostic(s), first: "
        << (triggered.diagnostics.empty()
                ? "(none)"
                : triggered.diagnostics[0].text());
    const Report clean = analyze(c.near_miss(), all_on());
    EXPECT_FALSE(has_rule(clean, c.rule))
        << "near-miss fired " << rule_name(c.rule);
  }
}

TEST(Analyze, BranchFaultBehindBlockedPinIsUntestable) {
  // x/in0 (the a-branch) cannot propagate through an AND whose other pin
  // is tied to 0 — the distinct driving-line / branch messages.
  Circuit c("blocked_branch");
  const GateId a = c.add_input("a");
  const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
  const GateId x = c.add_gate(GateType::kAnd, {a, t}, "x");
  c.mark_output(x);
  const Report report = analyze(c, all_on());
  EXPECT_TRUE(has_diagnostic(
      report, Rule::kUntestableFault, "x/in1 s-a-0",
      "statically untestable: the driving line already holds the stuck "
      "value on every pattern"));
  EXPECT_TRUE(has_diagnostic(
      report, Rule::kUntestableFault, "x/in0 s-a-0",
      "statically untestable: the fault effect cannot reach an observed "
      "point"));
  EXPECT_TRUE(has_diagnostic(
      report, Rule::kUntestableFault, "x/in0 s-a-1",
      "statically untestable: the fault effect cannot reach an observed "
      "point"));
}

TEST(Analyze, StructureFailureStopsValueAnalysis) {
  Circuit c("open_dff");
  const GateId a = c.add_input("a");
  c.add_dff("d");
  const GateId x = c.add_gate(GateType::kNot, {a}, "x");
  c.mark_output(x);
  const Report report = analyze(c, all_on());
  EXPECT_FALSE(report.structure_ok);
  EXPECT_TRUE(report.has_error_diagnostics());
  EXPECT_TRUE(report.constant.empty());
  EXPECT_TRUE(report.observable.empty());
  EXPECT_TRUE(report.untestable_sites.empty());
  EXPECT_EQ(report.ffr.regions, 0u);
}

TEST(Analyze, SeverityFollowsClassPolicy) {
  Circuit c("spare_pin");
  const GateId a = c.add_input("a");
  c.add_input("b");
  const GateId x = c.add_gate(GateType::kBuf, {a}, "x");
  c.mark_output(x);

  Options options = all_on();
  options.dead_logic = Policy::kError;
  const Report as_error = analyze(c, options);
  EXPECT_TRUE(as_error.has_error_diagnostics());

  options.dead_logic = Policy::kOff;
  const Report off = analyze(c, options);
  EXPECT_FALSE(has_rule(off, Rule::kUnusedInput));
  // The analysis itself still ran: the vectors are filled either way.
  EXPECT_EQ(off.observable.size(), c.gate_count());
}

TEST(Analyze, PerRuleCapEmitsSummary) {
  // 5 unused inputs with max_per_rule = 2: two findings plus one summary.
  Circuit c("many_spares");
  const GateId a = c.add_input("a");
  for (int i = 0; i < 5; ++i) {
    c.add_input("spare" + std::to_string(i));
  }
  const GateId x = c.add_gate(GateType::kBuf, {a}, "x");
  c.mark_output(x);

  Options options = all_on();
  options.max_per_rule = 2;
  const Report report = analyze(c, options);
  std::size_t findings = 0;
  bool summary = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule != Rule::kUnusedInput) continue;
    if (d.object.empty()) {
      summary = true;
      EXPECT_EQ(d.message,
                "3 more unused_input findings suppressed (5 total)");
    } else {
      ++findings;
    }
  }
  EXPECT_EQ(findings, 2u);
  EXPECT_TRUE(summary);
}

TEST(Analyze, DiagnosticJsonlAndTextForms) {
  Circuit c("tied_or");
  const GateId a = c.add_input("a");
  const GateId t = c.add_gate(GateType::kConst1, {}, "tie1");
  const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
  c.mark_output(x);
  const Report report = analyze(c, all_on());
  ASSERT_TRUE(has_rule(report, Rule::kConstantLine));
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule != Rule::kConstantLine) continue;
    EXPECT_EQ(d.to_jsonl(),
              "{\"rule\":\"constant_line\",\"class\":\"untestable\","
              "\"severity\":\"warning\",\"object\":\"x\",\"message\":"
              "\"line is constant 1 under every input (tied constants "
              "reach it)\"}");
    EXPECT_EQ(d.text(),
              "warning[constant_line] x: line is constant 1 under every "
              "input (tied constants reach it)");
    break;
  }
}

TEST(Analyze, ConstantPropagationThroughGates) {
  // not(1) = 0, xor(a, a-unknowns stay unknown), nand(0, a) = 1.
  Circuit c("lattice");
  const GateId a = c.add_input("a");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId inv = c.add_gate(GateType::kNot, {one}, "inv");       // 0
  const GateId nnd = c.add_gate(GateType::kNand, {inv, a}, "nnd");   // 1
  const GateId xo = c.add_gate(GateType::kXor, {one, inv}, "xo");    // 1
  const GateId free_xo = c.add_gate(GateType::kXor, {a, one}, "fx"); // ?
  c.mark_output(nnd);
  c.mark_output(xo);
  c.mark_output(free_xo);
  const Report report = analyze(c, all_on());
  ASSERT_EQ(report.constant.size(), c.gate_count());
  EXPECT_EQ(report.constant[inv], LineValue::kZero);
  EXPECT_EQ(report.constant[nnd], LineValue::kOne);
  EXPECT_EQ(report.constant[xo], LineValue::kOne);
  EXPECT_EQ(report.constant[free_xo], LineValue::kUnknown);
  EXPECT_EQ(report.constant[a], LineValue::kUnknown);
}

TEST(Analyze, HealthyGeneratorCircuitsLintClean) {
  const Circuit circuits[] = {circuit::make_c17(),
                              circuit::make_array_multiplier(4),
                              circuit::make_scan_accumulator(4)};
  for (const Circuit& c : circuits) {
    SCOPED_TRACE(c.name());
    const Report report = analyze(c, all_on());
    EXPECT_TRUE(report.structure_ok);
    EXPECT_TRUE(report.diagnostics.empty())
        << "first: " << report.diagnostics[0].text();
    EXPECT_TRUE(report.untestable_sites.empty());
    EXPECT_GT(report.ffr.regions, 0u);
    EXPECT_GE(report.ffr.largest, 1u);
    EXPECT_GE(report.ffr.average, 1.0);
  }
}

TEST(Analyze, ReportIsDeterministic) {
  const Circuit c1 = circuit::make_array_multiplier(4);
  const Report r1 = analyze(c1, all_on());
  const Report r2 = analyze(c1, all_on());
  EXPECT_EQ(r1.diagnostics.size(), r2.diagnostics.size());
  ASSERT_EQ(r1.untestable_sites.size(), r2.untestable_sites.size());
  EXPECT_EQ(r1.ffr.regions, r2.ffr.regions);
  for (std::size_t i = 0; i < r1.constant.size(); ++i) {
    EXPECT_EQ(r1.constant[i], r2.constant[i]);
  }
}

TEST(Analyze, UntestableSitesFollowFaultListOrder) {
  // Stems before pins, per gate, both polarities: the order contract the
  // cross-check against collapsed universes relies on.
  Circuit c("tied_site");
  const GateId a = c.add_input("a");
  const GateId t = c.add_gate(GateType::kConst0, {}, "tie0");
  const GateId x = c.add_gate(GateType::kOr, {a, t}, "x");
  c.mark_output(x);
  const Report report = analyze(c, all_on());
  ASSERT_EQ(report.untestable_sites.size(), 2u);
  // tie0 stem s-a-0, then x/in1 s-a-0 (gate order, stem before pin).
  EXPECT_EQ(report.untestable_sites[0].gate, t);
  EXPECT_EQ(report.untestable_sites[0].pin, -1);
  EXPECT_FALSE(report.untestable_sites[0].stuck_at_one);
  EXPECT_EQ(report.untestable_sites[1].gate, x);
  EXPECT_EQ(report.untestable_sites[1].pin, 1);
  EXPECT_FALSE(report.untestable_sites[1].stuck_at_one);
}

}  // namespace
}  // namespace lsiq::analyze
