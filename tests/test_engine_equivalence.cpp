// Randomized cross-engine equivalence harness.
//
// The engine matrix — serial / PPSFP / multi-threaded PPSFP crossed with
// stuck-at / transition — promises one contract: bit-identical detection
// for any engine and any thread count. The unit suites pin that on
// hand-picked golden circuits; this harness hammers it with random
// combinational netlists and random pattern programs, so a divergence in
// any kernel (event wave vs suffix resimulation vs full serial
// resimulation, launch-window carry at block boundaries, strided
// multi-thread partitioning) surfaces as a first_detection mismatch long
// before it could corrupt a quality figure. The serial engine is the
// oracle: its transition launch word is derived independently of
// fault_model::TwoPatternWindow.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/shard.hpp"
#include "fault/strobe.hpp"
#include "fault_model/universe.hpp"
#include "sim/pattern.hpp"
#include "tpg/atpg.hpp"
#include "util/rng.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using fault_model::FaultModel;
using sim::PatternSet;

/// One randomized scenario: a circuit recipe plus a pattern-program
/// length chosen to cross the 64-pattern block boundary in most cases
/// (the launch-window carry and partial-block masks are where
/// engine-specific bookkeeping lives).
struct Scenario {
  const char* name;
  int inputs;
  int gates;
  int max_fanin;
  double inverter_fraction;
  std::uint64_t seed;
  std::size_t pattern_count;
};

const Scenario kScenarios[] = {
    {"small-dense", 8, 60, 4, 0.15, 101, 48},
    {"one-block-exact", 10, 90, 3, 0.10, 202, 64},
    {"boundary-plus-one", 10, 90, 3, 0.10, 303, 65},
    {"two-blocks", 12, 140, 4, 0.20, 404, 128},
    {"partial-tail", 12, 140, 5, 0.25, 505, 100},
    {"wide-shallow", 24, 120, 2, 0.05, 606, 96},
    {"inverter-heavy", 9, 110, 4, 0.45, 707, 80},
    {"three-blocks", 16, 200, 4, 0.15, 808, 192},
};

PatternSet random_program(std::size_t input_count, std::size_t count,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  PatternSet patterns(input_count);
  patterns.append_random(count, rng);
  return patterns;
}

/// Run every engine over one (universe, program) pair and require
/// bit-identical results. `threads` deliberately includes a worker count
/// far above the live-fault count so idle lanes are exercised too.
void expect_engines_agree(const FaultList& faults, const PatternSet& patterns,
                          const StrobeSchedule* schedule = nullptr) {
  const FaultSimResult serial = simulate_serial(faults, patterns, schedule);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns, schedule);
  EXPECT_EQ(serial.first_detection, ppsfp.first_detection)
      << "ppsfp diverges from the serial oracle";
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{13}}) {
    const FaultSimResult mt =
        simulate_ppsfp_mt(faults, patterns, schedule, threads);
    EXPECT_EQ(serial.first_detection, mt.first_detection)
        << "ppsfp_mt with " << threads << " threads diverges";
    EXPECT_EQ(serial.covered_faults, mt.covered_faults);
    EXPECT_EQ(serial.detected_classes, mt.detected_classes);
  }
  // The wide kernel grades width x 64 patterns per pass; widths 4 and 8
  // must land bit-identically on the same oracle, single- and
  // multi-threaded.
  for (const std::size_t width : {std::size_t{4}, std::size_t{8}}) {
    const FaultSimResult wide =
        simulate_ppsfp(faults, patterns, schedule, nullptr, width);
    EXPECT_EQ(serial.first_detection, wide.first_detection)
        << "wide kernel (width " << width << ") diverges";
    const FaultSimResult wide_mt =
        simulate_ppsfp_mt(faults, patterns, schedule, 4, nullptr, width);
    EXPECT_EQ(serial.first_detection, wide_mt.first_detection)
        << "wide MT kernel (width " << width << ") diverges";
  }
  // The sharded engine must fold per-shard vectors back to the identical
  // result for any shard count (7 leaves some shards nearly empty on the
  // smaller universes). Shard count 2 also crosses in a wide width so the
  // shard x width product is covered.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{7}}) {
    ShardedOptions options;
    options.shards = shards;
    options.width = shards == 2 ? 4 : 1;
    const FaultSimResult sharded =
        simulate_sharded(faults, patterns, schedule, options);
    EXPECT_EQ(serial.first_detection, sharded.first_detection)
        << "sharded engine with " << shards << " shards diverges";
    EXPECT_EQ(serial.covered_faults, sharded.covered_faults);
    EXPECT_EQ(serial.detected_classes, sharded.detected_classes);
  }
}

class EngineEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(EngineEquivalence, RandomDagBothModelsAllEngines) {
  const Scenario& s = GetParam();
  circuit::RandomDagSpec dag;
  dag.inputs = s.inputs;
  dag.gates = s.gates;
  dag.max_fanin = s.max_fanin;
  dag.inverter_fraction = s.inverter_fraction;
  dag.seed = s.seed;
  const Circuit c = circuit::make_random_dag(dag);
  const PatternSet patterns = random_program(
      c.pattern_inputs().size(), s.pattern_count, s.seed * 7919);

  for (const FaultModel model : {FaultModel::kStuckAt,
                                 FaultModel::kTransition}) {
    SCOPED_TRACE(model == FaultModel::kStuckAt ? "stuck_at" : "transition");
    const FaultList faults = fault_model::universe(c, model);
    expect_engines_agree(faults, patterns);
  }
}

TEST_P(EngineEquivalence, RandomDagUnderProgressiveStrobes) {
  // Strobe masking intersects the detect words per block; the lane masks
  // must land identically in every engine (including launch-gated
  // transition detection, where the strobe mask applies to the capture).
  const Scenario& s = GetParam();
  circuit::RandomDagSpec dag;
  dag.inputs = s.inputs;
  dag.gates = s.gates;
  dag.max_fanin = s.max_fanin;
  dag.inverter_fraction = s.inverter_fraction;
  dag.seed = s.seed ^ 0xabcdULL;
  const Circuit c = circuit::make_random_dag(dag);
  const PatternSet patterns = random_program(
      c.pattern_inputs().size(), s.pattern_count, s.seed * 104729);
  const StrobeSchedule schedule = StrobeSchedule::progressive(
      c.observed_points().size(), /*strobe_step=*/5);

  for (const FaultModel model : {FaultModel::kStuckAt,
                                 FaultModel::kTransition}) {
    SCOPED_TRACE(model == FaultModel::kStuckAt ? "stuck_at" : "transition");
    const FaultList faults = fault_model::universe(c, model);
    expect_engines_agree(faults, patterns, &schedule);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetlists, EngineEquivalence, ::testing::ValuesIn(kScenarios),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(EngineEquivalence, ScanCircuitBothModelsAllEngines) {
  // The random DAGs are purely combinational; the scan accumulator adds
  // DFF pseudo-PI/PO paths (scan captures, the DFF D-pin special case in
  // every kernel) to the same engine matrix.
  const Circuit c = circuit::make_scan_accumulator(6);
  const PatternSet patterns =
      random_program(c.pattern_inputs().size(), 96, 424242);
  for (const FaultModel model : {FaultModel::kStuckAt,
                                 FaultModel::kTransition}) {
    SCOPED_TRACE(model == FaultModel::kStuckAt ? "stuck_at" : "transition");
    const FaultList faults = fault_model::universe(c, model);
    expect_engines_agree(faults, patterns);
  }
}

TEST(EngineEquivalence, AtpgProgramsGradeIdenticallyOnEveryEngine) {
  // The deterministic two-pattern programs the new transition ATPG emits
  // are exactly the adjacency-sensitive inputs the engines must agree on:
  // grade a generated (launch, capture) program with the full matrix.
  const Circuit c = circuit::make_carry_select_adder(8, 4);
  for (const FaultModel model : {FaultModel::kStuckAt,
                                 FaultModel::kTransition}) {
    SCOPED_TRACE(model == FaultModel::kStuckAt ? "stuck_at" : "transition");
    const FaultList faults = fault_model::universe(c, model);
    tpg::AtpgOptions options;
    options.random_patterns = 64;
    options.seed = 9;
    const tpg::AtpgResult generated = tpg::generate_tests(faults, options);
    ASSERT_GE(generated.patterns.size(), 2u);
    expect_engines_agree(faults, generated.patterns);
  }
}

}  // namespace
}  // namespace lsiq::fault
