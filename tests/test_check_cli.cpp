// End-to-end exit-code contract of `lsiq_flow --check`: 0 = lint passed
// (warnings allowed), 1 = error-severity findings, 2 = the spec itself is
// unreadable or invalid — including the batch path, where a lint refusal
// is a "failed" record with error_code "lint". Runs the real binary; each
// test skips when it is not next to the test executable (ctest runs with
// the build directory as cwd, which is where CMake puts lsiq_flow).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr const char* kBinary = "./lsiq_flow";

bool binary_exists() {
  std::ifstream probe(kBinary);
  return probe.good();
}

#define REQUIRE_BINARY()                                              \
  if (!binary_exists()) {                                             \
    GTEST_SKIP() << "lsiq_flow binary not found next to the tests";   \
  }

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

/// ctest runs these tests as parallel processes sharing one TempDir, so
/// every scratch file is prefixed with the pid to keep runs disjoint.
std::string scratch_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Run the binary with shell redirection and decode the wait status.
RunResult run_flow(const std::string& arguments) {
  const std::string out_path = scratch_path("check_cli_out.txt");
  const std::string err_path = scratch_path("check_cli_err.txt");
  const std::string command = std::string(kBinary) + " " + arguments +
                              " > " + out_path + " 2> " + err_path;
  const int status = std::system(command.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.stdout_text = slurp(out_path);
  result.stderr_text = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return result;
}

/// Write `text` to a temp file under the gtest temp dir; returns its path.
std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = scratch_path(name);
  std::ofstream out(path);
  out << text;
  return path;
}

/// A netlist with a deliberately unused input: dead_logic lint material
/// that is still perfectly runnable.
std::string spare_pin_bench() {
  return write_file("check_cli_spare.bench",
                    "INPUT(a)\n"
                    "INPUT(spare)\n"
                    "OUTPUT(y)\n"
                    "y = NOT(a)\n");
}

TEST(CheckCli, CleanSpecExitsZero) {
  REQUIRE_BINARY();
  const std::string spec = write_file("check_cli_clean.spec",
                                      "circuit = c17\n"
                                      "source = lfsr\n"
                                      "patterns = 16\n");
  const RunResult result = run_flow("--check " + spec);
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("check OK: circuit c17"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_TRUE(result.stdout_text.empty()) << result.stdout_text;
}

TEST(CheckCli, WarningsStreamAsJsonlAndStillExitZero) {
  REQUIRE_BINARY();
  // dead_logic defaults to warn: the unused input is reported (along with
  // its two statically-untestable stuck-at sites), the check still passes.
  const std::string spec = write_file(
      "check_cli_warn.spec",
      "circuit = " + spare_pin_bench() + "\nsource = lfsr\npatterns = 16\n");
  const RunResult result = run_flow("--check " + spec);
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_NE(result.stdout_text.find("\"rule\":\"unused_input\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"rule\":\"untestable_fault\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"severity\":\"warning\""),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("3 warnings"), std::string::npos)
      << result.stderr_text;
}

TEST(CheckCli, LintErrorExitsOne) {
  REQUIRE_BINARY();
  const std::string spec = write_file(
      "check_cli_error.spec",
      "circuit = " + spare_pin_bench() +
          "\nsource = lfsr\npatterns = 16\nanalyze_dead_logic = error\n");
  const RunResult result = run_flow("--check " + spec);
  EXPECT_EQ(result.exit_code, 1) << result.stderr_text;
  EXPECT_NE(result.stdout_text.find("\"rule\":\"unused_input\""),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"severity\":\"error\""),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("check FAILED"), std::string::npos)
      << result.stderr_text;
}

TEST(CheckCli, UnreadableSpecExitsTwo) {
  REQUIRE_BINARY();
  const RunResult result =
      run_flow("--check " + ::testing::TempDir() + "no_such_file.spec");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("spec error"), std::string::npos);
}

TEST(CheckCli, MalformedSpecExitsTwo) {
  REQUIRE_BINARY();
  const std::string spec = write_file("check_cli_bad.spec",
                                      "circuit = c17\n"
                                      "analyze_structure = sometimes\n");
  const RunResult result = run_flow("--check " + spec);
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown analyze policy 'sometimes'"),
            std::string::npos)
      << result.stderr_text;
}

TEST(CheckCli, UnknownCircuitExitsTwo) {
  REQUIRE_BINARY();
  const std::string spec =
      write_file("check_cli_circuit.spec", "circuit = warpcore9\n");
  const RunResult result = run_flow("--check " + spec);
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown circuit"), std::string::npos);
}

TEST(CheckCli, CheckAndValidateTogetherIsUsageError) {
  REQUIRE_BINARY();
  const std::string spec =
      write_file("check_cli_both.spec", "circuit = c17\n");
  const RunResult result = run_flow("--check --validate " + spec);
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CheckCli, BatchCheckRecordsLintFailures) {
  REQUIRE_BINARY();
  const std::string clean = write_file("batch_check_clean.spec",
                                       "circuit = c17\n"
                                       "source = lfsr\n"
                                       "patterns = 16\n");
  const std::string failing = write_file(
      "batch_check_lint.spec",
      "circuit = " + spare_pin_bench() +
          "\nsource = lfsr\npatterns = 16\nanalyze_dead_logic = error\n");
  const std::string manifest = write_file(
      "batch_check.list", clean + "\n" + failing + "\n");
  const RunResult result = run_flow("--check --batch " + manifest);
  EXPECT_EQ(result.exit_code, 1) << result.stderr_text;
  EXPECT_NE(result.stdout_text.find("\"status\":\"ok\""), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("\"error_code\":\"lint\""),
            std::string::npos)
      << result.stdout_text;
  // Lint is permanent: exactly one attempt, no retries.
  EXPECT_EQ(result.stdout_text.find("\"attempts\":2"), std::string::npos);
}

TEST(CheckCli, BatchCheckAllCleanExitsZero) {
  REQUIRE_BINARY();
  const std::string clean = write_file("batch_check_only_clean.spec",
                                       "circuit = c17\n"
                                       "source = lfsr\n"
                                       "patterns = 16\n");
  const std::string manifest =
      write_file("batch_check_clean.list", clean + "\n");
  const RunResult result = run_flow("--check --batch " + manifest);
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_NE(result.stdout_text.find("\"status\":\"ok\""), std::string::npos);
}

}  // namespace
