// Tests for the BIST session: exact signature-aliasing grading against an
// independent oracle, agreement with the full-observation engines, and
// bit-determinism across worker counts.
#include "bist/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "bist/misr.hpp"
#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/error.hpp"

namespace lsiq::bist {
namespace {

using circuit::Circuit;
using fault::FaultList;

/// Independent reimplementation of signature grading: per-point error
/// words isolated with the EVENT-DRIVEN kernel (detect_word under a
/// one-point strobe mask — a different code path from the session's
/// suffix-resimulation point_diff_words), folded through a Misr stepped
/// pattern by pattern. Returns the faulty end-of-session signature.
struct OracleGrading {
  std::uint64_t good_signature = 0;
  std::vector<std::uint64_t> fault_signatures;
  std::vector<std::int64_t> first_error;
};

OracleGrading grade_by_hand(const FaultList& faults,
                            const sim::PatternSet& patterns,
                            const Misr& misr) {
  const Circuit& c = faults.circuit();
  const auto& points = c.observed_points();
  const std::size_t point_count = points.size();
  const std::size_t classes = faults.class_count();

  sim::ParallelSimulator good_sim(c);
  fault::Propagator propagator(c);

  // Good responses per block, retained so each class replays the session.
  std::vector<std::vector<std::uint64_t>> good_blocks;
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    good_blocks.push_back(good_sim.values());
  }

  // Good signature: compact the good response vector pattern by pattern.
  Misr reference = misr;
  reference.reset();
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    const std::size_t valid = std::min<std::size_t>(
        64, patterns.size() - b * 64);
    for (std::size_t p = 0; p < valid; ++p) {
      std::uint64_t compacted = 0;
      for (std::size_t i = 0; i < point_count; ++i) {
        if ((good_blocks[b][points[i]] >> p) & 1ULL) {
          compacted ^= misr.input_bit(i);
        }
      }
      reference.step(compacted);
    }
  }

  OracleGrading oracle;
  oracle.good_signature = reference.signature();
  oracle.fault_signatures.assign(classes, 0);
  oracle.first_error.assign(classes, -1);

  std::vector<std::uint64_t> one_point(point_count, 0);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const fault::Fault& f = faults.representatives()[cls];
    std::uint64_t delta = 0;
    for (std::size_t b = 0; b < patterns.block_count(); ++b) {
      propagator.begin_block(good_blocks[b]);
      // Isolate each point's error word with a single-point strobe mask.
      std::vector<std::uint64_t> diffs(point_count, 0);
      std::uint64_t any = 0;
      for (std::size_t i = 0; i < point_count; ++i) {
        one_point.assign(point_count, 0);
        one_point[i] = ~0ULL;
        diffs[i] = propagator.detect_word(f, good_blocks[b], &one_point);
        any |= diffs[i];
      }
      const std::size_t valid = std::min<std::size_t>(
          64, patterns.size() - b * 64);
      for (std::size_t p = 0; p < valid; ++p) {
        std::uint64_t compacted = 0;
        for (std::size_t i = 0; i < point_count; ++i) {
          if ((diffs[i] >> p) & 1ULL) compacted ^= misr.input_bit(i);
        }
        delta = misr.next(delta, compacted);
      }
      const std::uint64_t masked = any & patterns.block_mask(b);
      if (masked != 0 && oracle.first_error[cls] < 0) {
        oracle.first_error[cls] = static_cast<std::int64_t>(
            b * 64 + static_cast<std::size_t>(std::countr_zero(masked)));
      }
    }
    oracle.fault_signatures[cls] = oracle.good_signature ^ delta;
  }
  return oracle;
}

TEST(BistSession, MatchesIndependentOracleOnCombinationalCircuit) {
  const Circuit c = circuit::make_alu(2);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 190;  // deliberately not a multiple of 64
  config.lfsr_seed = 7;
  config.misr_width = 8;       // narrow enough for real aliasing pressure
  const BistSession session(faults, config);
  const BistResult result = session.run();

  const OracleGrading oracle =
      grade_by_hand(faults, session.patterns(), Misr(config.misr_width));
  EXPECT_EQ(result.good_signature, oracle.good_signature);
  ASSERT_EQ(result.fault_signatures.size(), oracle.fault_signatures.size());
  for (std::size_t cls = 0; cls < oracle.fault_signatures.size(); ++cls) {
    EXPECT_EQ(result.fault_signatures[cls], oracle.fault_signatures[cls])
        << fault_name(c, faults.representatives()[cls]);
    EXPECT_EQ(result.first_error_pattern[cls], oracle.first_error[cls])
        << fault_name(c, faults.representatives()[cls]);
  }
}

TEST(BistSession, MatchesIndependentOracleOnSequentialCircuit) {
  // Scan flip-flops: D-pin captures are pseudo primary outputs and take
  // the resolve_site shortcut — the oracle must agree there too.
  const Circuit c = circuit::make_scan_accumulator(3);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 100;
  config.lfsr_seed = 3;
  config.misr_width = 4;
  const BistSession session(faults, config);
  const BistResult result = session.run();

  const OracleGrading oracle =
      grade_by_hand(faults, session.patterns(), Misr(config.misr_width));
  EXPECT_EQ(result.good_signature, oracle.good_signature);
  for (std::size_t cls = 0; cls < oracle.fault_signatures.size(); ++cls) {
    EXPECT_EQ(result.fault_signatures[cls], oracle.fault_signatures[cls])
        << fault_name(c, faults.representatives()[cls]);
    EXPECT_EQ(result.first_error_pattern[cls], oracle.first_error[cls]);
  }
}

TEST(BistSession, RawDetectionMatchesPpsfpEngine) {
  // first_error_pattern is full-observation first detection; it must be
  // bit-identical to the production fault simulator on the same patterns.
  const Circuit c = circuit::make_comparator(4);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 200;
  config.lfsr_seed = 11;
  const BistSession session(faults, config);
  const BistResult result = session.run();

  const fault::FaultSimResult ppsfp =
      fault::simulate_ppsfp(faults, session.patterns());
  ASSERT_EQ(result.first_error_pattern.size(), ppsfp.first_detection.size());
  EXPECT_EQ(result.first_error_pattern, ppsfp.first_detection);
  EXPECT_EQ(result.raw_covered_faults, ppsfp.covered_faults);
  EXPECT_DOUBLE_EQ(result.raw_coverage, ppsfp.coverage);
}

TEST(BistSession, BitDeterministicAcrossWorkerCounts) {
  const Circuit c = circuit::make_array_multiplier(6);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 256;
  config.misr_width = 16;
  const BistSession session(faults, config);

  const BistResult r1 = session.run(1);
  for (const std::size_t threads : {2u, 8u}) {
    const BistResult rn = session.run(threads);
    EXPECT_EQ(rn.good_signature, r1.good_signature) << threads;
    EXPECT_EQ(rn.fault_signatures, r1.fault_signatures) << threads;
    EXPECT_EQ(rn.first_error_pattern, r1.first_error_pattern) << threads;
    EXPECT_EQ(rn.first_divergence_pattern, r1.first_divergence_pattern)
        << threads;
    EXPECT_EQ(rn.aliased_classes, r1.aliased_classes) << threads;
    EXPECT_DOUBLE_EQ(rn.signature_coverage, r1.signature_coverage)
        << threads;
  }
}

TEST(BistSession, WideMisrDoesNotAlias) {
  // k = 32 puts the expected aliasing loss at ~detected * 2^-32 — zero in
  // any session this size, so signature grading must equal raw grading.
  const Circuit c = circuit::make_alu(3);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 256;
  config.misr_width = 32;
  const BistSession session(faults, config);
  const BistResult result = session.run();

  EXPECT_TRUE(result.aliased_classes.empty());
  EXPECT_EQ(result.signature_detected_classes, result.raw_detected_classes);
  EXPECT_DOUBLE_EQ(result.signature_coverage, result.raw_coverage);
  EXPECT_DOUBLE_EQ(result.aliasing_loss(), 0.0);
}

TEST(BistSession, SignatureDetectionImpliesRawDetection) {
  // A fault that never produces an output error can never perturb the
  // signature: signature-detected is a subset of raw-detected, whatever
  // the register width.
  const Circuit c = circuit::make_ripple_carry_adder(8);
  const FaultList faults = FaultList::full_universe(c);
  for (const int width : {4, 8, 16}) {
    BistConfig config;
    config.pattern_count = 192;
    config.misr_width = width;
    const BistSession session(faults, config);
    const BistResult result = session.run();

    EXPECT_LE(result.signature_detected_classes,
              result.raw_detected_classes);
    EXPECT_GE(result.aliasing_loss(), 0.0);
    for (std::size_t cls = 0; cls < result.fault_signatures.size(); ++cls) {
      if (result.fault_signatures[cls] != result.good_signature) {
        EXPECT_GE(result.first_error_pattern[cls], 0);
        EXPECT_GE(result.first_divergence_pattern[cls], 0);
        // Divergence cannot precede the first output error.
        EXPECT_GE(result.first_divergence_pattern[cls],
                  result.first_error_pattern[cls]);
      }
    }
    for (const std::uint32_t cls : result.aliased_classes) {
      EXPECT_GE(result.first_error_pattern[cls], 0);
      EXPECT_EQ(result.fault_signatures[cls], result.good_signature);
    }
  }
}

TEST(BistSession, CurvesAreConsistentWithScalarCoverages) {
  const Circuit c = circuit::make_comparator(5);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 150;
  config.misr_width = 8;
  const BistSession session(faults, config);
  const BistResult result = session.run();

  const fault::CoverageCurve raw = result.raw_curve(faults);
  EXPECT_EQ(raw.pattern_count(), result.pattern_count);
  EXPECT_DOUBLE_EQ(raw.final_coverage(), result.raw_coverage);

  // The divergence curve's final value counts every class that EVER
  // diverged: all end-of-session detections, plus those aliased classes
  // whose delta was non-zero mid-session (an aliased class that cancels
  // spatially at every error pattern never diverges at all).
  const fault::CoverageCurve sig = result.signature_curve(faults);
  std::size_t aliased_weight = 0;
  for (const std::uint32_t cls : result.aliased_classes) {
    aliased_weight += faults.class_size(cls);
  }
  const std::size_t ever_diverged = sig.covered_after(result.pattern_count);
  EXPECT_GE(ever_diverged, result.signature_covered_faults);
  EXPECT_LE(ever_diverged,
            result.signature_covered_faults + aliased_weight);

  // Every class the divergence curve counts is raw-detected.
  EXPECT_LE(ever_diverged, result.raw_covered_faults);
}

TEST(BistSession, ExternalPatternSessionMatchesConfigGenerated) {
  // A session fed its program explicitly must grade exactly like the
  // session that generated the same program from its config — the
  // decoupling flow::run relies on.
  const Circuit c = circuit::make_comparator(4);
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 96;
  config.lfsr_seed = 29;
  config.misr_width = 8;
  const BistSession by_config(faults, config);
  const BistResult reference = by_config.run();

  BistConfig external = config;
  external.pattern_count = 12345;  // must be ignored and overwritten
  const BistSession by_patterns(faults, by_config.patterns(), external);
  EXPECT_EQ(by_patterns.config().pattern_count, 96u);
  const BistResult result = by_patterns.run();
  EXPECT_EQ(result.pattern_count, 96u);
  EXPECT_EQ(result.good_signature, reference.good_signature);
  EXPECT_EQ(result.fault_signatures, reference.fault_signatures);
  EXPECT_EQ(result.first_error_pattern, reference.first_error_pattern);
  EXPECT_EQ(result.first_divergence_pattern,
            reference.first_divergence_pattern);
}

TEST(BistSession, ExternalPatternDomainChecks) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  // Empty program.
  EXPECT_THROW(
      BistSession(faults, sim::PatternSet(c.pattern_inputs().size()),
                  config),
      ContractViolation);
  // Wrong input count.
  sim::PatternSet wrong(c.pattern_inputs().size() + 1);
  wrong.append(std::vector<bool>(c.pattern_inputs().size() + 1, true));
  EXPECT_THROW(BistSession(faults, wrong, config), ContractViolation);
}

TEST(BistSession, DomainChecks) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  BistConfig config;
  config.pattern_count = 0;
  EXPECT_THROW(BistSession(faults, config), ContractViolation);
  config.pattern_count = 16;
  config.misr_width = 0;
  EXPECT_THROW(BistSession(faults, config), ContractViolation);
  config.misr_width = 9;  // no standard polynomial
  EXPECT_THROW(BistSession(faults, config), Error);
  config.misr_width = 9;
  config.misr_taps = 0x110;
  EXPECT_NO_THROW(BistSession(faults, config));
}

}  // namespace
}  // namespace lsiq::bist
