// Tests for the urn-model detection probabilities (Eq. 4-5, Appendix A.1-A.3)
// including the Fig. 6 accuracy claims.
#include "core/detection.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {
namespace {

/// Brute-force q0 by the binomial-coefficient definition C(N-n,m)/C(N,m).
double q0_reference(unsigned n, unsigned m, unsigned N) {
  if (n > N - m) return 0.0;
  return std::exp(util::log_binomial(N - n, m) - util::log_binomial(N, m));
}

TEST(Q0Exact, MatchesBinomialDefinition) {
  for (const unsigned N : {10u, 100u, 1000u}) {
    for (const unsigned m : {0u, N / 10, N / 2, N - 1, N}) {
      for (const unsigned n : {0u, 1u, 2u, 5u, N / 10}) {
        if (n > N) continue;
        EXPECT_NEAR(q0_exact(n, m, N), q0_reference(n, m, N), 1e-10)
            << "N=" << N << " m=" << m << " n=" << n;
      }
    }
  }
}

TEST(Q0Exact, BoundaryBehavior) {
  EXPECT_DOUBLE_EQ(q0_exact(0, 50, 100), 1.0);   // no faults: always passes
  EXPECT_DOUBLE_EQ(q0_exact(5, 0, 100), 1.0);    // no tests: always passes
  EXPECT_DOUBLE_EQ(q0_exact(1, 100, 100), 0.0);  // full coverage: caught
  EXPECT_DOUBLE_EQ(q0_exact(51, 50, 100), 0.0);  // pigeonhole: n > N - m
}

TEST(Q0Exact, TinyUrnHandComputed) {
  // N=4, m=2, n=2: C(2,2)/C(4,2) = 1/6.
  EXPECT_NEAR(q0_exact(2, 2, 4), 1.0 / 6.0, 1e-12);
  // N=10, m=5, n=2: (5/10)(4/9) = 2/9.
  EXPECT_NEAR(q0_exact(2, 5, 10), 2.0 / 9.0, 1e-12);
}

TEST(Q0Exact, DecreasesInBothArguments) {
  const unsigned N = 500;
  for (unsigned n = 1; n < 20; ++n) {
    EXPECT_LT(q0_exact(n + 1, 100, N), q0_exact(n, 100, N));
  }
  for (unsigned m = 0; m < 400; m += 50) {
    EXPECT_LT(q0_exact(5, m + 50, N), q0_exact(5, m, N));
  }
}

TEST(Q0Approximations, Fig6SmallNAllThreeCoincide) {
  // "For n <= 4, all three values are the same" (Appendix, Fig. 6) — a
  // log-plot statement; numerically (A.3)'s relative error stays below 6%
  // up to f = 0.9 and (A.2) below 1% everywhere on the grid (N = 1000 as
  // in the figure).
  const unsigned N = 1000;
  for (unsigned m = 50; m <= 900; m += 50) {
    const double f = static_cast<double>(m) / N;
    for (unsigned n = 1; n <= 4; ++n) {
      const double exact = q0_exact(n, m, N);
      EXPECT_NEAR(q0_second_order(n, m, N), exact, 0.01 * exact + 1e-12);
      EXPECT_NEAR(q0_simple(n, f), exact, 0.06 * exact + 1e-12);
    }
  }
}

TEST(Q0Approximations, Fig6SecondOrderStaysAccurateForLargerN) {
  // "For larger n, the approximation (A.2) still coincides with the exact
  // value (A.1)" — within a few percent over the figure's range.
  const unsigned N = 1000;
  for (const unsigned n : {10u, 20u, 31u}) {
    for (unsigned m = 100; m <= 700; m += 100) {
      const double exact = q0_exact(n, m, N);
      if (exact < 1e-12) continue;
      EXPECT_NEAR(q0_second_order(n, m, N) / exact, 1.0, 0.05)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(Q0Approximations, Fig6SimpleFormOverestimates) {
  // (1-f)^n > exact for n >= 2 (each later draw is harder to miss), and the
  // error is "small but can be noticed" at larger n.
  const unsigned N = 1000;
  for (const unsigned n : {10u, 31u}) {
    for (unsigned m = 100; m <= 700; m += 200) {
      const double f = static_cast<double>(m) / N;
      EXPECT_GT(q0_simple(n, f), q0_exact(n, m, N));
    }
  }
}

TEST(Q0Approximations, ValidityRatioTracksTheCondition) {
  const unsigned N = 1000;
  // n^2 << N(1-f)/f: small n & moderate f -> tiny ratio; large n & high f
  // -> ratio above 1.
  EXPECT_LT(q0_simple_validity_ratio(3, 500, N), 0.05);
  EXPECT_GT(q0_simple_validity_ratio(100, 900, N), 1.0);
  EXPECT_DOUBLE_EQ(q0_simple_validity_ratio(5, 0, N), 0.0);
  EXPECT_TRUE(std::isinf(q0_simple_validity_ratio(5, N, N)));
}

TEST(QkHypergeometric, SumsToOneOverK) {
  const unsigned N = 200;
  const unsigned m = 60;
  for (const unsigned n : {1u, 3u, 10u, 50u}) {
    double total = 0.0;
    for (unsigned k = 0; k <= n; ++k) {
      total += qk_hypergeometric(k, n, m, N);
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n;
  }
}

TEST(QkHypergeometric, K0MatchesQ0Exact) {
  const unsigned N = 300;
  for (const unsigned m : {30u, 150u, 290u}) {
    for (const unsigned n : {1u, 4u, 9u}) {
      EXPECT_NEAR(qk_hypergeometric(0, n, m, N), q0_exact(n, m, N), 1e-12);
    }
  }
}

TEST(QkHypergeometric, MeanIsNF) {
  // E[k] = n * m / N: the expected number of the chip's faults covered.
  const unsigned N = 100;
  const unsigned m = 40;
  const unsigned n = 10;
  double mean = 0.0;
  for (unsigned k = 0; k <= n; ++k) {
    mean += k * qk_hypergeometric(k, n, m, N);
  }
  EXPECT_NEAR(mean, static_cast<double>(n) * m / N, 1e-9);
}

TEST(QkHypergeometric, HandComputedCell) {
  // N=10, m=5, n=3, k=1: C(3,1) C(7,4) / C(10,5) = 3*35/252 = 5/12.
  EXPECT_NEAR(qk_hypergeometric(1, 3, 5, 10), 5.0 / 12.0, 1e-12);
}

TEST(QkHypergeometric, ZeroOutsideSupport) {
  // Cannot detect more faults than tests cover (k > m) or leave more
  // undetected than uncovered sites allow.
  EXPECT_DOUBLE_EQ(qk_hypergeometric(6, 8, 5, 20), 0.0);  // k > m
  EXPECT_DOUBLE_EQ(qk_hypergeometric(0, 5, 18, 20), 0.0);  // m-k > N-n
}

TEST(DetectionDomain, ContractChecks) {
  EXPECT_THROW(q0_exact(5, 11, 10), ContractViolation);
  EXPECT_THROW(q0_exact(11, 5, 10), ContractViolation);
  EXPECT_THROW(q0_simple(2, 1.5), ContractViolation);
  EXPECT_THROW(qk_hypergeometric(4, 3, 5, 10), ContractViolation);
}

}  // namespace
}  // namespace lsiq::quality
