// Tests for the robustness primitives underneath the batch runner: the
// error taxonomy (stable codes, transient classification), the failpoint
// registry (arming, config grammar, bounded firing) and the cooperative
// deadline watchdog.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "util/deadline.hpp"
#include "util/error.hpp"

namespace lsiq::util {
namespace {

/// Every test starts and ends with an empty registry — the registry is
/// process-global, so leaking an armed site would fault unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear(); }
  void TearDown() override { Failpoints::instance().clear(); }
};

// ---- error taxonomy ----

TEST(ErrorTaxonomy, CodesAreStableAndNamed) {
  // The numeric values are a wire format (batch JSONL, scripts): pin them.
  EXPECT_EQ(static_cast<int>(ErrorCode::kOk), 0);
  EXPECT_EQ(static_cast<int>(ErrorCode::kUnknown), 1);
  EXPECT_EQ(static_cast<int>(ErrorCode::kContract), 2);
  EXPECT_EQ(static_cast<int>(ErrorCode::kParse), 3);
  EXPECT_EQ(static_cast<int>(ErrorCode::kNumeric), 4);
  EXPECT_EQ(static_cast<int>(ErrorCode::kInvalidSpec), 5);
  EXPECT_EQ(static_cast<int>(ErrorCode::kIo), 6);
  EXPECT_EQ(static_cast<int>(ErrorCode::kTransient), 7);
  EXPECT_EQ(static_cast<int>(ErrorCode::kDeadline), 8);
  EXPECT_EQ(static_cast<int>(ErrorCode::kCancelled), 9);
  EXPECT_EQ(static_cast<int>(ErrorCode::kLint), 10);
  EXPECT_EQ(static_cast<int>(ErrorCode::kQueueFull), 11);
  EXPECT_EQ(static_cast<int>(ErrorCode::kShutdown), 12);
  EXPECT_EQ(static_cast<int>(ErrorCode::kNotFound), 13);

  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidSpec), "invalid_spec");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadline), "deadline");
  EXPECT_STREQ(error_code_name(ErrorCode::kLint), "lint");
  EXPECT_STREQ(error_code_name(ErrorCode::kQueueFull), "queue_full");
  EXPECT_STREQ(error_code_name(ErrorCode::kShutdown), "shutdown");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotFound), "not_found");
}

TEST(ErrorTaxonomy, NamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kUnknown, ErrorCode::kContract,
        ErrorCode::kParse, ErrorCode::kNumeric, ErrorCode::kInvalidSpec,
        ErrorCode::kIo, ErrorCode::kTransient, ErrorCode::kDeadline,
        ErrorCode::kCancelled, ErrorCode::kLint, ErrorCode::kQueueFull,
        ErrorCode::kShutdown, ErrorCode::kNotFound}) {
    SCOPED_TRACE(error_code_name(code));
    const std::optional<ErrorCode> parsed =
        error_code_from_name(error_code_name(code));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(error_code_from_name("flaky").has_value());
  EXPECT_FALSE(error_code_from_name("").has_value());
}

TEST(ErrorTaxonomy, TransientSplitMatchesRetrySemantics) {
  // Only I/O hiccups and explicitly-transient failures are worth a
  // retry; everything else — a bad spec, a numeric blow-up, a DEADLINE
  // overrun (a wedged run re-wedges) — fails identically on attempt 2.
  EXPECT_TRUE(is_transient(ErrorCode::kIo));
  EXPECT_TRUE(is_transient(ErrorCode::kTransient));
  EXPECT_FALSE(is_transient(ErrorCode::kOk));
  EXPECT_FALSE(is_transient(ErrorCode::kUnknown));
  EXPECT_FALSE(is_transient(ErrorCode::kContract));
  EXPECT_FALSE(is_transient(ErrorCode::kParse));
  EXPECT_FALSE(is_transient(ErrorCode::kNumeric));
  EXPECT_FALSE(is_transient(ErrorCode::kInvalidSpec));
  EXPECT_FALSE(is_transient(ErrorCode::kDeadline));
  EXPECT_FALSE(is_transient(ErrorCode::kCancelled));
  // A lint refusal is deterministic: the same netlist re-lints the same.
  EXPECT_FALSE(is_transient(ErrorCode::kLint));

  // The flow-service codes: a momentarily full admission queue clears
  // itself (retry-worthy); a draining service never re-opens and a
  // missing job id stays missing.
  EXPECT_TRUE(is_transient(ErrorCode::kQueueFull));
  EXPECT_FALSE(is_transient(ErrorCode::kShutdown));
  EXPECT_FALSE(is_transient(ErrorCode::kNotFound));
}

TEST(ErrorTaxonomy, SubclassesCarryTheirCode) {
  EXPECT_EQ(Error("x").code(), ErrorCode::kUnknown);
  EXPECT_EQ(Error("x", ErrorCode::kIo).code(), ErrorCode::kIo);
  EXPECT_EQ(ContractViolation("x").code(), ErrorCode::kContract);
  EXPECT_EQ(ParseError("x").code(), ErrorCode::kParse);
  EXPECT_EQ(NumericError("x").code(), ErrorCode::kNumeric);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIo);
  EXPECT_EQ(TransientError("x").code(), ErrorCode::kTransient);
  EXPECT_EQ(DeadlineExceeded("x").code(), ErrorCode::kDeadline);
  EXPECT_EQ(CancelledError("x").code(), ErrorCode::kCancelled);

  EXPECT_TRUE(IoError("x").transient());
  EXPECT_FALSE(DeadlineExceeded("x").transient());
}

TEST(ErrorTaxonomy, CatchingAsBaseKeepsTheCode) {
  // The batch runner catches `const Error&` and reads code(): the code
  // must survive the upcast.
  try {
    throw IoError("disk full");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_TRUE(e.transient());
  }
}

// ---- failpoint registry ----

TEST_F(FailpointTest, UnarmedSitesDoNothing) {
  EXPECT_NO_THROW(LSIQ_FAILPOINT("flow.grade"));
  EXPECT_FALSE(Failpoints::instance().armed("flow.grade"));
  // Hit counting only runs while something is armed (the fast path skips
  // the lock entirely).
  EXPECT_EQ(Failpoints::instance().hit_count("flow.grade"), 0u);
}

TEST_F(FailpointTest, ArmedErrorSiteThrowsItsCode) {
  FailpointAction action;
  action.throws = true;
  action.code = ErrorCode::kIo;
  Failpoints::instance().arm("flow.grade", action);
  EXPECT_TRUE(Failpoints::instance().armed("flow.grade"));
  try {
    LSIQ_FAILPOINT("flow.grade");
    FAIL() << "expected injected IoError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find("flow.grade"), std::string::npos)
        << "injected error should name its site: " << e.what();
  }
  // Other sites stay clean.
  EXPECT_NO_THROW(LSIQ_FAILPOINT("flow.run"));
}

TEST_F(FailpointTest, TimesBoundsTheFiringCount) {
  FailpointAction action;
  action.throws = true;
  action.code = ErrorCode::kTransient;
  action.times = 2;
  Failpoints::instance().arm("spec.read", action);
  EXPECT_THROW(LSIQ_FAILPOINT("spec.read"), TransientError);
  EXPECT_THROW(LSIQ_FAILPOINT("spec.read"), TransientError);
  // Budget exhausted: the site stays registered but inert.
  EXPECT_NO_THROW(LSIQ_FAILPOINT("spec.read"));
  EXPECT_NO_THROW(LSIQ_FAILPOINT("spec.read"));
  EXPECT_FALSE(Failpoints::instance().armed("spec.read"));
  EXPECT_EQ(Failpoints::instance().hit_count("spec.read"), 4u);
}

TEST_F(FailpointTest, DisarmAndClear) {
  FailpointAction action;
  action.throws = true;
  Failpoints::instance().arm("flow.run", action);
  Failpoints::instance().disarm("flow.run");
  EXPECT_NO_THROW(LSIQ_FAILPOINT("flow.run"));

  Failpoints::instance().arm("flow.run", action);
  Failpoints::instance().clear();
  EXPECT_NO_THROW(LSIQ_FAILPOINT("flow.run"));
  EXPECT_EQ(Failpoints::instance().hit_count("flow.run"), 0u);
}

TEST_F(FailpointTest, ConfigStringGrammar) {
  const std::size_t applied = Failpoints::instance().arm_from_string(
      "flow.grade=error(io,1);spec.read=sleep(5);flow.run=off");
  EXPECT_EQ(applied, 3u);
  EXPECT_TRUE(Failpoints::instance().armed("flow.grade"));
  EXPECT_TRUE(Failpoints::instance().armed("spec.read"));
  EXPECT_FALSE(Failpoints::instance().armed("flow.run"));

  try {
    LSIQ_FAILPOINT("flow.grade");
    FAIL() << "expected injected IoError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  EXPECT_NO_THROW(LSIQ_FAILPOINT("flow.grade"));  // times=1 spent

  // sleep() delays but does not throw.
  EXPECT_NO_THROW(LSIQ_FAILPOINT("spec.read"));
}

TEST_F(FailpointTest, MalformedConfigsFailLoudly) {
  for (const char* config :
       {"flow.grade", "flow.grade=", "=error(io)", "flow.grade=boom(1)",
        "flow.grade=error(flaky)", "flow.grade=error(io,many)",
        "flow.grade=error(io", "flow.grade=sleep()"}) {
    SCOPED_TRACE(config);
    EXPECT_THROW(Failpoints::instance().arm_from_string(config), ParseError);
  }
  // Empty config is a no-op, not an error (unset env variable).
  EXPECT_EQ(Failpoints::instance().arm_from_string(""), 0u);
}

TEST_F(FailpointTest, ReArmingReplacesTheAction) {
  Failpoints::instance().arm_from_string("flow.grade=error(io)");
  Failpoints::instance().arm_from_string("flow.grade=error(invalid_spec)");
  try {
    LSIQ_FAILPOINT("flow.grade");
    FAIL() << "expected injected error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidSpec);
  }
}

// ---- deadline watchdog ----

TEST(Deadline, NoScopeMeansNoOverhead) {
  EXPECT_FALSE(deadline_active());
  EXPECT_NO_THROW(poll_deadline());
}

TEST(Deadline, ExpiredScopeThrowsOnPoll) {
  DeadlineScope scope(std::chrono::milliseconds(1));
  EXPECT_TRUE(deadline_active());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW(poll_deadline(), DeadlineExceeded);
}

TEST(Deadline, GenerousScopeDoesNotFire) {
  DeadlineScope scope(std::chrono::milliseconds(60000));
  EXPECT_NO_THROW(poll_deadline());
}

TEST(Deadline, ScopesUnwindOnExit) {
  {
    DeadlineScope scope(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(deadline_active());
  EXPECT_NO_THROW(poll_deadline());
}

TEST(Deadline, NestingOnlyTightens) {
  // An inner scope cannot extend the outer budget: the effective deadline
  // is the minimum of the stack.
  DeadlineScope outer(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  DeadlineScope inner(std::chrono::milliseconds(60000));
  EXPECT_THROW(poll_deadline(), DeadlineExceeded);
}

TEST(Deadline, ScopesAreThreadLocal) {
  DeadlineScope scope(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bool other_thread_clean = false;
  std::thread other([&] { other_thread_clean = !deadline_active(); });
  other.join();
  EXPECT_TRUE(other_thread_clean);
  EXPECT_THROW(poll_deadline(), DeadlineExceeded);
}

TEST_F(FailpointTest, SleepActionTripsAnActiveDeadline) {
  // The canonical wedged-run simulation: a sleeping failpoint inside a
  // deadline scope must surface as DeadlineExceeded at the site itself
  // (hit() re-polls after sleeping).
  Failpoints::instance().arm_from_string("flow.grade=sleep(20)");
  DeadlineScope scope(std::chrono::milliseconds(5));
  EXPECT_THROW(LSIQ_FAILPOINT("flow.grade"), DeadlineExceeded);
}

// ---- cooperative cancellation ----

TEST(CancelScope, SetFlagThrowsCancelledOnPoll) {
  std::atomic<bool> flag{false};
  CancelScope scope(flag);
  EXPECT_NO_THROW(poll_deadline());  // unset flag: polls pass
  flag.store(true);
  EXPECT_THROW(poll_deadline(), lsiq::CancelledError);
}

TEST(CancelScope, OuterFlagStaysLiveUnderInnerDeadlineScope) {
  // The flow service nests exactly this way: a CancelScope around the
  // whole attempt loop, a DeadlineScope per attempt inside it. The cancel
  // flag must win even though the inner frame carries only a clock.
  std::atomic<bool> flag{false};
  CancelScope cancel(flag);
  DeadlineScope deadline(std::chrono::milliseconds(60000));
  flag.store(true);
  EXPECT_THROW(poll_deadline(), lsiq::CancelledError);
}

TEST(CancelScope, CancellationOutranksAnExpiredDeadline) {
  // When both conditions hold, the poll reports CANCELLED: the job died
  // because someone asked, not because it was slow — the flow service
  // records hinge on that distinction.
  std::atomic<bool> flag{true};
  CancelScope cancel(flag);
  DeadlineScope deadline(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW(poll_deadline(), lsiq::CancelledError);
}

TEST(CancelScope, UnwindsOnScopeExit) {
  std::atomic<bool> flag{true};
  {
    CancelScope scope(flag);
  }
  EXPECT_FALSE(deadline_active());
  EXPECT_NO_THROW(poll_deadline());
}

TEST_F(FailpointTest, SleepingSiteObservesCancellation) {
  // A running job's cancel flag flips while the run sleeps inside a
  // site; the post-sleep re-poll surfaces CancelledError right there.
  Failpoints::instance().arm_from_string("flow.grade=sleep(30)");
  std::atomic<bool> flag{false};
  CancelScope scope(flag);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.store(true);
  });
  EXPECT_THROW(LSIQ_FAILPOINT("flow.grade"), lsiq::CancelledError);
  canceller.join();
}

}  // namespace
}  // namespace lsiq::util
