// Tests for the D-calculus algebra and the five-valued fault simulator.
#include <array>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "sim/five_value_sim.hpp"
#include "sim/logic_value.hpp"
#include "util/error.hpp"

namespace lsiq::sim {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

TEST(TriAlgebra, KleeneTables) {
  EXPECT_EQ(tri_and(Tri::kOne, Tri::kOne), Tri::kOne);
  EXPECT_EQ(tri_and(Tri::kZero, Tri::kX), Tri::kZero);  // 0 dominates
  EXPECT_EQ(tri_and(Tri::kOne, Tri::kX), Tri::kX);
  EXPECT_EQ(tri_or(Tri::kOne, Tri::kX), Tri::kOne);  // 1 dominates
  EXPECT_EQ(tri_or(Tri::kZero, Tri::kX), Tri::kX);
  EXPECT_EQ(tri_xor(Tri::kOne, Tri::kOne), Tri::kZero);
  EXPECT_EQ(tri_xor(Tri::kOne, Tri::kX), Tri::kX);
  EXPECT_EQ(tri_not(Tri::kX), Tri::kX);
  EXPECT_EQ(tri_not(Tri::kZero), Tri::kOne);
}

TEST(FiveValue, ClassifiersAndNames) {
  EXPECT_TRUE(is_d_or_dbar(kFiveD));
  EXPECT_TRUE(is_d_or_dbar(kFiveDbar));
  EXPECT_FALSE(is_d_or_dbar(kFiveOne));
  EXPECT_FALSE(is_d_or_dbar(kFiveX));
  EXPECT_TRUE(has_x(kFiveX));
  EXPECT_FALSE(has_x(kFiveD));
  EXPECT_EQ(five_value_name(kFiveD), "D");
  EXPECT_EQ(five_value_name(kFiveDbar), "D'");
  EXPECT_EQ(five_value_name(kFiveX), "X");
}

TEST(FiveValue, DPropagationThroughGates) {
  // AND(D, 1) = D; AND(D, 0) = 0; OR(D, 0) = D; XOR(D, 1) = D'.
  const FiveValue and_d1 =
      eval_five_value(GateType::kAnd,
                      std::array{kFiveD, kFiveOne}.data(), 2);
  EXPECT_EQ(and_d1, kFiveD);
  const FiveValue and_d0 =
      eval_five_value(GateType::kAnd,
                      std::array{kFiveD, kFiveZero}.data(), 2);
  EXPECT_EQ(and_d0, kFiveZero);
  const FiveValue or_d0 =
      eval_five_value(GateType::kOr,
                      std::array{kFiveD, kFiveZero}.data(), 2);
  EXPECT_EQ(or_d0, kFiveD);
  const FiveValue xor_d1 =
      eval_five_value(GateType::kXor,
                      std::array{kFiveD, kFiveOne}.data(), 2);
  EXPECT_EQ(xor_d1, kFiveDbar);
}

TEST(FiveValue, DCollision) {
  // AND(D, D') = 0 in both machines; XOR(D, D) = 0.
  const FiveValue and_ddb =
      eval_five_value(GateType::kAnd,
                      std::array{kFiveD, kFiveDbar}.data(), 2);
  EXPECT_EQ(and_ddb, kFiveZero);
  const FiveValue xor_dd =
      eval_five_value(GateType::kXor, std::array{kFiveD, kFiveD}.data(), 2);
  EXPECT_EQ(xor_dd, kFiveZero);
}

Circuit two_nand_chain() {
  // y = NAND(NAND(a, b), c)
  Circuit c("chain");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId ci = c.add_input("c");
  const GateId n1 = c.add_gate(GateType::kNand, {a, b}, "n1");
  const GateId y = c.add_gate(GateType::kNand, {n1, ci}, "y");
  c.mark_output(y);
  c.finalize();
  return c;
}

TEST(FiveValueSim, StemFaultActivatesAndPropagates) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  // n1 stuck-at-0: activate with a=b=1 (good n1 = 0... wait, NAND(1,1)=0).
  // Use a=0 so good n1 = 1 != 0: activated. Propagate with c=1.
  sim.set_fault(c.find("n1"), -1, false);
  sim.assign_input(0, Tri::kZero);  // a = 0
  sim.assign_input(1, Tri::kOne);   // b = 1
  sim.assign_input(2, Tri::kOne);   // c = 1
  sim.imply();
  EXPECT_EQ(sim.value(c.find("n1")), kFiveD);  // good 1 / faulty 0
  EXPECT_TRUE(sim.fault_effect_observed());
  // y = NAND(D, 1) = D'.
  EXPECT_EQ(sim.value(c.find("y")), kFiveDbar);
}

TEST(FiveValueSim, PinFaultIsLocalToTheBranch) {
  // Fanout: stem s feeds both g1 and g2; a pin fault on g1's input must not
  // disturb g2.
  Circuit c("branch");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId s = c.add_gate(GateType::kBuf, {a}, "s");
  const GateId g1 = c.add_gate(GateType::kAnd, {s, b}, "g1");
  const GateId g2 = c.add_gate(GateType::kOr, {s, b}, "g2");
  c.mark_output(g1);
  c.mark_output(g2);
  c.finalize();

  FiveValueSimulator sim(c);
  sim.set_fault(g1, 0, false);  // g1's s-pin stuck-at-0
  sim.assign_input(0, Tri::kOne);   // a = 1 -> s = 1 (activates)
  sim.assign_input(1, Tri::kOne);   // b = 1 (propagates through AND)
  sim.imply();
  EXPECT_EQ(sim.value(g1), kFiveD);
  EXPECT_EQ(sim.value(g2), kFiveOne);  // unaffected branch
  EXPECT_TRUE(sim.fault_effect_observed());
}

TEST(FiveValueSim, DFrontierTracksBlockedEffect) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  sim.set_fault(c.find("n1"), -1, false);
  sim.assign_input(0, Tri::kZero);  // activate: good n1 = 1, faulty 0
  sim.imply();
  // c is X: the effect waits at gate y.
  EXPECT_FALSE(sim.fault_effect_observed());
  const auto frontier = sim.d_frontier();
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], c.find("y"));
  EXPECT_TRUE(sim.x_path_exists());
}

TEST(FiveValueSim, BlockedPropagationKillsXPath) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  sim.set_fault(c.find("n1"), -1, false);
  sim.assign_input(0, Tri::kZero);  // activate
  sim.assign_input(2, Tri::kZero);  // c = 0 forces y = 1: effect blocked
  sim.imply();
  EXPECT_FALSE(sim.fault_effect_observed());
  EXPECT_TRUE(sim.d_frontier().empty());
  EXPECT_FALSE(sim.x_path_exists());
}

TEST(FiveValueSim, ActivationImpossibleDetected) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  // n1 stuck-at-1; good n1 = NAND(a,b) = 1 unless a=b=1.
  sim.set_fault(c.find("n1"), -1, true);
  sim.assign_input(0, Tri::kZero);
  sim.imply();
  // good n1 == 1 == stuck value: activation impossible under a=0.
  EXPECT_FALSE(sim.activation_possible());
}

TEST(FiveValueSim, FaultLineOfBranchFaultIsTheDriver) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  sim.set_fault(c.find("y"), 0, true);  // y's first pin (driven by n1)
  EXPECT_EQ(sim.fault_line(), c.find("n1"));
  sim.set_fault(c.find("n1"), -1, true);
  EXPECT_EQ(sim.fault_line(), c.find("n1"));
}

TEST(FiveValueSim, InputStemFaultOnPrimaryInput) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  const GateId a = c.find("a");
  sim.set_fault(a, -1, true);  // a stuck-at-1
  sim.assign_input(0, Tri::kZero);  // good a = 0: activated
  sim.assign_input(1, Tri::kOne);
  sim.assign_input(2, Tri::kOne);
  sim.imply();
  EXPECT_EQ(sim.value(a), kFiveDbar);  // good 0 / faulty 1
  EXPECT_TRUE(sim.fault_effect_observed());
}

TEST(FiveValueSim, AssignmentsResetOnSetFault) {
  const Circuit c = two_nand_chain();
  FiveValueSimulator sim(c);
  sim.set_fault(c.find("n1"), -1, false);
  sim.assign_input(0, Tri::kOne);
  sim.set_fault(c.find("n1"), -1, true);
  EXPECT_EQ(sim.input_assignment(0), Tri::kX);
}

}  // namespace
}  // namespace lsiq::sim
