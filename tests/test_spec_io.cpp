// Tests for the flow spec-file format: key=value parsing with line-number
// diagnostics, round-tripping through write_spec_string, and the
// circuit-selector factory.
#include "flow/spec_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace lsiq::flow {
namespace {

TEST(SpecIo, ParsesAFullSpec) {
  const SpecFile file = read_spec_string(R"(
# the Table 1 experiment
circuit     = mult16
source      = lfsr
patterns    = 1024
lfsr_seed   = 1981
observe     = progressive
strobe_step = 24
engine      = ppsfp_mt
threads     = 4
chips       = 277
yield       = 0.07
n0          = 8
lot_seed    = 1981
strobes     = 0.05 0.08, 0.10
method      = least_squares
targets     = 0.01 0.001
)");
  EXPECT_EQ(file.circuit, "mult16");
  const FlowSpec& spec = file.spec;
  EXPECT_EQ(spec.source.kind, "lfsr");
  EXPECT_EQ(spec.source.pattern_count, 1024u);
  EXPECT_EQ(spec.source.lfsr_seed, 1981u);
  EXPECT_EQ(spec.observe.kind, "progressive");
  EXPECT_EQ(spec.observe.strobe_step, 24u);
  EXPECT_EQ(spec.engine.kind, "ppsfp_mt");
  EXPECT_EQ(spec.engine.num_threads, 4u);
  EXPECT_EQ(spec.lot.chip_count, 277u);
  EXPECT_DOUBLE_EQ(spec.lot.yield, 0.07);
  EXPECT_DOUBLE_EQ(spec.lot.n0, 8.0);
  EXPECT_EQ(spec.lot.seed, 1981u);
  ASSERT_EQ(spec.analysis.strobe_coverages.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.analysis.strobe_coverages[1], 0.08);
  EXPECT_EQ(spec.analysis.method, "least_squares");
  ASSERT_EQ(spec.analysis.reject_targets.size(), 2u);
  // The parsed spec is runnable as-is.
  EXPECT_TRUE(validate(spec).empty());
}

TEST(SpecIo, DefaultsSurviveASparseFile) {
  const SpecFile file = read_spec_string("circuit = c17\n");
  EXPECT_EQ(file.circuit, "c17");
  EXPECT_EQ(file.spec.source.kind, "lfsr");
  EXPECT_EQ(file.spec.observe.kind, "full");
  EXPECT_EQ(file.spec.engine.kind, "ppsfp");
  EXPECT_EQ(file.spec.analysis.method, "given");
}

TEST(SpecIo, MisrKeysSelectTheSignaturePath) {
  const SpecFile file = read_spec_string(
      "observe = misr\nmisr_width = 8\nmisr_taps = 0xB8\n");
  EXPECT_EQ(file.spec.observe.kind, "misr");
  EXPECT_EQ(file.spec.observe.misr_width, 8);
  EXPECT_EQ(file.spec.observe.misr_taps, 0xB8u);
}

TEST(SpecIo, UnknownKeyNamesTheLine) {
  try {
    read_spec_string("source = lfsr\nbogus = 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), "spec line 2: unknown key 'bogus'");
  }
}

TEST(SpecIo, MalformedValueNamesKeyAndLine) {
  try {
    read_spec_string("patterns = lots\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()),
              "spec line 1: key 'patterns' needs an unsigned integer, got "
              "'lots'");
  }
}

TEST(SpecIo, NegativeIntegersAreRejectedNotWrapped) {
  // Regression: std::stoull wraps "-1" to 2^64 - 1; the parser must
  // reject it so 'threads = -1' cannot become an 18-quintillion-worker
  // pool request downstream.
  for (const char* line : {"threads = -1\n", "chips = -1\n",
                           "patterns = +3\n"}) {
    SCOPED_TRACE(line);
    EXPECT_THROW(read_spec_string(line), ParseError);
  }
}

TEST(SpecIo, MissingEqualsSignIsRejected) {
  EXPECT_THROW(read_spec_string("just some words\n"), ParseError);
  EXPECT_THROW(read_spec_string("chips =\n"), ParseError);
  EXPECT_THROW(read_spec_string("= 42\n"), ParseError);
}

TEST(SpecIo, CommentsAndBlankLinesAreIgnored) {
  const SpecFile file = read_spec_string(
      "\n# full-line comment\n  chips = 42  # trailing comment\n\n");
  EXPECT_EQ(file.spec.lot.chip_count, 42u);
}

TEST(SpecIo, WriteReadRoundTrip) {
  SpecFile original;
  original.circuit = "mult8";
  original.spec.source.kind = "lfsr";
  original.spec.source.pattern_count = 512;
  original.spec.source.lfsr_seed = 29;
  original.spec.observe.kind = "misr";
  original.spec.observe.misr_width = 8;
  original.spec.engine.kind = "ppsfp_mt";
  original.spec.engine.num_threads = 2;
  original.spec.lot.chip_count = 100;
  original.spec.lot.yield = 0.25;
  original.spec.lot.n0 = 4.0;
  original.spec.analysis.method = "given";

  const SpecFile parsed = read_spec_string(write_spec_string(original));
  EXPECT_EQ(parsed.circuit, "mult8");
  EXPECT_EQ(parsed.spec.source.pattern_count, 512u);
  EXPECT_EQ(parsed.spec.observe.kind, "misr");
  EXPECT_EQ(parsed.spec.observe.misr_width, 8);
  EXPECT_EQ(parsed.spec.engine.num_threads, 2u);
  EXPECT_DOUBLE_EQ(parsed.spec.lot.yield, 0.25);
}

TEST(SpecIo, ExplicitSourceHasNoTextForm) {
  SpecFile file;
  file.spec.source.kind = "explicit";
  EXPECT_THROW(write_spec_string(file), lsiq::Error);
}

TEST(SpecIo, CircuitFromNameBuildsGeneratorCircuits) {
  EXPECT_GT(circuit_from_name("c17").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("mult4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("adder8").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("alu4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("comparator4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("parity8").gate_count(), 0u);
}

TEST(SpecIo, CircuitFromNameRejectsUnknownSelectors) {
  EXPECT_THROW(circuit_from_name("warp9000x"), lsiq::Error);
  EXPECT_THROW(circuit_from_name("mult"), lsiq::Error);
  EXPECT_THROW(circuit_from_name(""), lsiq::Error);
  // Regression: an overflowing numeric suffix must be an 'unknown
  // circuit' diagnostic, not an escaping std::out_of_range.
  EXPECT_THROW(circuit_from_name("mult99999999999999999999"), lsiq::Error);
}

}  // namespace
}  // namespace lsiq::flow
