// Tests for the flow spec-file format: key=value parsing with line-number
// diagnostics, round-tripping through write_spec_string, and the
// circuit-selector factory.
#include "flow/spec_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace lsiq::flow {
namespace {

TEST(SpecIo, ParsesAFullSpec) {
  const SpecFile file = read_spec_string(R"(
# the Table 1 experiment
circuit     = mult16
source      = lfsr
patterns    = 1024
lfsr_seed   = 1981
observe     = progressive
strobe_step = 24
engine      = ppsfp_mt
threads     = 4
chips       = 277
yield       = 0.07
n0          = 8
lot_seed    = 1981
strobes     = 0.05 0.08, 0.10
method      = least_squares
targets     = 0.01 0.001
)");
  EXPECT_EQ(file.circuit, "mult16");
  const FlowSpec& spec = file.spec;
  EXPECT_EQ(spec.source.kind, "lfsr");
  EXPECT_EQ(spec.source.pattern_count, 1024u);
  EXPECT_EQ(spec.source.lfsr_seed, 1981u);
  EXPECT_EQ(spec.observe.kind, "progressive");
  EXPECT_EQ(spec.observe.strobe_step, 24u);
  EXPECT_EQ(spec.engine.kind, "ppsfp_mt");
  EXPECT_EQ(spec.engine.num_threads, 4u);
  EXPECT_EQ(spec.lot.chip_count, 277u);
  EXPECT_DOUBLE_EQ(spec.lot.yield, 0.07);
  EXPECT_DOUBLE_EQ(spec.lot.n0, 8.0);
  EXPECT_EQ(spec.lot.seed, 1981u);
  ASSERT_EQ(spec.analysis.strobe_coverages.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.analysis.strobe_coverages[1], 0.08);
  EXPECT_EQ(spec.analysis.method, "least_squares");
  ASSERT_EQ(spec.analysis.reject_targets.size(), 2u);
  // The parsed spec is runnable as-is.
  EXPECT_TRUE(validate(spec).empty());
}

TEST(SpecIo, DefaultsSurviveASparseFile) {
  const SpecFile file = read_spec_string("circuit = c17\n");
  EXPECT_EQ(file.circuit, "c17");
  EXPECT_EQ(file.spec.source.kind, "lfsr");
  EXPECT_EQ(file.spec.observe.kind, "full");
  EXPECT_EQ(file.spec.engine.kind, "ppsfp");
  EXPECT_EQ(file.spec.analysis.method, "given");
}

TEST(SpecIo, MisrKeysSelectTheSignaturePath) {
  const SpecFile file = read_spec_string(
      "observe = misr\nmisr_width = 8\nmisr_taps = 0xB8\n");
  EXPECT_EQ(file.spec.observe.kind, "misr");
  EXPECT_EQ(file.spec.observe.misr_width, 8);
  EXPECT_EQ(file.spec.observe.misr_taps, 0xB8u);
}

TEST(SpecIo, UnknownKeyNamesTheLine) {
  try {
    read_spec_string("source = lfsr\nbogus = 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), "spec line 2: unknown key 'bogus'");
  }
}

TEST(SpecIo, MalformedValueNamesKeyAndLine) {
  try {
    read_spec_string("patterns = lots\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()),
              "spec line 1: key 'patterns' needs an unsigned integer, got "
              "'lots'");
  }
}

TEST(SpecIo, NegativeIntegersAreRejectedNotWrapped) {
  // Regression: std::stoull wraps "-1" to 2^64 - 1; the parser must
  // reject it so 'threads = -1' cannot become an 18-quintillion-worker
  // pool request downstream.
  for (const char* line : {"threads = -1\n", "chips = -1\n",
                           "patterns = +3\n"}) {
    SCOPED_TRACE(line);
    EXPECT_THROW(read_spec_string(line), ParseError);
  }
}

TEST(SpecIo, MissingEqualsSignIsRejected) {
  EXPECT_THROW(read_spec_string("just some words\n"), ParseError);
  EXPECT_THROW(read_spec_string("chips =\n"), ParseError);
  EXPECT_THROW(read_spec_string("= 42\n"), ParseError);
}

TEST(SpecIo, CommentsAndBlankLinesAreIgnored) {
  const SpecFile file = read_spec_string(
      "\n# full-line comment\n  chips = 42  # trailing comment\n\n");
  EXPECT_EQ(file.spec.lot.chip_count, 42u);
}

TEST(SpecIo, WriteReadRoundTrip) {
  SpecFile original;
  original.circuit = "mult8";
  original.spec.source.kind = "lfsr";
  original.spec.source.pattern_count = 512;
  original.spec.source.lfsr_seed = 29;
  original.spec.observe.kind = "misr";
  original.spec.observe.misr_width = 8;
  original.spec.engine.kind = "ppsfp_mt";
  original.spec.engine.num_threads = 2;
  original.spec.lot.chip_count = 100;
  original.spec.lot.yield = 0.25;
  original.spec.lot.n0 = 4.0;
  original.spec.analysis.method = "given";

  const SpecFile parsed = read_spec_string(write_spec_string(original));
  EXPECT_EQ(parsed.circuit, "mult8");
  EXPECT_EQ(parsed.spec.source.pattern_count, 512u);
  EXPECT_EQ(parsed.spec.observe.kind, "misr");
  EXPECT_EQ(parsed.spec.observe.misr_width, 8);
  EXPECT_EQ(parsed.spec.engine.num_threads, 2u);
  EXPECT_DOUBLE_EQ(parsed.spec.lot.yield, 0.25);
}

TEST(SpecIo, FaultModelKeySelectsTheUniverse) {
  const SpecFile file =
      read_spec_string("circuit = c17\nfault_model = transition\n");
  EXPECT_EQ(file.spec.fault_model.kind, "transition");
  // Absent key = the stuck-at default.
  EXPECT_EQ(read_spec_string("circuit = c17\n").spec.fault_model.kind,
            "stuck_at");
}

TEST(SpecIo, AnalyzeKeysParseAndRoundTrip) {
  const SpecFile file = read_spec_string(
      "circuit = c17\n"
      "analyze_structure = warn\n"
      "analyze_dead_logic = error\n"
      "analyze_untestable = off\n"
      "analyze_testability = warn\n"
      "resistant_threshold = 0.01\n");
  EXPECT_EQ(file.spec.analyze.structure, "warn");
  EXPECT_EQ(file.spec.analyze.dead_logic, "error");
  EXPECT_EQ(file.spec.analyze.untestable, "off");
  EXPECT_EQ(file.spec.analyze.testability, "warn");
  EXPECT_DOUBLE_EQ(file.spec.analyze.resistant_threshold, 0.01);

  const SpecFile parsed = read_spec_string(write_spec_string(file));
  EXPECT_EQ(parsed.spec.analyze, file.spec.analyze);
}

TEST(SpecIo, DefaultAnalyzeKeysAreNotSerialized) {
  // A spec written before the analyze gate existed must stay
  // byte-identical through a round trip: default knobs are omitted.
  SpecFile plain;
  plain.circuit = "c17";
  const std::string text = write_spec_string(plain);
  EXPECT_EQ(text.find("analyze_"), std::string::npos) << text;
  EXPECT_EQ(text.find("resistant_threshold"), std::string::npos) << text;
  EXPECT_EQ(read_spec_string(text).spec.analyze, AnalyzeSpec{});
}

TEST(SpecIo, RoundTripCoversEveryEnumValueOfEveryAxis) {
  // write -> parse -> compare FULL FlowSpec equality for every selector
  // value of every axis ("explicit" has no text form and is covered by
  // ExplicitSourceHasNoTextForm). Non-default payload fields ride along so
  // the writer cannot silently drop a conditional block.
  const char* fault_models[] = {"stuck_at", "transition"};
  const char* sources[] = {"lfsr", "atpg", "file"};
  const char* observations[] = {"full", "progressive", "misr"};
  const char* engines[] = {"serial", "ppsfp", "ppsfp_mt"};
  const char* methods[] = {"given", "slope", "discrete", "least_squares"};

  for (const char* fault_model : fault_models) {
    for (const char* source : sources) {
      for (const char* observe : observations) {
        for (const char* engine : engines) {
          for (const char* method : methods) {
            SCOPED_TRACE(std::string(fault_model) + "/" + source + "/" +
                         observe + "/" + engine + "/" + method);
            SpecFile original;
            original.circuit = "adder8";
            original.spec.fault_model.kind = fault_model;
            original.spec.source.kind = source;
            original.spec.source.pattern_count = 777;
            original.spec.source.lfsr_width = 24;
            original.spec.source.lfsr_seed = 31;
            original.spec.source.atpg.random_patterns = 48;
            original.spec.source.atpg.seed = 5;
            original.spec.source.atpg.podem.use_implications = false;
            original.spec.source.atpg_compact = true;
            original.spec.source.file = "patterns.txt";
            original.spec.observe.kind = observe;
            original.spec.observe.strobe_step = 12;
            original.spec.observe.misr_width = 24;
            original.spec.observe.misr_taps = 0x870000;
            original.spec.engine.kind = engine;
            original.spec.engine.num_threads = 6;
            original.spec.lot.chip_count = 321;
            original.spec.lot.yield = 0.11;
            original.spec.lot.n0 = 5.5;
            original.spec.lot.seed = 77;
            original.spec.analysis.strobe_coverages = {0.1, 0.3, 0.6};
            original.spec.analysis.method = method;
            original.spec.analysis.reject_targets = {0.02, 0.002};

            const SpecFile parsed =
                read_spec_string(write_spec_string(original));
            EXPECT_EQ(parsed.circuit, original.circuit);

            // The writer only serializes fields the selected kinds use, so
            // compare against the original with unserialized conditional
            // fields reset to their defaults.
            FlowSpec expected = original.spec;
            const PatternSourceSpec source_defaults;
            if (expected.source.kind != "lfsr") {
              expected.source.pattern_count = source_defaults.pattern_count;
              expected.source.lfsr_width = source_defaults.lfsr_width;
              expected.source.lfsr_seed = source_defaults.lfsr_seed;
            }
            if (expected.source.kind != "atpg") {
              expected.source.atpg = source_defaults.atpg;
              expected.source.atpg_compact = source_defaults.atpg_compact;
            }
            if (expected.source.kind != "file") {
              expected.source.file = source_defaults.file;
            }
            const ObservationSpec observe_defaults;
            if (expected.observe.kind != "progressive") {
              expected.observe.strobe_step = observe_defaults.strobe_step;
            }
            if (expected.observe.kind != "misr") {
              expected.observe.misr_width = observe_defaults.misr_width;
              expected.observe.misr_taps = observe_defaults.misr_taps;
            }
            if (expected.engine.kind != "ppsfp_mt") {
              expected.engine.num_threads = EngineSpec{}.num_threads;
            }
            EXPECT_TRUE(parsed.spec == expected);
            // Serialization is a fixed point: writing the parsed spec
            // reproduces the text byte for byte.
            EXPECT_EQ(write_spec_string(parsed),
                      write_spec_string(original));
          }
        }
      }
    }
  }
}

TEST(SpecIo, ExplicitSourceHasNoTextForm) {
  SpecFile file;
  file.spec.source.kind = "explicit";
  EXPECT_THROW(write_spec_string(file), lsiq::Error);
}

TEST(SpecIo, CircuitFromNameBuildsGeneratorCircuits) {
  EXPECT_GT(circuit_from_name("c17").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("mult4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("adder8").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("alu4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("comparator4").gate_count(), 0u);
  EXPECT_GT(circuit_from_name("parity8").gate_count(), 0u);
}

TEST(SpecIo, DuplicateKeysAreRejectedWithBothLines) {
  // Silently letting the last value win turns a botched sweep edit into
  // a wrong experiment; the diagnostic names both occurrences.
  try {
    read_spec_string("chips = 100\nyield = 0.1\nchips = 200\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()),
              "spec line 3: duplicate key 'chips' (first set on line 1)");
    EXPECT_EQ(e.code(), ErrorCode::kParse);
  }
}

TEST(SpecIo, EmptySpecFileIsAParseErrorNotDefaults) {
  // Zero keys is a truncated or wrong file, not a request for the
  // all-defaults experiment.
  EXPECT_THROW(read_spec_string(""), ParseError);
  EXPECT_THROW(read_spec_string("\n\n# only comments\n"), ParseError);
}

TEST(SpecIo, ErrorsCarryTheirTaxonomyCode) {
  // Every failure class the flow layer surfaces is machine-triageable by
  // code, not by parsing what() text.
  try {
    read_spec_string("bogus = 1\n");
    FAIL() << "expected ParseError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    EXPECT_FALSE(e.transient());
  }
  try {
    read_spec_file("/no/such/dir/missing.spec");
    FAIL() << "expected IoError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_TRUE(e.transient());
  }
  try {
    circuit_from_name("warp9000x");
    FAIL() << "expected Error(kInvalidSpec)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidSpec);
    EXPECT_FALSE(e.transient());
  }
}

TEST(SpecIo, CircuitFromNameRejectsUnknownSelectors) {
  EXPECT_THROW(circuit_from_name("warp9000x"), lsiq::Error);
  EXPECT_THROW(circuit_from_name("mult"), lsiq::Error);
  EXPECT_THROW(circuit_from_name(""), lsiq::Error);
  // Regression: an overflowing numeric suffix must be an 'unknown
  // circuit' diagnostic, not an escaping std::out_of_range.
  EXPECT_THROW(circuit_from_name("mult99999999999999999999"), lsiq::Error);
}

}  // namespace
}  // namespace lsiq::flow
