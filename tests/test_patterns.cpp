// Unit tests for sim/pattern: the bit-packed pattern container.
#include "sim/pattern.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::sim {
namespace {

TEST(PatternSet, AppendAndReadBack) {
  PatternSet p(3);
  p.append({true, false, true});
  p.append({false, true, false});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.bit(0, 0));
  EXPECT_FALSE(p.bit(0, 1));
  EXPECT_TRUE(p.bit(0, 2));
  EXPECT_FALSE(p.bit(1, 0));
  EXPECT_TRUE(p.bit(1, 1));
  EXPECT_EQ(p.pattern(0), (std::vector<bool>{true, false, true}));
}

TEST(PatternSet, SetBitOverwrites) {
  PatternSet p(2);
  p.append({false, false});
  p.set_bit(0, 1, true);
  EXPECT_TRUE(p.bit(0, 1));
  p.set_bit(0, 1, false);
  EXPECT_FALSE(p.bit(0, 1));
}

TEST(PatternSet, BlockWordLayout) {
  PatternSet p(1);
  // Patterns 0..66: pattern i has input bit = (i % 3 == 0).
  for (int i = 0; i < 67; ++i) {
    p.append({i % 3 == 0});
  }
  EXPECT_EQ(p.block_count(), 2u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(((p.block_word(0, 0) >> i) & 1) != 0, i % 3 == 0);
  }
  for (int i = 64; i < 67; ++i) {
    EXPECT_EQ(((p.block_word(0, 1) >> (i - 64)) & 1) != 0, i % 3 == 0);
  }
}

TEST(PatternSet, BlockMaskCoversOnlyValidLanes) {
  PatternSet p(1);
  for (int i = 0; i < 70; ++i) p.append({true});
  EXPECT_EQ(p.block_mask(0), ~0ULL);
  EXPECT_EQ(p.block_mask(1), (1ULL << 6) - 1);
}

TEST(PatternSet, ExactMultipleOf64HasFullMask) {
  PatternSet p(1);
  for (int i = 0; i < 128; ++i) p.append({false});
  EXPECT_EQ(p.block_count(), 2u);
  EXPECT_EQ(p.block_mask(1), ~0ULL);
}

TEST(PatternSet, BlockWordsMatchPerInputWords) {
  util::Rng rng(1);
  PatternSet p(5);
  p.append_random(100, rng);
  for (std::size_t b = 0; b < p.block_count(); ++b) {
    const auto words = p.block_words(b);
    ASSERT_EQ(words.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(words[i], p.block_word(i, b));
    }
  }
}

TEST(PatternSet, RandomAppendIsDeterministicPerSeed) {
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  PatternSet a(4);
  PatternSet b(4);
  a.append_random(50, rng_a);
  b.append_random(50, rng_b);
  for (std::size_t p = 0; p < 50; ++p) {
    EXPECT_EQ(a.pattern(p), b.pattern(p));
  }
}

TEST(PatternSet, WeightedRandomRespectsBias) {
  util::Rng rng(7);
  PatternSet p(2);
  p.append_weighted_random(20000, {0.9, 0.1}, rng);
  std::size_t ones0 = 0;
  std::size_t ones1 = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p.bit(i, 0)) ++ones0;
    if (p.bit(i, 1)) ++ones1;
  }
  EXPECT_NEAR(static_cast<double>(ones0) / 20000.0, 0.9, 0.02);
  EXPECT_NEAR(static_cast<double>(ones1) / 20000.0, 0.1, 0.02);
}

TEST(PatternSet, SliceExtractsSubrange) {
  PatternSet p(2);
  for (int i = 0; i < 10; ++i) {
    p.append({i % 2 == 0, i % 3 == 0});
  }
  const PatternSet s = p.slice(4, 3);
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s.pattern(i), p.pattern(4 + i));
  }
}

TEST(PatternSet, WordLevelSliceMatchesBitByBitOnUnalignedRanges) {
  // slice() is now a word-level copy (shift + carry from the next source
  // word, partial-block tail mask); pin it against the old
  // pattern()/append() path on ranges that exercise every alignment
  // hazard: offsets straddling word boundaries, counts that end mid-word,
  // and slices whose source spans more blocks than the destination.
  util::Rng rng(4242);
  PatternSet p(5);
  p.append_random(517, rng);  // not a multiple of 64

  const auto slow_slice = [&p](std::size_t first, std::size_t count) {
    PatternSet out(p.input_count());
    for (std::size_t i = first; i < first + count; ++i) {
      out.append(p.pattern(i));
    }
    return out;
  };

  const std::size_t cases[][2] = {
      {0, 517},   // identity, partial final block
      {0, 64},    // aligned begin, aligned count
      {1, 63},    // offset 1, ends exactly on a word boundary
      {63, 2},    // straddles the first boundary
      {64, 64},   // aligned non-zero begin
      {65, 129},  // offset 1 into block 1, tail mid-word
      {100, 317}, // arbitrary unaligned everything
      {451, 66},  // runs into the partial final source block
      {516, 1},   // last pattern alone
      {300, 0},   // empty slice
  };
  for (const auto& [first, count] : cases) {
    EXPECT_EQ(p.slice(first, count), slow_slice(first, count))
        << "slice(" << first << ", " << count << ")";
  }
}

TEST(PatternSet, AppendAllConcatenates) {
  PatternSet a(2);
  a.append({true, false});
  PatternSet b(2);
  b.append({false, true});
  b.append({true, true});
  a.append_all(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.pattern(1), (std::vector<bool>{false, true}));
  EXPECT_EQ(a.pattern(2), (std::vector<bool>{true, true}));
}

TEST(PatternSet, ContractViolations) {
  PatternSet p(2);
  EXPECT_THROW(p.append({true}), ContractViolation);
  EXPECT_THROW((void)p.bit(0, 0), ContractViolation);  // empty set
  p.append({true, false});
  EXPECT_THROW((void)p.bit(1, 0), ContractViolation);
  EXPECT_THROW((void)p.bit(0, 2), ContractViolation);
  EXPECT_THROW((void)p.slice(0, 2), ContractViolation);
  EXPECT_THROW(PatternSet(0), ContractViolation);
  PatternSet other(3);
  EXPECT_THROW(p.append_all(other), ContractViolation);
}

}  // namespace
}  // namespace lsiq::sim
