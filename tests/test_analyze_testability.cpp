// Tests for the testability analyzer: COP probabilities hand-checked on
// small circuits, the resistant-fault ranking, and the headline validation
// — predicted random-pattern coverage must track measured fault-sim
// coverage on mult16 within 2 percentage points at 256 and 1024 patterns.
#include "analyze/testability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analyze/rule.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"

namespace lsiq::analyze {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

TEST(AnalyzeTestability, CopProbabilitiesOnAndGate) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
  c.mark_output(x);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);

  ASSERT_EQ(report.signal_probability.size(), c.gate_count());
  EXPECT_DOUBLE_EQ(report.signal_probability[a], 0.5);
  EXPECT_DOUBLE_EQ(report.signal_probability[b], 0.5);
  EXPECT_DOUBLE_EQ(report.signal_probability[x], 0.25);

  // x is observed; a propagates iff the side pin b is at 1.
  EXPECT_DOUBLE_EQ(report.observe_probability[x], 1.0);
  EXPECT_DOUBLE_EQ(report.observe_probability[a], 0.5);
  EXPECT_DOUBLE_EQ(report.observe_probability[b], 0.5);
}

TEST(AnalyzeTestability, CopProbabilitiesThroughGateTypes) {
  // or(a,b) = 0.75; xor always propagates; not inverts.
  Circuit c("mixed");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId o = c.add_gate(GateType::kOr, {a, b}, "o");
  const GateId n = c.add_gate(GateType::kNot, {o}, "n");
  const GateId p = c.add_input("p");
  const GateId xo = c.add_gate(GateType::kXor, {n, p}, "xo");
  c.mark_output(xo);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);

  EXPECT_DOUBLE_EQ(report.signal_probability[o], 0.75);
  EXPECT_DOUBLE_EQ(report.signal_probability[n], 0.25);
  EXPECT_DOUBLE_EQ(report.signal_probability[xo], 0.5);

  // XOR propagates unconditionally, NOT too; an OR side pin must be 0.
  EXPECT_DOUBLE_EQ(report.observe_probability[n], 1.0);
  EXPECT_DOUBLE_EQ(report.observe_probability[o], 1.0);
  EXPECT_DOUBLE_EQ(report.observe_probability[a], 0.5);
}

TEST(AnalyzeTestability, DffBoundariesAreScanAccessible) {
  // Full-scan model: a DFF output is a 0.5-probability pseudo-input and
  // its D driver is a directly observed point.
  Circuit c("scan");
  const GateId a = c.add_input("a");
  const GateId d = c.add_dff("d");
  const GateId x = c.add_gate(GateType::kAnd, {a, d}, "x");
  c.connect_dff(d, x);
  c.mark_output(x);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);
  EXPECT_DOUBLE_EQ(report.signal_probability[d], 0.5);
  EXPECT_DOUBLE_EQ(report.observe_probability[x], 1.0);
}

TEST(AnalyzeTestability, PredictedCoverageIsMonotoneAndBounded) {
  const Circuit c = circuit::make_c17();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);
  EXPECT_DOUBLE_EQ(report.predicted_coverage(0), 0.0);
  double previous = 0.0;
  for (const std::size_t n : {1u, 4u, 16u, 64u, 256u}) {
    const double coverage = report.predicted_coverage(n);
    EXPECT_GE(coverage, previous);
    EXPECT_LE(coverage, 1.0);
    previous = coverage;
  }
  // c17 is small and random-testable: 256 patterns all but saturate it.
  EXPECT_GT(previous, 0.99);
}

TEST(AnalyzeTestability, EquivalentFaultsPriceTheClassConsistently) {
  // AND input s-a-0 and output s-a-0 are structurally equivalent; the
  // detection probability must not depend on which survived collapsing:
  // both give p1(a) * p1(b) = product over all pins.
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
  c.mark_output(x);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);
  for (std::size_t i = 0; i < faults.class_count(); ++i) {
    const fault::Fault& fault = faults.representatives()[i];
    if (fault::fault_line(c, fault) == x && !fault.stuck_at_one) {
      // Output stuck-at-0: activation 0.25, observed directly.
      EXPECT_DOUBLE_EQ(report.detection_probability[i], 0.25);
    }
  }
}

TEST(AnalyzeTestability, ResistantClassesRankHardestFirst) {
  // A 12-input AND hides its stem s-a-1-side faults at 2^-12; everything
  // in c17-like shallow logic clears 1e-3 easily.
  Circuit c("and12");
  std::vector<GateId> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(c.add_input("a" + std::to_string(i)));
  }
  const GateId x = c.add_gate(GateType::kAnd, inputs, "x");
  c.mark_output(x);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);

  const double hard = std::pow(0.5, 12);  // P(all 12 inputs at 1)
  const std::vector<std::size_t> resistant =
      report.resistant_classes(1e-3);
  ASSERT_FALSE(resistant.empty());
  // The hardest class is the all-ones activation; detection 2^-12.
  EXPECT_NEAR(report.detection_probability[resistant.front()], hard,
              1e-12);
  for (std::size_t k = 1; k < resistant.size(); ++k) {
    EXPECT_LE(report.detection_probability[resistant[k - 1]],
              report.detection_probability[resistant[k]]);
  }

  const std::vector<ResistantFault> entries =
      resistant_faults(faults, report, 1e-3, 8);
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.front().class_index, resistant.front());
  EXPECT_GT(entries.front().scoap_cost, 0u);
  EXPECT_NEAR(entries.front().detection_probability, hard, 1e-12);
}

TEST(AnalyzeTestability, DiagnosticsNameTheFaultAndProbability) {
  Circuit c("and12");
  std::vector<GateId> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(c.add_input("a" + std::to_string(i)));
  }
  const GateId x = c.add_gate(GateType::kAnd, inputs, "x");
  c.mark_output(x);
  c.finalize();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);

  Options options;
  options.testability = Policy::kWarn;
  options.resistant_threshold = 1e-3;
  options.max_per_rule = 1;  // force the overflow summary
  const std::vector<Diagnostic> diagnostics =
      testability_diagnostics(faults, report, options);
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, Rule::kResistantFault);
  EXPECT_EQ(diagnostics[0].severity, Policy::kWarn);
  // The hardest class is the 2^-12 = 2.44e-04 one; the message carries
  // the probability, the threshold and the class weight.
  const std::string& message = diagnostics[0].message;
  EXPECT_NE(message.find("random-pattern detection probability 2.44e-04"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("is below the threshold 1.00e-03"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("(class of "), std::string::npos) << message;
  // Overflow summary.
  EXPECT_TRUE(diagnostics[1].object.empty());
  EXPECT_NE(diagnostics[1].message.find(
                "more resistant_fault findings suppressed"),
            std::string::npos);

  options.testability = Policy::kOff;
  EXPECT_TRUE(testability_diagnostics(faults, report, options).empty());
}

TEST(AnalyzeTestability, TransitionUniverseIsAnalyzable) {
  const Circuit c = circuit::make_c17();
  const fault::FaultList faults = fault::FaultList::transition_universe(c);
  const TestabilityReport report = analyze_testability(faults);
  ASSERT_EQ(report.detection_probability.size(), faults.class_count());
  for (const double d : report.detection_probability) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(AnalyzeTestability, PredictionTracksMeasuredCoverageOnMult16) {
  // The acceptance criterion: on the 16-bit array multiplier, the COP
  // prediction must sit within 2 percentage points of measured PPSFP
  // coverage at 256 and 1024 LFSR patterns.
  const Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);

  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 1024);
  const fault::FaultSimResult graded =
      fault::simulate_ppsfp(faults, patterns);
  const fault::CoverageCurve curve = graded.curve(faults, patterns.size());

  for (const std::size_t n : {256u, 1024u}) {
    SCOPED_TRACE(n);
    const double predicted = report.predicted_coverage(n);
    const double measured = curve.coverage_after(n);
    EXPECT_NEAR(predicted, measured, 0.02)
        << "predicted " << predicted << " vs measured " << measured;
  }
}

TEST(AnalyzeTestability, ScoapReportIsPopulated) {
  const Circuit c = circuit::make_c17();
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const TestabilityReport report = analyze_testability(faults);
  ASSERT_EQ(report.scoap.cc0.size(), c.gate_count());
  ASSERT_EQ(report.scoap.cc1.size(), c.gate_count());
  ASSERT_EQ(report.scoap.observability.size(), c.gate_count());
  EXPECT_EQ(report.fault_count, faults.fault_count());
}

}  // namespace
}  // namespace lsiq::analyze
