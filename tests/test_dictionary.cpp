// Tests for the fault dictionary and diagnosis.
#include "fault/dictionary.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using sim::PatternSet;

struct Setup {
  const Circuit& circuit;
  const FaultList& faults;
  const PatternSet& patterns;
  const FaultDictionary& dictionary;
};

const Setup& setup() {
  static const Circuit circuit = circuit::make_alu(3);
  static const FaultList faults = FaultList::full_universe(circuit);
  static const PatternSet patterns =
      tpg::lfsr_patterns(circuit.pattern_inputs().size(), 192, 77);
  static const FaultDictionary dictionary =
      FaultDictionary::build(faults, patterns);
  static const Setup s{circuit, faults, patterns, dictionary};
  return s;
}

TEST(Dictionary, ShapeMatchesInputs) {
  EXPECT_EQ(setup().dictionary.class_count(), setup().faults.class_count());
  EXPECT_EQ(setup().dictionary.pattern_count(), setup().patterns.size());
}

TEST(Dictionary, FirstSetBitMatchesFaultSimulator) {
  // The dictionary is a no-drop fault simulation: its first set bit per
  // class must equal the (dropping) simulator's first_detection.
  const FaultSimResult r =
      simulate_ppsfp(setup().faults, setup().patterns);
  for (std::size_t cl = 0; cl < setup().faults.class_count(); ++cl) {
    std::int64_t first = -1;
    for (std::size_t t = 0; t < setup().patterns.size(); ++t) {
      if (setup().dictionary.detects(cl, t)) {
        first = static_cast<std::int64_t>(t);
        break;
      }
    }
    EXPECT_EQ(first, r.first_detection[cl])
        << fault_name(setup().circuit,
                      setup().faults.representatives()[cl]);
  }
}

TEST(Dictionary, SelfDiagnosisIsExact) {
  // Present each detected class's own signature: the class itself (or a
  // signature-equivalent one) must rank first with score 1.
  const auto& d = setup().dictionary;
  std::size_t checked = 0;
  for (std::size_t cl = 0; cl < d.class_count() && checked < 40; ++cl) {
    std::vector<bool> observed(d.pattern_count(), false);
    bool any = false;
    for (std::size_t t = 0; t < d.pattern_count(); ++t) {
      if (d.detects(cl, t)) {
        observed[t] = true;
        any = true;
      }
    }
    if (!any) continue;
    ++checked;
    const auto candidates = d.diagnose(observed, 3);
    ASSERT_FALSE(candidates.empty());
    EXPECT_DOUBLE_EQ(candidates.front().score, 1.0);
    // The top candidate must have the identical signature.
    EXPECT_EQ(d.signature(candidates.front().class_index), d.signature(cl));
  }
  EXPECT_EQ(checked, 40u);
}

TEST(Dictionary, NoisyObservationStillRanksTrueFaultHighly) {
  // Drop one failing pattern from the observation (tester marginality):
  // the true class should still appear in the top 3.
  const auto& d = setup().dictionary;
  std::size_t hits = 0;
  std::size_t tried = 0;
  for (std::size_t cl = 0; cl < d.class_count() && tried < 25; ++cl) {
    std::vector<bool> observed(d.pattern_count(), false);
    std::size_t fails = 0;
    for (std::size_t t = 0; t < d.pattern_count(); ++t) {
      if (d.detects(cl, t)) {
        observed[t] = true;
        ++fails;
      }
    }
    if (fails < 3) continue;
    ++tried;
    // Remove the first failing pattern.
    for (std::size_t t = 0; t < d.pattern_count(); ++t) {
      if (observed[t]) {
        observed[t] = false;
        break;
      }
    }
    const auto candidates = d.diagnose(observed, 3);
    for (const auto& cand : candidates) {
      if (d.signature(cand.class_index) == d.signature(cl)) {
        ++hits;
        break;
      }
    }
  }
  ASSERT_EQ(tried, 25u);
  EXPECT_GE(hits, 23u);  // allow a couple of pathological overlaps
}

TEST(Dictionary, AllPassObservationReturnsNothing) {
  const std::vector<bool> clean(setup().dictionary.pattern_count(), false);
  EXPECT_TRUE(setup().dictionary.diagnose(clean, 5).empty());
}

TEST(Dictionary, DiagnosticResolutionIsReported) {
  const std::size_t distinct =
      setup().dictionary.distinct_signature_count();
  EXPECT_GT(distinct, setup().faults.class_count() / 2);
  EXPECT_LE(distinct, setup().faults.class_count());
}

TEST(Dictionary, RespectsStrobeSchedule) {
  const Circuit& c = setup().circuit;
  const StrobeSchedule schedule =
      StrobeSchedule::progressive(c.observed_points().size(), 11);
  const FaultDictionary scheduled =
      FaultDictionary::build(setup().faults, setup().patterns, &schedule);
  const FaultSimResult r =
      simulate_ppsfp(setup().faults, setup().patterns, &schedule);
  for (std::size_t cl = 0; cl < setup().faults.class_count(); ++cl) {
    std::int64_t first = -1;
    for (std::size_t t = 0; t < setup().patterns.size(); ++t) {
      if (scheduled.detects(cl, t)) {
        first = static_cast<std::int64_t>(t);
        break;
      }
    }
    EXPECT_EQ(first, r.first_detection[cl]);
  }
}

TEST(Dictionary, DomainChecks) {
  EXPECT_THROW(
      setup().dictionary.diagnose(std::vector<bool>(3, false), 1),
      ContractViolation);
  EXPECT_THROW((void)setup().dictionary.signature(1u << 30),
               ContractViolation);
  PatternSet empty(setup().circuit.pattern_inputs().size());
  EXPECT_THROW(FaultDictionary::build(setup().faults, empty),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::fault
