// Tests for the text pattern format.
#include "sim/pattern_io.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::sim {
namespace {

TEST(PatternIo, RoundTripRandomSet) {
  util::Rng rng(3);
  PatternSet original(7);
  original.append_random(123, rng);
  const PatternSet reparsed =
      read_patterns_string(write_patterns_string(original));
  ASSERT_EQ(reparsed.size(), original.size());
  ASSERT_EQ(reparsed.input_count(), original.input_count());
  for (std::size_t p = 0; p < original.size(); ++p) {
    EXPECT_EQ(reparsed.pattern(p), original.pattern(p));
  }
}

TEST(PatternIo, WriteFormatIsStable) {
  PatternSet p(3);
  p.append({true, false, true});
  p.append({false, false, true});
  EXPECT_EQ(write_patterns_string(p),
            "# lsiq patterns inputs=3\n101\n001\n");
}

TEST(PatternIo, EmptySetRoundTrips) {
  PatternSet p(4);
  const PatternSet reparsed =
      read_patterns_string(write_patterns_string(p));
  EXPECT_EQ(reparsed.size(), 0u);
  EXPECT_EQ(reparsed.input_count(), 4u);
}

TEST(PatternIo, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# lsiq patterns inputs=2\n\n# a comment\n10\n\n01\n";
  const PatternSet p = read_patterns_string(text);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.bit(0, 0));
  EXPECT_FALSE(p.bit(0, 1));
}

TEST(PatternIo, ParseErrors) {
  EXPECT_THROW(read_patterns_string(""), ParseError);
  EXPECT_THROW(read_patterns_string("10\n01\n"), ParseError);  // no header
  EXPECT_THROW(read_patterns_string("# lsiq patterns\n10\n"), ParseError);
  EXPECT_THROW(read_patterns_string("# lsiq patterns inputs=2\n101\n"),
               ParseError);  // ragged line
  EXPECT_THROW(read_patterns_string("# lsiq patterns inputs=2\n1x\n"),
               ParseError);  // bad character
  EXPECT_THROW(read_patterns_string("# lsiq patterns inputs=0\n"),
               ParseError);
}

TEST(PatternIo, FileRoundTrip) {
  util::Rng rng(9);
  PatternSet original(5);
  original.append_random(40, rng);
  const std::string path = ::testing::TempDir() + "/lsiq_patterns.txt";
  write_patterns_file(original, path);
  const PatternSet reparsed = read_patterns_file(path);
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t p = 0; p < original.size(); ++p) {
    EXPECT_EQ(reparsed.pattern(p), original.pattern(p));
  }
}

TEST(PatternIo, MissingFileThrows) {
  // File-access failures are IoError (ErrorCode::kIo, classified
  // transient for the batch retry policy), not parse errors.
  try {
    read_patterns_file("/nonexistent/dir/p.txt");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_TRUE(e.transient());
  }
}

}  // namespace
}  // namespace lsiq::sim
