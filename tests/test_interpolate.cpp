// Unit tests for util/interpolate.
#include "util/interpolate.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(Interpolator, ExactAtKnots) {
  const LinearInterpolator f({0.0, 1.0, 3.0}, {10.0, 20.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f(1.0), 20.0);
  EXPECT_DOUBLE_EQ(f(3.0), 0.0);
}

TEST(Interpolator, LinearBetweenKnots) {
  const LinearInterpolator f({0.0, 2.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(f(0.5), 2.5);
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 7.5);
}

TEST(Interpolator, ClampsOutsideDomain) {
  const LinearInterpolator f({1.0, 2.0}, {5.0, 9.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(3.0), 9.0);
}

TEST(Interpolator, SingleKnotIsConstant) {
  const LinearInterpolator f({1.0}, {42.0});
  EXPECT_DOUBLE_EQ(f(0.0), 42.0);
  EXPECT_DOUBLE_EQ(f(1.0), 42.0);
  EXPECT_DOUBLE_EQ(f(2.0), 42.0);
}

TEST(Interpolator, InverseOfMonotoneCurve) {
  const LinearInterpolator f({0.0, 10.0, 20.0}, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 5.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.5), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.75), 15.0);
}

TEST(Interpolator, InverseClampsOutsideRange) {
  const LinearInterpolator f({0.0, 1.0}, {0.2, 0.8});
  EXPECT_DOUBLE_EQ(f.inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 1.0);
}

TEST(Interpolator, InverseOnFlatSegmentReturnsEarliestX) {
  // Coverage curves plateau; the inverse should give the first pattern
  // index reaching the plateau value.
  const LinearInterpolator f({0.0, 1.0, 2.0, 3.0}, {0.0, 0.5, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(f.inverse(0.5), 1.0);
}

TEST(Interpolator, RoundTripThroughInverse) {
  const LinearInterpolator f({0.0, 4.0, 8.0}, {0.0, 0.6, 1.0});
  for (double y = 0.05; y < 1.0; y += 0.1) {
    EXPECT_NEAR(f(f.inverse(y)), y, 1e-12);
  }
}

TEST(Interpolator, RejectsMalformedInput) {
  EXPECT_THROW(LinearInterpolator({}, {}), ContractViolation);
  EXPECT_THROW(LinearInterpolator({0.0, 0.0}, {1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(LinearInterpolator({1.0, 0.0}, {1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(LinearInterpolator({0.0, 1.0}, {1.0}), ContractViolation);
}

}  // namespace
}  // namespace lsiq::util
