// CompiledCircuit tests: the CSR topology against the Circuit observers it
// was compiled from, the evaluation-order invariants the sweep kernels
// rely on, the observed-point index map, and word-level evaluation parity
// with the id-indexed reference evaluators.
#include "circuit/compiled.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "circuit/generators.hpp"
#include "sim/parallel_sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::circuit {
namespace {

std::vector<Circuit> layout_circuits() {
  std::vector<Circuit> circuits;
  circuits.push_back(make_c17());
  circuits.push_back(make_ripple_carry_adder(8));
  circuits.push_back(make_alu(4));
  circuits.push_back(make_scan_accumulator(8));
  circuits.push_back(make_mux_tree(3));
  RandomDagSpec spec;
  spec.inputs = 12;
  spec.gates = 150;
  spec.seed = 7;
  circuits.push_back(make_random_dag(spec));
  return circuits;
}

TEST(CompiledCircuit, CsrTopologyMatchesCircuitObservers) {
  for (const Circuit& c : layout_circuits()) {
    const CompiledCircuit compiled(c);
    ASSERT_EQ(compiled.node_count(), c.gate_count()) << c.name();
    for (GateId id = 0; id < c.gate_count(); ++id) {
      const Gate& g = c.gate(id);
      EXPECT_EQ(compiled.type(id), g.type) << c.name();
      EXPECT_EQ(compiled.level(id), g.level) << c.name();
      ASSERT_EQ(compiled.fanin_count(id), g.fanin.size()) << c.name();
      for (std::size_t i = 0; i < g.fanin.size(); ++i) {
        EXPECT_EQ(compiled.fanin(id)[i], g.fanin[i]) << c.name();
      }
      ASSERT_EQ(compiled.fanout_count(id), g.fanout.size()) << c.name();
      for (std::size_t i = 0; i < g.fanout.size(); ++i) {
        EXPECT_EQ(compiled.fanout(id)[i], g.fanout[i]) << c.name();
      }
    }
    EXPECT_EQ(compiled.pattern_inputs(), c.pattern_inputs()) << c.name();
    EXPECT_EQ(compiled.observed_points(), c.observed_points()) << c.name();
    EXPECT_EQ(&compiled.source(), &c);
  }
}

TEST(CompiledCircuit, EvalOrderCoversNonSourcesInLevelOrder) {
  for (const Circuit& c : layout_circuits()) {
    const CompiledCircuit compiled(c);
    // Exactly the non-source gates, each once.
    std::vector<char> seen(c.gate_count(), 0);
    std::uint32_t previous_level = 0;
    for (const GateId id : compiled.eval_order()) {
      EXPECT_NE(compiled.type(id), GateType::kInput) << c.name();
      EXPECT_NE(compiled.type(id), GateType::kDff) << c.name();
      EXPECT_EQ(seen[id], 0) << c.name();
      seen[id] = 1;
      EXPECT_GE(compiled.level(id), previous_level)
          << c.name() << ": eval_order not level-sorted";
      previous_level = compiled.level(id);
    }
    for (GateId id = 0; id < c.gate_count(); ++id) {
      const bool source = compiled.type(id) == GateType::kInput ||
                          compiled.type(id) == GateType::kDff;
      EXPECT_EQ(seen[id] != 0, !source) << c.name();
    }
    // Level boundaries delimit exactly the gates at each level.
    for (std::size_t level = 0; level <= compiled.depth() + 1; ++level) {
      const std::size_t begin = compiled.eval_level_begin(level);
      ASSERT_LE(begin, compiled.eval_order().size()) << c.name();
      for (std::size_t i = 0; i < compiled.eval_order().size(); ++i) {
        const bool at_or_above =
            compiled.level(compiled.eval_order()[i]) >= level;
        EXPECT_EQ(i >= begin, at_or_above) << c.name();
      }
    }
  }
}

TEST(CompiledCircuit, PointIndexMapsOutputsAndScanCaptures) {
  for (const Circuit& c : layout_circuits()) {
    const CompiledCircuit compiled(c);
    const std::size_t num_po = c.primary_outputs().size();
    for (std::size_t i = 0; i < num_po; ++i) {
      const GateId point = c.primary_outputs()[i];
      const std::uint32_t index = compiled.point_index(point);
      ASSERT_NE(index, CompiledCircuit::kNoPoint) << c.name();
      // First occurrence wins when a gate is marked once but referenced
      // again as a scan capture.
      EXPECT_EQ(c.observed_points()[index], point) << c.name();
      EXPECT_LE(index, i) << c.name();
    }
    for (std::size_t i = 0; i < c.flip_flops().size(); ++i) {
      EXPECT_EQ(compiled.point_index(c.flip_flops()[i]), num_po + i)
          << c.name() << ": flip-flop pseudo output index";
    }
    for (GateId id = 0; id < c.gate_count(); ++id) {
      const bool observed =
          std::find(c.observed_points().begin(), c.observed_points().end(),
                    id) != c.observed_points().end() ||
          std::find(c.flip_flops().begin(), c.flip_flops().end(), id) !=
              c.flip_flops().end();
      if (!observed) {
        EXPECT_EQ(compiled.point_index(id), CompiledCircuit::kNoPoint)
            << c.name();
      }
    }
  }
}

TEST(CompiledCircuit, DffChainMapsEachFlipFlopToItsOwnCapture) {
  // ff1 feeds ff2's D input: ff1 is both a pattern source and the observed
  // capture gate of ff2, but point_index(ff1) must still name ff1's own
  // pseudo output.
  Circuit c("ffchain");
  const GateId a = c.add_input("a");
  const GateId ff1 = c.add_dff("ff1");
  const GateId ff2 = c.add_dff("ff2");
  const GateId d1 = c.add_gate(GateType::kBuf, {a}, "d1");
  c.connect_dff(ff1, d1);
  c.connect_dff(ff2, ff1);
  const GateId y = c.add_gate(GateType::kOr, {ff1, ff2}, "y");
  c.mark_output(y);
  c.finalize();

  const CompiledCircuit compiled(c);
  const std::size_t num_po = c.primary_outputs().size();
  EXPECT_EQ(compiled.point_index(ff1), num_po + 0);
  EXPECT_EQ(compiled.point_index(ff2), num_po + 1);
}

TEST(CompiledCircuit, EvalWordMatchesReferenceEvaluator) {
  for (const Circuit& c : layout_circuits()) {
    const CompiledCircuit compiled(c);
    util::Rng rng(99);
    std::vector<std::uint64_t> values(c.gate_count());
    for (auto& v : values) v = rng.next_u64();
    for (const GateId id : compiled.eval_order()) {
      EXPECT_EQ(compiled.eval_word(id, values.data()),
                sim::eval_gate_word(c, id, values))
          << c.name() << " gate " << c.gate(id).name;
      for (std::size_t pin = 0; pin < compiled.fanin_count(id); ++pin) {
        for (const std::uint64_t forced : {0ULL, ~0ULL}) {
          EXPECT_EQ(compiled.eval_word_with_pin(id, values.data(),
                                                static_cast<std::int32_t>(pin),
                                                forced),
                    sim::eval_gate_word_with_pin(c, id, values,
                                                 static_cast<int>(pin),
                                                 forced))
              << c.name() << " gate " << c.gate(id).name << " pin " << pin;
        }
      }
    }
  }
}

/// Reference block evaluation straight off the Circuit container.
std::vector<std::uint64_t> reference_block(
    const Circuit& c, const std::vector<std::uint64_t>& input_words) {
  std::vector<std::uint64_t> values(c.gate_count(), 0);
  for (std::size_t i = 0; i < c.pattern_inputs().size(); ++i) {
    values[c.pattern_inputs()[i]] = input_words[i];
  }
  for (const GateId id : c.topological_order()) {
    const Gate& g = c.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    values[id] = sim::eval_gate_word(c, id, values);
  }
  return values;
}

TEST(CompiledCircuit, EvalSuffixFullSweepMatchesReferenceSimulation) {
  for (const Circuit& c : layout_circuits()) {
    const CompiledCircuit compiled(c);
    util::Rng rng(2024);
    std::vector<std::uint64_t> input_words(c.pattern_inputs().size());
    for (auto& w : input_words) w = rng.next_u64();

    const std::vector<std::uint64_t> expected = reference_block(c, input_words);
    std::vector<std::uint64_t> values(c.gate_count(), 0);
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      values[c.pattern_inputs()[i]] = input_words[i];
    }
    compiled.eval_suffix(0, values.data());
    EXPECT_EQ(values, expected) << c.name();
  }
}

TEST(CompiledCircuit, EvalSuffixRecomputesPollutedSuffix) {
  const Circuit c = make_alu(4);
  const CompiledCircuit compiled(c);
  util::Rng rng(5);
  std::vector<std::uint64_t> input_words(c.pattern_inputs().size());
  for (auto& w : input_words) w = rng.next_u64();
  std::vector<std::uint64_t> values(c.gate_count(), 0);
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    values[c.pattern_inputs()[i]] = input_words[i];
  }
  compiled.eval_suffix(0, values.data());
  const std::vector<std::uint64_t> expected = values;

  for (std::size_t level = 0; level <= compiled.depth() + 1; ++level) {
    std::vector<std::uint64_t> polluted = expected;
    for (const GateId id : compiled.eval_order()) {
      if (compiled.level(id) >= level) polluted[id] ^= 0xdeadbeefULL;
    }
    compiled.eval_suffix(level, polluted.data());
    EXPECT_EQ(polluted, expected) << c.name() << " from level " << level;
  }
}

TEST(CompiledCircuit, EvalSuffixSkipPreservesInjectedValue) {
  // y = AND(a, b); force y's value and check that (a) the sweep keeps it
  // and (b) downstream consumers read the injection.
  Circuit c("inject");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  const GateId z = c.add_gate(GateType::kNot, {y}, "z");
  c.mark_output(z);
  c.finalize();
  const CompiledCircuit compiled(c);

  std::vector<std::uint64_t> values(c.gate_count(), 0);
  values[a] = ~0ULL;
  values[b] = ~0ULL;
  values[y] = 0x0f0fULL;  // injected, contradicts AND(a, b) = ~0
  compiled.eval_suffix(0, values.data(), y);
  EXPECT_EQ(values[y], 0x0f0fULL);
  EXPECT_EQ(values[z], ~0x0f0fULL);
}

TEST(CompiledCircuit, RequiresFinalizedCircuit) {
  Circuit c("unfinalized");
  c.add_input("a");
  EXPECT_THROW(CompiledCircuit{c}, Error);
}

}  // namespace
}  // namespace lsiq::circuit
