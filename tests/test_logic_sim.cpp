// Tests for the parallel-pattern and event-driven logic simulators,
// including the cross-check property between the two engines.
#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "sim/event_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/pattern.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::sim {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

TEST(ParallelSim, EvaluatesEveryGateTypeWordwise) {
  Circuit c("alltypes");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId g_and = c.add_gate(GateType::kAnd, {a, b}, "and");
  const GateId g_nand = c.add_gate(GateType::kNand, {a, b}, "nand");
  const GateId g_or = c.add_gate(GateType::kOr, {a, b}, "or");
  const GateId g_nor = c.add_gate(GateType::kNor, {a, b}, "nor");
  const GateId g_xor = c.add_gate(GateType::kXor, {a, b}, "xor");
  const GateId g_xnor = c.add_gate(GateType::kXnor, {a, b}, "xnor");
  const GateId g_not = c.add_gate(GateType::kNot, {a}, "not");
  const GateId g_buf = c.add_gate(GateType::kBuf, {b}, "buf");
  const GateId zero = c.add_gate(GateType::kConst0, {}, "zero");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  for (const GateId g :
       {g_and, g_nand, g_or, g_nor, g_xor, g_xnor, g_not, g_buf, zero, one}) {
    c.mark_output(g);
  }
  c.finalize();

  ParallelSimulator sim(c);
  const std::uint64_t wa = 0b0101;
  const std::uint64_t wb = 0b0011;
  sim.simulate_block({wa, wb});
  EXPECT_EQ(sim.value(g_and) & 0xF, (wa & wb) & 0xF);
  EXPECT_EQ(sim.value(g_nand) & 0xF, ~(wa & wb) & 0xF);
  EXPECT_EQ(sim.value(g_or) & 0xF, (wa | wb) & 0xF);
  EXPECT_EQ(sim.value(g_nor) & 0xF, ~(wa | wb) & 0xF);
  EXPECT_EQ(sim.value(g_xor) & 0xF, (wa ^ wb) & 0xF);
  EXPECT_EQ(sim.value(g_xnor) & 0xF, ~(wa ^ wb) & 0xF);
  EXPECT_EQ(sim.value(g_not) & 0xF, ~wa & 0xF);
  EXPECT_EQ(sim.value(g_buf) & 0xF, wb & 0xF);
  EXPECT_EQ(sim.value(zero), 0u);
  EXPECT_EQ(sim.value(one), ~0ULL);
}

TEST(ParallelSim, SixtyFourLanesAreIndependent) {
  // Feed each lane a different (a, b) pair and check the AND lane by lane.
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();

  util::Rng rng(3);
  const std::uint64_t wa = rng.next_u64();
  const std::uint64_t wb = rng.next_u64();
  ParallelSimulator sim(c);
  sim.simulate_block({wa, wb});
  for (int lane = 0; lane < 64; ++lane) {
    const bool expect = ((wa >> lane) & 1) && ((wb >> lane) & 1);
    EXPECT_EQ(((sim.value(y) >> lane) & 1) != 0, expect) << "lane " << lane;
  }
}

TEST(ParallelSim, SimulateSingleMatchesBlockLane0) {
  const Circuit c = circuit::make_c17();
  ParallelSimulator sim(c);
  for (std::uint64_t x = 0; x < 32; ++x) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = ((x >> i) & 1) != 0;
    const std::vector<bool> single = sim.simulate_single(in);

    std::vector<std::uint64_t> words(5);
    for (int i = 0; i < 5; ++i) words[i] = in[i] ? 1 : 0;
    sim.simulate_block(words);
    const auto observed = sim.observed_values();
    for (std::size_t o = 0; o < observed.size(); ++o) {
      EXPECT_EQ((observed[o] & 1) != 0, single[o]);
    }
  }
}

TEST(ParallelSim, DffOutputIsPatternControlled) {
  Circuit c("seq");
  const GateId a = c.add_input("a");
  const GateId ff = c.add_dff("ff");
  const GateId x = c.add_gate(GateType::kXor, {a, ff}, "x");
  c.connect_dff(ff, x);
  c.mark_output(x);
  c.finalize();

  ParallelSimulator sim(c);
  // Pattern inputs are [a, ff]; XOR truth table across four lanes.
  sim.simulate_block({0b0101, 0b0011});
  EXPECT_EQ(sim.value(x) & 0xF, 0b0110u);
  // Observed points: PO x and the D input of ff (also x).
  const auto observed = sim.observed_values();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], observed[1]);
}

TEST(ParallelSim, RejectsWrongInputWordCount) {
  const Circuit c = circuit::make_c17();
  ParallelSimulator sim(c);
  EXPECT_THROW(sim.simulate_block({0, 0}), ContractViolation);
}

TEST(EventSim, MatchesParallelOnC17Exhaustively) {
  const Circuit c = circuit::make_c17();
  ParallelSimulator psim(c);
  EventSimulator esim(c);
  for (std::uint64_t x = 0; x < 32; ++x) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = ((x >> i) & 1) != 0;
    const std::vector<bool> expect = psim.simulate_single(in);
    esim.apply(in);
    EXPECT_EQ(esim.observed_values(), expect) << "x=" << x;
  }
}

TEST(EventSim, IncrementalSingleBitFlips) {
  const Circuit c = circuit::make_parity_tree(16);
  ParallelSimulator psim(c);
  EventSimulator esim(c);

  std::vector<bool> in(16, false);
  esim.apply(in);
  util::Rng rng(9);
  for (int step = 0; step < 200; ++step) {
    const std::size_t bit = rng.uniform_below(16);
    in[bit] = !in[bit];
    esim.set_input(bit, in[bit]);
    EXPECT_EQ(esim.observed_values(), psim.simulate_single(in));
  }
}

TEST(EventSim, ActivityIsSparseForLocalChanges) {
  // Flipping one input of a wide parity tree touches one root-to-leaf
  // path: the event count must be far below gate_count per flip.
  const Circuit c = circuit::make_parity_tree(64);
  EventSimulator esim(c);
  std::vector<bool> in(64, false);
  esim.apply(in);
  const std::uint64_t after_init = esim.evaluation_count();
  esim.set_input(0, true);
  const std::uint64_t per_flip = esim.evaluation_count() - after_init;
  EXPECT_LE(per_flip, 8u);  // depth of a 64-leaf balanced tree is 6
}

class EngineCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineCrossCheck, RandomDagsAgreeOnRandomStimuli) {
  circuit::RandomDagSpec spec;
  spec.inputs = 14;
  spec.gates = 220;
  spec.seed = GetParam();
  const Circuit c = make_random_dag(spec);

  ParallelSimulator psim(c);
  EventSimulator esim(c);
  util::Rng rng(GetParam() * 7919 + 1);
  std::vector<bool> in(c.pattern_inputs().size());
  for (int step = 0; step < 50; ++step) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = rng.bernoulli(0.5);
    }
    esim.apply(in);
    EXPECT_EQ(esim.observed_values(), psim.simulate_single(in));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PatternBlocks, WholePatternSetThroughBlockInterface) {
  const Circuit c = circuit::make_ripple_carry_adder(4);
  util::Rng rng(21);
  PatternSet patterns(c.pattern_inputs().size());
  patterns.append_random(150, rng);  // spans three blocks, last partial

  ParallelSimulator sim(c);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    sim.simulate_block(patterns.block_words(b));
    const std::uint64_t mask = patterns.block_mask(b);
    for (std::size_t lane = 0; lane < 64; ++lane) {
      if (((mask >> lane) & 1) == 0) continue;
      const std::size_t p = b * 64 + lane;
      const std::vector<bool> expect =
          ParallelSimulator(c).simulate_single(patterns.pattern(p));
      const auto observed = sim.observed_values();
      for (std::size_t o = 0; o < observed.size(); ++o) {
        EXPECT_EQ(((observed[o] >> lane) & 1) != 0, expect[o]);
      }
    }
  }
}

}  // namespace
}  // namespace lsiq::sim
