// Golden-equivalence tests for the unified flow API: flow::run on the
// mult16 Table-1 workload must reproduce bit/row-identical strobe tables,
// signatures and DPPM figures versus the hand-wired pipelines it
// replaced (the pre-flow run_chip_test_experiment sequencing and the
// config-driven BistSession path), for both 1 and N worker threads —
// plus behavioral coverage of the source axis and the coverage-only mode.
#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

#include "bist/session.hpp"
#include "circuit/generators.hpp"
#include "core/fault_distribution.hpp"
#include "fault/fault_sim.hpp"
#include "fault/strobe.hpp"
#include "sim/pattern_io.hpp"
#include "tpg/lfsr.hpp"
#include "util/rng.hpp"
#include "wafer/tester.hpp"

namespace lsiq::flow {
namespace {

using circuit::Circuit;
using fault::FaultList;

// The Table 1 scenario parameters (see bench/table1_chip_test.cpp).
constexpr std::size_t kPatternCount = 1024;
constexpr std::uint64_t kLfsrSeed = 1981;
constexpr std::size_t kStrobeStep = 24;
constexpr std::size_t kChipCount = 277;
constexpr double kYield = 0.07;
constexpr double kN0 = 8.0;
constexpr std::uint64_t kLotSeed = 1981;

struct Workload {
  const Circuit& circuit;
  const FaultList& faults;
  const sim::PatternSet& patterns;
};

/// The acceptance workload: the 16x16 multiplier stand-in product.
const Workload& mult16() {
  static const Circuit circuit = circuit::make_array_multiplier(16);
  static const FaultList faults = FaultList::full_universe(circuit);
  static const sim::PatternSet patterns = tpg::lfsr_patterns(
      circuit.pattern_inputs().size(), kPatternCount, kLfsrSeed);
  static const Workload s{circuit, faults, patterns};
  return s;
}

/// The pre-flow pipeline, wired by hand exactly as the original
/// wafer::run_chip_test_experiment did it: progressive-strobe fault sim,
/// model-faithful lot, first-fail tester, Table-1 readout.
struct HandWired {
  std::vector<wafer::StrobeRow> table;
  double final_coverage = 0.0;
};

HandWired hand_wired_experiment(std::size_t num_threads) {
  const Workload& s = mult16();
  const fault::StrobeSchedule schedule = fault::StrobeSchedule::progressive(
      s.circuit.observed_points().size(), kStrobeStep);
  const fault::FaultSimResult fault_sim =
      num_threads == 1
          ? fault::simulate_ppsfp(s.faults, s.patterns, &schedule)
          : fault::simulate_ppsfp_mt(s.faults, s.patterns, &schedule,
                                     num_threads);
  const fault::CoverageCurve curve =
      fault_sim.curve(s.faults, s.patterns.size());

  const quality::FaultDistribution distribution(kYield, kN0);
  const wafer::ChipLot lot =
      wafer::generate_lot(s.faults, distribution, kChipCount, kLotSeed);
  const wafer::LotTestResult test =
      wafer::test_lot(lot, fault_sim, s.patterns.size());

  HandWired result;
  result.final_coverage = curve.final_coverage();
  for (const double target : table1_strobes()) {
    const std::size_t t = curve.patterns_for_coverage(target);
    wafer::StrobeRow row;
    row.target_coverage = target;
    row.actual_coverage = curve.coverage_after(t);
    row.pattern_index = t;
    row.cumulative_failed = test.failed_within(t);
    row.cumulative_fraction = test.fraction_failed_within(t);
    result.table.push_back(row);
  }
  return result;
}

FlowSpec table1_spec(const std::string& engine, std::size_t num_threads) {
  FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = kPatternCount;
  spec.source.lfsr_seed = kLfsrSeed;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = kStrobeStep;
  spec.engine.kind = engine;
  spec.engine.num_threads = num_threads;
  spec.lot.chip_count = kChipCount;
  spec.lot.yield = kYield;
  spec.lot.n0 = kN0;
  spec.lot.seed = kLotSeed;
  spec.analysis.strobe_coverages = table1_strobes();
  return spec;
}

void expect_rows_identical(const std::vector<wafer::StrobeRow>& actual,
                           const std::vector<wafer::StrobeRow>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_DOUBLE_EQ(actual[i].target_coverage, expected[i].target_coverage);
    EXPECT_DOUBLE_EQ(actual[i].actual_coverage, expected[i].actual_coverage);
    EXPECT_EQ(actual[i].pattern_index, expected[i].pattern_index);
    EXPECT_EQ(actual[i].cumulative_failed, expected[i].cumulative_failed);
    EXPECT_DOUBLE_EQ(actual[i].cumulative_fraction,
                     expected[i].cumulative_fraction);
  }
}

TEST(FlowGolden, StrobeTableMatchesHandWiredSingleThread) {
  const HandWired reference = hand_wired_experiment(1);
  const FlowResult run = flow::run(mult16().faults, table1_spec("ppsfp", 1));
  expect_rows_identical(run.table, reference.table);
  EXPECT_DOUBLE_EQ(run.final_coverage(), reference.final_coverage);

  // DPPM figures: identical coverage in, identical DPPM out.
  const quality::QualityAnalyzer product(kYield, kN0);
  EXPECT_DOUBLE_EQ(run.analyzer->dppm(run.final_coverage()),
                   product.dppm(reference.final_coverage));
}

TEST(FlowGolden, StrobeTableMatchesHandWiredMultiThread) {
  const HandWired reference = hand_wired_experiment(3);
  const FlowResult run =
      flow::run(mult16().faults, table1_spec("ppsfp_mt", 3));
  expect_rows_identical(run.table, reference.table);
  EXPECT_DOUBLE_EQ(run.final_coverage(), reference.final_coverage);
}

TEST(FlowGolden, ExplicitSourceSpecStaysRowIdentical) {
  // The FlowSpec shape the removed run_chip_test_experiment shim used to
  // build — an explicit program under progressive observation — must keep
  // producing the hand-wired rows for both thread conventions.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const HandWired reference = hand_wired_experiment(threads);
    FlowSpec spec = table1_spec(threads == 1 ? "ppsfp" : "ppsfp_mt", threads);
    spec.source = PatternSourceSpec{};
    spec.source.kind = "explicit";
    spec.source.patterns = mult16().patterns;
    const FlowResult result = flow::run(mult16().faults, spec);
    expect_rows_identical(result.table, reference.table);
  }
}

TEST(FlowGolden, MisrPathMatchesHandWiredBistSession) {
  // The hand-wired signature path: a config-driven session generating its
  // own LFSR program. 16-bit register so aliasing is actually visible.
  const Workload& s = mult16();
  bist::BistConfig config;
  config.pattern_count = kPatternCount;
  config.lfsr_seed = kLfsrSeed;
  config.misr_width = 16;
  const bist::BistSession session(s.faults, config);
  const bist::BistResult reference = session.run(1);

  FlowSpec spec = table1_spec("ppsfp", 1);
  spec.observe = ObservationSpec{};
  spec.observe.kind = "misr";
  spec.observe.misr_width = 16;
  spec.analysis.strobe_coverages.clear();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    spec.engine.kind = threads == 1 ? "ppsfp" : "ppsfp_mt";
    spec.engine.num_threads = threads;
    const FlowResult run = flow::run(s.faults, spec);
    ASSERT_TRUE(run.bist.has_value());
    EXPECT_EQ(run.bist->good_signature, reference.good_signature);
    EXPECT_EQ(run.bist->fault_signatures, reference.fault_signatures);
    EXPECT_EQ(run.bist->first_error_pattern, reference.first_error_pattern);
    EXPECT_EQ(run.bist->first_divergence_pattern,
              reference.first_divergence_pattern);
    EXPECT_DOUBLE_EQ(run.bist->signature_coverage,
                     reference.signature_coverage);

    // The signature-compare tester and the DPPM statement follow suit.
    const wafer::LotTestResult hand_tested =
        wafer::test_lot_bist(*run.lot, reference);
    ASSERT_TRUE(run.test.has_value());
    ASSERT_EQ(run.test->outcomes.size(), hand_tested.outcomes.size());
    for (std::size_t i = 0; i < hand_tested.outcomes.size(); ++i) {
      EXPECT_EQ(run.test->outcomes[i].first_fail_pattern,
                hand_tested.outcomes[i].first_fail_pattern);
    }
    const quality::QualityAnalyzer product(kYield, kN0);
    EXPECT_DOUBLE_EQ(run.analyzer->dppm(run.bist->signature_coverage),
                     product.dppm(reference.signature_coverage));
  }
}

// ---- source-axis and mode coverage on a small circuit ----

const Workload& small() {
  static const Circuit circuit = circuit::make_comparator(4);
  static const FaultList faults = FaultList::full_universe(circuit);
  static const sim::PatternSet patterns =
      tpg::lfsr_patterns(circuit.pattern_inputs().size(), 128, 7);
  static const Workload s{circuit, faults, patterns};
  return s;
}

FlowSpec coverage_only_spec() {
  FlowSpec spec;
  spec.source.pattern_count = 128;
  spec.source.lfsr_seed = 7;
  spec.lot.chip_count = 0;
  return spec;
}

TEST(Flow, CoverageOnlyFlowSkipsLotAndTester) {
  const FlowResult run = flow::run(small().faults, coverage_only_spec());
  EXPECT_FALSE(run.lot.has_value());
  EXPECT_FALSE(run.test.has_value());
  EXPECT_TRUE(run.table.empty());
  ASSERT_TRUE(run.fault_sim.has_value());
  ASSERT_TRUE(run.analyzer.has_value());  // "given" characterization
  EXPECT_GT(run.final_coverage(), 0.5);
}

TEST(Flow, ExplicitSourceGradesTheGivenProgram) {
  FlowSpec spec = coverage_only_spec();
  spec.source = PatternSourceSpec{};
  spec.source.kind = "explicit";
  spec.source.patterns = small().patterns;
  const FlowResult run = flow::run(small().faults, spec);
  EXPECT_EQ(run.patterns.size(), small().patterns.size());
  const fault::FaultSimResult direct =
      fault::simulate_ppsfp(small().faults, small().patterns);
  EXPECT_EQ(run.fault_sim->first_detection, direct.first_detection);
}

TEST(Flow, LfsrSourceMaterializesTheSameProgram) {
  const FlowResult run = flow::run(small().faults, coverage_only_spec());
  ASSERT_EQ(run.patterns.size(), small().patterns.size());
  for (std::size_t p = 0; p < run.patterns.size(); ++p) {
    ASSERT_EQ(run.patterns.pattern(p), small().patterns.pattern(p));
  }
}

TEST(Flow, AtpgSourceReportsGenerationStatistics) {
  FlowSpec spec = coverage_only_spec();
  spec.source = PatternSourceSpec{};
  spec.source.kind = "atpg";
  spec.source.atpg.random_patterns = 32;
  spec.source.atpg.seed = 3;
  spec.source.atpg_compact = true;
  const FlowResult run = flow::run(small().faults, spec);
  ASSERT_TRUE(run.atpg.has_value());
  EXPECT_GT(run.atpg->coverage, 0.9);
  // The compacted program the flow graded is at most the generated one.
  EXPECT_LE(run.patterns.size(), run.atpg->patterns.size());
  EXPECT_GT(run.final_coverage(), 0.9);
}

TEST(Flow, TransitionAtpgSourceRunsEndToEnd) {
  // atpg + transition was a validate-level rejection before two-pattern
  // PODEM; now the combination is a first-class flow, including
  // pair-aware compaction.
  FlowSpec spec = coverage_only_spec();
  spec.fault_model.kind = "transition";
  spec.source = PatternSourceSpec{};
  spec.source.kind = "atpg";
  spec.source.atpg.random_patterns = 32;
  spec.source.atpg.seed = 3;
  spec.source.atpg_compact = true;
  const FlowResult run = flow::run(small().circuit, spec);
  ASSERT_TRUE(run.atpg.has_value());
  EXPECT_GE(run.patterns.size(), 2u);
  EXPECT_LE(run.patterns.size(), run.atpg->patterns.size());
  EXPECT_EQ(run.atpg->redundant_classes,
            run.atpg->untestable_launch_classes +
                run.atpg->untestable_capture_classes);
  // The compacted program the flow graded preserves the generated
  // coverage (the pair-aware compaction contract).
  EXPECT_GE(run.final_coverage(), run.atpg->coverage);
  // The report carries the transition redundancy split.
  const std::string report = run.report();
  EXPECT_NE(report.find("model=transition source=atpg"), std::string::npos);
}

TEST(Flow, TransitionAtpgBeatsLfsrOnMult16AtEqualLength) {
  // The acceptance claim: deterministic two-pattern generation reaches
  // strictly higher transition coverage on the mult16 stand-in than the
  // LFSR source at equal pattern count — the survivors random programs
  // leave behind are exactly what the PODEM phase closes.
  FlowSpec spec;
  spec.fault_model.kind = "transition";
  spec.source.kind = "atpg";
  spec.source.atpg.random_patterns = 256;
  spec.source.atpg.seed = kLfsrSeed;
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;
  spec.lot.chip_count = 0;
  const FlowResult atpg_run = flow::run(mult16().circuit, spec);
  ASSERT_GE(atpg_run.patterns.size(), 2u);

  FlowSpec lfsr_spec = spec;
  lfsr_spec.source = PatternSourceSpec{};
  lfsr_spec.source.kind = "lfsr";
  lfsr_spec.source.pattern_count = atpg_run.patterns.size();
  lfsr_spec.source.lfsr_seed = kLfsrSeed;
  const FlowResult lfsr_run = flow::run(mult16().circuit, lfsr_spec);

  ASSERT_EQ(lfsr_run.patterns.size(), atpg_run.patterns.size());
  EXPECT_GT(atpg_run.final_coverage(), lfsr_run.final_coverage());
}

TEST(Flow, FileSourceRoundTripsThroughPatternIo) {
  const std::string path = ::testing::TempDir() + "lsiq_flow_patterns.txt";
  sim::write_patterns_file(small().patterns, path);
  FlowSpec spec = coverage_only_spec();
  spec.source = PatternSourceSpec{};
  spec.source.kind = "file";
  spec.source.file = path;
  const FlowResult run = flow::run(small().faults, spec);
  EXPECT_EQ(run.patterns.size(), small().patterns.size());
  const fault::FaultSimResult direct =
      fault::simulate_ppsfp(small().faults, small().patterns);
  EXPECT_EQ(run.fault_sim->first_detection, direct.first_detection);
  std::remove(path.c_str());
}

TEST(Flow, CircuitOverloadEnumeratesTheFullUniverse) {
  const FlowResult direct = flow::run(small().faults, coverage_only_spec());
  const FlowResult from_circuit =
      flow::run(small().circuit, coverage_only_spec());
  EXPECT_EQ(from_circuit.fault_sim->first_detection,
            direct.fault_sim->first_detection);
}

TEST(Flow, SerialEngineMatchesPpsfp) {
  FlowSpec spec = coverage_only_spec();
  spec.engine.kind = "serial";
  const FlowResult serial = flow::run(small().faults, spec);
  spec.engine.kind = "ppsfp";
  const FlowResult ppsfp = flow::run(small().faults, spec);
  EXPECT_EQ(serial.fault_sim->first_detection,
            ppsfp.fault_sim->first_detection);
}

TEST(Flow, EstimatorMethodsCharacterizeFromTheLot) {
  // A big enough lot that least squares lands near the ground truth.
  FlowSpec spec;
  spec.source.pattern_count = 256;
  spec.source.lfsr_seed = 11;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 8;
  spec.lot.chip_count = 4000;
  spec.lot.yield = 0.20;
  spec.lot.n0 = 6.0;
  spec.lot.seed = 5;
  spec.analysis.strobe_coverages = {0.05, 0.10, 0.20, 0.30, 0.45, 0.60};
  spec.analysis.method = "least_squares";
  const FlowResult run = flow::run(small().faults, spec);
  ASSERT_TRUE(run.analyzer.has_value());
  EXPECT_EQ(run.analyzer->method(),
            quality::CharacterizationMethod::kLeastSquares);
  EXPECT_NEAR(run.analyzer->n0(), 6.0, 1.2);
}

TEST(Flow, ReportMentionsEveryAxis) {
  const FlowResult run = flow::run(small().faults, coverage_only_spec());
  const std::string report = run.report();
  EXPECT_NE(report.find("model=stuck_at"), std::string::npos);
  EXPECT_NE(report.find("source=lfsr"), std::string::npos);
  EXPECT_NE(report.find("observe=full"), std::string::npos);
  EXPECT_NE(report.find("engine=ppsfp"), std::string::npos);
  EXPECT_NE(report.find("DPPM"), std::string::npos);
}

// ---- the fault-model axis ----

TEST(FlowGolden, OneSpecFlippedOnFaultModelYieldsBothQualityStatements) {
  // The PR-4 acceptance scenario: a single spec differing ONLY in
  // fault_model runs end to end and produces stuck-at and transition
  // coverage curves plus DPPM rows for the same virtual lot. Mirrors
  // tools/specs/{smoke,transition}.spec.
  FlowSpec spec;
  spec.source.pattern_count = 512;
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 16;
  spec.engine.kind = "ppsfp";
  spec.lot.chip_count = 500;
  spec.lot.yield = 0.12;
  spec.lot.n0 = 7.0;
  spec.lot.seed = 99;
  spec.analysis.strobe_coverages = {0.05, 0.10, 0.20, 0.30, 0.45, 0.60};
  spec.analysis.method = "least_squares";

  static const Circuit circuit = circuit::make_array_multiplier(8);
  FlowSpec transition = spec;
  transition.fault_model.kind = "transition";
  const FlowResult sa = flow::run(circuit, spec);
  const FlowResult tr = flow::run(circuit, transition);

  for (const FlowResult* r : {&sa, &tr}) {
    ASSERT_TRUE(r->curve.has_value());
    ASSERT_TRUE(r->analyzer.has_value());
    ASSERT_EQ(r->table.size(), spec.analysis.strobe_coverages.size());
    EXPECT_GT(r->final_coverage(), 0.9);
    EXPECT_GT(r->analyzer->dppm(r->final_coverage()), 0.0);
  }
  // Genuinely different universes: the transition program needs more
  // patterns to reach the same strobes, never fewer (launch gating only
  // removes detections), and the reports label their model.
  for (std::size_t i = 0; i < sa.table.size(); ++i) {
    EXPECT_GE(tr.table[i].pattern_index, sa.table[i].pattern_index);
  }
  EXPECT_NE(sa.report().find("model=stuck_at"), std::string::npos);
  EXPECT_NE(tr.report().find("model=transition"), std::string::npos);
  EXPECT_NE(tr.report().find("transition coverage"), std::string::npos);
}

TEST(FlowGolden, TransitionGradingBitIdenticalAcrossEnginesAndThreads) {
  // The acceptance bit-identity statement at the flow level, on the
  // Table-1 product: serial vs ppsfp vs ppsfp_mt at 1 and N threads.
  FlowSpec spec = coverage_only_spec();
  spec.fault_model.kind = "transition";
  static const FaultList transition_faults =
      FaultList::transition_universe(small().circuit);

  spec.engine.kind = "serial";
  const FlowResult serial = flow::run(transition_faults, spec);
  spec.engine.kind = "ppsfp";
  const FlowResult ppsfp = flow::run(transition_faults, spec);
  ASSERT_EQ(serial.fault_sim->first_detection,
            ppsfp.fault_sim->first_detection);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    spec.engine.kind = "ppsfp_mt";
    spec.engine.num_threads = threads;
    const FlowResult mt = flow::run(transition_faults, spec);
    ASSERT_EQ(serial.fault_sim->first_detection,
              mt.fault_sim->first_detection);
    EXPECT_DOUBLE_EQ(serial.final_coverage(), mt.final_coverage());
  }

  // And on the mult16 acceptance workload, 1 vs N workers.
  FlowSpec big;
  big.source.pattern_count = kPatternCount;
  big.source.lfsr_seed = kLfsrSeed;
  big.fault_model.kind = "transition";
  big.lot.chip_count = 0;
  static const FaultList mult16_transition =
      FaultList::transition_universe(mult16().circuit);
  big.engine.kind = "ppsfp";
  const FlowResult one = flow::run(mult16_transition, big);
  big.engine.kind = "ppsfp_mt";
  big.engine.num_threads = 4;
  const FlowResult many = flow::run(mult16_transition, big);
  ASSERT_EQ(one.fault_sim->first_detection, many.fault_sim->first_detection);
}

TEST(Flow, MismatchedUniverseModelIsRefused) {
  FlowSpec spec = coverage_only_spec();
  spec.fault_model.kind = "transition";
  // small().faults is the stuck-at universe: the flow must refuse rather
  // than grade transition semantics against stuck-at collapsing.
  EXPECT_THROW(flow::run(small().faults, spec), ContractViolation);
}

TEST(Flow, TransitionMisrFlowGradesSignatures) {
  FlowSpec spec = coverage_only_spec();
  spec.fault_model.kind = "transition";
  spec.observe = ObservationSpec{};
  spec.observe.kind = "misr";
  spec.observe.misr_width = 16;
  const FlowResult run = flow::run(small().circuit, spec);
  ASSERT_TRUE(run.bist.has_value());
  EXPECT_GT(run.bist->signature_coverage, 0.0);
  EXPECT_LE(run.bist->signature_coverage, run.bist->raw_coverage);
}

}  // namespace
}  // namespace lsiq::flow
