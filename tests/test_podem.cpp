// PODEM tests: every generated test is confirmed by the independent fault
// simulator, redundancy proofs are checked on circuits with known redundant
// faults, and the full c17 fault set is closed deterministically.
#include "tpg/podem.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault_model/transition.hpp"
#include "sim/parallel_sim.hpp"
#include "tpg/scoap.hpp"

namespace lsiq::tpg {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using fault::Fault;
using fault::FaultList;

/// Confirm a PODEM pattern with the fault simulator (independent engine).
bool pattern_detects(const Circuit& c, const Fault& f,
                     const std::vector<bool>& pattern) {
  sim::ParallelSimulator good(c);
  std::vector<std::uint64_t> words(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    words[i] = pattern[i] ? 1ULL : 0ULL;
  }
  good.simulate_block(words);
  return (fault::detect_word_for_fault(c, f, good.values()) & 1ULL) != 0;
}

TEST(Podem, DetectsSimpleStemFault) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();

  const PodemResult r = generate_test(c, Fault{y, -1, false});
  ASSERT_EQ(r.status, TestStatus::kDetected);
  // The only test for y s-a-0 is a=b=1.
  EXPECT_TRUE(r.pattern[0]);
  EXPECT_TRUE(r.pattern[1]);
  EXPECT_TRUE(pattern_detects(c, Fault{y, -1, false}, r.pattern));
}

TEST(Podem, EveryC17FaultClosedAndConfirmed) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  for (const Fault& f : faults.representatives()) {
    const PodemResult r = generate_test(c, f);
    ASSERT_EQ(r.status, TestStatus::kDetected)
        << fault_name(c, f) << " should be testable in c17";
    EXPECT_TRUE(pattern_detects(c, f, r.pattern)) << fault_name(c, f);
  }
}

class PodemOnGeneratedCircuits : public ::testing::TestWithParam<int> {};

TEST_P(PodemOnGeneratedCircuits, AllVerdictsConfirmedByFaultSim) {
  Circuit c = [&]() -> Circuit {
    switch (GetParam()) {
      case 0: return circuit::make_ripple_carry_adder(4);
      case 1: return circuit::make_parity_tree(8);
      case 2: return circuit::make_mux_tree(3);
      case 3: return circuit::make_comparator(3);
      default: return circuit::make_majority(5);
    }
  }();
  const FaultList faults = FaultList::full_universe(c);
  std::size_t detected = 0;
  for (const Fault& f : faults.representatives()) {
    const PodemResult r = generate_test(c, f);
    if (r.status == TestStatus::kDetected) {
      ++detected;
      EXPECT_TRUE(pattern_detects(c, f, r.pattern)) << fault_name(c, f);
    }
    EXPECT_NE(r.status, TestStatus::kAborted) << fault_name(c, f);
  }
  // These textbook structures are fully testable.
  EXPECT_EQ(detected, faults.class_count());
}

INSTANTIATE_TEST_SUITE_P(Circuits, PodemOnGeneratedCircuits,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Podem, ProvesRedundancyInConstantDrivenLogic) {
  // y = OR(a, 1): y s-a-1 is undetectable; PODEM must exhaust and say so.
  Circuit c("red");
  const GateId a = c.add_input("a");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId y = c.add_gate(GateType::kOr, {a, one}, "y");
  c.mark_output(y);
  c.finalize();
  const PodemResult r = generate_test(c, Fault{y, -1, true});
  EXPECT_EQ(r.status, TestStatus::kUntestable);
}

TEST(Podem, ProvesRedundancyFromReconvergentMasking) {
  // Classic redundant structure: y = OR(AND(a, b), AND(a, NOT(b))) equals
  // a; the s-a-0 on either AND output is testable, but an s-a-1 on the OR
  // output is equivalent to a s-a-1... use the known-redundant fault:
  // z = AND(a, OR(a, b)) == a. The OR gate's b-pin s-a-1 never changes z.
  Circuit c("mask");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId o = c.add_gate(GateType::kOr, {a, b}, "o");
  const GateId z = c.add_gate(GateType::kAnd, {a, o}, "z");
  c.mark_output(z);
  c.finalize();
  const PodemResult r = generate_test(c, Fault{o, 1, true});
  EXPECT_EQ(r.status, TestStatus::kUntestable);
}

TEST(Podem, CubeMarksOnlyRequiredInputs) {
  // Detecting a s-a-0 on one leaf of a wide AND forces every input.
  Circuit c("and4");
  std::vector<GateId> ins;
  for (int i = 0; i < 4; ++i) {
    ins.push_back(c.add_input("x" + std::to_string(i)));
  }
  const GateId y = c.add_gate(GateType::kAnd, ins, "y");
  c.mark_output(y);
  c.finalize();
  const PodemResult r = generate_test(c, Fault{y, -1, false});
  ASSERT_EQ(r.status, TestStatus::kDetected);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.cube[static_cast<std::size_t>(i)], 1);
  }
}

TEST(Podem, DontCareFillIsDeterministic) {
  // y = BUF(a) with 3 extra unused-by-the-fault inputs feeding a parity
  // tree on another output: the X-fill must be reproducible.
  const Circuit c = circuit::make_mux_tree(2);
  const FaultList faults = FaultList::full_universe(c);
  const Fault f = faults.representatives().front();
  PodemOptions options;
  options.fill_seed = 77;
  const PodemResult r1 = generate_test(c, f, options);
  const PodemResult r2 = generate_test(c, f, options);
  ASSERT_EQ(r1.status, TestStatus::kDetected);
  EXPECT_EQ(r1.pattern, r2.pattern);
}

TEST(Podem, ZeroFillOption) {
  Circuit c("or2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kOr, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  PodemOptions options;
  options.random_fill = false;
  // y s-a-1 needs y = 0: both inputs 0 anyway. a s-a-1 needs a=0, b=0.
  const PodemResult r = generate_test(c, Fault{a, -1, true}, options);
  ASSERT_EQ(r.status, TestStatus::kDetected);
  EXPECT_FALSE(r.pattern[0]);
  EXPECT_FALSE(r.pattern[1]);
}

TEST(Podem, DetectsFaultsBehindScanBoundary) {
  // Fault on the cone feeding a flip-flop: observed at the scan capture.
  Circuit c("seq");
  const GateId en = c.add_input("en");
  const GateId ff = c.add_dff("ff");
  const GateId d = c.add_gate(GateType::kNand, {en, ff}, "d");
  c.connect_dff(ff, d);
  const GateId po = c.add_gate(GateType::kBuf, {ff}, "po");
  c.mark_output(po);
  c.finalize();

  const PodemResult r = generate_test(c, Fault{d, -1, false});
  ASSERT_EQ(r.status, TestStatus::kDetected);
  EXPECT_TRUE(pattern_detects(c, Fault{d, -1, false}, r.pattern));
}

TEST(Podem, ScoapGuidedBacktraceStillClosesEveryFault) {
  // The SCOAP-guided heuristic changes the search order, not the verdicts:
  // every testable fault must still get a confirmed test.
  const Circuit c = circuit::make_alu(3);
  const FaultList faults = FaultList::full_universe(c);
  const tpg::TestabilityMeasures scoap = tpg::compute_scoap(c);
  PodemOptions options;
  options.scoap = &scoap;
  std::size_t detected = 0;
  for (const Fault& f : faults.representatives()) {
    const PodemResult r = generate_test(c, f, options);
    EXPECT_NE(r.status, TestStatus::kAborted) << fault_name(c, f);
    if (r.status == TestStatus::kDetected) {
      ++detected;
      EXPECT_TRUE(pattern_detects(c, f, r.pattern)) << fault_name(c, f);
    }
  }
  EXPECT_GT(detected, 0u);

  // And the verdict sets agree with the level-based heuristic.
  for (const Fault& f : faults.representatives()) {
    const TestStatus with_scoap = generate_test(c, f, options).status;
    const TestStatus without = generate_test(c, f).status;
    EXPECT_EQ(with_scoap == TestStatus::kUntestable,
              without == TestStatus::kUntestable)
        << fault_name(c, f);
  }
}

/// Confirm a (launch, capture) pair with the independent two-pattern
/// kernel: launch in lane 0, capture in lane 1; the fresh window masks
/// lane 0, so bit 1 is the launch-gated capture detection.
bool pair_detects(const Circuit& c, const Fault& f,
                  const std::vector<bool>& launch,
                  const std::vector<bool>& capture) {
  sim::ParallelSimulator good(c);
  std::vector<std::uint64_t> words(launch.size());
  for (std::size_t i = 0; i < launch.size(); ++i) {
    words[i] = (launch[i] ? 1ULL : 0ULL) | (capture[i] ? 2ULL : 0ULL);
  }
  good.simulate_block(words);
  fault::Propagator propagator(good.compiled());
  propagator.begin_block(good.values());
  const fault_model::TwoPatternWindow window(
      propagator.compiled()->node_count());
  return (propagator.detect_word_transition(f, good.values(), window) &
          2ULL) != 0;
}

/// out = OR(b, z) with z = AND(a, NOT a): z is constant 0, the canonical
/// constant-fed site for transition redundancy proofs.
Circuit make_constant_fed() {
  Circuit c("const_fed");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId na = c.add_gate(GateType::kNot, {a}, "na");
  const GateId z = c.add_gate(GateType::kAnd, {a, na}, "z");
  const GateId out = c.add_gate(GateType::kOr, {b, z}, "out");
  c.mark_output(out);
  c.finalize();
  return c;
}

TEST(TransitionPodem, EveryC17TransitionFaultClosedAndConfirmed) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::transition_universe(c);
  for (const Fault& f : faults.representatives()) {
    const TransitionTestResult r = generate_transition_test(c, f);
    ASSERT_EQ(r.status, TestStatus::kDetected)
        << fault_name(c, f, fault_model::FaultModel::kTransition);
    EXPECT_EQ(r.untestable_reason, UntestableReason::kNone);
    EXPECT_TRUE(pair_detects(c, f, r.launch, r.capture))
        << fault_name(c, f, fault_model::FaultModel::kTransition);
    // The launch cube constrains at least the fault line's support, and
    // the pair is ordered: swapping the halves must not be assumed to
    // work, so both patterns are fully specified.
    EXPECT_EQ(r.launch.size(), c.pattern_inputs().size());
    EXPECT_EQ(r.capture.size(), c.pattern_inputs().size());
  }
}

TEST(TransitionPodem, UnachievableLaunchIsProvenUntestable) {
  // z never rises to 1, so z slow-to-fall has no launch pattern: the
  // justification decision tree exhausts and the proof is labelled as
  // the launch half.
  const Circuit c = make_constant_fed();
  const GateId z = c.find("z");
  const TransitionTestResult r =
      generate_transition_test(c, Fault{z, -1, true});
  EXPECT_EQ(r.status, TestStatus::kUntestable);
  EXPECT_EQ(r.untestable_reason, UntestableReason::kLaunch);
}

TEST(TransitionPodem, RedundantCaptureIsProvenUntestable) {
  // z slow-to-rise launches trivially (z is always 0), but the capture
  // stuck-at-0 can never be activated on a constant-0 line: the proof is
  // labelled as the capture half.
  const Circuit c = make_constant_fed();
  const GateId z = c.find("z");
  const TransitionTestResult r =
      generate_transition_test(c, Fault{z, -1, false});
  EXPECT_EQ(r.status, TestStatus::kUntestable);
  EXPECT_EQ(r.untestable_reason, UntestableReason::kCapture);
}

TEST(TransitionPodem, TestableSiteNextToConstantIsClosed) {
  // b transitions both ways through the OR (z = 0 sensitizes it), so the
  // constant net must not poison its neighbours.
  const Circuit c = make_constant_fed();
  const GateId b = c.find("b");
  for (const bool slow_to_fall : {false, true}) {
    const Fault f{b, -1, slow_to_fall};
    const TransitionTestResult r = generate_transition_test(c, f);
    ASSERT_EQ(r.status, TestStatus::kDetected);
    EXPECT_TRUE(pair_detects(c, f, r.launch, r.capture));
  }
}

TEST(TransitionPodem, JustifyLineDrivesAndProves) {
  const Circuit c = make_constant_fed();
  const GateId z = c.find("z");
  const GateId out = c.find("out");
  // out = 1 is justifiable (b = 1)...
  const PodemResult hi = justify_line(c, out, sim::Tri::kOne);
  ASSERT_EQ(hi.status, TestStatus::kDetected);
  // ...and the returned pattern really drives it there.
  sim::ParallelSimulator good(c);
  std::vector<std::uint64_t> words(hi.pattern.size());
  for (std::size_t i = 0; i < hi.pattern.size(); ++i) {
    words[i] = hi.pattern[i] ? 1ULL : 0ULL;
  }
  good.simulate_block(words);
  EXPECT_EQ(good.values()[out] & 1ULL, 1ULL);
  // z = 1 is a proof of constancy, not a search failure.
  EXPECT_EQ(justify_line(c, z, sim::Tri::kOne).status,
            TestStatus::kUntestable);
  EXPECT_EQ(justify_line(c, z, sim::Tri::kZero).status,
            TestStatus::kDetected);
}

TEST(Podem, BacktrackLimitProducesAbort) {
  // With a backtrack budget of zero on a fault that needs any search at
  // all, PODEM must abort rather than loop.
  const Circuit c = circuit::make_parity_tree(8);
  const FaultList faults = FaultList::full_universe(c);
  PodemOptions options;
  options.max_backtracks = -1;  // below any possible count
  bool saw_abort = false;
  for (const Fault& f : faults.representatives()) {
    const PodemResult r = generate_test(c, f, options);
    if (r.status == TestStatus::kAborted) {
      saw_abort = true;
      break;
    }
  }
  EXPECT_TRUE(saw_abort);
}

}  // namespace
}  // namespace lsiq::tpg
