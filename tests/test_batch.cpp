// Tests for the hardened batch flow runner: crash isolation (N specs with
// K induced failures -> exactly N-K successes), the retry/deadline/
// checkpoint machinery, the JSONL record format, and the batch-wide
// artifact cache.
#include "flow/batch.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace lsiq::flow {
namespace {

namespace fs = std::filesystem;

/// A tiny spec that runs in milliseconds (c17: 22 collapsed classes).
constexpr const char* kGoodSpec =
    "circuit = c17\n"
    "source = lfsr\n"
    "patterns = 64\n"
    "observe = full\n"
    "engine = ppsfp\n";

/// Per-test scratch directory + global-failpoint hygiene (the registry is
/// process-wide; a leaked arming would fault unrelated tests).
class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Failpoints::instance().clear();
    dir_ = fs::path(::testing::TempDir()) / "lsiq_batch" /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { util::Failpoints::instance().clear(); }

  /// Write a spec file into the scratch dir and return its path.
  std::string write_spec(const std::string& name,
                         const std::string& text = kGoodSpec) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path.string();
  }

  std::string checkpoint_path() const {
    return (dir_ / "results.jsonl").string();
  }

  /// Deterministic-test options: no backoff sleeping, no default workers.
  static BatchOptions fast_options() {
    BatchOptions options;
    options.num_workers = 2;
    options.retry.backoff_initial_ms = 0;
    return options;
  }

  fs::path dir_;
};

// ---- the record format ----

TEST_F(BatchTest, RecordRoundTripsThroughJsonl) {
  BatchRecord record;
  record.spec = "specs/weird \"name\"\t.spec";
  record.hash = 0x0123456789abcdefULL;
  record.status = "failed";
  record.error_code = ErrorCode::kIo;
  record.transient = true;
  record.attempts = 3;
  record.wall_ms = 12.5;
  record.resumed = true;
  record.patterns = 512;
  record.classes = 1328;
  record.coverage = 0.99948770491803274;
  record.dppm = 9.2596518863132236;
  record.error = "line1\nline2: \\ \"quoted\"";

  const std::optional<BatchRecord> parsed =
      BatchRecord::from_jsonl(record.to_jsonl());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->spec, record.spec);
  EXPECT_EQ(parsed->hash, record.hash);
  EXPECT_EQ(parsed->status, record.status);
  EXPECT_EQ(parsed->error_code, record.error_code);
  EXPECT_EQ(parsed->transient, record.transient);
  EXPECT_EQ(parsed->attempts, record.attempts);
  EXPECT_DOUBLE_EQ(parsed->wall_ms, record.wall_ms);
  EXPECT_EQ(parsed->resumed, record.resumed);
  EXPECT_EQ(parsed->patterns, record.patterns);
  EXPECT_EQ(parsed->classes, record.classes);
  EXPECT_EQ(parsed->coverage, record.coverage);  // exact: %.17g round-trips
  EXPECT_EQ(parsed->dppm, record.dppm);
  EXPECT_EQ(parsed->error, record.error);

  // Reserializing the parsed record reproduces the line byte for byte —
  // resume rewrites carried records through exactly this cycle.
  EXPECT_EQ(parsed->to_jsonl(), record.to_jsonl());
}

TEST_F(BatchTest, CanonicalFormExcludesVolatileFields) {
  BatchRecord a;
  a.spec = "x.spec";
  a.status = "ok";
  a.attempts = 1;
  BatchRecord b = a;
  b.wall_ms = 999.0;   // differs run to run
  b.resumed = true;    // differs interrupted vs not
  EXPECT_NE(a.to_jsonl(), b.to_jsonl());
  EXPECT_EQ(a.canonical_jsonl(), b.canonical_jsonl());
}

TEST_F(BatchTest, TornAndForeignLinesParseToNothing) {
  BatchRecord record;
  record.spec = "x.spec";
  record.status = "ok";
  const std::string line = record.to_jsonl();
  // Every proper prefix of a valid line is torn (killed mid-write).
  for (const std::size_t length : {line.size() - 1, line.size() / 2,
                                   std::size_t{1}, std::size_t{0}}) {
    SCOPED_TRACE(length);
    EXPECT_FALSE(BatchRecord::from_jsonl(line.substr(0, length)).has_value());
  }
  EXPECT_FALSE(BatchRecord::from_jsonl("not json at all").has_value());
  EXPECT_FALSE(BatchRecord::from_jsonl("{\"spec\":\"x\"}").has_value());
  EXPECT_FALSE(
      BatchRecord::from_jsonl("{\"spec\":\"x\",\"status\":\"bogus\"}")
          .has_value());
}

// ---- manifests ----

TEST_F(BatchTest, DirectoryManifestYieldsSortedSpecs) {
  write_spec("b.spec");
  write_spec("a.spec");
  write_spec("c.spec");
  write_spec("notes.txt", "not a spec\n");
  const std::vector<std::string> specs = read_manifest(dir_.string());
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(fs::path(specs[0]).filename(), "a.spec");
  EXPECT_EQ(fs::path(specs[1]).filename(), "b.spec");
  EXPECT_EQ(fs::path(specs[2]).filename(), "c.spec");
}

TEST_F(BatchTest, ListManifestResolvesRelativeToItself) {
  write_spec("one.spec");
  write_spec("two.spec");
  const fs::path list = dir_ / "campaign.list";
  {
    std::ofstream out(list);
    out << "# a comment line\n"
        << "one.spec\n"
        << "  two.spec   # trailing comment\n"
        << "\n";
  }
  const std::vector<std::string> specs = read_manifest(list.string());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], (dir_ / "one.spec").string());
  EXPECT_EQ(specs[1], (dir_ / "two.spec").string());
}

TEST_F(BatchTest, BadManifestsAreClassified) {
  try {
    read_manifest((dir_ / "missing.list").string());
    FAIL() << "expected IoError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  try {
    read_manifest(dir_.string());  // directory with no .spec files
    FAIL() << "expected Error(kInvalidSpec)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidSpec);
  }
}

// ---- crash isolation: N specs, K induced failures ----

TEST_F(BatchTest, InducedFailuresProduceExactlyNMinusKSuccesses) {
  // N = 6 specs, K = 3 failures of three different classes. The batch
  // must finish, produce 3 ok + 3 structured failure records, and
  // classify each failure with the right code.
  std::vector<std::string> specs;
  specs.push_back(write_spec("ok1.spec"));
  specs.push_back(write_spec("bad_parse.spec", "circuit = c17\nbogus = 1\n"));
  specs.push_back(write_spec("ok2.spec"));
  specs.push_back(
      write_spec("bad_circuit.spec", "circuit = warp9\nsource = lfsr\n"));
  specs.push_back((dir_ / "missing.spec").string());  // unreadable: io
  specs.push_back(write_spec("ok3.spec"));

  BatchOptions options = fast_options();
  options.retry.max_attempts = 2;
  const BatchResult result = run_batch(specs, options);

  ASSERT_EQ(result.records.size(), 6u);
  EXPECT_EQ(result.ok_count, 3u);
  EXPECT_EQ(result.failed_count, 3u);
  EXPECT_FALSE(result.all_ok());

  // Records are in manifest order regardless of completion order.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(result.records[i].spec, specs[i]);
  }

  EXPECT_EQ(result.records[0].status, "ok");
  EXPECT_EQ(result.records[0].error_code, ErrorCode::kOk);
  EXPECT_EQ(result.records[0].attempts, 1);
  EXPECT_GT(result.records[0].patterns, 0u);
  EXPECT_GT(result.records[0].classes, 0u);
  EXPECT_GT(result.records[0].coverage, 0.5);

  EXPECT_EQ(result.records[1].status, "failed");
  EXPECT_EQ(result.records[1].error_code, ErrorCode::kParse);
  EXPECT_FALSE(result.records[1].transient);
  EXPECT_EQ(result.records[1].attempts, 1);  // permanent: no retry
  EXPECT_NE(result.records[1].error.find("bogus"), std::string::npos);

  EXPECT_EQ(result.records[3].status, "failed");
  EXPECT_EQ(result.records[3].error_code, ErrorCode::kInvalidSpec);
  EXPECT_EQ(result.records[3].attempts, 1);

  // The unreadable spec is an I/O failure: transient, so every attempt
  // of the retry budget is consumed before it is recorded as failed.
  EXPECT_EQ(result.records[4].status, "failed");
  EXPECT_EQ(result.records[4].error_code, ErrorCode::kIo);
  EXPECT_TRUE(result.records[4].transient);
  EXPECT_EQ(result.records[4].attempts, 2);
  EXPECT_EQ(result.records[4].hash, 0u);
}

TEST_F(BatchTest, FailpointFailuresAreIsolatedPerStage) {
  // Arm each flow stage in turn; a single-spec batch must end failed
  // with the injected classification, never throw.
  const std::string spec = write_spec("one.spec");
  for (const char* site :
       {"spec.read", "flow.run", "flow.patterns", "flow.grade"}) {
    SCOPED_TRACE(site);
    util::Failpoints::instance().clear();
    util::Failpoints::instance().arm_from_string(
        std::string(site) + "=error(invalid_spec)");
    const BatchResult result = run_batch({spec}, fast_options());
    ASSERT_EQ(result.records.size(), 1u);
    EXPECT_EQ(result.records[0].status, "failed");
    EXPECT_EQ(result.records[0].error_code, ErrorCode::kInvalidSpec);
    EXPECT_EQ(result.records[0].attempts, 1);
    EXPECT_NE(result.records[0].error.find(site), std::string::npos);
  }
}

// ---- retry ----

TEST_F(BatchTest, TransientFailureThatClearsEndsOkWithTwoAttempts) {
  // The canonical recovery: a transient failure on attempt 1 that clears
  // before attempt 2 must end ok with attempts == 2.
  const std::string spec = write_spec("one.spec");
  util::Failpoints::instance().arm_from_string(
      "flow.grade=error(transient,1)");
  const BatchResult result = run_batch({spec}, fast_options());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].status, "ok");
  EXPECT_EQ(result.records[0].error_code, ErrorCode::kOk);
  EXPECT_EQ(result.records[0].attempts, 2);
  EXPECT_TRUE(result.records[0].error.empty());
}

TEST_F(BatchTest, RetryBudgetIsBounded) {
  const std::string spec = write_spec("one.spec");
  util::Failpoints::instance().arm_from_string("flow.grade=error(io)");
  BatchOptions options = fast_options();
  options.retry.max_attempts = 3;
  const BatchResult result = run_batch({spec}, options);
  EXPECT_EQ(result.records[0].status, "failed");
  EXPECT_EQ(result.records[0].error_code, ErrorCode::kIo);
  EXPECT_EQ(result.records[0].attempts, 3);
  EXPECT_EQ(util::Failpoints::instance().hit_count("flow.grade"), 3u);
}

TEST_F(BatchTest, PermanentFailuresNeverRetry) {
  const std::string spec = write_spec("one.spec");
  util::Failpoints::instance().arm_from_string("flow.grade=error(numeric)");
  BatchOptions options = fast_options();
  options.retry.max_attempts = 5;
  const BatchResult result = run_batch({spec}, options);
  EXPECT_EQ(result.records[0].status, "failed");
  EXPECT_EQ(result.records[0].error_code, ErrorCode::kNumeric);
  EXPECT_EQ(result.records[0].attempts, 1);
}

TEST_F(BatchTest, BackoffScheduleIsExponentialAndCapped) {
  RetryPolicy retry;
  retry.backoff_initial_ms = 100;
  retry.backoff_multiplier = 4.0;
  retry.backoff_max_ms = 2000;
  EXPECT_EQ(retry.backoff_ms(1), 100);
  EXPECT_EQ(retry.backoff_ms(2), 400);
  EXPECT_EQ(retry.backoff_ms(3), 1600);
  EXPECT_EQ(retry.backoff_ms(4), 2000);  // capped
  EXPECT_EQ(retry.backoff_ms(9), 2000);
  retry.backoff_initial_ms = 0;
  EXPECT_EQ(retry.backoff_ms(1), 0);
}

// ---- deadline ----

TEST_F(BatchTest, WedgedSpecEndsAsADeadlineRecord) {
  // A sleeping failpoint inside the grading stage simulates a wedged
  // run; the per-spec watchdog must turn it into a structured
  // `deadline` record — permanent, so exactly one attempt.
  const std::string spec = write_spec("one.spec");
  util::Failpoints::instance().arm_from_string("flow.grade=sleep(200)");
  BatchOptions options = fast_options();
  options.deadline_ms = 20;
  const BatchResult result = run_batch({spec}, options);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].status, "failed");
  EXPECT_EQ(result.records[0].error_code, ErrorCode::kDeadline);
  EXPECT_FALSE(result.records[0].transient);
  EXPECT_EQ(result.records[0].attempts, 1);
}

// ---- checkpoint / resume ----

TEST_F(BatchTest, CheckpointStreamsOneRecordPerSpec) {
  std::vector<std::string> specs = {write_spec("a.spec"),
                                    write_spec("b.spec")};
  BatchOptions options = fast_options();
  options.checkpoint = checkpoint_path();
  std::ostringstream live;
  options.stream = &live;
  const BatchResult result = run_batch(specs, options);
  EXPECT_EQ(result.ok_count, 2u);

  // Both sinks carry the same two parseable records.
  for (const std::string& text :
       {live.str(), [&] {
          std::ifstream in(checkpoint_path());
          std::ostringstream content;
          content << in.rdbuf();
          return content.str();
        }()}) {
    std::istringstream in(text);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      ++lines;
      EXPECT_TRUE(BatchRecord::from_jsonl(line).has_value()) << line;
    }
    EXPECT_EQ(lines, 2u);
  }
}

TEST_F(BatchTest, KilledBatchResumesToBitIdenticalResults) {
  // Reference: an uninterrupted run over 4 specs (one failing).
  std::vector<std::string> specs = {
      write_spec("a.spec"), write_spec("b.spec"),
      write_spec("bad.spec", "circuit = c17\nbogus = 1\n"),
      write_spec("d.spec")};
  BatchOptions options = fast_options();
  options.checkpoint = checkpoint_path();
  const BatchResult reference = run_batch(specs, options);
  EXPECT_EQ(reference.ok_count, 3u);
  EXPECT_EQ(reference.resumed_count, 0u);

  // Simulate a kill mid-batch: truncate the store to one complete record
  // plus one torn half-line.
  std::vector<std::string> lines;
  {
    std::ifstream in(checkpoint_path());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  {
    std::ofstream out(checkpoint_path(), std::ios::trunc);
    out << lines[0] << "\n" << lines[1].substr(0, lines[1].size() / 2);
  }

  // Resume: the surviving ok record is carried, everything else reruns,
  // and the canonical result set is byte-identical to the reference.
  const BatchResult resumed = run_batch(specs, options);
  EXPECT_EQ(resumed.ok_count, 3u);
  EXPECT_EQ(resumed.failed_count, 1u);
  EXPECT_EQ(resumed.resumed_count, 1u);
  EXPECT_EQ(resumed.canonical(), reference.canonical());

  // The rewritten checkpoint also resumes cleanly: run again, everything
  // ok is carried, failures re-attempted, same canonical bytes.
  const BatchResult again = run_batch(specs, options);
  EXPECT_EQ(again.resumed_count, 3u);
  EXPECT_EQ(again.canonical(), reference.canonical());
}

TEST_F(BatchTest, CrashBeforeRecordCommitThenResume) {
  // Arm the "batch.record" site: the failure escapes the per-spec
  // boundary (it is the simulated kill — the record is lost before the
  // store commits it), so run_batch itself must throw.
  std::vector<std::string> specs = {write_spec("a.spec"),
                                    write_spec("b.spec")};
  BatchOptions options = fast_options();
  options.num_workers = 1;  // deterministic: die on the first record
  options.checkpoint = checkpoint_path();
  util::Failpoints::instance().arm_from_string("batch.record=error(io,1)");
  EXPECT_THROW(run_batch(specs, options), IoError);

  // The dead batch left a valid (possibly empty) JSONL prefix; resuming
  // with the failpoint cleared converges to the full result set.
  util::Failpoints::instance().clear();
  const BatchResult resumed = run_batch(specs, options);
  EXPECT_EQ(resumed.ok_count, 2u);

  BatchOptions fresh = fast_options();
  const BatchResult reference = run_batch(specs, fresh);
  EXPECT_EQ(resumed.canonical(), reference.canonical());
}

TEST_F(BatchTest, EditedSpecInvalidatesItsCheckpointRecord) {
  const std::string spec = write_spec("a.spec");
  BatchOptions options = fast_options();
  options.checkpoint = checkpoint_path();
  const BatchResult first = run_batch({spec}, options);
  EXPECT_EQ(first.ok_count, 1u);

  // Same path, different content: the carried record's hash no longer
  // matches, so the spec reruns with the new content.
  write_spec("a.spec",
             "circuit = c17\nsource = lfsr\npatterns = 32\n"
             "observe = full\nengine = ppsfp\n");
  const BatchResult second = run_batch({spec}, options);
  EXPECT_EQ(second.resumed_count, 0u);
  EXPECT_EQ(second.ok_count, 1u);
  EXPECT_EQ(second.records[0].patterns, 32u);
}

TEST_F(BatchTest, NoResumeRerunsEverything) {
  const std::string spec = write_spec("a.spec");
  BatchOptions options = fast_options();
  options.checkpoint = checkpoint_path();
  run_batch({spec}, options);
  options.resume = false;
  const BatchResult result = run_batch({spec}, options);
  EXPECT_EQ(result.resumed_count, 0u);
  EXPECT_EQ(result.ok_count, 1u);
}

TEST_F(BatchTest, UnwritableCheckpointIsABatchLevelIoError) {
  const std::string spec = write_spec("a.spec");
  BatchOptions options = fast_options();
  options.checkpoint = (dir_ / "no_such_dir" / "results.jsonl").string();
  EXPECT_THROW(run_batch({spec}, options), IoError);
}

// ---- artifact cache ----

TEST_F(BatchTest, ArtifactsAreSharedAcrossSpecs) {
  // Three specs over c17 stuck-at, one over c17 transition: the cache
  // must build twice and reuse twice — and sharing must not change the
  // graded numbers (same records as a cold cache).
  std::vector<std::string> specs = {
      write_spec("a.spec"), write_spec("b.spec"),
      write_spec("t.spec",
                 "circuit = c17\nfault_model = transition\nsource = lfsr\n"
                 "patterns = 64\nobserve = full\nengine = ppsfp\n"),
      write_spec("c.spec")};
  BatchOptions options = fast_options();
  options.num_workers = 1;  // deterministic hit/miss split
  const BatchResult warm = run_batch(specs, options);
  EXPECT_EQ(warm.ok_count, 4u);
  EXPECT_EQ(warm.cache_misses, 2u);
  EXPECT_EQ(warm.cache_hits, 2u);

  // A fresh cache (new run_batch call) grades identically.
  const BatchResult cold = run_batch(specs, options);
  EXPECT_EQ(cold.canonical(), warm.canonical());
}

TEST_F(BatchTest, CacheEvictsLeastRecentlyUsedUnderCostBound) {
  // Learn the real cost of three products first (costs are circuit
  // sizes — pinning literals here would break on generator changes),
  // then bound a fresh cache one node below their sum so the third
  // insertion MUST evict exactly the least-recently-used entry.
  const auto model = fault_model::FaultModel::kStuckAt;
  ArtifactCache probe;
  const std::size_t cost_a =
      ArtifactCache::cost_of(*probe.get("c17", model));
  const std::size_t cost_b =
      ArtifactCache::cost_of(*probe.get("adder8", model));
  const std::size_t cost_c =
      ArtifactCache::cost_of(*probe.get("parity8", model));

  ArtifactCache cache(cost_a + cost_b + cost_c - 1);
  cache.get("c17", model);      // t1
  cache.get("adder8", model);   // t2
  cache.get("parity8", model);  // t3 — evicts c17, the LRU
  ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.cost, cost_b + cost_c);

  // adder8 is still cached (a hit refreshes its recency) ...
  cache.get("adder8", model);  // t4
  EXPECT_EQ(cache.stats().hits, 1u);

  // ... so re-adding c17 evicts parity8 (t3), not adder8 (t4): recency
  // is use order, not insertion order.
  const auto rebuilt = cache.get("c17", model);  // t5
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt->compiled, nullptr);  // rebuilt entries are whole
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.cost, cost_a + cost_b);
  EXPECT_LE(stats.cost, stats.max_cost);
}

TEST_F(BatchTest, EvictedArtifactHandlesStayValid) {
  // Eviction only stops the cache from handing an entry out; a job
  // holding the shared handle keeps grading against it safely.
  const auto model = fault_model::FaultModel::kStuckAt;
  ArtifactCache cache;
  const std::shared_ptr<const ArtifactCache::Artifacts> held =
      cache.get("c17", model);
  cache.get("adder8", model);
  cache.set_max_cost(1);  // tighter bound evicts immediately ...
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);
  // ... but the held handle is untouched.
  EXPECT_NE(held->circuit, nullptr);
  EXPECT_NE(held->faults, nullptr);
  EXPECT_GT(held->compiled->node_count(), 0u);
}

TEST_F(BatchTest, MostRecentEntryIsNeverEvicted) {
  // A bound smaller than any single artifact degrades to "cache nothing
  // else": the newest entry always survives, so oversized products still
  // build and run instead of thrashing to an empty cache.
  const auto model = fault_model::FaultModel::kStuckAt;
  ArtifactCache cache(1);
  cache.get("c17", model);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // sole entry is the MRU
  cache.get("adder8", model);
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);      // adder8 displaced c17 ...
  EXPECT_EQ(stats.evictions, 1u);    // ... by evicting it
  EXPECT_GT(stats.cost, stats.max_cost);  // documented MRU exemption
}

TEST_F(BatchTest, BoundedCacheDoesNotChangeBatchResults) {
  // Determinism across hit/evict/rebuild: a batch thrashing a one-node
  // cache (every artifact rebuilt repeatedly) grades byte-identically
  // to the same batch with an unbounded cache.
  const std::vector<std::string> specs = {
      write_spec("a.spec"),
      write_spec("b.spec",
                 "circuit = adder8\nsource = lfsr\npatterns = 64\n"
                 "observe = full\nengine = ppsfp\n"),
      write_spec("c.spec")};  // c17 again: a rebuild after eviction
  BatchOptions unbounded = fast_options();
  unbounded.num_workers = 1;
  BatchOptions bounded = unbounded;
  bounded.cache_max_cost = 1;
  const BatchResult plain = run_batch(specs, unbounded);
  const BatchResult thrashed = run_batch(specs, bounded);
  EXPECT_EQ(plain.ok_count, 3u);
  EXPECT_EQ(thrashed.ok_count, 3u);
  EXPECT_EQ(plain.canonical(), thrashed.canonical());
  // The bound really did change cache behavior (no silent no-op).
  EXPECT_EQ(plain.cache_misses, 2u);
  EXPECT_EQ(thrashed.cache_misses, 3u);
}

TEST_F(BatchTest, CheckOnlyLintsWithoutGrading) {
  // A netlist with an unused input, run through the check-only batch:
  // the default warn policy yields an "ok" record with zero patterns
  // (nothing was graded), the error policy a permanent "lint" failure.
  const fs::path bench = dir_ / "spare.bench";
  {
    std::ofstream out(bench);
    out << "INPUT(a)\nINPUT(spare)\nOUTPUT(y)\ny = NOT(a)\n";
  }
  const std::string warn_spec = write_spec(
      "warn.spec",
      "circuit = " + bench.string() + "\nsource = lfsr\npatterns = 64\n");
  const std::string error_spec = write_spec(
      "error.spec", "circuit = " + bench.string() +
                        "\nsource = lfsr\npatterns = 64\n"
                        "analyze_dead_logic = error\n");
  const std::string clean_spec = write_spec("clean.spec");

  BatchOptions options = fast_options();
  options.check_only = true;
  const BatchResult result =
      run_batch({warn_spec, error_spec, clean_spec}, options);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.ok_count, 2u);
  EXPECT_EQ(result.failed_count, 1u);

  const BatchRecord& warn = result.records[0];
  EXPECT_EQ(warn.status, "ok");
  EXPECT_EQ(warn.patterns, 0u);  // dry run: nothing materialized
  EXPECT_GT(warn.classes, 0u);

  const BatchRecord& lint = result.records[1];
  EXPECT_EQ(lint.status, "failed");
  EXPECT_EQ(lint.error_code, ErrorCode::kLint);
  EXPECT_FALSE(lint.transient);
  EXPECT_EQ(lint.attempts, 1);  // permanent: no retry
  EXPECT_NE(lint.error.find("unused_input"), std::string::npos)
      << lint.error;

  // The same manifest WITHOUT check_only grades the warn spec for real.
  const BatchResult graded = run_batch({warn_spec}, fast_options());
  ASSERT_EQ(graded.records.size(), 1u);
  EXPECT_EQ(graded.records[0].status, "ok");
  EXPECT_EQ(graded.records[0].patterns, 64u);
}

TEST_F(BatchTest, ConcurrencyDoesNotChangeResults) {
  std::vector<std::string> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(write_spec("s" + std::to_string(i) + ".spec"));
  }
  BatchOptions serial = fast_options();
  serial.num_workers = 1;
  BatchOptions wide = fast_options();
  wide.num_workers = 4;
  EXPECT_EQ(run_batch(specs, serial).canonical(),
            run_batch(specs, wide).canonical());
}

}  // namespace
}  // namespace lsiq::flow
