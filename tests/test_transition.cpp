// Transition-fault subsystem tests: the fault_model enum and naming, the
// transition universe's restricted collapsing, hand-checked two-pattern
// launch/capture detections (including the pattern-0 and 64-pattern word
// boundary cases), serial/PPSFP/PPSFP-MT bit-identity on the transition
// model, and the launch gating of the dictionary and BIST layers.
#include "fault_model/universe.hpp"

#include <gtest/gtest.h>

#include "bist/session.hpp"
#include "circuit/generators.hpp"
#include "fault/dictionary.hpp"
#include "fault/fault_sim.hpp"
#include "fault/strobe.hpp"
#include "tpg/atpg.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::fault_model {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using fault::Fault;
using fault::FaultList;
using fault::FaultSimResult;
using sim::PatternSet;

/// All 2^n input patterns for a small circuit (bit i of the pattern index
/// drives input i, so consecutive patterns form natural launch pairs).
PatternSet exhaustive_patterns(const Circuit& c) {
  const std::size_t n = c.pattern_inputs().size();
  PatternSet p(n);
  for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
    std::vector<bool> bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = ((x >> i) & 1ULL) != 0;
    }
    p.append(bits);
  }
  return p;
}

TEST(FaultModel, NamesRoundTrip) {
  for (const FaultModel model :
       {FaultModel::kStuckAt, FaultModel::kTransition}) {
    EXPECT_EQ(fault_model_from_name(fault_model_name(model)), model);
  }
  EXPECT_EQ(fault_model_name(FaultModel::kTransition), "transition");
  EXPECT_EQ(fault_model_label(FaultModel::kTransition), "transition");
  EXPECT_EQ(fault_model_label(FaultModel::kStuckAt), "stuck-at");
  EXPECT_FALSE(fault_model_from_name("bridging").has_value());
}

TEST(FaultModel, PolarityNamesFollowTheEncoding) {
  EXPECT_EQ(polarity_name(FaultModel::kStuckAt, false), "s-a-0");
  EXPECT_EQ(polarity_name(FaultModel::kStuckAt, true), "s-a-1");
  EXPECT_EQ(polarity_name(FaultModel::kTransition, false), "slow-to-rise");
  EXPECT_EQ(polarity_name(FaultModel::kTransition, true), "slow-to-fall");
}

TEST(FaultModel, FaultNameIsModelAware) {
  const Circuit c = circuit::make_c17();
  const GateId g16 = c.find("G16");
  EXPECT_EQ(fault_name(c, Fault{g16, -1, true}, FaultModel::kTransition),
            "G16/out slow-to-fall");
  EXPECT_EQ(fault_name(c, Fault{g16, 0, false}, FaultModel::kTransition),
            "G16/in0 slow-to-rise");
  // The two-argument overload keeps its stuck-at meaning.
  EXPECT_EQ(fault_name(c, Fault{g16, -1, true}), "G16/out s-a-1");
}

TEST(FaultModel, UniverseFactoryTagsTheList) {
  const Circuit c = circuit::make_c17();
  const FaultList sa = universe(c, FaultModel::kStuckAt);
  const FaultList tr = universe(c, FaultModel::kTransition);
  EXPECT_EQ(sa.model(), FaultModel::kStuckAt);
  EXPECT_EQ(tr.model(), FaultModel::kTransition);
  // Same sites and polarities enumerated: N is model-independent...
  EXPECT_EQ(sa.fault_count(), tr.fault_count());
  // ...but the controlling-value rules are stuck-at-only, so the
  // transition universe collapses less.
  EXPECT_GT(tr.class_count(), sa.class_count());
}

TEST(TransitionCollapse, InverterChainStillCollapsesToOneLine) {
  // a -> NOT -> NOT -> NOT: single-input gates preserve the launch
  // condition, so the chain collapses exactly as under stuck-at (with
  // polarity flipping through each NOT).
  Circuit c("chain");
  GateId prev = c.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = c.add_gate(GateType::kNot, {prev}, "n" + std::to_string(i));
  }
  c.mark_output(prev);
  c.finalize();
  const FaultList faults = FaultList::transition_universe(c);
  EXPECT_EQ(faults.fault_count(), 14u);
  EXPECT_EQ(faults.class_count(), 2u);
}

TEST(TransitionCollapse, AndInputsDoNotMergeWithTheOutput) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::transition_universe(c);
  // Stuck-at would merge in s-a-0 with out s-a-0; a slow input is NOT a
  // slow output (the output's launch does not pin which input launched).
  EXPECT_NE(faults.class_of(faults.index_of(Fault{y, 0, false})),
            faults.class_of(faults.index_of(Fault{y, -1, false})));
  // Single-fanout branch == driver stem still holds (same line).
  EXPECT_EQ(faults.class_of(faults.index_of(Fault{y, 0, false})),
            faults.class_of(faults.index_of(Fault{a, -1, false})));
}

TEST(TransitionDetect, HandCheckedOnAnd2) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::transition_universe(c);

  // Patterns in order: 00, 01, 10, 11 (bit 0 = a, bit 1 = b).
  const FaultSimResult r =
      fault::simulate_ppsfp(faults, exhaustive_patterns(c));
  const auto first = [&](const Fault& f) {
    return r.first_detection[faults.class_of(faults.index_of(f))];
  };

  // y slow-to-rise: capture needs y = 1 (pattern 3, a=b=1) and the
  // previous pattern y = 0 (pattern 2: yes) -> detected at 3.
  EXPECT_EQ(first(Fault{y, -1, false}), 3);
  // y slow-to-fall: capture needs y = 0 with previous y = 1; y is only 1
  // on the last pattern -> never.
  EXPECT_EQ(first(Fault{y, -1, true}), -1);
  // a slow-to-rise: capture s-a-0(a) needs a=1,b=1 (pattern 3), launch
  // a=0 on pattern 2: detected at 3.
  EXPECT_EQ(first(Fault{a, -1, false}), 3);
  // a slow-to-fall: capture s-a-1(a) needs a=0,b=1 (pattern 2), launch
  // a=1 on pattern 1: detected at 2.
  EXPECT_EQ(first(Fault{a, -1, true}), 2);
  // b slow-to-rise: capture needs b=1,a=1 (pattern 3) but b was already 1
  // on pattern 2 -> no launch, never detected.
  EXPECT_EQ(first(Fault{b, -1, false}), -1);
  // b slow-to-fall: capture s-a-1(b) needs b=0,a=1 (pattern 1 only),
  // launch needs b=1 on pattern 0 (it is 0) -> never.
  EXPECT_EQ(first(Fault{b, -1, true}), -1);
  EXPECT_LT(r.coverage, 1.0);
}

TEST(TransitionDetect, FirstPatternNeverDetects) {
  // A capture-ready first pattern must not count: there is no launch.
  Circuit c("buf");
  const GateId a = c.add_input("a");
  const GateId y = c.add_gate(GateType::kBuf, {a}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::transition_universe(c);
  const std::size_t str = faults.class_of(faults.index_of(Fault{a, -1, false}));

  PatternSet starts_high(1);
  starts_high.append({true});   // slow-to-rise capture, but pattern 0
  starts_high.append({true});   // no 0->1 transition afterwards either
  const FaultSimResult r = fault::simulate_ppsfp(faults, starts_high);
  EXPECT_EQ(r.first_detection[str], -1);

  PatternSet with_launch(1);
  with_launch.append({true});
  with_launch.append({false});  // launch...
  with_launch.append({true});   // ...capture at pattern 2
  const FaultSimResult r2 = fault::simulate_ppsfp(faults, with_launch);
  EXPECT_EQ(r2.first_detection[str], 2);
}

TEST(TransitionDetect, LaunchCarriesAcrossTheWordBoundary) {
  // The pair (63, 64) spans two 64-pattern blocks: pattern 64's launch
  // value is pattern 63's good value, carried between blocks.
  Circuit c("buf");
  const GateId a = c.add_input("a");
  const GateId y = c.add_gate(GateType::kBuf, {a}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::transition_universe(c);
  const std::size_t str = faults.class_of(faults.index_of(Fault{a, -1, false}));
  const std::size_t stf = faults.class_of(faults.index_of(Fault{a, -1, true}));

  // 64 zeros then a single 1: the only rising pair is (63, 64).
  PatternSet rise(1);
  for (int i = 0; i < 64; ++i) rise.append({false});
  rise.append({true});
  // 64 ones then a single 0: the only falling pair is (63, 64).
  PatternSet fall(1);
  for (int i = 0; i < 64; ++i) fall.append({true});
  fall.append({false});

  for (const bool mt : {false, true}) {
    SCOPED_TRACE(mt ? "ppsfp_mt" : "ppsfp");
    const FaultSimResult r_rise =
        mt ? fault::simulate_ppsfp_mt(faults, rise, nullptr, 3)
           : fault::simulate_ppsfp(faults, rise);
    EXPECT_EQ(r_rise.first_detection[str], 64);
    EXPECT_EQ(r_rise.first_detection[stf], -1);
    const FaultSimResult r_fall =
        mt ? fault::simulate_ppsfp_mt(faults, fall, nullptr, 3)
           : fault::simulate_ppsfp(faults, fall);
    EXPECT_EQ(r_fall.first_detection[stf], 64);
    EXPECT_EQ(r_fall.first_detection[str], -1);
  }
  // The serial oracle computes its launch words independently.
  EXPECT_EQ(fault::simulate_serial(faults, rise).first_detection[str], 64);
  EXPECT_EQ(fault::simulate_serial(faults, fall).first_detection[stf], 64);
}

/// Transition counterpart of test_fault_sim's engine cross-check: every
/// engine must produce the identical FaultSimResult on the transition
/// universe, with and without a strobe schedule, at 1/2/8 threads.
void expect_transition_engines_agree(const Circuit& c,
                                     const PatternSet& patterns,
                                     const fault::StrobeSchedule* schedule) {
  const FaultList faults = FaultList::transition_universe(c);
  const FaultSimResult serial =
      fault::simulate_serial(faults, patterns, schedule);
  const FaultSimResult ppsfp =
      fault::simulate_ppsfp(faults, patterns, schedule);
  ASSERT_EQ(serial.first_detection, ppsfp.first_detection) << c.name();
  EXPECT_EQ(serial.covered_faults, ppsfp.covered_faults) << c.name();
  EXPECT_DOUBLE_EQ(serial.coverage, ppsfp.coverage) << c.name();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const FaultSimResult mt =
        fault::simulate_ppsfp_mt(faults, patterns, schedule, threads);
    ASSERT_EQ(serial.first_detection, mt.first_detection)
        << c.name() << " with " << threads << " threads";
    EXPECT_EQ(serial.covered_faults, mt.covered_faults) << c.name();
    EXPECT_EQ(serial.detected_classes, mt.detected_classes) << c.name();
    EXPECT_DOUBLE_EQ(serial.coverage, mt.coverage) << c.name();
  }
}

TEST(TransitionEngines, BitIdenticalAcrossGeneratorCircuits) {
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_ripple_carry_adder(4));
  circuits.push_back(circuit::make_alu(4));
  circuits.push_back(circuit::make_parity_tree(6));
  circuits.push_back(circuit::make_mux_tree(2));
  circuits.push_back(circuit::make_scan_accumulator(6));
  util::Rng rng(2024);
  for (const Circuit& c : circuits) {
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(96, rng);  // 1.5 blocks: exercises the carry
    expect_transition_engines_agree(c, patterns, nullptr);
  }
}

TEST(TransitionEngines, BitIdenticalUnderPartialStrobeSchedule) {
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_alu(4));
  circuits.push_back(circuit::make_scan_accumulator(6));
  util::Rng rng(2025);
  for (const Circuit& c : circuits) {
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(100, rng);
    const fault::StrobeSchedule schedule = fault::StrobeSchedule::progressive(
        c.observed_points().size(), 7);
    expect_transition_engines_agree(c, patterns, &schedule);
  }
}

TEST(TransitionEngines, BitIdenticalOnRandomDags) {
  for (const std::uint64_t seed : {5u, 23u, 87u}) {
    circuit::RandomDagSpec spec;
    spec.inputs = 10;
    spec.gates = 100;
    spec.seed = seed;
    const Circuit c = make_random_dag(spec);
    util::Rng rng(seed + 11);
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(80, rng);
    expect_transition_engines_agree(c, patterns, nullptr);
  }
}

TEST(TransitionDetect, CoverageNeverExceedsStuckAtOnPairedUniverses) {
  // Per site, a transition detection implies the capture stuck-at
  // detection — so weighted coverage on the same N cannot exceed the
  // stuck-at figure for the same program.
  const Circuit c = circuit::make_alu(4);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 200, 3);
  const FaultList sa = FaultList::full_universe(c);
  const FaultList tr = FaultList::transition_universe(c);
  const FaultSimResult rsa = fault::simulate_ppsfp(sa, patterns);
  const FaultSimResult rtr = fault::simulate_ppsfp(tr, patterns);
  EXPECT_LE(rtr.coverage, rsa.coverage);
  EXPECT_GT(rtr.coverage, 0.5);

  // Site-level check against the universe enumeration (same order in both
  // lists): a detected transition fault's capture stuck-at is detected no
  // later.
  ASSERT_EQ(sa.fault_count(), tr.fault_count());
  for (std::size_t u = 0; u < tr.fault_count(); ++u) {
    ASSERT_EQ(sa.faults()[u], tr.faults()[u]);
    const std::int64_t t_tr = rtr.first_detection[tr.class_of(u)];
    const std::int64_t t_sa = rsa.first_detection[sa.class_of(u)];
    if (t_tr >= 0) {
      ASSERT_GE(t_sa, 0) << fault_name(c, tr.faults()[u],
                                       FaultModel::kTransition);
      EXPECT_LE(t_sa, t_tr);
    }
  }
}

TEST(TransitionDictionary, SignaturesMatchTheSerialOracle) {
  const Circuit c = circuit::make_ripple_carry_adder(4);
  const FaultList faults = FaultList::transition_universe(c);
  util::Rng rng(9);
  PatternSet patterns(c.pattern_inputs().size());
  patterns.append_random(80, rng);  // spans a block boundary

  const fault::FaultDictionary dictionary =
      fault::FaultDictionary::build(faults, patterns);
  const FaultSimResult oracle = fault::simulate_serial(faults, patterns);
  for (std::size_t cl = 0; cl < faults.class_count(); ++cl) {
    // First set bit of the dictionary row == the oracle's first detection.
    std::int64_t first = -1;
    for (std::size_t t = 0; t < patterns.size() && first < 0; ++t) {
      if (dictionary.detects(cl, t)) first = static_cast<std::int64_t>(t);
    }
    EXPECT_EQ(first, oracle.first_detection[cl])
        << fault_name(c, faults.representatives()[cl],
                      FaultModel::kTransition);
  }
}

TEST(TransitionBist, RawDetectionMatchesFaultSimAndAliasingIsSubset) {
  const Circuit c = circuit::make_alu(4);
  const FaultList faults = FaultList::transition_universe(c);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 192, 17);

  bist::BistConfig config;
  config.misr_width = 8;  // narrow: aliasing plausible
  const bist::BistSession session(faults, patterns, config);
  const bist::BistResult one = session.run(1);
  const bist::BistResult many = session.run(4);

  // Raw (full-observation) transition detection must equal the fault
  // simulator's; the session only adds compaction on top.
  const FaultSimResult direct = fault::simulate_ppsfp(faults, patterns);
  EXPECT_EQ(one.first_error_pattern, direct.first_detection);

  // Signature detection is raw detection minus aliasing, and the grading
  // is thread-count independent.
  EXPECT_LE(one.signature_detected_classes, one.raw_detected_classes);
  for (const std::uint32_t cls : one.aliased_classes) {
    EXPECT_GE(one.first_error_pattern[cls], 0);
  }
  EXPECT_EQ(one.fault_signatures, many.fault_signatures);
  EXPECT_EQ(one.first_divergence_pattern, many.first_divergence_pattern);
  EXPECT_EQ(one.good_signature, many.good_signature);
}

TEST(TransitionAtpg, GenerateTestsAcceptsTransitionUniverses) {
  // PR 4 rejected transition universes here ("transition ATPG is not
  // implemented"); two-pattern PODEM now closes them — the verdict is a
  // full test set, not a ContractViolation.
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::transition_universe(c);
  const tpg::AtpgResult result = tpg::generate_tests(faults, {});
  EXPECT_EQ(result.aborted_classes, 0u);
  EXPECT_DOUBLE_EQ(result.effective_coverage, 1.0);
  // The set really detects what generation claims: re-grade it with the
  // independent two-pattern fault simulator.
  const fault::FaultSimResult check =
      fault::simulate_ppsfp(faults, result.patterns);
  EXPECT_GE(check.coverage, result.coverage);
}

TEST(TransitionKernel, DetectWordTransitionRequiresBlockSync) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::transition_universe(c);
  fault::Propagator propagator(c);
  TwoPatternWindow window(c.gate_count());
  std::vector<std::uint64_t> good(c.gate_count(), 0);
  EXPECT_THROW(propagator.detect_word_transition(
                   faults.representatives().front(), good, window),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::fault_model
