// Table-driven tests for flow::validate: every rejected spec names the
// offending field and carries the exact diagnostic text — the structured
// alternative to throwing deep in the stack — plus the run-time
// unreachable-strobe diagnostic and the InvalidSpec aggregation.
#include "flow/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "sim/pattern_io.hpp"
#include "tpg/lfsr.hpp"

namespace lsiq::flow {
namespace {

/// A runnable baseline every case mutates: lfsr -> full -> ppsfp -> lot.
FlowSpec good_spec() {
  FlowSpec spec;
  spec.source.pattern_count = 64;
  spec.lot.chip_count = 100;
  spec.analysis.strobe_coverages = {0.10, 0.20};
  return spec;
}

struct Case {
  const char* name;
  std::function<void(FlowSpec&)> mutate;
  const char* field;
  const char* message;
};

const Case kCases[] = {
    {"bad fault model name",
     [](FlowSpec& s) { s.fault_model.kind = "bridging"; },
     "fault_model.kind",
     "unknown fault model 'bridging' (expected stuck_at or transition)"},
    {"transition lfsr program with one pattern",
     [](FlowSpec& s) {
       s.fault_model.kind = "transition";
       s.source.pattern_count = 1;
     },
     "source.pattern_count",
     "transition grading needs at least 2 patterns (one launch/capture "
     "pair)"},
    {"transition explicit program with one pattern",
     [](FlowSpec& s) {
       s.fault_model.kind = "transition";
       s.source.kind = "explicit";
       s.source.patterns = sim::PatternSet(3);
       s.source.patterns->append({false, true, false});
     },
     "source.patterns",
     "transition grading needs at least 2 patterns (one launch/capture "
     "pair)"},
    {"bad source name",
     [](FlowSpec& s) { s.source.kind = "rand"; },
     "source.kind",
     "unknown pattern source 'rand' (expected lfsr, atpg, explicit, or "
     "file)"},
    {"zero pattern count",
     [](FlowSpec& s) { s.source.pattern_count = 0; },
     "source.pattern_count",
     "lfsr source requires pattern_count > 0"},
    {"unsupported lfsr width",
     [](FlowSpec& s) { s.source.lfsr_width = 13; },
     "source.lfsr_width",
     "unsupported LFSR width 13 (use 4, 8, 16, 24, 32, 48 or 64)"},
    {"explicit source without patterns",
     [](FlowSpec& s) { s.source.kind = "explicit"; },
     "source.patterns",
     "explicit source requires a non-empty pattern set"},
    {"file source without path",
     [](FlowSpec& s) { s.source.kind = "file"; },
     "source.file",
     "file source requires a path"},
    {"atpg source with a zero backtrack budget",
     [](FlowSpec& s) {
       s.source.kind = "atpg";
       s.source.atpg.podem.max_backtracks = 0;
     },
     "source.atpg.podem.max_backtracks",
     "atpg source requires max_backtracks > 0 (every deterministic solve "
     "would abort immediately)"},
    {"bad observation name",
     [](FlowSpec& s) { s.observe.kind = "scan"; },
     "observe.kind",
     "unknown observation 'scan' (expected full, progressive, or misr)"},
    {"progressive without step",
     [](FlowSpec& s) { s.observe.kind = "progressive"; },
     "observe.strobe_step",
     "progressive observation requires strobe_step > 0"},
    {"misr width zero",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.observe.misr_width = 0;
       s.analysis.strobe_coverages.clear();
     },
     "observe.misr_width",
     "MISR width must be in [1, 64], got 0"},
    {"misr width too large",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.observe.misr_width = 65;
       s.analysis.strobe_coverages.clear();
     },
     "observe.misr_width",
     "MISR width must be in [1, 64], got 65"},
    {"misr width without standard polynomial",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.observe.misr_width = 13;
       s.analysis.strobe_coverages.clear();
     },
     "observe.misr_width",
     "no standard polynomial for MISR width 13; set observe.misr_taps "
     "explicitly"},
    {"misr taps exceed width",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.observe.misr_width = 8;
       s.observe.misr_taps = 0x100;
       s.analysis.strobe_coverages.clear();
     },
     "observe.misr_taps",
     "MISR taps exceed the register width"},
    {"bad engine name",
     [](FlowSpec& s) { s.engine.kind = "fast"; },
     "engine.kind",
     "unknown engine 'fast' (expected serial, ppsfp, ppsfp_mt, or "
     "sharded)"},
    {"serial engine with misr observation",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.engine.kind = "serial";
       s.analysis.strobe_coverages.clear();
     },
     "engine.kind",
     "the serial engine has no signature-grading mode; use ppsfp, "
     "ppsfp_mt, or sharded with misr observation"},
    {"ppsfp with a worker pool",
     [](FlowSpec& s) { s.engine.num_threads = 4; },
     "engine.num_threads",
     "ppsfp is single-threaded; use ppsfp_mt for num_threads > 1"},
    {"unsupported grade width",
     [](FlowSpec& s) { s.engine.grade_width = 3; },
     "engine.grade_width",
     "grade_width must be 1, 4, or 8, got 3"},
    {"serial engine with a wide kernel",
     [](FlowSpec& s) {
       s.engine.kind = "serial";
       s.engine.grade_width = 4;
     },
     "engine.grade_width",
     "the serial engine has no wide kernel; grade_width requires a "
     "PPSFP-family engine"},
    {"misr observation with a wide kernel",
     [](FlowSpec& s) {
       s.observe.kind = "misr";
       s.engine.kind = "ppsfp_mt";
       s.engine.grade_width = 8;
       s.analysis.strobe_coverages.clear();
     },
     "engine.grade_width",
     "misr signature grading is strictly 64-lane; grade_width must "
     "be 1"},
    {"shards on a non-sharded engine",
     [](FlowSpec& s) { s.engine.shards = 2; },
     "engine.shards",
     "shards is only meaningful for engine 'sharded'"},
    {"yield out of range",
     [](FlowSpec& s) { s.lot.yield = 1.0; },
     "lot.yield",
     "yield must be in (0, 1), got 1.000000"},
    {"n0 below one",
     [](FlowSpec& s) { s.lot.n0 = 0.5; },
     "lot.n0",
     "n0 must be >= 1 (a defective chip has at least one fault), got "
     "0.500000"},
    {"bad characterization method",
     [](FlowSpec& s) { s.analysis.method = "mle"; },
     "analysis.method",
     "unknown characterization method 'mle' (expected given, slope, "
     "discrete, or least_squares)"},
    {"estimator without strobes",
     [](FlowSpec& s) {
       s.analysis.method = "least_squares";
       s.analysis.strobe_coverages.clear();
     },
     "analysis.method",
     "characterization from lot data requires strobe checkpoints"},
    {"estimator without a lot",
     [](FlowSpec& s) {
       s.analysis.method = "slope";
       s.lot.chip_count = 0;
     },
     "analysis.method",
     "characterization requires a lot; set lot.chip_count > 0"},
    {"strobe readout with misr observation",
     [](FlowSpec& s) { s.observe.kind = "misr"; },
     "analysis.strobe_coverages",
     "misr observation makes one end-of-session decision; the strobe "
     "readout requires full or progressive observation"},
    {"strobe readout without a lot",
     [](FlowSpec& s) { s.lot.chip_count = 0; },
     "analysis.strobe_coverages",
     "the strobe readout requires a lot; set lot.chip_count > 0"},
    {"strobe coverage out of range",
     [](FlowSpec& s) { s.analysis.strobe_coverages = {0.10, 1.5}; },
     "analysis.strobe_coverages",
     "strobe coverages must lie in (0, 1], got 1.500000"},
    {"strobe coverages not increasing",
     [](FlowSpec& s) { s.analysis.strobe_coverages = {0.20, 0.10}; },
     "analysis.strobe_coverages",
     "strobe coverages must be strictly increasing"},
    {"reject target out of range",
     [](FlowSpec& s) { s.analysis.reject_targets = {0.0}; },
     "analysis.reject_targets",
     "reject targets must lie in (0, 1), got 0.000000"},
    {"bad analyze structure policy",
     [](FlowSpec& s) { s.analyze.structure = "strict"; },
     "analyze.structure",
     "unknown analyze policy 'strict' (expected off, warn, or error)"},
    {"bad analyze dead-logic policy",
     [](FlowSpec& s) { s.analyze.dead_logic = "fatal"; },
     "analyze.dead_logic",
     "unknown analyze policy 'fatal' (expected off, warn, or error)"},
    {"bad analyze untestable policy",
     [](FlowSpec& s) { s.analyze.untestable = "maybe"; },
     "analyze.untestable",
     "unknown analyze policy 'maybe' (expected off, warn, or error)"},
    {"bad analyze testability policy",
     [](FlowSpec& s) { s.analyze.testability = "on"; },
     "analyze.testability",
     "unknown analyze policy 'on' (expected off, warn, or error)"},
    {"resistant threshold out of range",
     [](FlowSpec& s) { s.analyze.resistant_threshold = 1.0; },
     "analyze.resistant_threshold",
     "resistant threshold must be in (0, 1), got 1.000000"},
    {"resistant threshold not finite",
     [](FlowSpec& s) {
       s.analyze.resistant_threshold =
           std::numeric_limits<double>::quiet_NaN();
     },
     "analyze.resistant_threshold",
     "resistant threshold must be in (0, 1), got nan"},
};

TEST(FlowValidate, GoodSpecHasNoIssues) {
  EXPECT_TRUE(validate(good_spec()).empty());
  EXPECT_NO_THROW(validate_or_throw(good_spec()));
}

TEST(FlowValidate, TransitionAtpgSpecIsAccepted) {
  // PR 4 rejected atpg + transition with a structured source.kind issue;
  // two-pattern PODEM makes the combination a first-class flow, so the
  // spec must now validate clean (the >= 2 pattern floor moves to run
  // time, where the generated program's length is known).
  FlowSpec spec = good_spec();
  spec.fault_model.kind = "transition";
  spec.source = PatternSourceSpec{};
  spec.source.kind = "atpg";
  EXPECT_TRUE(validate(spec).empty());
  spec.source.atpg_compact = true;
  EXPECT_TRUE(validate(spec).empty());
}

TEST(FlowValidate, MinimalTransitionSpecIsClean) {
  // Two patterns are exactly one launch/capture pair — the smallest legal
  // transition program.
  FlowSpec spec = good_spec();
  spec.fault_model.kind = "transition";
  spec.source.pattern_count = 2;
  spec.analysis.strobe_coverages.clear();
  spec.lot.chip_count = 0;
  EXPECT_TRUE(validate(spec).empty());
}

TEST(FlowValidate, TransitionFileSourceLengthIsCheckedAtRunTime) {
  // validate() cannot know a pattern file's length; flow::run reports a
  // one-pattern transition program with a launch/capture diagnostic.
  static const circuit::Circuit circuit = circuit::make_c17();
  const std::string path =
      ::testing::TempDir() + "lsiq_one_pattern_transition.txt";
  sim::PatternSet one(circuit.pattern_inputs().size());
  one.append(std::vector<bool>(circuit.pattern_inputs().size(), true));
  sim::write_patterns_file(one, path);

  FlowSpec spec = good_spec();
  spec.fault_model.kind = "transition";
  spec.source.kind = "file";
  spec.source.file = path;
  spec.analysis.strobe_coverages.clear();
  spec.lot.chip_count = 0;
  ASSERT_TRUE(validate(spec).empty());
  try {
    flow::run(circuit, spec);
    FAIL() << "expected lsiq::Error";
  } catch (const lsiq::Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "flow: transition grading needs at least 2 patterns (one "
              "launch/capture pair); the source produced 1");
  }
  std::remove(path.c_str());
}

TEST(FlowValidate, TableOfBadSpecs) {
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    FlowSpec spec = good_spec();
    c.mutate(spec);
    const std::vector<SpecIssue> issues = validate(spec);
    ASSERT_FALSE(issues.empty());
    bool found = false;
    for (const SpecIssue& issue : issues) {
      if (issue.field == c.field && issue.message == c.message) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing diagnostic; got "
                       << issues.size() << " issue(s), first: "
                       << issues[0].field << ": " << issues[0].message;
  }
}

TEST(FlowValidate, NonFiniteNumbersAreRejected) {
  // Regression: NaN compares false against every range bound, so without
  // explicit isfinite checks a 'yield = nan' spec validated clean and
  // blew up (or silently printed NaN DPPM rows) only at run time.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const struct {
    const char* field;
    std::function<void(FlowSpec&)> mutate;
  } cases[] = {
      {"lot.yield", [&](FlowSpec& s) { s.lot.yield = nan; }},
      {"lot.n0", [&](FlowSpec& s) { s.lot.n0 = inf; }},
      {"analysis.strobe_coverages",
       [&](FlowSpec& s) { s.analysis.strobe_coverages = {nan}; }},
      {"analysis.reject_targets",
       [&](FlowSpec& s) { s.analysis.reject_targets = {inf}; }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.field);
    FlowSpec spec = good_spec();
    c.mutate(spec);
    const std::vector<SpecIssue> issues = validate(spec);
    ASSERT_FALSE(issues.empty());
    bool found = false;
    for (const SpecIssue& issue : issues) {
      if (issue.field == c.field) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(FlowValidate, MultipleIssuesAreAllReported) {
  FlowSpec spec = good_spec();
  spec.source.kind = "rand";
  spec.engine.kind = "fast";
  spec.lot.n0 = 0.0;
  const std::vector<SpecIssue> issues = validate(spec);
  EXPECT_EQ(issues.size(), 3u);
}

TEST(FlowValidate, InvalidSpecCarriesStructuredIssuesAndJoinedWhat) {
  FlowSpec spec = good_spec();
  spec.source.kind = "rand";
  spec.engine.kind = "fast";
  try {
    validate_or_throw(spec);
    FAIL() << "expected InvalidSpec";
  } catch (const InvalidSpec& e) {
    ASSERT_EQ(e.issues().size(), 2u);
    EXPECT_EQ(e.issues()[0].field, "source.kind");
    EXPECT_EQ(e.issues()[1].field, "engine.kind");
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid flow spec (2 issues)"), std::string::npos);
    EXPECT_NE(what.find("source.kind: unknown pattern source 'rand'"),
              std::string::npos);
  }
}

TEST(FlowValidate, RunRefusesAnInvalidSpec) {
  static const circuit::Circuit circuit = circuit::make_c17();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  FlowSpec spec = good_spec();
  spec.engine.kind = "fast";
  EXPECT_THROW(flow::run(faults, spec), InvalidSpec);
}

TEST(FlowValidate, UnreachableStrobeDiagnosticNamesBothCoverages) {
  // The run-time counterpart of validation: a strobe the program never
  // reaches fails with the exact target-vs-final diagnostic.
  static const circuit::Circuit circuit = circuit::make_c17();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  // One all-zero pattern: some coverage, nowhere near 99%.
  sim::PatternSet one(circuit.pattern_inputs().size());
  one.append(std::vector<bool>(circuit.pattern_inputs().size(), false));

  FlowSpec spec = good_spec();
  spec.source = PatternSourceSpec{};
  spec.source.kind = "explicit";
  spec.source.patterns = one;
  spec.analysis.strobe_coverages = {0.99};

  const fault::FaultSimResult graded = fault::simulate_ppsfp(faults, one);
  const double final_coverage = graded.curve(faults, 1).final_coverage();
  ASSERT_LT(final_coverage, 0.99);
  const std::string expected =
      "flow: pattern set never reaches coverage " + std::to_string(0.99) +
      " (final coverage " + std::to_string(final_coverage) + ")";
  try {
    flow::run(faults, spec);
    FAIL() << "expected lsiq::Error";
  } catch (const lsiq::Error& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

/// A runnable circuit with one unused input: dead_logic lint material.
circuit::Circuit spare_pin_circuit() {
  circuit::Circuit c("spare_pin");
  const circuit::GateId a = c.add_input("a");
  c.add_input("spare");
  const circuit::GateId x =
      c.add_gate(circuit::GateType::kNot, {a}, "x");
  c.mark_output(x);
  c.finalize();
  return c;
}

TEST(FlowAnalyzeGate, ErrorPolicyRefusesTheRun) {
  static const circuit::Circuit circuit = spare_pin_circuit();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  FlowSpec spec = good_spec();
  spec.analysis.strobe_coverages.clear();
  spec.lot.chip_count = 0;
  spec.analyze.dead_logic = "error";
  // The spare pin's own stuck-at sites are also statically untestable;
  // silence that class so the test isolates the dead_logic verdict.
  spec.analyze.untestable = "off";
  try {
    flow::run(faults, spec);
    FAIL() << "expected analyze::LintError";
  } catch (const analyze::LintError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kLint);
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].rule, analyze::Rule::kUnusedInput);
    EXPECT_EQ(e.diagnostics()[0].object, "spare");
    const std::string what = e.what();
    EXPECT_NE(what.find("lint failed (1 error, 0 warnings)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("error[unused_input] spare"), std::string::npos);
  }
}

TEST(FlowAnalyzeGate, WarnPolicyRunsAndReportsFindings) {
  static const circuit::Circuit circuit = spare_pin_circuit();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  FlowSpec spec = good_spec();
  spec.analysis.strobe_coverages.clear();
  spec.lot.chip_count = 0;
  spec.analyze.untestable = "off";
  const FlowResult result = flow::run(faults, spec);  // default: warn
  ASSERT_EQ(result.lint.size(), 1u);
  EXPECT_EQ(result.lint[0].rule, analyze::Rule::kUnusedInput);
  EXPECT_EQ(result.lint[0].severity, analyze::Policy::kWarn);
  EXPECT_NE(result.report().find(
                "lint: 1 warning from the analyze gate"),
            std::string::npos)
      << result.report();
}

TEST(FlowAnalyzeGate, CheckRunsTheGateWithoutGrading) {
  static const circuit::Circuit circuit = spare_pin_circuit();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  FlowSpec spec = good_spec();
  spec.analysis.strobe_coverages.clear();
  spec.lot.chip_count = 0;
  spec.analyze.untestable = "off";
  const std::vector<analyze::Diagnostic> warnings =
      flow::check(faults, spec);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].rule, analyze::Rule::kUnusedInput);

  // Every class off: the gate is a no-op and returns nothing.
  spec.analyze.structure = "off";
  spec.analyze.dead_logic = "off";
  spec.analyze.untestable = "off";
  EXPECT_TRUE(flow::check(faults, spec).empty());

  // An invalid spec is refused before any analysis happens.
  spec.analyze.structure = "strict";
  EXPECT_THROW(flow::check(faults, spec), InvalidSpec);
}

TEST(FlowAnalyzeGate, CleanCircuitRunsWithEmptyLint) {
  static const circuit::Circuit circuit = circuit::make_c17();
  static const fault::FaultList faults =
      fault::FaultList::full_universe(circuit);
  FlowSpec spec = good_spec();
  const FlowResult result = flow::run(faults, spec);
  EXPECT_TRUE(result.lint.empty());
  EXPECT_EQ(result.report().find("lint:"), std::string::npos);
}

}  // namespace
}  // namespace lsiq::flow
