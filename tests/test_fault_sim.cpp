// Fault-simulator tests: hand-checked detections on tiny circuits, the
// serial-vs-PPSFP cross-check property over generated and random circuits,
// and the scan-boundary special cases.
#include "fault/fault_sim.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "sim/parallel_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using sim::PatternSet;

/// All 2^n input patterns for a small circuit.
PatternSet exhaustive_patterns(const Circuit& c) {
  const std::size_t n = c.pattern_inputs().size();
  PatternSet p(n);
  for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
    std::vector<bool> bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = ((x >> i) & 1ULL) != 0;
    }
    p.append(bits);
  }
  return p;
}

TEST(FaultSim, SingleAndGateHandChecked) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);

  // Patterns in order: 00, 01, 10, 11 (bit 0 = a, bit 1 = b).
  const PatternSet patterns = exhaustive_patterns(c);
  const FaultSimResult r = simulate_ppsfp(faults, patterns);

  // y s-a-1 is detected by any pattern with y = 0: the first is 00.
  const std::size_t y_sa1 = faults.class_of(faults.index_of(Fault{y, -1, true}));
  EXPECT_EQ(r.first_detection[y_sa1], 0);
  // y s-a-0 needs y = 1: only pattern 11 (index 3).
  const std::size_t y_sa0 =
      faults.class_of(faults.index_of(Fault{y, -1, false}));
  EXPECT_EQ(r.first_detection[y_sa0], 3);
  // a s-a-1 needs a=0, b=1 (good y=0, faulty y=1): pattern 10 (b=1,a=0) is
  // index 2.
  const std::size_t a_sa1 =
      faults.class_of(faults.index_of(Fault{a, -1, true}));
  EXPECT_EQ(r.first_detection[a_sa1], 2);
  // Everything is detectable by the exhaustive set.
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(FaultSim, ExhaustivePatternsDetectAllC17Faults) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const FaultSimResult r = simulate_ppsfp(faults, exhaustive_patterns(c));
  EXPECT_DOUBLE_EQ(r.coverage, 1.0) << "c17 has no redundant faults";
}

TEST(FaultSim, SerialMatchesPpsfpOnC17) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns = exhaustive_patterns(c);
  const FaultSimResult serial = simulate_serial(faults, patterns);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns);
  ASSERT_EQ(serial.first_detection.size(), ppsfp.first_detection.size());
  for (std::size_t cl = 0; cl < serial.first_detection.size(); ++cl) {
    EXPECT_EQ(serial.first_detection[cl], ppsfp.first_detection[cl])
        << fault_name(c, faults.representatives()[cl]);
  }
}

class SerialVsPpsfp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialVsPpsfp, AgreeOnRandomCircuitsAndPatterns) {
  circuit::RandomDagSpec spec;
  spec.inputs = 10;
  spec.gates = 120;
  spec.seed = GetParam();
  const Circuit c = make_random_dag(spec);
  const FaultList faults = FaultList::full_universe(c);

  util::Rng rng(GetParam() + 1000);
  PatternSet patterns(c.pattern_inputs().size());
  patterns.append_random(96, rng);  // 1.5 blocks

  const FaultSimResult serial = simulate_serial(faults, patterns);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns);
  ASSERT_EQ(serial.first_detection.size(), ppsfp.first_detection.size());
  for (std::size_t cl = 0; cl < serial.first_detection.size(); ++cl) {
    EXPECT_EQ(serial.first_detection[cl], ppsfp.first_detection[cl])
        << fault_name(c, faults.representatives()[cl]);
  }
  EXPECT_DOUBLE_EQ(serial.coverage, ppsfp.coverage);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialVsPpsfp,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

TEST(FaultSim, SerialMatchesPpsfpOnSequentialCircuit) {
  Circuit c("seq");
  const GateId en = c.add_input("en");
  const GateId d_in = c.add_input("d_in");
  const GateId ff = c.add_dff("ff");
  const GateId mux_lo =
      c.add_gate(GateType::kAnd, {ff, en}, "hold");
  const GateId en_n = c.add_gate(GateType::kNot, {en}, "en_n");
  const GateId mux_hi = c.add_gate(GateType::kAnd, {d_in, en_n}, "load");
  const GateId d = c.add_gate(GateType::kOr, {mux_lo, mux_hi}, "d");
  c.connect_dff(ff, d);
  c.mark_output(d);
  c.finalize();

  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns = exhaustive_patterns(c);
  const FaultSimResult serial = simulate_serial(faults, patterns);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns);
  for (std::size_t cl = 0; cl < serial.first_detection.size(); ++cl) {
    EXPECT_EQ(serial.first_detection[cl], ppsfp.first_detection[cl])
        << fault_name(c, faults.representatives()[cl]);
  }
}

TEST(FaultSim, DffPinFaultObservedAtScanCapture) {
  // ff's D pin stuck: detectable exactly when the good D value differs.
  Circuit c("scan");
  const GateId a = c.add_input("a");
  const GateId ff = c.add_dff("ff");
  const GateId d = c.add_gate(GateType::kBuf, {a}, "d");
  c.connect_dff(ff, d);
  const GateId out = c.add_gate(GateType::kBuf, {ff}, "out");
  c.mark_output(out);
  c.finalize();

  const FaultList faults = FaultList::full_universe(c);
  const std::size_t pin_sa0_index = faults.index_of(Fault{ff, 0, false});
  ASSERT_LT(pin_sa0_index, faults.fault_count());
  const std::size_t cls = faults.class_of(pin_sa0_index);

  // Patterns over [a, ff]: set a=1 so good D = 1 != 0 -> detected.
  PatternSet patterns(2);
  patterns.append({false, false});  // a=0: D good = 0 == stuck, no detect
  patterns.append({true, false});   // a=1: detect here (index 1)
  const FaultSimResult r = simulate_ppsfp(faults, patterns);
  EXPECT_EQ(r.first_detection[cls], 1);
  const FaultSimResult rs = simulate_serial(faults, patterns);
  EXPECT_EQ(rs.first_detection[cls], 1);
}

TEST(FaultSim, UndetectableFaultStaysUndetected) {
  // y = OR(a, CONST1) == 1 always: y s-a-1 is redundant.
  Circuit c("red");
  const GateId a = c.add_input("a");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId y = c.add_gate(GateType::kOr, {a, one}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  const FaultSimResult r = simulate_ppsfp(faults, exhaustive_patterns(c));
  const std::size_t y_sa1 =
      faults.class_of(faults.index_of(Fault{y, -1, true}));
  EXPECT_EQ(r.first_detection[y_sa1], -1);
  EXPECT_LT(r.coverage, 1.0);
}

TEST(FaultSim, CoverageCurveIsMonotone) {
  const Circuit c = circuit::make_alu(4);
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns = tpg::lfsr_patterns(
      c.pattern_inputs().size(), 300, 17);
  const FaultSimResult r = simulate_ppsfp(faults, patterns);
  const CoverageCurve curve = r.curve(faults, patterns.size());
  double prev = 0.0;
  for (std::size_t t = 1; t <= patterns.size(); ++t) {
    const double f = curve.coverage_after(t);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(curve.final_coverage(), r.coverage);
}

TEST(FaultSim, FirstDetectionIndicesAreEarliest) {
  // Re-simulating the prefix set must detect exactly the faults whose
  // first_detection falls inside the prefix.
  const Circuit c = circuit::make_ripple_carry_adder(4);
  const FaultList faults = FaultList::full_universe(c);
  util::Rng rng(5);
  PatternSet patterns(c.pattern_inputs().size());
  patterns.append_random(80, rng);
  const FaultSimResult full = simulate_ppsfp(faults, patterns);

  const std::size_t prefix_len = 40;
  const FaultSimResult prefix =
      simulate_ppsfp(faults, patterns.slice(0, prefix_len));
  for (std::size_t cl = 0; cl < full.first_detection.size(); ++cl) {
    if (full.first_detection[cl] >= 0 &&
        static_cast<std::size_t>(full.first_detection[cl]) < prefix_len) {
      EXPECT_EQ(prefix.first_detection[cl], full.first_detection[cl]);
    } else {
      EXPECT_EQ(prefix.first_detection[cl], -1);
    }
  }
}

TEST(FaultSim, DetectWordForFaultMatchesSingleLane) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  sim::ParallelSimulator good(c);
  // One fully-specified pattern in lane 0.
  std::vector<std::uint64_t> words(c.pattern_inputs().size());
  words[0] = 1;  // G1 = 1, rest 0
  good.simulate_block(words);
  const FaultSimResult oracle = [&] {
    PatternSet p(c.pattern_inputs().size());
    p.append({true, false, false, false, false});
    return simulate_serial(faults, p);
  }();
  for (std::size_t cl = 0; cl < faults.class_count(); ++cl) {
    const std::uint64_t word = detect_word_for_fault(
        c, faults.representatives()[cl], good.values());
    EXPECT_EQ((word & 1ULL) != 0, oracle.first_detection[cl] == 0)
        << fault_name(c, faults.representatives()[cl]);
  }
}

/// Every engine must produce the identical FaultSimResult; this helper
/// cross-checks serial, PPSFP, and PPSFP-MT at 1/2/8 threads, with or
/// without a strobe schedule.
void expect_engines_agree(const Circuit& c, const PatternSet& patterns,
                          const StrobeSchedule* schedule) {
  const FaultList faults = FaultList::full_universe(c);
  const FaultSimResult serial = simulate_serial(faults, patterns, schedule);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns, schedule);
  ASSERT_EQ(serial.first_detection, ppsfp.first_detection) << c.name();
  EXPECT_EQ(serial.covered_faults, ppsfp.covered_faults) << c.name();
  EXPECT_DOUBLE_EQ(serial.coverage, ppsfp.coverage) << c.name();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const FaultSimResult mt =
        simulate_ppsfp_mt(faults, patterns, schedule, threads);
    ASSERT_EQ(serial.first_detection, mt.first_detection)
        << c.name() << " with " << threads << " threads";
    EXPECT_EQ(serial.covered_faults, mt.covered_faults) << c.name();
    EXPECT_EQ(serial.detected_classes, mt.detected_classes) << c.name();
    EXPECT_DOUBLE_EQ(serial.coverage, mt.coverage) << c.name();
  }
}

TEST(FaultSimMt, BitIdenticalAcrossGeneratorCircuits) {
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_ripple_carry_adder(4));
  circuits.push_back(circuit::make_alu(4));
  circuits.push_back(circuit::make_parity_tree(6));
  circuits.push_back(circuit::make_mux_tree(2));
  circuits.push_back(circuit::make_scan_accumulator(6));
  util::Rng rng(42);
  for (const Circuit& c : circuits) {
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(96, rng);  // 1.5 blocks
    expect_engines_agree(c, patterns, nullptr);
  }
}

TEST(FaultSimMt, BitIdenticalUnderPartialStrobeSchedule) {
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_alu(4));
  circuits.push_back(circuit::make_scan_accumulator(6));
  util::Rng rng(43);
  for (const Circuit& c : circuits) {
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(100, rng);
    const StrobeSchedule schedule = StrobeSchedule::progressive(
        c.observed_points().size(), 7);
    expect_engines_agree(c, patterns, &schedule);
  }
}

TEST(FaultSimMt, BitIdenticalOnRandomDags) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    circuit::RandomDagSpec spec;
    spec.inputs = 10;
    spec.gates = 100;
    spec.seed = seed;
    const Circuit c = make_random_dag(spec);
    util::Rng rng(seed + 7);
    PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(80, rng);
    expect_engines_agree(c, patterns, nullptr);
  }
}

TEST(FaultSimMt, ThreadCountBeyondFaultCountIsSafe) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns = exhaustive_patterns(c);
  const FaultSimResult few = simulate_ppsfp(faults, patterns);
  // More lanes than live faults: the extra lanes idle, result unchanged.
  const FaultSimResult many = simulate_ppsfp_mt(faults, patterns, nullptr,
                                                64);
  EXPECT_EQ(few.first_detection, many.first_detection);
}

TEST(FaultSimKernels, WaveAndResimDetectWordsAgree) {
  // The Propagator's two kernels — event-driven wave and levelized suffix
  // resimulation — must compute identical detect words for every fault,
  // in any call order.
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_alu(4));
  circuits.push_back(circuit::make_scan_accumulator(6));
  util::Rng rng(77);
  for (const Circuit& c : circuits) {
    const FaultList faults = FaultList::full_universe(c);
    sim::ParallelSimulator good(c);
    Propagator wave(good.compiled());
    Propagator resim(good.compiled());
    Propagator interleaved(good.compiled());
    for (int block = 0; block < 2; ++block) {
      std::vector<std::uint64_t> words(c.pattern_inputs().size());
      for (auto& w : words) w = rng.next_u64();
      good.simulate_block(words);
      wave.begin_block(good.values());
      resim.begin_block(good.values());
      interleaved.begin_block(good.values());
      for (std::size_t cl = 0; cl < faults.class_count(); ++cl) {
        const Fault& fault = faults.representatives()[cl];
        const std::uint64_t from_wave = wave.detect_word(fault, good.values());
        const std::uint64_t from_resim =
            resim.detect_word_resim(fault, good.values());
        EXPECT_EQ(from_wave, from_resim)
            << c.name() << " " << fault_name(c, fault);
        // Alternating kernels on one propagator exercises the shared
        // scratch's dirty-region handling.
        const std::uint64_t mixed =
            cl % 2 == 0 ? interleaved.detect_word(fault, good.values())
                        : interleaved.detect_word_resim(fault, good.values());
        EXPECT_EQ(mixed, from_wave)
            << c.name() << " interleaved " << fault_name(c, fault);
      }
    }
  }
}

TEST(FaultSimKernels, DetectWordRequiresBlockSync) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  sim::ParallelSimulator good(c);
  std::vector<std::uint64_t> words(c.pattern_inputs().size(), 1);
  good.simulate_block(words);
  Propagator propagator(good.compiled());
  EXPECT_THROW(propagator.detect_word(faults.representatives()[0],
                                      good.values()),
               ContractViolation);
  EXPECT_THROW(propagator.detect_word_resim(faults.representatives()[0],
                                            good.values()),
               ContractViolation);
  propagator.begin_block(good.values());
  EXPECT_NO_THROW(propagator.detect_word(faults.representatives()[0],
                                         good.values()));
}

TEST(FaultSimKernels, DetectWordRejectsStaleBlockSync) {
  // The stale-sync hazard: begin_block captures the good values, the
  // caller re-simulates the shared buffer for the NEXT block, then calls
  // detect with the new values while the propagator still holds the old
  // ones. Every lane of the detect word would be computed against the
  // wrong good machine. The block-epoch stamp turns that silent
  // corruption into a loud contract failure.
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  sim::ParallelSimulator good(c);
  std::vector<std::uint64_t> words(c.pattern_inputs().size(), 1);
  good.simulate_block(words);
  Propagator propagator(good.compiled());
  propagator.begin_block(good.values());

  // Re-simulate the same buffer: a new block, a new epoch stamp.
  words.assign(words.size(), ~0ULL);
  good.simulate_block(words);
#ifdef NDEBUG
  EXPECT_THROW(propagator.detect_word(faults.representatives()[0],
                                      good.values()),
               ContractViolation);
  EXPECT_THROW(propagator.detect_word_resim(faults.representatives()[0],
                                            good.values()),
               ContractViolation);
#else
  // With asserts live the stale sync trips the debug assert first.
  EXPECT_DEATH(propagator.detect_word(faults.representatives()[0],
                                      good.values()),
               "stale begin_block sync");
#endif

  // Re-syncing on the new block recovers.
  propagator.begin_block(good.values());
  EXPECT_NO_THROW(propagator.detect_word(faults.representatives()[0],
                                         good.values()));

  // A hand-built n-word buffer carries no stamp and opts out of the
  // check (legacy callers that never touch ParallelSimulator::values()).
  std::vector<std::uint64_t> bare(c.gate_count(), 0);
  Propagator unstamped(good.compiled());
  unstamped.begin_block(bare);
  EXPECT_NO_THROW(
      unstamped.detect_word(faults.representatives()[0], bare));
}

TEST(FaultSim, WeightedCoverageUsesClassSizes) {
  Circuit c("chain");
  GateId prev = c.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = c.add_gate(GateType::kNot, {prev},
                      "n" + std::to_string(i));
  }
  c.mark_output(prev);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  ASSERT_EQ(faults.class_count(), 2u);
  // One pattern (a=0) detects a s-a-1 (and equivalents): half the universe.
  PatternSet p(1);
  p.append({false});
  const FaultSimResult r = simulate_ppsfp(faults, p);
  EXPECT_EQ(r.detected_classes, 1u);
  EXPECT_EQ(r.covered_faults, 7u);  // the 14-fault universe has 7+7 classes
  EXPECT_DOUBLE_EQ(r.coverage, 0.5);
}

TEST(FaultSim, PointDiffWordsAgreeWithBothDetectKernels) {
  // point_diff_words must (a) OR back to exactly the full-observation
  // detect word and (b) match, per point, what the event-driven kernel
  // reports under a single-point strobe mask.
  circuit::RandomDagSpec spec;
  spec.inputs = 12;
  spec.gates = 150;
  spec.seed = 77;
  const Circuit c = make_random_dag(spec);
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 128, 13);
  const std::size_t point_count = c.observed_points().size();

  sim::ParallelSimulator good_sim(c);
  Propagator resim(c);
  Propagator wave(c);
  std::vector<std::uint64_t> diffs;
  std::vector<std::uint64_t> one_point(point_count, 0);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    resim.begin_block(good);
    wave.begin_block(good);
    for (const Fault& f : faults.representatives()) {
      const std::uint64_t from_diffs = resim.point_diff_words(f, good, diffs);
      ASSERT_EQ(diffs.size(), point_count);
      std::uint64_t or_of_points = 0;
      for (const std::uint64_t d : diffs) or_of_points |= d;
      EXPECT_EQ(or_of_points, from_diffs);
      EXPECT_EQ(from_diffs, wave.detect_word(f, good))
          << fault_name(c, f) << " block " << b;
      for (std::size_t i = 0; i < point_count; ++i) {
        one_point.assign(point_count, 0);
        one_point[i] = ~0ULL;
        EXPECT_EQ(diffs[i], wave.detect_word(f, good, &one_point))
            << fault_name(c, f) << " point " << i;
      }
    }
  }
}

TEST(FaultSim, PointDiffWordsRequiresBlockSync) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  Propagator propagator(c);
  std::vector<std::uint64_t> good(c.gate_count(), 0);
  std::vector<std::uint64_t> diffs;
  EXPECT_THROW(propagator.point_diff_words(faults.representatives().front(),
                                           good, diffs),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::fault
