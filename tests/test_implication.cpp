// Unit tests for the static implication engine: direct forward/backward
// gate implications, learned indirect implications, implied constants,
// necessary assignments, and the stem-dominator / fanout-cone machinery.
// The dominator tests are table-driven with EXACT expected chains — the
// sets, not just membership — so a traversal-order bug cannot hide behind
// a superset.
#include <gtest/gtest.h>

#include <vector>

#include "analyze/implication.hpp"
#include "circuit/compiled.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault.hpp"
#include "sim/logic_value.hpp"

namespace lsiq::analyze {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using circuit::kNoGate;
using sim::Tri;

TEST(Implication, DirectForwardAndBackwardAndRules) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId g = c.add_gate(GateType::kAnd, {a, b}, "g");
  c.mark_output(g);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  std::vector<Tri> closure;
  // Forward: both neutral inputs force the output.
  ASSERT_TRUE(engine.propagate({make_literal(a, true), make_literal(b, true)},
                               closure));
  EXPECT_EQ(closure[g], Tri::kOne);
  // Forward: one controlling input suffices.
  ASSERT_TRUE(engine.propagate({make_literal(a, false)}, closure));
  EXPECT_EQ(closure[g], Tri::kZero);
  // Backward: a neutral output pins every input.
  ASSERT_TRUE(engine.propagate({make_literal(g, true)}, closure));
  EXPECT_EQ(closure[a], Tri::kOne);
  EXPECT_EQ(closure[b], Tri::kOne);
  // Backward unit rule: 0 at the output with one input known neutral
  // forces the remaining input to the controlling value.
  ASSERT_TRUE(engine.propagate({make_literal(g, false), make_literal(a, true)},
                               closure));
  EXPECT_EQ(closure[b], Tri::kZero);
}

TEST(Implication, InverterIsBidirectional) {
  Circuit c("inv");
  const GateId a = c.add_input("a");
  const GateId n = c.add_gate(GateType::kNot, {a}, "n");
  c.mark_output(n);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  std::vector<Tri> closure;
  ASSERT_TRUE(engine.propagate({make_literal(n, true)}, closure));
  EXPECT_EQ(closure[a], Tri::kZero);
  ASSERT_TRUE(engine.propagate({make_literal(a, true)}, closure));
  EXPECT_EQ(closure[n], Tri::kZero);
}

TEST(Implication, XorBackwardSolvesTheSingleUnknown) {
  Circuit c("xor2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kXor, {a, b}, "x");
  c.mark_output(x);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  std::vector<Tri> closure;
  ASSERT_TRUE(engine.propagate({make_literal(x, true), make_literal(a, true)},
                               closure));
  EXPECT_EQ(closure[b], Tri::kZero);
  ASSERT_TRUE(engine.propagate(
      {make_literal(x, false), make_literal(a, true)}, closure));
  EXPECT_EQ(closure[b], Tri::kOne);
}

TEST(Implication, LearnsTheClassicIndirectImplication) {
  // z = OR(AND(a,b), AND(a,c)): no single gate rule derives z=1 => a=1
  // (the OR's backward rule does not know which term is true), but the
  // contrapositive of a=0 => z=0 does. This is the canonical SOCRATES
  // static-learning example.
  Circuit c("socrates");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId d = c.add_input("c");
  const GateId t1 = c.add_gate(GateType::kAnd, {a, b}, "t1");
  const GateId t2 = c.add_gate(GateType::kAnd, {a, d}, "t2");
  const GateId z = c.add_gate(GateType::kOr, {t1, t2}, "z");
  c.mark_output(z);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  std::vector<Tri> closure;
  ASSERT_TRUE(engine.propagate({make_literal(z, true)}, closure));
  EXPECT_EQ(closure[a], Tri::kOne)
      << "indirect implication z=1 => a=1 was not learned";
}

TEST(Implication, ReconvergentConstantIsImplied) {
  // y = AND(a, NOT a) is constant 0 with no tied input anywhere — the
  // case the structural analyzer provably cannot see.
  Circuit c("recon");
  const GateId a = c.add_input("a");
  const GateId na = c.add_gate(GateType::kNot, {a}, "na");
  const GateId y = c.add_gate(GateType::kAnd, {a, na}, "y");
  const GateId b = c.add_input("b");
  const GateId out = c.add_gate(GateType::kOr, {y, b}, "out");
  c.mark_output(out);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  EXPECT_EQ(engine.constant(y), LineValue::kZero);
  EXPECT_EQ(engine.constant(a), LineValue::kUnknown);
  EXPECT_EQ(engine.constant(out), LineValue::kUnknown);  // out follows b

  // Assuming the impossible literal is a contradiction...
  std::vector<Tri> closure;
  EXPECT_FALSE(engine.propagate({make_literal(y, true)}, closure));
  // ...so activation of y s-a-0 is impossible and justification of y=1
  // is unsatisfiable, while y=0 needs nothing at all.
  EXPECT_TRUE(
      engine.necessary_assignments(fault::Fault{y, -1, false}).contradictory);
  EXPECT_TRUE(engine.justification_assignments(y, true).contradictory);
  EXPECT_FALSE(engine.justification_assignments(y, false).contradictory);
}

TEST(Implication, NecessaryAssignmentsIncludeDominatorSideInputs) {
  // Chain a,b -> x = AND -> y = NOT -> out. Detecting b s-a-0 requires
  // activation (b=1) and unique sensitization through the dominator x,
  // whose side input a sits outside b's cone: a=1. The closure then adds
  // x=1 and y=0.
  Circuit c("chain");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
  const GateId y = c.add_gate(GateType::kNot, {x}, "y");
  c.mark_output(y);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  const NecessaryAssignments necessary =
      engine.necessary_assignments(fault::Fault{b, -1, false});
  ASSERT_FALSE(necessary.contradictory);
  const std::vector<Literal> expected = {
      make_literal(a, true), make_literal(b, true), make_literal(x, true),
      make_literal(y, false)};
  EXPECT_EQ(necessary.literals, expected);
}

// ---- dominators: table-driven exact chains ----

struct DominatorCase {
  const char* label;
  GateId gate;
  std::vector<GateId> chain;  ///< expected dominators(gate), nearest first
};

void expect_chains(const ImplicationEngine& engine,
                   const std::vector<DominatorCase>& table) {
  for (const DominatorCase& row : table) {
    SCOPED_TRACE(row.label);
    EXPECT_EQ(engine.dominators(row.gate), row.chain);
    const GateId idom =
        row.chain.empty() ? kNoGate : row.chain.front();
    EXPECT_EQ(engine.immediate_dominator(row.gate), idom);
  }
}

TEST(Implication, DominatorsOnALinearChain) {
  Circuit c("line");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
  const GateId y = c.add_gate(GateType::kNot, {x}, "y");
  c.mark_output(y);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  expect_chains(engine, {
                            {"a", a, {x, y}},
                            {"b", b, {x, y}},
                            {"x", x, {y}},
                            {"y", y, {}},
                        });
}

TEST(Implication, SingleStemReconvergenceDominatesAtTheMergeGate) {
  Circuit c("stem1");
  const GateId a = c.add_input("a");
  const GateId s = c.add_gate(GateType::kBuf, {a}, "s");
  const GateId p = c.add_gate(GateType::kNot, {s}, "p");
  const GateId q = c.add_gate(GateType::kBuf, {s}, "q");
  const GateId r = c.add_gate(GateType::kAnd, {p, q}, "r");
  c.mark_output(r);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  expect_chains(engine, {
                            {"stem s", s, {r}},
                            {"branch p", p, {r}},
                            {"branch q", q, {r}},
                            {"merge r", r, {}},
                        });
}

TEST(Implication, NestedStemsReconvergeAtDifferentDepths) {
  // Two stems nested: s1's branches merge at m, which is itself a stem
  // whose branches merge at w. Every gate under s1 must list BOTH merge
  // points, in nearest-first order.
  Circuit c("stem2");
  const GateId a = c.add_input("a");
  const GateId s1 = c.add_gate(GateType::kBuf, {a}, "s1");
  const GateId p = c.add_gate(GateType::kNot, {s1}, "p");
  const GateId q = c.add_gate(GateType::kBuf, {s1}, "q");
  const GateId m = c.add_gate(GateType::kOr, {p, q}, "m");
  const GateId u = c.add_gate(GateType::kNot, {m}, "u");
  const GateId v = c.add_gate(GateType::kBuf, {m}, "v");
  const GateId w = c.add_gate(GateType::kAnd, {u, v}, "w");
  c.mark_output(w);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  expect_chains(engine, {
                            {"outer stem s1", s1, {m, w}},
                            {"inner branch p", p, {m, w}},
                            {"inner merge m", m, {w}},
                            {"outer branch u", u, {w}},
                            {"outer merge w", w, {}},
                        });
}

TEST(Implication, MultipleOutputsBreakDominance) {
  // g feeds two primary outputs: its propagation paths diverge straight
  // to the virtual sink, so nothing dominates it.
  Circuit c("twoout");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId g = c.add_gate(GateType::kAnd, {a, b}, "g");
  const GateId o1 = c.add_gate(GateType::kBuf, {g}, "o1");
  const GateId o2 = c.add_gate(GateType::kNot, {g}, "o2");
  c.mark_output(o1);
  c.mark_output(o2);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  expect_chains(engine, {
                            {"diverging g", g, {}},
                            {"o1", o1, {}},
                            {"a", a, {g}},
                        });
}

TEST(Implication, DffBoundariesEndDominatorChainsAndCones) {
  // g drives a flip-flop's D input: g is itself an observed point (full
  // scan), so its chain is empty, and the cone of g stops AT the DFF —
  // fault effects are captured, not propagated through.
  Circuit c("scan");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId g = c.add_gate(GateType::kAnd, {a, b}, "g");
  const GateId ff = c.add_dff("ff");
  c.connect_dff(ff, g);
  const GateId h = c.add_gate(GateType::kOr, {ff, a}, "h");
  c.mark_output(h);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  expect_chains(engine, {
                            {"D driver g", g, {}},
                            {"dff output", ff, {h}},
                            {"input b", b, {g}},
                            {"input a (g and h paths)", a, {}},
                        });

  EXPECT_TRUE(engine.reaches_observed(g));
  EXPECT_TRUE(engine.in_cone(g, g));
  EXPECT_FALSE(engine.in_cone(g, h))
      << "a fault effect must not cross the scan boundary";
  EXPECT_TRUE(engine.in_cone(a, h));
}

TEST(Implication, UnreachableGatesAreReportedAsSuch) {
  Circuit c("dangling");
  const GateId a = c.add_input("a");
  const GateId live = c.add_gate(GateType::kBuf, {a}, "live");
  const GateId dead = c.add_gate(GateType::kNot, {a}, "dead");
  c.mark_output(live);
  c.finalize();
  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);

  EXPECT_TRUE(engine.reaches_observed(live));
  EXPECT_FALSE(engine.reaches_observed(dead));
  EXPECT_EQ(engine.immediate_dominator(dead), kNoGate);
  EXPECT_TRUE(engine.dominators(dead).empty());
}

}  // namespace
}  // namespace lsiq::analyze
