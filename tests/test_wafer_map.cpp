// Tests for the spatial wafer model.
#include "wafer/wafer_map.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "util/error.hpp"
#include "yield/models.hpp"

namespace lsiq::wafer {
namespace {

const fault::FaultList& faults() {
  static const circuit::Circuit circuit = circuit::make_alu(4);
  static const fault::FaultList list =
      fault::FaultList::full_universe(circuit);
  return list;
}

TEST(WaferMap, DiesFitInsideTheCircle) {
  WaferSpec spec;
  spec.wafer_diameter = 100.0;
  spec.die_width = 8.0;
  spec.die_height = 6.0;
  const WaferMap map = WaferMap::generate(faults(), spec);
  EXPECT_GT(map.die_count(), 50u);
  const double radius = spec.wafer_diameter / 2.0;
  for (const Die& die : map.dies()) {
    const double corner = std::hypot(std::abs(die.center_x) + 4.0,
                                     std::abs(die.center_y) + 3.0);
    EXPECT_LE(corner, radius + 1e-9);
    EXPECT_GE(die.radius_fraction, 0.0);
    EXPECT_LE(die.radius_fraction, 1.0);
  }
}

TEST(WaferMap, GrossDieCountIsNearAreaRatio) {
  WaferSpec spec;
  spec.wafer_diameter = 200.0;
  spec.die_width = 5.0;
  spec.die_height = 5.0;
  const WaferMap map = WaferMap::generate(faults(), spec);
  // pi R^2 / die area ~ 1256; edge losses cost a modest fraction.
  EXPECT_GT(map.die_count(), 1000u);
  EXPECT_LT(map.die_count(), 1300u);
}

TEST(WaferMap, UniformDensityMatchesEquation3Yield) {
  WaferSpec spec;
  spec.wafer_diameter = 400.0;  // many dies for a tight estimate
  spec.die_width = 5.0;
  spec.die_height = 5.0;
  spec.center_defect_density = 0.04;  // lambda = 1.0 per die
  spec.edge_density_multiplier = 1.0;  // uniform
  spec.variance_ratio = 0.5;
  spec.seed = 5;
  const WaferMap map = WaferMap::generate(faults(), spec);
  const double expected =
      yield_model::negative_binomial_yield(1.0, spec.variance_ratio);
  EXPECT_NEAR(map.yield(), expected, 0.02);
}

TEST(WaferMap, EdgeDiesYieldWorseUnderRadialGradient) {
  WaferSpec spec;
  spec.wafer_diameter = 400.0;
  spec.die_width = 5.0;
  spec.die_height = 5.0;
  spec.center_defect_density = 0.02;
  spec.edge_density_multiplier = 5.0;
  spec.seed = 7;
  const WaferMap map = WaferMap::generate(faults(), spec);
  const double inner = map.yield_in_annulus(0.0, 0.4);
  const double outer = map.yield_in_annulus(0.7, 1.01);
  EXPECT_GT(inner, outer + 0.05);
}

TEST(WaferMap, MultiFaultDefectsRaiseN0) {
  WaferSpec sparse;
  sparse.wafer_diameter = 300.0;
  sparse.center_defect_density = 0.03;
  sparse.extra_faults_per_defect = 0.0;
  sparse.seed = 11;
  WaferSpec dense = sparse;
  dense.extra_faults_per_defect = 4.0;
  const WaferMap a = WaferMap::generate(faults(), sparse);
  const WaferMap b = WaferMap::generate(faults(), dense);
  EXPECT_GT(b.mean_faults_per_defective_die(),
            a.mean_faults_per_defective_die() + 1.0);
}

TEST(WaferMap, ToLotPreservesChipsAndGroundTruth) {
  WaferSpec spec;
  spec.seed = 13;
  const WaferMap map = WaferMap::generate(faults(), spec);
  const ChipLot lot = map.to_lot();
  ASSERT_EQ(lot.size(), map.die_count());
  EXPECT_DOUBLE_EQ(lot.true_yield, map.yield());
  EXPECT_DOUBLE_EQ(lot.true_n0, map.mean_faults_per_defective_die());
  for (std::size_t i = 0; i < lot.size(); ++i) {
    EXPECT_EQ(lot.chips[i].fault_classes,
              map.dies()[i].chip.fault_classes);
  }
}

TEST(WaferMap, DeterministicPerSeed) {
  WaferSpec spec;
  spec.seed = 17;
  const WaferMap a = WaferMap::generate(faults(), spec);
  const WaferMap b = WaferMap::generate(faults(), spec);
  ASSERT_EQ(a.die_count(), b.die_count());
  for (std::size_t i = 0; i < a.die_count(); ++i) {
    EXPECT_EQ(a.dies()[i].chip.fault_classes,
              b.dies()[i].chip.fault_classes);
  }
}

TEST(WaferMap, DomainChecks) {
  WaferSpec bad;
  bad.die_width = 0.0;
  EXPECT_THROW(WaferMap::generate(faults(), bad), ContractViolation);
  WaferSpec huge_die;
  huge_die.die_width = 500.0;
  EXPECT_THROW(WaferMap::generate(faults(), huge_die), Error);
}

}  // namespace
}  // namespace lsiq::wafer
