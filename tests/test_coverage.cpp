// Unit tests for the CoverageCurve type.
#include "fault/coverage.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::fault {
namespace {

TEST(CoverageCurve, BasicQueries) {
  const CoverageCurve curve({10, 25, 25, 40}, 100);
  EXPECT_EQ(curve.pattern_count(), 4u);
  EXPECT_EQ(curve.universe_size(), 100u);
  EXPECT_EQ(curve.covered_after(0), 0u);
  EXPECT_EQ(curve.covered_after(1), 10u);
  EXPECT_EQ(curve.covered_after(3), 25u);
  EXPECT_EQ(curve.covered_after(4), 40u);
  EXPECT_EQ(curve.covered_after(99), 40u);  // clamps past the end
  EXPECT_DOUBLE_EQ(curve.coverage_after(2), 0.25);
  EXPECT_DOUBLE_EQ(curve.final_coverage(), 0.40);
}

TEST(CoverageCurve, PatternsForCoverageFindsEarliest) {
  const CoverageCurve curve({10, 25, 25, 40}, 100);
  EXPECT_EQ(curve.patterns_for_coverage(0.05), 1u);
  EXPECT_EQ(curve.patterns_for_coverage(0.10), 1u);
  EXPECT_EQ(curve.patterns_for_coverage(0.11), 2u);
  EXPECT_EQ(curve.patterns_for_coverage(0.25), 2u);
  EXPECT_EQ(curve.patterns_for_coverage(0.40), 4u);
  // Never reached: pattern_count + 1 sentinel.
  EXPECT_EQ(curve.patterns_for_coverage(0.41), 5u);
}

TEST(CoverageCurve, ZeroTargetNeedsOnePattern) {
  const CoverageCurve curve({0, 5}, 10);
  EXPECT_EQ(curve.patterns_for_coverage(0.0), 1u);
}

TEST(CoverageCurve, ReachesDistinguishesSentinel) {
  const CoverageCurve curve({10, 25, 25, 40}, 100);
  EXPECT_TRUE(curve.reaches(0.0));
  EXPECT_TRUE(curve.reaches(0.40));
  EXPECT_FALSE(curve.reaches(0.41));
  EXPECT_FALSE(curve.reaches(1.0));
  EXPECT_FALSE(CoverageCurve({}, 10).reaches(0.1));
}

TEST(CoverageCurve, BinarySearchMatchesLinearScan) {
  // Long plateau-heavy curve; every target must land where the one-by-one
  // scan would.
  std::vector<std::size_t> cumulative;
  std::size_t running = 0;
  for (std::size_t t = 0; t < 500; ++t) {
    if (t % 7 == 0) running += t % 13;
    cumulative.push_back(running);
  }
  const CoverageCurve curve(cumulative, 4000);
  for (const double target :
       {0.0, 1e-9, 0.01, 0.1, 0.25, 0.333, 0.5, 0.51, 0.9, 1.0}) {
    std::size_t linear = cumulative.size() + 1;
    for (std::size_t t = 1; t <= cumulative.size(); ++t) {
      if (curve.coverage_after(t) >= target) {
        linear = t;
        break;
      }
    }
    EXPECT_EQ(curve.patterns_for_coverage(target), linear)
        << "target " << target;
    EXPECT_EQ(curve.reaches(target), linear <= cumulative.size());
  }
}

TEST(CoverageCurve, FullCoverageTargetHitsExactly) {
  const CoverageCurve curve({4, 10}, 10);
  EXPECT_EQ(curve.patterns_for_coverage(1.0), 2u);
  EXPECT_TRUE(curve.reaches(1.0));
}

TEST(CoverageCurve, FromFirstDetectionAccumulatesWeights) {
  // Three classes with weights 2, 3, 5; detected at patterns 1, 0, -1.
  const CoverageCurve curve = CoverageCurve::from_first_detection(
      {1, 0, -1}, {2, 3, 5}, 10, 3);
  EXPECT_EQ(curve.covered_after(1), 3u);   // class 1 (weight 3) at t=0
  EXPECT_EQ(curve.covered_after(2), 5u);   // + class 0 (weight 2) at t=1
  EXPECT_EQ(curve.covered_after(3), 5u);   // class 2 never detected
  EXPECT_DOUBLE_EQ(curve.final_coverage(), 0.5);
}

TEST(CoverageCurve, RejectsMalformedInput) {
  EXPECT_THROW(CoverageCurve({5, 4}, 10), ContractViolation);   // decreasing
  EXPECT_THROW(CoverageCurve({11}, 10), ContractViolation);     // > universe
  EXPECT_THROW(CoverageCurve({1}, 0), ContractViolation);       // empty N
  EXPECT_THROW((void)CoverageCurve({1}, 10).patterns_for_coverage(1.5),
               ContractViolation);
  EXPECT_THROW(CoverageCurve::from_first_detection({0}, {1, 2}, 3, 1),
               ContractViolation);  // size mismatch
  EXPECT_THROW(CoverageCurve::from_first_detection({5}, {1}, 3, 1),
               ContractViolation);  // detection index out of range
}

TEST(CoverageCurve, EmptyCurveIsAllZero) {
  const CoverageCurve curve({}, 10);
  EXPECT_EQ(curve.pattern_count(), 0u);
  EXPECT_EQ(curve.covered_after(5), 0u);
  EXPECT_DOUBLE_EQ(curve.final_coverage(), 0.0);
  EXPECT_EQ(curve.patterns_for_coverage(0.1), 1u);  // never reached
}

}  // namespace
}  // namespace lsiq::fault
