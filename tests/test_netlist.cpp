// Unit tests for circuit/netlist: construction, finalize invariants,
// levelization, and the full-scan views.
#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::circuit {
namespace {

Circuit tiny_and_or() {
  Circuit c("tiny");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate(GateType::kAnd, {a, b}, "x");
  const GateId d = c.add_input("d");
  const GateId y = c.add_gate(GateType::kOr, {x, d}, "y");
  c.mark_output(y);
  c.finalize();
  return c;
}

TEST(Netlist, BasicCountsAndLookup) {
  const Circuit c = tiny_and_or();
  EXPECT_EQ(c.gate_count(), 5u);
  EXPECT_EQ(c.primary_inputs().size(), 3u);
  EXPECT_EQ(c.primary_outputs().size(), 1u);
  EXPECT_EQ(c.find("x"), 2u);
  EXPECT_EQ(c.find("nope"), kNoGate);
}

TEST(Netlist, FanoutDerivedFromFanin) {
  const Circuit c = tiny_and_or();
  const GateId a = c.find("a");
  const GateId x = c.find("x");
  ASSERT_EQ(c.gate(a).fanout.size(), 1u);
  EXPECT_EQ(c.gate(a).fanout.front(), x);
  EXPECT_EQ(c.gate(x).fanout.size(), 1u);
}

TEST(Netlist, LevelsIncreaseAlongEdges) {
  const Circuit c = tiny_and_or();
  for (GateId id = 0; id < c.gate_count(); ++id) {
    for (const GateId f : c.gate(id).fanin) {
      EXPECT_LT(c.gate(f).level, c.gate(id).level);
    }
  }
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Circuit c = tiny_and_or();
  std::vector<std::size_t> position(c.gate_count());
  const auto& order = c.topological_order();
  ASSERT_EQ(order.size(), c.gate_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (GateId id = 0; id < c.gate_count(); ++id) {
    for (const GateId f : c.gate(id).fanin) {
      EXPECT_LT(position[f], position[id]);
    }
  }
}

TEST(Netlist, StatsAreConsistent) {
  const Circuit c = tiny_and_or();
  const CircuitStats s = c.stats();
  EXPECT_EQ(s.gates, 5u);
  EXPECT_EQ(s.primary_inputs, 3u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.combinational_gates, 2u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.literals, 4u);  // two 2-input gates
  EXPECT_EQ(s.flip_flops, 0u);
}

TEST(Netlist, AutoNamesAreGenerated) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate(GateType::kNot, {a});
  EXPECT_EQ(c.gate(g).name, "g1");
}

TEST(Netlist, DuplicateNameRejected) {
  Circuit c;
  c.add_input("a");
  EXPECT_THROW(c.add_input("a"), ContractViolation);
  const GateId a = c.find("a");
  c.add_gate(GateType::kNot, {a}, "n");
  EXPECT_THROW(c.add_gate(GateType::kNot, {a}, "n"), ContractViolation);
}

TEST(Netlist, ArityValidation) {
  Circuit c;
  const GateId a = c.add_input("a");
  EXPECT_THROW(c.add_gate(GateType::kAnd, {a}, "bad_and"),
               ContractViolation);
  EXPECT_THROW(c.add_gate(GateType::kNot, {a, a}, "bad_not"),
               ContractViolation);
  EXPECT_NO_THROW(c.add_gate(GateType::kAnd, {a, a, a}, "and3"));
}

TEST(Netlist, FaninOutOfRangeRejected) {
  Circuit c;
  const GateId a = c.add_input("a");
  EXPECT_THROW(c.add_gate(GateType::kNot, {a + 10}, "n"),
               ContractViolation);
}

TEST(Netlist, MarkOutputTwiceRejected) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId n = c.add_gate(GateType::kNot, {a}, "n");
  c.mark_output(n);
  EXPECT_THROW(c.mark_output(n), ContractViolation);
}

TEST(Netlist, MutationAfterFinalizeRejected) {
  Circuit c = tiny_and_or();
  EXPECT_THROW(c.add_input("z"), Error);
  EXPECT_THROW(c.mark_output(0), Error);
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Netlist, ObserversBeforeFinalizeRejected) {
  Circuit c;
  const GateId a = c.add_input("a");
  c.mark_output(c.add_gate(GateType::kNot, {a}, "n"));
  EXPECT_THROW((void)c.topological_order(), Error);
  EXPECT_THROW((void)c.pattern_inputs(), Error);
  EXPECT_THROW((void)c.stats(), Error);
}

TEST(Netlist, EmptyCircuitRejected) {
  Circuit c;
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Netlist, CircuitWithoutOutputsRejected) {
  Circuit c;
  const GateId a = c.add_input("a");
  c.add_gate(GateType::kNot, {a}, "n");
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Netlist, DffActsAsSourceAndSink) {
  Circuit c("seq");
  const GateId a = c.add_input("a");
  const GateId ff = c.add_dff("ff");
  const GateId x = c.add_gate(GateType::kAnd, {a, ff}, "x");
  c.connect_dff(ff, x);  // feedback loop through the flip-flop
  c.mark_output(x);
  c.finalize();

  // Pattern inputs: PI a + flip-flop ff.
  ASSERT_EQ(c.pattern_inputs().size(), 2u);
  EXPECT_EQ(c.pattern_inputs()[0], a);
  EXPECT_EQ(c.pattern_inputs()[1], ff);
  // Observed: PO x + the flip-flop's D driver (also x).
  ASSERT_EQ(c.observed_points().size(), 2u);
  EXPECT_EQ(c.observed_points()[0], x);
  EXPECT_EQ(c.observed_points()[1], x);
  // The DFF is a level-0 source.
  EXPECT_EQ(c.gate(ff).level, 0u);
}

TEST(Netlist, UnconnectedDffRejected) {
  Circuit c;
  c.add_input("a");
  const GateId ff = c.add_dff("ff");
  c.mark_output(ff);
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Netlist, ConnectDffValidation) {
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId ff = c.add_dff("ff");
  EXPECT_THROW(c.connect_dff(a, a), ContractViolation);  // not a DFF
  c.connect_dff(ff, a);
  EXPECT_THROW(c.connect_dff(ff, a), ContractViolation);  // already wired
}

TEST(Netlist, CombinationalCycleDetected) {
  // a cycle without a flip-flop must be rejected; build it via
  // two gates: x = AND(a, y), y = NOT(x) cannot be constructed through
  // the normal API (ids must exist), so use a DFF-free self-loop through
  // connect_dff misuse being impossible — instead check that finalize
  // detects a cycle when fanin references create one artificially.
  // The public API prevents cycles by construction (references must
  // exist), so this test documents that property instead.
  Circuit c;
  const GateId a = c.add_input("a");
  const GateId n1 = c.add_gate(GateType::kNot, {a}, "n1");
  const GateId n2 = c.add_gate(GateType::kNot, {n1}, "n2");
  c.mark_output(n2);
  EXPECT_NO_THROW(c.finalize());
}

TEST(Netlist, ConstantGatesAreSources) {
  Circuit c;
  c.add_input("a");
  const GateId one = c.add_gate(GateType::kConst1, {}, "one");
  const GateId buf = c.add_gate(GateType::kBuf, {one}, "b");
  c.mark_output(buf);
  c.finalize();
  EXPECT_EQ(c.gate(one).level, 0u);
}

}  // namespace
}  // namespace lsiq::circuit
