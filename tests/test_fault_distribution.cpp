// Tests for the shifted-Poisson fault distribution (Eq. 1-2) and its
// gamma-mixed extension.
#include "core/fault_distribution.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace lsiq::quality {
namespace {

TEST(FaultDistribution, PmfAtZeroIsYield) {
  const FaultDistribution d(0.3, 5.0);
  EXPECT_DOUBLE_EQ(d.pmf(0), 0.3);
}

TEST(FaultDistribution, PmfSumsToOne) {
  for (const double y : {0.07, 0.2, 0.8}) {
    for (const double n0 : {1.0, 2.0, 8.0, 20.0}) {
      const FaultDistribution d(y, n0);
      double total = 0.0;
      for (unsigned n = 0; n < 400; ++n) {
        total += d.pmf(n);
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << "y=" << y << " n0=" << n0;
    }
  }
}

TEST(FaultDistribution, Equation1SpotValues) {
  // p(n) = (1-y) (n0-1)^(n-1) e^{-(n0-1)} / (n-1)!
  const double y = 0.2;
  const double n0 = 3.0;
  const FaultDistribution d(y, n0);
  EXPECT_NEAR(d.pmf(1), 0.8 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(d.pmf(2), 0.8 * 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(d.pmf(3), 0.8 * 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(d.pmf(4), 0.8 * (8.0 / 6.0) * std::exp(-2.0), 1e-12);
}

TEST(FaultDistribution, MeanIsEquation2) {
  // n_av = (1-y) n0, the identity behind the slope estimator.
  for (const double y : {0.07, 0.5, 0.93}) {
    for (const double n0 : {1.0, 8.0, 12.0}) {
      const FaultDistribution d(y, n0);
      EXPECT_DOUBLE_EQ(d.mean(), (1.0 - y) * n0);
      // Verify against the explicit sum.
      double mean = 0.0;
      for (unsigned n = 1; n < 300; ++n) {
        mean += n * d.pmf(n);
      }
      EXPECT_NEAR(mean, d.mean(), 1e-8);
    }
  }
}

TEST(FaultDistribution, VarianceMatchesExplicitSum) {
  const FaultDistribution d(0.3, 6.0);
  double m2 = 0.0;
  for (unsigned n = 1; n < 300; ++n) {
    m2 += static_cast<double>(n) * n * d.pmf(n);
  }
  const double variance = m2 - d.mean() * d.mean();
  EXPECT_NEAR(d.variance(), variance, 1e-8);
}

TEST(FaultDistribution, DefectivePmfIsNormalized) {
  const FaultDistribution d(0.4, 4.5);
  double total = 0.0;
  for (unsigned n = 1; n < 200; ++n) {
    total += d.defective_pmf(n);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(d.defective_pmf(0), 0.0);
}

TEST(FaultDistribution, DegenerateN0OneIsBernoulli) {
  // n0 = 1: every defective chip has exactly one fault.
  const FaultDistribution d(0.6, 1.0);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.4);
  EXPECT_DOUBLE_EQ(d.pmf(2), 0.0);
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(d.sample(rng), 1u);
  }
}

TEST(FaultDistribution, SampleMomentsMatchTheory) {
  const FaultDistribution d(0.07, 8.0);
  util::Rng rng(1981);
  util::RunningStats stats;
  std::size_t zeros = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const unsigned n = d.sample(rng);
    if (n == 0) ++zeros;
    stats.add(static_cast<double>(n));
  }
  EXPECT_NEAR(static_cast<double>(zeros) / draws, 0.07, 0.005);
  EXPECT_NEAR(stats.mean(), d.mean(), 0.05);
  EXPECT_NEAR(stats.variance(), d.variance(), 0.3);
}

TEST(FaultDistribution, CdfIsMonotoneAndSaturates) {
  const FaultDistribution d(0.2, 8.0);
  double prev = -1.0;
  for (unsigned n = 0; n < 60; ++n) {
    const double c = d.cdf(n);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(d.cdf(80), 1.0, 1e-9);
}

TEST(FaultDistribution, DomainChecks) {
  EXPECT_THROW(FaultDistribution(-0.1, 2.0), ContractViolation);
  EXPECT_THROW(FaultDistribution(1.1, 2.0), ContractViolation);
  EXPECT_THROW(FaultDistribution(0.5, 0.5), ContractViolation);
}

TEST(MixedFaultDistribution, PmfSumsToOne) {
  const MixedFaultDistribution d(0.2, 8.0, 2.0);
  double total = 0.0;
  for (unsigned n = 0; n < 2000; ++n) {
    total += d.pmf(n);
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(MixedFaultDistribution, MeanMatchesShiftedPoisson) {
  const MixedFaultDistribution mixed(0.3, 6.0, 1.5);
  const FaultDistribution pure(0.3, 6.0);
  EXPECT_DOUBLE_EQ(mixed.mean(), pure.mean());
}

TEST(MixedFaultDistribution, LargeAlphaConvergesToShiftedPoisson) {
  const MixedFaultDistribution mixed(0.2, 5.0, 1e7);
  const FaultDistribution pure(0.2, 5.0);
  for (unsigned n = 0; n < 30; ++n) {
    EXPECT_NEAR(mixed.pmf(n), pure.pmf(n), 1e-5) << "n=" << n;
  }
}

TEST(MixedFaultDistribution, SmallAlphaHasHeavierTail) {
  const MixedFaultDistribution heavy(0.2, 5.0, 0.5);
  const FaultDistribution pure(0.2, 5.0);
  // Same mean, more mass far out in the tail.
  double tail_heavy = 0.0;
  double tail_pure = 0.0;
  for (unsigned n = 20; n < 400; ++n) {
    tail_heavy += heavy.pmf(n);
    tail_pure += pure.pmf(n);
  }
  EXPECT_GT(tail_heavy, tail_pure * 10.0);
}

TEST(MixedFaultDistribution, SampleMeanMatches) {
  const MixedFaultDistribution d(0.25, 6.0, 2.0);
  util::Rng rng(11);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(d.sample(rng)));
  }
  EXPECT_NEAR(stats.mean(), d.mean(), 0.1);
}

TEST(MixedFaultDistribution, DomainChecks) {
  EXPECT_THROW(MixedFaultDistribution(0.5, 2.0, 0.0), ContractViolation);
  EXPECT_THROW(MixedFaultDistribution(0.5, 0.9, 1.0), ContractViolation);
}

}  // namespace
}  // namespace lsiq::quality
