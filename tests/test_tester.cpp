// Tests for the virtual tester (ordered pattern application, first-fail
// recording, escape accounting).
#include "wafer/tester.hpp"

#include <gtest/gtest.h>

#include "bist/session.hpp"
#include "circuit/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::wafer {
namespace {

/// Hand-built fault-sim result: class c detected first at pattern
/// first_detection[c] (-1 = never).
fault::FaultSimResult fake_sim(std::vector<std::int64_t> first_detection) {
  fault::FaultSimResult r;
  r.first_detection = std::move(first_detection);
  return r;
}

Chip chip_with(std::vector<std::uint32_t> classes) {
  Chip c;
  c.fault_classes = std::move(classes);
  return c;
}

TEST(Tester, FirstFailIsEarliestAmongResidentFaults) {
  ChipLot lot;
  lot.chips.push_back(chip_with({0, 2}));  // detections at 5 and 1
  lot.chips.push_back(chip_with({1}));     // never detected
  lot.chips.push_back(chip_with({}));      // good chip
  const auto sim = fake_sim({5, -1, 1});

  const LotTestResult result = test_lot(lot, sim, 10);
  ASSERT_EQ(result.chip_count(), 3u);
  EXPECT_EQ(result.outcomes[0].first_fail_pattern, 1);
  EXPECT_EQ(result.outcomes[1].first_fail_pattern, -1);  // escape
  EXPECT_TRUE(result.outcomes[1].defective);
  EXPECT_EQ(result.outcomes[2].first_fail_pattern, -1);  // clean pass
  EXPECT_FALSE(result.outcomes[2].defective);
}

TEST(Tester, CountsAndEscapeRate) {
  ChipLot lot;
  lot.chips.push_back(chip_with({0}));  // fails at 0
  lot.chips.push_back(chip_with({1}));  // escapes
  lot.chips.push_back(chip_with({}));   // good
  lot.chips.push_back(chip_with({}));   // good
  const auto sim = fake_sim({0, -1});

  const LotTestResult result = test_lot(lot, sim, 4);
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.passed_count(), 3u);
  EXPECT_EQ(result.shipped_defective_count(), 1u);
  EXPECT_NEAR(result.empirical_reject_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Tester, DetectionBeyondProgramLengthDoesNotFail) {
  // A fault first detected at pattern 7 escapes a 5-pattern program.
  ChipLot lot;
  lot.chips.push_back(chip_with({0}));
  const auto sim = fake_sim({7});
  const LotTestResult result = test_lot(lot, sim, 5);
  EXPECT_EQ(result.outcomes[0].first_fail_pattern, -1);
  EXPECT_EQ(result.shipped_defective_count(), 1u);
}

TEST(Tester, FailedWithinIsMonotoneStepFunction) {
  ChipLot lot;
  lot.chips.push_back(chip_with({0}));  // fails at 2
  lot.chips.push_back(chip_with({1}));  // fails at 2
  lot.chips.push_back(chip_with({2}));  // fails at 7
  const auto sim = fake_sim({2, 2, 7});
  const LotTestResult result = test_lot(lot, sim, 10);

  EXPECT_EQ(result.failed_within(0), 0u);
  EXPECT_EQ(result.failed_within(2), 0u);   // first-fail index 2 needs t > 2
  EXPECT_EQ(result.failed_within(3), 2u);
  EXPECT_EQ(result.failed_within(7), 2u);
  EXPECT_EQ(result.failed_within(8), 3u);
  EXPECT_EQ(result.failed_within(100), 3u);
  std::size_t prev = 0;
  for (std::size_t t = 0; t <= 12; ++t) {
    const std::size_t now = result.failed_within(t);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Tester, FractionFailedNormalizesByLotSize) {
  ChipLot lot;
  lot.chips.push_back(chip_with({0}));
  lot.chips.push_back(chip_with({}));
  lot.chips.push_back(chip_with({}));
  lot.chips.push_back(chip_with({}));
  const auto sim = fake_sim({0});
  const LotTestResult result = test_lot(lot, sim, 1);
  EXPECT_DOUBLE_EQ(result.fraction_failed_within(1), 0.25);
}

TEST(Tester, AllGoodLotShipsEverythingWithZeroRejects) {
  ChipLot lot;
  for (int i = 0; i < 10; ++i) {
    lot.chips.push_back(chip_with({}));
  }
  const auto sim = fake_sim({});
  const LotTestResult result = test_lot(lot, sim, 3);
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_DOUBLE_EQ(result.empirical_reject_rate(), 0.0);
}

TEST(Tester, UnknownFaultClassRejected) {
  ChipLot lot;
  lot.chips.push_back(chip_with({5}));
  const auto sim = fake_sim({0, 1});
  EXPECT_THROW(test_lot(lot, sim, 3), ContractViolation);
}

TEST(Tester, ZeroPatternProgramRejected) {
  ChipLot lot;
  lot.chips.push_back(chip_with({}));
  const auto sim = fake_sim({});
  EXPECT_THROW(test_lot(lot, sim, 0), ContractViolation);
}

/// Hand-built BIST grading: class c is signature-detected iff
/// signatures[c] differs from the good signature.
bist::BistResult fake_bist(std::uint64_t good_signature,
                           std::vector<std::uint64_t> signatures,
                           std::size_t pattern_count) {
  bist::BistResult r;
  r.pattern_count = pattern_count;
  r.good_signature = good_signature;
  r.fault_signatures = std::move(signatures);
  return r;
}

TEST(BistTester, SignatureCompareDecidesPassFail) {
  // Classes: 0 aliased/undetected (signature matches good), 1 detected,
  // 2 aliased.
  const auto bist = fake_bist(0xAB, {0xAB, 0xCD, 0xAB}, 100);
  ChipLot lot;
  lot.chips.push_back(chip_with({}));      // good chip
  lot.chips.push_back(chip_with({0}));     // defective, aliases: escape
  lot.chips.push_back(chip_with({1}));     // defective, caught
  lot.chips.push_back(chip_with({0, 2}));  // both faults alias: escape
  lot.chips.push_back(chip_with({2, 1}));  // one detected fault suffices

  const LotTestResult result = test_lot_bist(lot, bist);
  ASSERT_EQ(result.chip_count(), 5u);
  EXPECT_EQ(result.pattern_count, 100u);
  EXPECT_EQ(result.outcomes[0].first_fail_pattern, -1);
  EXPECT_FALSE(result.outcomes[0].defective);
  EXPECT_EQ(result.outcomes[1].first_fail_pattern, -1);  // shipped defect
  EXPECT_TRUE(result.outcomes[1].defective);
  // BIST observability: failures land on the final signature compare.
  EXPECT_EQ(result.outcomes[2].first_fail_pattern, 99);
  EXPECT_EQ(result.outcomes[3].first_fail_pattern, -1);
  EXPECT_EQ(result.outcomes[4].first_fail_pattern, 99);

  EXPECT_EQ(result.failed_count(), 2u);
  EXPECT_EQ(result.shipped_defective_count(), 2u);
  // failed_within is a step function at the session end.
  EXPECT_EQ(result.failed_within(99), 0u);
  EXPECT_EQ(result.failed_within(100), 2u);
}

TEST(BistTester, PatternCountCannotDriftFromTheSession) {
  // Regression for the pattern-accounting contract: the session's result
  // carries its own pattern_count, test_lot_bist copies it, and an
  // explicit-program session overwrites any stale config value — so the
  // three counts can never disagree.
  static const circuit::Circuit c = circuit::make_comparator(4);
  static const fault::FaultList faults =
      fault::FaultList::full_universe(c);
  bist::BistConfig config;
  config.pattern_count = 4096;  // stale: the real program is shorter
  config.misr_width = 8;
  sim::PatternSet program(c.pattern_inputs().size());
  util::Rng rng(3);
  program.append_random(70, rng);
  const bist::BistSession session(faults, program, config);
  EXPECT_EQ(session.config().pattern_count, 70u);

  const bist::BistResult graded = session.run();
  EXPECT_EQ(graded.pattern_count, session.patterns().size());

  ChipLot lot;
  lot.chips.push_back(chip_with({0}));
  lot.chips.push_back(chip_with({}));
  const LotTestResult tested = test_lot_bist(lot, graded);
  EXPECT_EQ(tested.pattern_count, graded.pattern_count);
  // Failures land on the session's true final pattern, not the stale one.
  for (const ChipOutcome& outcome : tested.outcomes) {
    if (outcome.first_fail_pattern >= 0) {
      EXPECT_EQ(outcome.first_fail_pattern,
                static_cast<std::int64_t>(graded.pattern_count) - 1);
    }
  }
}

TEST(BistTester, DomainChecks) {
  ChipLot lot;
  lot.chips.push_back(chip_with({7}));
  EXPECT_THROW(test_lot_bist(lot, fake_bist(0, {0, 1}, 10)),
               ContractViolation);
  lot.chips.clear();
  lot.chips.push_back(chip_with({}));
  EXPECT_THROW(test_lot_bist(lot, fake_bist(0, {}, 0)), ContractViolation);
}

}  // namespace
}  // namespace lsiq::wafer
