// Unit tests for util/table formatting.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(TextTable, AlignsColumnsRight) {
  TextTable t({"x", "value"});
  t.add_row({"1", "10"});
  t.add_row({"100", "2"});
  const std::string s = t.to_string();
  // Right alignment pads "1" to the width of "100".
  EXPECT_NE(s.find("  1     10"), std::string::npos) << s;
  EXPECT_NE(s.find("100      2"), std::string::npos) << s;
}

TEST(TextTable, HeaderRuleSpansAllColumns) {
  TextTable t({"aa", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  // Rule of '-' characters: width 2 + 2 (gutter) + 2.
  EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(TextTable, LeftAlignmentOption) {
  TextTable t({"name"}, Align::kLeft);
  t.add_row({"ab"});
  t.add_row({"abcd"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ab  \n"), std::string::npos) << s;
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, RowCountTracksRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(FormatDouble, FixedPointRendering) {
  EXPECT_EQ(format_double(0.0146, 4), "0.0146");
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
  EXPECT_EQ(format_double(0.999999, 2), "1.00");
}

TEST(FormatProbability, SwitchesToScientificForTinyValues) {
  EXPECT_EQ(format_probability(0.25), "0.25000");
  EXPECT_EQ(format_probability(0.001), "0.00100");
  const std::string tiny = format_probability(5e-7);
  EXPECT_NE(tiny.find('e'), std::string::npos) << tiny;
}

TEST(FormatProbability, ZeroStaysFixed) {
  EXPECT_EQ(format_probability(0.0), "0.00000");
}

TEST(FormatPercent, RendersFractionTimesHundred) {
  EXPECT_EQ(format_percent(0.85), "85.0%");
  EXPECT_EQ(format_percent(0.051, 1), "5.1%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace lsiq::util
