// Every quantitative claim in the paper's text, checked against the
// implementation. Each test cites the section it reproduces; tolerances
// reflect that several of the paper's numbers are read off log-scale plots.
// EXPERIMENTS.md discusses the one genuine text/graph discrepancy (the
// "99 percent" for y=0.2, n0=2 in Section 4).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/coverage_requirement.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"

namespace lsiq::quality {
namespace {

// ---- Section 4, Fig. 1 ----

TEST(PaperSection4, Yield80N0Two_Coverage95GivesHalfPercent) {
  // "Consider a yield of 80 percent ... for a field reject rate below 0.5
  // percent, the fault coverage should be 95 percent for n0 = 2."
  const double r = field_reject_rate(0.95, 0.80, 2.0);
  EXPECT_LT(r, 0.005);
  EXPECT_GT(r, 0.004);  // 95% is quoted as the threshold, so r ~ 0.0048
}

TEST(PaperSection4, Yield80N0Ten_Coverage38GivesHalfPercent) {
  // "... or 38 percent for n0 = 10."
  const double r = field_reject_rate(0.38, 0.80, 10.0);
  EXPECT_NEAR(r, 0.005, 0.0005);
}

TEST(PaperSection4, Yield20N0Ten_Coverage63GivesHalfPercent) {
  // "for a yield of 20 percent ... 63 percent [for] n0 ... 10."
  const double r = field_reject_rate(0.63, 0.20, 10.0);
  EXPECT_NEAR(r, 0.005, 0.0005);
}

TEST(PaperSection4, Yield20N0Two_TextValueIsAGraphReadOff) {
  // The text quotes "99 percent" for y=0.2, n0=2; exact evaluation of
  // Eq. 8 gives r(0.99) = 0.0146 — above the 0.005 target. This test
  // documents the discrepancy: the exact requirement is f ~ 0.9966.
  EXPECT_NEAR(field_reject_rate(0.99, 0.20, 2.0), 0.0146, 0.0005);
  const double f_exact = required_fault_coverage(0.005, 0.20, 2.0);
  EXPECT_NEAR(f_exact, 0.9966, 0.001);
}

TEST(PaperSection4, RequiredCoverageInversionsMatchFig1Readings) {
  EXPECT_NEAR(required_fault_coverage(0.005, 0.80, 2.0), 0.95, 0.01);
  EXPECT_NEAR(required_fault_coverage(0.005, 0.80, 10.0), 0.38, 0.01);
  EXPECT_NEAR(required_fault_coverage(0.005, 0.20, 10.0), 0.63, 0.01);
}

// ---- Section 6, Fig. 4 ----

TEST(PaperSection6, Fig4SpotValue) {
  // "if the field reject rate was specified as one in a thousand ... for
  // yield y = 0.3 and n0 = 8, the fault coverage should be about 85
  // percent" (graph reading; exact inversion is close).
  const double f = required_fault_coverage(0.001, 0.30, 8.0);
  EXPECT_NEAR(f, 0.85, 0.025);
}

// ---- Section 7: the LSI chip example ----

TEST(PaperSection7, SlopeEstimateFromFirstStrobe) {
  // "P'(0) = 0.41/0.05 = 8.2. From (10), n0 = 8.2/0.93 = 8.8."
  const std::vector<CoveragePoint> first = {{0.05, 0.41}};
  const SlopeEstimate e = estimate_n0_slope(first, 0.07);
  EXPECT_NEAR(e.p_prime_zero, 8.2, 1e-9);
  EXPECT_NEAR(e.n0, 8.8, 0.02);
}

TEST(PaperSection7, RequiredCoverageEightyPercentForOnePercentReject) {
  // "Taking n0 = 8, ... for a 1 percent field reject rate, the fault
  // coverage should be about 80 percent" (Fig. 2 reading).
  const double f = required_fault_coverage(0.01, 0.07, 8.0);
  EXPECT_NEAR(f, 0.80, 0.02);
}

TEST(PaperSection7, RequiredCoverageNinetyFiveForOneInThousand) {
  // "the fault coverage should be improved to 95 percent in order to
  // achieve a field reject rate of 1-in-1000" (Fig. 4 reading).
  const double f = required_fault_coverage(0.001, 0.07, 8.0);
  EXPECT_NEAR(f, 0.95, 0.015);
}

TEST(PaperSection7, WadsackComparisonNumbers) {
  // "From this formula, for r = 0.01, y = 0.07, we get f = 99 percent and
  // for r = 0.001, f = 99.9 percent."
  EXPECT_NEAR(wadsack_required_coverage(0.01, 0.07), 0.99, 0.002);
  EXPECT_NEAR(wadsack_required_coverage(0.001, 0.07), 0.999, 0.0005);
}

TEST(PaperSection7, OurModelBeatsWadsackByHugeMargin) {
  // The paper's headline: 80% vs 99% and 95% vs 99.9%.
  EXPECT_LT(required_fault_coverage(0.01, 0.07, 8.0),
            wadsack_required_coverage(0.01, 0.07) - 0.15);
  EXPECT_LT(required_fault_coverage(0.001, 0.07, 8.0),
            wadsack_required_coverage(0.001, 0.07) - 0.04);
}

TEST(PaperSection7, Table1CurveMatchesN0EightFamily) {
  // P(f; 0.07, 8) evaluated at the Table 1 strobes tracks the data column
  // closely from f = 0.10 on (the first strobes sit slightly above the
  // n0 = 8 curve, which is why the slope method gave 8.8).
  const std::vector<std::pair<double, double>> table1 = {
      {0.10, 0.52}, {0.15, 0.67}, {0.20, 0.75}, {0.30, 0.82},
      {0.36, 0.87}, {0.45, 0.91}, {0.50, 0.92}, {0.65, 0.93}};
  for (const auto& [f, observed] : table1) {
    EXPECT_NEAR(reject_fraction(f, 0.07, 8.0), observed, 0.06)
        << "f=" << f;
  }
}

TEST(PaperSection7, EarlyStrobesSitAboveTheCurve) {
  // Table 1's first point (f=0.05, 0.41) exceeds P(0.05; 0.07, 8) = 0.31:
  // the reproduction preserves this feature of the original data.
  EXPECT_LT(reject_fraction(0.05, 0.07, 8.0), 0.35);
}

// ---- Section 5 / Eq. 10 ----

TEST(PaperSection5, SlopeAtOriginEqualsAverageFaultCount) {
  // "the slope P'(0) is equal to the average number (n_av) of faults as
  // given by (2)."
  for (const double y : {0.07, 0.2, 0.8}) {
    for (const double n0 : {2.0, 8.0}) {
      EXPECT_DOUBLE_EQ(reject_fraction_slope_at_zero(y, n0),
                       (1.0 - y) * n0);
    }
  }
}

TEST(PaperSection5, PPrimeZeroIsPessimisticN0Substitute) {
  // "Since, for a nonzero yield, P'(0) < n0, using P'(0) in place of n0
  // will give a pessimistic (or safe) value of fault coverage."
  const double y = 0.3;
  const double n0 = 8.0;
  const double p_prime = reject_fraction_slope_at_zero(y, n0);  // 5.6
  EXPECT_LT(p_prime, n0);
  // Lower n0 -> higher required coverage (safe direction).
  EXPECT_GT(required_fault_coverage(0.005, y, p_prime),
            required_fault_coverage(0.005, y, n0));
}

// ---- Section 8: fine-line scaling remarks ----

TEST(PaperSection8, HigherYieldLowersRequirementAtFixedN0) {
  // "a higher yield indicates a lower fault-coverage requirement if n0
  // remains fixed."
  EXPECT_LT(required_fault_coverage(0.005, 0.5, 8.0),
            required_fault_coverage(0.005, 0.2, 8.0));
}

TEST(PaperSection8, HigherN0FurtherReducesRequirement) {
  // "a higher value of n0, thereby further reducing the fault-coverage
  // requirement."
  EXPECT_LT(required_fault_coverage(0.005, 0.5, 12.0),
            required_fault_coverage(0.005, 0.5, 8.0));
}

}  // namespace
}  // namespace lsiq::quality
