// The implication prover cross-checked against PODEM, the library's
// decision procedure for redundancy:
//
//   * soundness — every fault identify_redundancies() flags must be proven
//     kUntestable by an UNASSISTED PODEM (use_implications off, so the
//     check cannot be circular), over handcrafted circuits, the generator
//     families, and randomized DAG netlists;
//   * conservatism of the PODEM assist — with implications on, a detected
//     fault yields the bit-identical pattern and cube, and never more
//     backtracks (the assist prunes doomed subtrees, it does not steer);
//   * the pinned mult16 deterministic-ATPG backtrack reduction;
//   * the remaining frontier — a reconvergent functional equivalence
//     (XOR of two structurally different implementations of a OR b) whose
//     output s-a-0 PODEM proves redundant but fault-independent static
//     analysis cannot, pinned so an over-claiming "improvement" fails
//     loudly here the way the PR 7 reconvergent miss once did in
//     test_analyze_crosscheck.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/implication.hpp"
#include "analyze/redundancy.hpp"
#include "circuit/compiled.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "tpg/atpg.hpp"
#include "tpg/podem.hpp"
#include "util/rng.hpp"

namespace lsiq::analyze {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

/// Every implication-proven site must be confirmed redundant by the plain
/// decision procedure. Returns the number of sites checked so callers can
/// assert the sweep was not vacuous where it should not be.
std::size_t expect_sites_podem_redundant(const Circuit& circuit) {
  const circuit::CompiledCircuit compiled(circuit);
  const ImplicationEngine engine(compiled);
  const RedundancyReport report = identify_redundancies(engine);
  tpg::PodemOptions plain;
  plain.use_implications = false;
  plain.max_backtracks = 1000000;
  for (const RedundantSite& site : report.sites) {
    const tpg::PodemResult proof =
        tpg::generate_test(circuit, site.fault, plain);
    EXPECT_EQ(proof.status, tpg::TestStatus::kUntestable)
        << "implication prover over-claims ("
        << redundancy_reason_name(site.reason) << ") on "
        << fault::fault_name(circuit, site.fault) << " in "
        << circuit.name();
  }
  return report.sites.size();
}

/// A deterministic random DAG: a handful of inputs, sometimes a tied
/// constant, then `gates` random gates over earlier nodes (duplicate
/// fanins allowed — instant reconvergence), a few random observed points.
/// Small enough that PODEM settles every fault without aborting.
Circuit random_dag(std::uint64_t seed, std::size_t gates) {
  util::Rng rng(seed);
  Circuit c("rand" + std::to_string(seed));
  std::vector<GateId> pool;
  const std::size_t inputs = 3 + rng.uniform_below(3);
  for (std::size_t i = 0; i < inputs; ++i) {
    pool.push_back(c.add_input("i" + std::to_string(i)));
  }
  if (rng.bernoulli(0.5)) {
    pool.push_back(c.add_gate(GateType::kConst0, {}, "tie0"));
  }
  if (rng.bernoulli(0.25)) {
    pool.push_back(c.add_gate(GateType::kConst1, {}, "tie1"));
  }
  const GateType kinds[] = {GateType::kAnd, GateType::kNand, GateType::kOr,
                            GateType::kNor, GateType::kXor, GateType::kXnor,
                            GateType::kNot, GateType::kBuf};
  for (std::size_t g = 0; g < gates; ++g) {
    const GateType type = kinds[rng.uniform_below(8)];
    const bool unary = type == GateType::kNot || type == GateType::kBuf;
    std::vector<GateId> fanin;
    fanin.push_back(pool[rng.uniform_below(pool.size())]);
    if (!unary) {
      fanin.push_back(pool[rng.uniform_below(pool.size())]);
    }
    pool.push_back(c.add_gate(type, fanin, "g" + std::to_string(g)));
  }
  std::vector<GateId> observed = {pool.back()};
  for (int extra = 0; extra < 2; ++extra) {
    const GateId pick = pool[rng.uniform_below(pool.size())];
    if (std::find(observed.begin(), observed.end(), pick) ==
        observed.end()) {
      observed.push_back(pick);
    }
  }
  for (const GateId id : observed) c.mark_output(id);
  c.finalize();
  return c;
}

TEST(ImplicationCrosscheck, SitesPodemRedundantOnHandcraftedCircuits) {
  // The reconvergent-constant circuit: six sites, three distinct proof
  // kinds (implied constant, necessary conflict, FIRE stem conflict).
  Circuit recon("recon");
  const GateId a = recon.add_input("a");
  const GateId na = recon.add_gate(GateType::kNot, {a}, "na");
  const GateId y = recon.add_gate(GateType::kAnd, {a, na}, "y");
  const GateId b = recon.add_input("b");
  const GateId out = recon.add_gate(GateType::kOr, {y, b}, "out");
  recon.mark_output(out);
  recon.finalize();
  EXPECT_GT(expect_sites_podem_redundant(recon), 0u);
}

TEST(ImplicationCrosscheck, SitesPodemRedundantOnGeneratorFamilies) {
  // The healthy generators must stay clean (no false redundancy claims on
  // fully testable circuits); the carry-select adder's mux reconvergence
  // genuinely carries redundant sites, so the subset check bites there.
  for (const Circuit& c :
       {circuit::make_c17(), circuit::make_alu(2), circuit::make_alu(4),
        circuit::make_parity_tree(8)}) {
    SCOPED_TRACE(c.name());
    EXPECT_EQ(expect_sites_podem_redundant(c), 0u);
  }
  EXPECT_GT(expect_sites_podem_redundant(
                circuit::make_carry_select_adder(16, 4)),
            0u);
}

TEST(ImplicationCrosscheck, SitesPodemRedundantOnRandomizedNetlists) {
  std::size_t total_sites = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Circuit c = random_dag(seed, 24);
    SCOPED_TRACE(c.name());
    total_sites += expect_sites_podem_redundant(c);
  }
  // The sweep must have exercised the provers, not just clean circuits.
  EXPECT_GT(total_sites, 0u);
}

TEST(ImplicationCrosscheck, FrontierReconvergentEquivalenceStillMissed) {
  // f and g both compute (a OR b) through different structure; XOR(f, g)
  // is constant 0 through FUNCTIONAL equivalence of two cones. PODEM
  // proves out s-a-0 redundant, but no fault-independent static pass here
  // does: no single-literal probe contradicts, and neither polarity of
  // any stem closure forces out to 0. This pins the engine's current
  // frontier — if a future change proves it statically, move the site
  // into the positive tests and find a new frontier.
  Circuit c("frontier");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId na = c.add_gate(GateType::kNot, {a}, "na");
  const GateId nb = c.add_gate(GateType::kNot, {b}, "nb");
  const GateId t1 = c.add_gate(GateType::kAnd, {a, b}, "t1");
  const GateId t2 = c.add_gate(GateType::kAnd, {a, nb}, "t2");
  const GateId t3 = c.add_gate(GateType::kAnd, {na, b}, "t3");
  const GateId f = c.add_gate(GateType::kOr, {t1, t2, t3}, "f");
  const GateId g = c.add_gate(GateType::kOr, {a, b}, "g");
  const GateId out = c.add_gate(GateType::kXor, {f, g}, "out");
  c.mark_output(out);
  c.finalize();

  tpg::PodemOptions plain;
  plain.use_implications = false;
  const tpg::PodemResult proof =
      tpg::generate_test(c, fault::Fault{out, -1, false}, plain);
  ASSERT_EQ(proof.status, tpg::TestStatus::kUntestable);

  const circuit::CompiledCircuit compiled(c);
  const ImplicationEngine engine(compiled);
  EXPECT_EQ(engine.constant(out), LineValue::kUnknown);
  const RedundancyReport report = identify_redundancies(engine);
  bool claimed = false;
  for (const RedundantSite& site : report.sites) {
    if (site.fault == fault::Fault{out, -1, false}) claimed = true;
  }
  EXPECT_FALSE(claimed) << "the frontier moved: update this pin";
  // Whatever else it proved here must still be sound.
  expect_sites_podem_redundant(c);
}

TEST(ImplicationCrosscheck, AssistedPodemIsBitIdenticalAndNeverSlower) {
  std::vector<Circuit> circuits;
  circuits.push_back(circuit::make_c17());
  circuits.push_back(circuit::make_alu(4));
  for (std::uint64_t seed = 31; seed <= 38; ++seed) {
    circuits.push_back(random_dag(seed, 24));
  }
  for (const Circuit& c : circuits) {
    SCOPED_TRACE(c.name());
    const circuit::CompiledCircuit compiled(c);
    const ImplicationEngine engine(compiled);
    tpg::PodemOptions with;
    with.implications = &engine;
    tpg::PodemOptions without;
    without.use_implications = false;
    const fault::FaultList faults = fault::FaultList::full_universe(c);
    for (const fault::Fault& f : faults.representatives()) {
      const tpg::PodemResult assisted = tpg::generate_test(c, f, with);
      const tpg::PodemResult plain = tpg::generate_test(c, f, without);
      // The assist may rescue an abort (strictly better), never the
      // reverse; matching verdicts must match bit for bit.
      if (plain.status == tpg::TestStatus::kAborted) continue;
      ASSERT_EQ(assisted.status, plain.status)
          << fault::fault_name(c, f);
      EXPECT_LE(assisted.backtracks, plain.backtracks)
          << fault::fault_name(c, f);
      if (plain.status == tpg::TestStatus::kDetected) {
        EXPECT_EQ(assisted.pattern, plain.pattern)
            << fault::fault_name(c, f);
        EXPECT_EQ(assisted.cube, plain.cube) << fault::fault_name(c, f);
      }
    }
  }
}

TEST(ImplicationCrosscheck, Mult16DeterministicAtpgBacktracksDrop) {
  // Deterministic-only ATPG on the 16-bit array multiplier: every class
  // goes through PODEM, so the necessary-assignment pruning shows up
  // directly in the run's total backtrack count — while the emitted
  // program stays bit-identical (same patterns, same coverage).
  const Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  tpg::AtpgOptions with;
  with.random_patterns = 0;
  tpg::AtpgOptions without = with;
  without.podem.use_implications = false;

  const tpg::AtpgResult assisted = tpg::generate_tests(faults, with);
  const tpg::AtpgResult plain = tpg::generate_tests(faults, without);

  EXPECT_LT(assisted.total_backtracks, plain.total_backtracks)
      << "the implication assist stopped paying for itself on mult16";
  EXPECT_LE(assisted.total_decisions, plain.total_decisions);
  EXPECT_EQ(assisted.patterns, plain.patterns);
  EXPECT_EQ(assisted.detected_classes, plain.detected_classes);
  EXPECT_EQ(assisted.redundant_classes, plain.redundant_classes);
  EXPECT_EQ(assisted.aborted_classes, plain.aborted_classes);
  EXPECT_DOUBLE_EQ(assisted.coverage, plain.coverage);
}

}  // namespace
}  // namespace lsiq::analyze
