// Tests for the complete ATPG flow and static compaction.
#include "tpg/atpg.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "fault/fault_sim.hpp"
#include "fault_model/universe.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using fault::FaultList;

TEST(Atpg, FullCoverageOnC17) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const AtpgResult r = generate_tests(faults);
  EXPECT_EQ(r.detected_classes, faults.class_count());
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_EQ(r.redundant_classes, 0u);
  EXPECT_EQ(r.aborted_classes, 0u);
  // Confirm with an independent full fault simulation of the final set.
  const fault::FaultSimResult check = simulate_ppsfp(faults, r.patterns);
  EXPECT_DOUBLE_EQ(check.coverage, 1.0);
}

class AtpgOnCircuits : public ::testing::TestWithParam<int> {};

TEST_P(AtpgOnCircuits, ReachesFullEffectiveCoverage) {
  Circuit c = [&]() -> Circuit {
    switch (GetParam()) {
      case 0: return circuit::make_ripple_carry_adder(4);
      case 1: return circuit::make_alu(2);
      case 2: return circuit::make_decoder(3);
      case 3: return circuit::make_comparator(4);
      default: return circuit::make_parity_tree(12);
    }
  }();
  const FaultList faults = FaultList::full_universe(c);
  const AtpgResult r = generate_tests(faults);
  EXPECT_EQ(r.aborted_classes, 0u) << "no aborts expected at default budget";
  EXPECT_DOUBLE_EQ(r.effective_coverage, 1.0);
  // Cross-check: fault-simulating the produced set reproduces the coverage.
  const fault::FaultSimResult check = simulate_ppsfp(faults, r.patterns);
  EXPECT_NEAR(check.coverage, r.coverage, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Circuits, AtpgOnCircuits,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Atpg, DeterministicPhaseAloneClosesTheFaultSet) {
  // Disable the random phase: PODEM with per-pattern dropping must still
  // reach full coverage.
  const Circuit c = circuit::make_mux_tree(3);
  const FaultList faults = FaultList::full_universe(c);
  AtpgOptions options;
  options.random_patterns = 0;
  const AtpgResult r = generate_tests(faults, options);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_GT(r.patterns.size(), 0u);
}

TEST(Atpg, RedundantFaultsAreReportedNotCounted) {
  // z = AND(a, OR(a, b)): the OR's b-pin s-a-1 is redundant.
  Circuit c("mask");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId o = c.add_gate(GateType::kOr, {a, b}, "o");
  const GateId z = c.add_gate(GateType::kAnd, {a, o}, "z");
  c.mark_output(z);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  const AtpgResult r = generate_tests(faults);
  EXPECT_GE(r.redundant_classes, 1u);
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.effective_coverage, 1.0)
      << "with redundancies excluded the set is complete (Section 1)";
}

TEST(Atpg, RandomPhaseShrinksDeterministicWork) {
  const Circuit c = circuit::make_ripple_carry_adder(8);
  const FaultList faults = FaultList::full_universe(c);
  AtpgOptions with_random;
  with_random.random_patterns = 256;
  AtpgOptions without_random;
  without_random.random_patterns = 0;
  const AtpgResult a = generate_tests(faults, with_random);
  const AtpgResult b = generate_tests(faults, without_random);
  EXPECT_DOUBLE_EQ(a.coverage, 1.0);
  EXPECT_DOUBLE_EQ(b.coverage, 1.0);
  // Both work; this documents that the flow functions in both modes.
}

// ---- transition universes through the same entry point ----

class TransitionAtpgOnCircuits : public ::testing::TestWithParam<int> {};

TEST_P(TransitionAtpgOnCircuits, ReachesFullEffectiveCoverage) {
  Circuit c = [&]() -> Circuit {
    switch (GetParam()) {
      case 0: return circuit::make_ripple_carry_adder(4);
      case 1: return circuit::make_alu(2);
      case 2: return circuit::make_decoder(3);
      case 3: return circuit::make_comparator(4);
      default: return circuit::make_parity_tree(12);
    }
  }();
  const FaultList faults = FaultList::transition_universe(c);
  const AtpgResult r = generate_tests(faults);
  EXPECT_EQ(r.aborted_classes, 0u) << "no aborts expected at default budget";
  EXPECT_DOUBLE_EQ(r.effective_coverage, 1.0);
  EXPECT_EQ(r.redundant_classes,
            r.untestable_launch_classes + r.untestable_capture_classes);
  // Cross-check with the independent two-pattern simulator. Seams between
  // kept pairs could only add detections of testable classes, and every
  // testable class is already counted, so the figures agree exactly.
  const fault::FaultSimResult check = simulate_ppsfp(faults, r.patterns);
  EXPECT_NEAR(check.coverage, r.coverage, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Circuits, TransitionAtpgOnCircuits,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(TransitionAtpg, DeterministicPhaseEmitsOrderedPairs) {
  // With the random phase disabled the program is exactly the emitted
  // (launch, capture) pairs, in order — so it has even length and grading
  // it reproduces the counted coverage.
  const Circuit c = circuit::make_mux_tree(3);
  const FaultList faults = FaultList::transition_universe(c);
  AtpgOptions options;
  options.random_patterns = 0;
  const AtpgResult r = generate_tests(faults, options);
  EXPECT_GT(r.patterns.size(), 0u);
  EXPECT_EQ(r.patterns.size() % 2, 0u);
  const fault::FaultSimResult check = simulate_ppsfp(faults, r.patterns);
  EXPECT_NEAR(check.coverage, r.coverage, 1e-12);
}

TEST(TransitionAtpg, ConstantFedSiteCountedRedundantAndExcluded) {
  // out = OR(b, z) with z = AND(a, NOT a): z is constant 0. Its
  // slow-to-fall has no launch (the site never holds 1) and its
  // slow-to-rise has no capture (stuck-at-0 on a constant-0 line); both
  // proofs land in redundant_classes, split by reason, and are excluded
  // from effective_coverage's denominator.
  Circuit c("const_fed");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId na = c.add_gate(GateType::kNot, {a}, "na");
  const GateId z = c.add_gate(GateType::kAnd, {a, na}, "z");
  const GateId out = c.add_gate(GateType::kOr, {b, z}, "out");
  c.mark_output(out);
  c.finalize();

  const FaultList faults = FaultList::transition_universe(c);
  const AtpgResult r = generate_tests(faults);
  EXPECT_EQ(r.aborted_classes, 0u);
  EXPECT_GE(r.untestable_launch_classes, 1u) << "z slow-to-fall";
  EXPECT_GE(r.untestable_capture_classes, 1u) << "z slow-to-rise";
  EXPECT_EQ(r.redundant_classes,
            r.untestable_launch_classes + r.untestable_capture_classes);
  EXPECT_EQ(r.detected_classes + r.redundant_classes, faults.class_count());
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.effective_coverage, 1.0)
      << "with the redundancy proofs excluded the set is complete";
}

TEST(Compaction, PreservesCoverageAndNeverGrows) {
  const Circuit c = circuit::make_alu(3);
  const FaultList faults = FaultList::full_universe(c);
  const AtpgResult r = generate_tests(faults);
  const double before = simulate_ppsfp(faults, r.patterns).coverage;

  const sim::PatternSet compacted =
      reverse_order_compact(faults, r.patterns);
  EXPECT_LE(compacted.size(), r.patterns.size());
  const double after = simulate_ppsfp(faults, compacted).coverage;
  EXPECT_DOUBLE_EQ(after, before);
}

TEST(Compaction, EmptySetPassesThrough) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const sim::PatternSet empty(c.pattern_inputs().size());
  const sim::PatternSet out = reverse_order_compact(faults, empty);
  EXPECT_EQ(out.size(), 0u);
}

TEST(Compaction, DropsDuplicatedPatterns) {
  // A set with every pattern duplicated compacts to at most half.
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  const AtpgResult r = generate_tests(faults);
  sim::PatternSet doubled(r.patterns.input_count());
  for (std::size_t p = 0; p < r.patterns.size(); ++p) {
    doubled.append(r.patterns.pattern(p));
    doubled.append(r.patterns.pattern(p));
  }
  const sim::PatternSet compacted = reverse_order_compact(faults, doubled);
  EXPECT_LE(compacted.size(), r.patterns.size());
  EXPECT_DOUBLE_EQ(simulate_ppsfp(faults, compacted).coverage,
                   simulate_ppsfp(faults, r.patterns).coverage);
}

// ---- reverse_order_compact property tests, both fault models ----
//
// The contract under test: the compacted set detects every fault class
// the original set detects, never grows, and (for transition universes)
// never separates a launch from its capture — checked by re-grading the
// compacted program with the independent fault simulator, whose pairing
// is purely positional.

TEST(Compaction, PropertyCompactedDetectsSameClassesStuckAt) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    circuit::RandomDagSpec dag;
    dag.inputs = 10;
    dag.gates = 120;
    dag.seed = seed;
    const Circuit c = circuit::make_random_dag(dag);
    const FaultList faults = FaultList::full_universe(c);
    util::Rng rng(seed * 131);
    sim::PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(90, rng);

    const fault::FaultSimResult original = simulate_ppsfp(faults, patterns);
    const sim::PatternSet compacted =
        reverse_order_compact(faults, patterns);
    EXPECT_LE(compacted.size(), patterns.size());
    const fault::FaultSimResult check = simulate_ppsfp(faults, compacted);
    for (std::size_t cls = 0; cls < faults.class_count(); ++cls) {
      // A pattern subset can neither lose nor gain one-pattern
      // detections: the detected sets are exactly equal.
      EXPECT_EQ(original.first_detection[cls] >= 0,
                check.first_detection[cls] >= 0)
          << fault_name(c, faults.representatives()[cls]);
    }
  }
}

TEST(Compaction, PropertyCompactedDetectsSameClassesTransition) {
  for (const std::uint64_t seed : {55ull, 66ull, 77ull, 88ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    circuit::RandomDagSpec dag;
    dag.inputs = 10;
    dag.gates = 120;
    dag.seed = seed;
    const Circuit c = circuit::make_random_dag(dag);
    const FaultList faults = FaultList::transition_universe(c);
    util::Rng rng(seed * 131);
    sim::PatternSet patterns(c.pattern_inputs().size());
    patterns.append_random(90, rng);

    const fault::FaultSimResult original = simulate_ppsfp(faults, patterns);
    const sim::PatternSet compacted =
        reverse_order_compact(faults, patterns);
    EXPECT_LE(compacted.size(), patterns.size());
    const fault::FaultSimResult check = simulate_ppsfp(faults, compacted);
    for (std::size_t cls = 0; cls < faults.class_count(); ++cls) {
      // Every originally detected class keeps its credited pair adjacent
      // in the compacted program. New seams may ADD detections (dropping
      // the patterns between two kept pairs creates a new consecutive
      // pair), so the containment is one-directional.
      if (original.first_detection[cls] >= 0) {
        EXPECT_GE(check.first_detection[cls], 0)
            << fault_name(c, faults.representatives()[cls],
                          fault_model::FaultModel::kTransition);
      }
    }
  }
}

TEST(Compaction, TransitionAtpgProgramCompactsWithoutCoverageLoss) {
  const Circuit c = circuit::make_alu(3);
  const FaultList faults = FaultList::transition_universe(c);
  const AtpgResult r = generate_tests(faults);
  // With no aborts every undetected class is proven untestable, so the
  // compacted program cannot pick up seam detections the original lacked
  // and the coverages must match exactly.
  ASSERT_EQ(r.aborted_classes, 0u);
  const double before = simulate_ppsfp(faults, r.patterns).coverage;
  const sim::PatternSet compacted =
      reverse_order_compact(faults, r.patterns);
  EXPECT_LE(compacted.size(), r.patterns.size());
  EXPECT_DOUBLE_EQ(simulate_ppsfp(faults, compacted).coverage, before);
}

}  // namespace
}  // namespace lsiq::tpg
