// Unit tests for the .bench reader/writer.
#include "circuit/bench_io.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "util/error.hpp"

namespace lsiq::circuit {
namespace {

const char* kC17Text = R"(
# c17 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

TEST(BenchIo, ParsesC17) {
  const Circuit c = read_bench_string(kC17Text, "c17");
  EXPECT_EQ(c.primary_inputs().size(), 5u);
  EXPECT_EQ(c.primary_outputs().size(), 2u);
  EXPECT_EQ(c.stats().combinational_gates, 6u);
  EXPECT_NE(c.find("G16"), kNoGate);
  EXPECT_EQ(c.gate(c.find("G16")).type, GateType::kNand);
}

TEST(BenchIo, ForwardReferencesAllowed) {
  // G2 is used in the first assignment but defined afterwards.
  const char* text = R"(
INPUT(A)
OUTPUT(Y)
Y = AND(A, G2)
G2 = NOT(A)
)";
  const Circuit c = read_bench_string(text);
  EXPECT_EQ(c.stats().combinational_gates, 2u);
}

TEST(BenchIo, SequentialFeedbackThroughDff) {
  // Classic loop: the flip-flop's next state depends on its own output.
  const char* text = R"(
INPUT(EN)
OUTPUT(Q)
Q = DFF(D)
D = NAND(EN, Q)
)";
  const Circuit c = read_bench_string(text, "toggle");
  EXPECT_EQ(c.flip_flops().size(), 1u);
  EXPECT_EQ(c.pattern_inputs().size(), 2u);   // EN + Q
  EXPECT_EQ(c.observed_points().size(), 2u);  // Q (marked) + D driver
}

TEST(BenchIo, AcceptsAliasesAndCase) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
n = inv(a)
y = buff(n)
)";
  const Circuit c = read_bench_string(text);
  EXPECT_EQ(c.gate(c.find("n")).type, GateType::kNot);
  EXPECT_EQ(c.gate(c.find("y")).type, GateType::kBuf);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n";
  EXPECT_NO_THROW(read_bench_string(text));
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Circuit original = make_c17();
  const std::string text = write_bench_string(original);
  const Circuit reparsed = read_bench_string(text, "c17");
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  for (GateId id = 0; id < original.gate_count(); ++id) {
    const Gate& g = original.gate(id);
    const GateId rid = reparsed.find(g.name);
    ASSERT_NE(rid, kNoGate) << g.name;
    EXPECT_EQ(reparsed.gate(rid).type, g.type);
    EXPECT_EQ(reparsed.gate(rid).fanin.size(), g.fanin.size());
  }
}

TEST(BenchIo, RoundTripSequentialCircuit) {
  const char* text = R"(
INPUT(EN)
OUTPUT(Q)
Q = DFF(D)
D = NAND(EN, Q)
)";
  const Circuit c = read_bench_string(text, "toggle");
  const Circuit again = read_bench_string(write_bench_string(c), "toggle");
  EXPECT_EQ(again.flip_flops().size(), 1u);
  EXPECT_EQ(again.gate_count(), c.gate_count());
}

TEST(BenchIo, ErrorUndefinedOperand) {
  const char* text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorUndefinedOutput) {
  const char* text = "INPUT(a)\nOUTPUT(ghost)\nn = NOT(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorDoubleAssignment) {
  const char* text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorInputAlsoAssigned) {
  const char* text = "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorUnknownGateType) {
  const char* text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorBadArity) {
  const char* text = "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorCombinationalCycle) {
  const char* text = R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = NOT(x)
)";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIo, ErrorMalformedLine) {
  EXPECT_THROW(read_bench_string("INPUT a\n"), ParseError);
  EXPECT_THROW(read_bench_string("WIBBLE(a)\n"), ParseError);
}

TEST(BenchIo, CrlfLineEndingsParse) {
  // DOS-style files: the trailing \r must be stripped, not glued onto
  // signal names.
  const char* text =
      "# header\r\nINPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\n"
      "y = AND(a, b)\r\n";
  const Circuit c = read_bench_string(text, "crlf");
  EXPECT_EQ(c.primary_inputs().size(), 2u);
  EXPECT_NE(c.find("y"), kNoGate);
  EXPECT_EQ(c.gate(c.find("y")).type, GateType::kAnd);
}

TEST(BenchIo, MalformedInputsRaiseParseErrorsWithLine) {
  // Table-driven robustness sweep: every malformed netlist must raise a
  // ParseError naming the offending line — never crash, never silently
  // accept.
  struct Case {
    const char* name;
    const char* text;
    const char* expect_in_message;  ///< substring the error must carry
  };
  const Case cases[] = {
      {"missing close paren",
       "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n", "line 3"},
      {"missing open paren",
       "INPUT(a)\nOUTPUT(y)\ny = NOT a)\n", "line 3"},
      {"missing both parens",
       "INPUT(a)\nOUTPUT(y)\ny = NOT\n", "line 3"},
      {"empty operand list",
       "INPUT(a)\nOUTPUT(y)\ny = AND()\n", "line 3"},
      {"duplicate gate name",
       "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", "line 4"},
      {"duplicate input declaration",
       "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "line 2"},
      {"input also assigned",
       "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n", "line 3"},
      {"undriven operand",
       "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "line 3"},
      {"undriven dff operand",
       "INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n", "line 3"},
      {"undriven output",
       "INPUT(a)\nOUTPUT(ghost)\nn = NOT(a)\n", "line 2"},
      {"duplicate output declaration",
       "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n", "line 3"},
      {"assignment with empty target",
       "INPUT(a)\nOUTPUT(y)\n = NOT(a)\n", "line 3"},
      {"unknown directive",
       "INPUT(a)\nFROBNICATE(a)\n", "line 2"},
      {"crlf with missing paren",
       "INPUT(a)\r\nOUTPUT(y)\r\ny = NOT(a\r\n", "line 3"},
  };
  for (const Case& c : cases) {
    try {
      read_bench_string(c.text, c.name);
      FAIL() << c.name << ": malformed input accepted";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.name << ": message `" << e.what() << "` does not name `"
          << c.expect_in_message << "`";
    } catch (...) {
      FAIL() << c.name << ": threw something other than ParseError";
    }
  }
}

TEST(BenchIo, MissingFileThrows) {
  // File-access failures are IoError (ErrorCode::kIo), not parse errors.
  try {
    read_bench_file("/nonexistent/path.bench");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

}  // namespace
}  // namespace lsiq::circuit
