// Unit tests for util/brent: root finding and scalar minimization.
#include "util/brent.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::util {
namespace {

TEST(FindRoot, LinearFunction) {
  const RootResult r =
      find_root_brent([](double x) { return 2.0 * x - 1.0; }, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.5, 1e-10);
}

TEST(FindRoot, CubicWithFlatRegion) {
  const RootResult r =
      find_root_brent([](double x) { return x * x * x; }, -1.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(FindRoot, TranscendentalCosEqualsX) {
  // Dottie number: cos(x) = x.
  const RootResult r =
      find_root_brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-10);
}

TEST(FindRoot, RootAtBracketEndpoint) {
  const RootResult lo =
      find_root_brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(lo.converged);
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
  const RootResult hi =
      find_root_brent([](double x) { return x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(hi.converged);
  EXPECT_DOUBLE_EQ(hi.x, 1.0);
}

TEST(FindRoot, SteepExponential) {
  // The shape of the reject-rate inversion: exp decay minus a tiny target.
  const RootResult r = find_root_brent(
      [](double x) { return std::exp(-20.0 * x) - 1e-6; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, -std::log(1e-6) / 20.0, 1e-9);
}

TEST(FindRoot, RejectsUnbracketedInterval) {
  EXPECT_THROW(
      find_root_brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      NumericError);
}

TEST(FindRoot, RejectsInvertedInterval) {
  EXPECT_THROW(find_root_brent([](double x) { return x; }, 1.0, -1.0),
               ContractViolation);
}

TEST(FindRoot, HighPrecisionTolerance) {
  const RootResult r = find_root_brent(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-14);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-12);
}

TEST(Minimize, Parabola) {
  const MinimizeResult r = minimize_brent(
      [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; }, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-7);
  EXPECT_NEAR(r.fx, 2.0, 1e-12);
}

TEST(Minimize, AsymmetricValley) {
  // f(x) = x^4 - x has its minimum at (1/4)^(1/3).
  const MinimizeResult r = minimize_brent(
      [](double x) { return x * x * x * x - x; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::cbrt(0.25), 1e-7);
}

TEST(Minimize, MinimumAtIntervalEdge) {
  const MinimizeResult r =
      minimize_brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(Minimize, NegativeLogLikelihoodShape) {
  // The MLE objective shape: -k log(p) - (n-k) log(1-p), optimum at k/n.
  const MinimizeResult r = minimize_brent(
      [](double p) {
        return -30.0 * std::log(p) - 70.0 * std::log(1.0 - p);
      },
      1e-9, 1.0 - 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.3, 1e-6);
}

TEST(Minimize, RejectsInvertedInterval) {
  EXPECT_THROW(minimize_brent([](double x) { return x; }, 1.0, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::util
