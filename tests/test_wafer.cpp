// Tests for the Monte-Carlo chip-lot generators.
#include "wafer/chip_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "util/error.hpp"

namespace lsiq::wafer {
namespace {

using fault::FaultList;
using quality::FaultDistribution;

const fault::FaultList& mult8_faults() {
  static const circuit::Circuit circuit = circuit::make_array_multiplier(8);
  static const FaultList faults = FaultList::full_universe(circuit);
  return faults;
}

TEST(ChipLot, ModelFaithfulGeneratorMatchesGroundTruth) {
  const FaultDistribution distribution(0.30, 6.0);
  const ChipLot lot = generate_lot(mult8_faults(), distribution, 20000, 7);
  EXPECT_EQ(lot.size(), 20000u);
  EXPECT_DOUBLE_EQ(lot.true_yield, 0.30);
  EXPECT_DOUBLE_EQ(lot.true_n0, 6.0);
  EXPECT_NEAR(lot.realized_yield(), 0.30, 0.01);
  // Class-level dedup can only lower the count, and collisions are rare in
  // a universe of thousands.
  EXPECT_NEAR(lot.realized_n0(), 6.0, 0.1);
}

TEST(ChipLot, DeterministicPerSeed) {
  const FaultDistribution distribution(0.2, 4.0);
  const ChipLot a = generate_lot(mult8_faults(), distribution, 100, 42);
  const ChipLot b = generate_lot(mult8_faults(), distribution, 100, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.chips[i].fault_classes, b.chips[i].fault_classes);
  }
}

TEST(ChipLot, DifferentSeedsDiffer) {
  const FaultDistribution distribution(0.2, 4.0);
  const ChipLot a = generate_lot(mult8_faults(), distribution, 100, 1);
  const ChipLot b = generate_lot(mult8_faults(), distribution, 100, 2);
  bool differ = false;
  for (std::size_t i = 0; i < a.size() && !differ; ++i) {
    differ = a.chips[i].fault_classes != b.chips[i].fault_classes;
  }
  EXPECT_TRUE(differ);
}

TEST(ChipLot, FaultClassesAreValidAndSorted) {
  const FaultDistribution distribution(0.1, 10.0);
  const ChipLot lot = generate_lot(mult8_faults(), distribution, 500, 3);
  for (const Chip& chip : lot.chips) {
    for (std::size_t i = 0; i < chip.fault_classes.size(); ++i) {
      EXPECT_LT(chip.fault_classes[i], mult8_faults().class_count());
      if (i > 0) {
        EXPECT_LT(chip.fault_classes[i - 1], chip.fault_classes[i]);
      }
    }
  }
}

TEST(ChipLot, PerfectYieldGivesCleanLot) {
  const FaultDistribution distribution(1.0, 5.0);
  const ChipLot lot = generate_lot(mult8_faults(), distribution, 200, 9);
  for (const Chip& chip : lot.chips) {
    EXPECT_FALSE(chip.defective());
  }
  EXPECT_DOUBLE_EQ(lot.realized_yield(), 1.0);
  EXPECT_DOUBLE_EQ(lot.realized_n0(), 0.0);
}

TEST(ChipLot, ZeroYieldGivesAllDefective) {
  const FaultDistribution distribution(0.0, 3.0);
  const ChipLot lot = generate_lot(mult8_faults(), distribution, 200, 9);
  for (const Chip& chip : lot.chips) {
    EXPECT_TRUE(chip.defective());
  }
}

TEST(PhysicalLot, YieldTracksNegativeBinomialModel) {
  PhysicalLotSpec spec;
  spec.chip_count = 20000;
  spec.defects_per_chip = 1.0;
  spec.variance_ratio = 0.5;
  spec.seed = 11;
  const ChipLot lot = generate_physical_lot(mult8_faults(), spec);
  // P(0 defects) = (1 + X lambda)^(-1/X) = 1.5^-2 = 4/9.
  EXPECT_NEAR(lot.realized_yield(), 4.0 / 9.0, 0.015);
}

TEST(PhysicalLot, PoissonLimitWhenVarianceZero) {
  PhysicalLotSpec spec;
  spec.chip_count = 20000;
  spec.defects_per_chip = 1.0;
  spec.variance_ratio = 0.0;
  spec.seed = 13;
  const ChipLot lot = generate_physical_lot(mult8_faults(), spec);
  EXPECT_NEAR(lot.realized_yield(), std::exp(-1.0), 0.015);
}

TEST(PhysicalLot, MultipleFaultsPerDefectRaisesN0) {
  PhysicalLotSpec one_fault;
  one_fault.chip_count = 5000;
  one_fault.defects_per_chip = 1.0;
  one_fault.extra_faults_per_defect = 0.0;
  one_fault.seed = 17;
  PhysicalLotSpec many_faults = one_fault;
  many_faults.extra_faults_per_defect = 3.0;
  const ChipLot lot_one = generate_physical_lot(mult8_faults(), one_fault);
  const ChipLot lot_many = generate_physical_lot(mult8_faults(), many_faults);
  EXPECT_GT(lot_many.true_n0, lot_one.true_n0 + 1.0);
}

TEST(PhysicalLot, LocalityWindowConfinesDefectFaults) {
  PhysicalLotSpec spec;
  spec.chip_count = 300;
  spec.defects_per_chip = 1.0;
  spec.extra_faults_per_defect = 2.0;
  spec.locality_window = 16;
  spec.seed = 19;
  // With single-defect chips, all faults of a chip stem from one defect
  // and must lie inside one 16-index window of the universe. Verify via
  // representative spread on chips with exactly one defect is impossible
  // to isolate post-hoc, so instead just validate structural invariants.
  const ChipLot lot = generate_physical_lot(mult8_faults(), spec);
  for (const Chip& chip : lot.chips) {
    for (const std::uint32_t cls : chip.fault_classes) {
      EXPECT_LT(cls, mult8_faults().class_count());
    }
  }
  EXPECT_GT(lot.true_n0, 1.0);
}

TEST(PhysicalLot, RealizedGroundTruthIsRecorded) {
  PhysicalLotSpec spec;
  spec.chip_count = 2000;
  spec.defects_per_chip = 2.0;
  spec.seed = 23;
  const ChipLot lot = generate_physical_lot(mult8_faults(), spec);
  EXPECT_DOUBLE_EQ(lot.true_yield, lot.realized_yield());
  EXPECT_DOUBLE_EQ(lot.true_n0, lot.realized_n0());
}

TEST(Lots, DomainChecks) {
  const FaultDistribution distribution(0.5, 2.0);
  EXPECT_THROW(generate_lot(mult8_faults(), distribution, 0, 1),
               ContractViolation);
  PhysicalLotSpec bad;
  bad.chip_count = 0;
  EXPECT_THROW(generate_physical_lot(mult8_faults(), bad),
               ContractViolation);
  PhysicalLotSpec negative_defects;
  negative_defects.defects_per_chip = -1.0;
  EXPECT_THROW(generate_physical_lot(mult8_faults(), negative_defects),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::wafer
