// Tests for fault enumeration and structural equivalence collapsing.
#include "fault/fault_list.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "fault/fault.hpp"
#include "util/error.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

TEST(FaultNaming, StemAndBranchNames) {
  const Circuit c = circuit::make_c17();
  const GateId g16 = c.find("G16");
  EXPECT_EQ(fault_name(c, Fault{g16, -1, true}), "G16/out s-a-1");
  EXPECT_EQ(fault_name(c, Fault{g16, 0, false}), "G16/in0 s-a-0");
}

TEST(FaultLine, StemIsSelfBranchIsDriver) {
  const Circuit c = circuit::make_c17();
  const GateId g16 = c.find("G16");
  const GateId g11 = c.find("G11");
  EXPECT_EQ(fault_line(c, Fault{g16, -1, false}), g16);
  // G16 = NAND(G2, G11): pin 1 is driven by G11.
  EXPECT_EQ(fault_line(c, Fault{g16, 1, false}), g11);
}

TEST(FaultUniverse, CountsMatchFormula) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  // 2 per gate output + 2 per input pin: 11 gates (5 PI + 6 NAND),
  // 12 pins -> 22 + 24 = 46.
  EXPECT_EQ(faults.fault_count(), 46u);
  EXPECT_LT(faults.class_count(), faults.fault_count());
}

TEST(FaultUniverse, ClassSizesPartitionTheUniverse) {
  const Circuit c = circuit::make_alu(4);
  const FaultList faults = FaultList::full_universe(c);
  std::size_t total = 0;
  for (std::size_t cl = 0; cl < faults.class_count(); ++cl) {
    EXPECT_GE(faults.class_size(cl), 1u);
    total += faults.class_size(cl);
  }
  EXPECT_EQ(total, faults.fault_count());
}

TEST(FaultUniverse, ClassOfIsConsistentWithRepresentatives) {
  const Circuit c = circuit::make_ripple_carry_adder(4);
  const FaultList faults = FaultList::full_universe(c);
  for (std::size_t i = 0; i < faults.fault_count(); ++i) {
    const std::size_t cl = faults.class_of(i);
    ASSERT_LT(cl, faults.class_count());
    // The representative must itself map back to the same class.
    const std::size_t rep_index =
        faults.index_of(faults.representatives()[cl]);
    ASSERT_LT(rep_index, faults.fault_count());
    EXPECT_EQ(faults.class_of(rep_index), cl);
  }
}

TEST(Collapsing, InverterChainCollapsesToOneClassPerPolarity) {
  // a -> NOT -> NOT -> NOT -> y. Every fault on the chain is equivalent to
  // a fault at the input (with alternating polarity): exactly 2 classes.
  Circuit c("chain");
  GateId prev = c.add_input("a");
  for (int i = 0; i < 3; ++i) {
    prev = c.add_gate(GateType::kNot, {prev}, "n" + std::to_string(i));
  }
  c.mark_output(prev);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  // Universe: 4 stems * 2 + 3 pins * 2 = 14 faults; all collapse into the
  // two polarity classes of the single line.
  EXPECT_EQ(faults.fault_count(), 14u);
  EXPECT_EQ(faults.class_count(), 2u);
}

TEST(Collapsing, AndGateInputSa0EquivalentToOutputSa0) {
  Circuit c("and2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kAnd, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  const std::size_t out_sa0 = faults.index_of(Fault{y, -1, false});
  const std::size_t in0_sa0 = faults.index_of(Fault{y, 0, false});
  const std::size_t in1_sa0 = faults.index_of(Fault{y, 1, false});
  const std::size_t out_sa1 = faults.index_of(Fault{y, -1, true});
  EXPECT_EQ(faults.class_of(out_sa0), faults.class_of(in0_sa0));
  EXPECT_EQ(faults.class_of(out_sa0), faults.class_of(in1_sa0));
  EXPECT_NE(faults.class_of(out_sa0), faults.class_of(out_sa1));
  // Input pins s-a-1 of an AND are NOT equivalent to each other.
  const std::size_t in0_sa1 = faults.index_of(Fault{y, 0, true});
  const std::size_t in1_sa1 = faults.index_of(Fault{y, 1, true});
  EXPECT_NE(faults.class_of(in0_sa1), faults.class_of(in1_sa1));
}

TEST(Collapsing, NandMapsInputSa0ToOutputSa1) {
  Circuit c("nand2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kNand, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  EXPECT_EQ(faults.class_of(faults.index_of(Fault{y, 0, false})),
            faults.class_of(faults.index_of(Fault{y, -1, true})));
}

TEST(Collapsing, XorContributesNoGateLocalEquivalences) {
  Circuit c("xor2");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y = c.add_gate(GateType::kXor, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  // Universe: 3 stems * 2 + 2 pins * 2 = 10. Single-fanout nets merge the
  // pin faults with the input stems (4 merges): 6 classes remain.
  EXPECT_EQ(faults.fault_count(), 10u);
  EXPECT_EQ(faults.class_count(), 6u);
}

TEST(Collapsing, FanoutBranchesStayDistinct) {
  // s drives two gates: branch faults on the two pins must NOT merge.
  Circuit c("fanout");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId s = c.add_gate(GateType::kBuf, {a}, "s");
  const GateId g1 = c.add_gate(GateType::kXor, {s, b}, "g1");
  const GateId g2 = c.add_gate(GateType::kXnor, {s, b}, "g2");
  c.mark_output(g1);
  c.mark_output(g2);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  EXPECT_NE(faults.class_of(faults.index_of(Fault{g1, 0, true})),
            faults.class_of(faults.index_of(Fault{g2, 0, true})));
}

TEST(Checkpoints, ContainsInputsAndFanoutBranchesOnly) {
  const Circuit c = circuit::make_c17();
  const FaultList cps = FaultList::checkpoints(c);
  // c17 checkpoints: 5 PIs (10 faults) + branches of nets with fanout >= 2.
  // Fanout >= 2 nets: G3 (feeds G10, G11), G11 (feeds G16, G19),
  // G16 (feeds G22, G23): 6 branch pins -> 12 faults. Total 22.
  EXPECT_EQ(cps.fault_count(), 22u);
  EXPECT_EQ(cps.class_count(), 22u);  // checkpoints are not collapsed
}

TEST(Checkpoints, SubsetOfFullUniverse) {
  const Circuit c = circuit::make_alu(2);
  const FaultList full = FaultList::full_universe(c);
  const FaultList cps = FaultList::checkpoints(c);
  EXPECT_LT(cps.fault_count(), full.fault_count());
  for (const Fault& f : cps.faults()) {
    EXPECT_LT(full.index_of(f), full.fault_count())
        << fault_name(c, f) << " missing from the full universe";
  }
}

TEST(FaultUniverse, SequentialCircuitIncludesDffPins) {
  Circuit c("seq");
  const GateId en = c.add_input("en");
  const GateId ff = c.add_dff("ff");
  const GateId d = c.add_gate(GateType::kNand, {en, ff}, "d");
  c.connect_dff(ff, d);
  c.mark_output(d);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);
  // The DFF D-pin faults exist in the universe.
  EXPECT_LT(faults.index_of(Fault{ff, 0, false}), faults.fault_count());
  EXPECT_LT(faults.index_of(Fault{ff, 0, true}), faults.fault_count());
}

TEST(FaultUniverse, IndexOfUnknownFaultReturnsEnd) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  // Pin 7 does not exist on a 2-input NAND.
  EXPECT_EQ(faults.index_of(Fault{c.find("G16"), 7, false}),
            faults.fault_count());
}

}  // namespace
}  // namespace lsiq::fault
