// Tests for the required-coverage solver (Section 6, Figs. 2-4).
#include "core/coverage_requirement.hpp"

#include <gtest/gtest.h>

#include "core/reject_model.hpp"
#include "util/error.hpp"

namespace lsiq::quality {
namespace {

TEST(RequiredCoverage, RoundTripsThroughEquation8) {
  for (const double y : {0.07, 0.2, 0.5, 0.9}) {
    for (const double n0 : {1.0, 2.0, 8.0, 12.0}) {
      for (const double r : {0.01, 0.005, 0.001}) {
        const double f = required_fault_coverage(r, y, n0);
        if (f == 0.0) {
          EXPECT_LE(field_reject_rate(0.0, y, n0), r);
        } else {
          EXPECT_NEAR(field_reject_rate(f, y, n0), r, 1e-9)
              << "y=" << y << " n0=" << n0 << " r=" << r;
        }
      }
    }
  }
}

TEST(RequiredCoverage, ZeroWhenUntestedProductSuffices) {
  // y = 0.999: untested reject rate is 0.001 <= target 0.01.
  EXPECT_DOUBLE_EQ(required_fault_coverage(0.01, 0.999, 5.0), 0.0);
}

TEST(RequiredCoverage, TighterTargetNeedsMoreCoverage) {
  for (const double y : {0.07, 0.3}) {
    const double f1 = required_fault_coverage(0.01, y, 8.0);
    const double f2 = required_fault_coverage(0.001, y, 8.0);
    EXPECT_GT(f2, f1);
  }
}

TEST(RequiredCoverage, LargerN0NeedsLessCoverage) {
  // Fig. 1's lesson: for LSI chips (large n0) lower coverage suffices.
  for (const double r : {0.01, 0.001}) {
    const double f_small = required_fault_coverage(r, 0.2, 2.0);
    const double f_large = required_fault_coverage(r, 0.2, 10.0);
    EXPECT_LT(f_large, f_small);
  }
}

TEST(RequiredCoverage, MixedVariantRoundTrips) {
  for (const double alpha : {0.5, 2.0, 50.0}) {
    const double f = required_fault_coverage_mixed(0.005, 0.2, 8.0, alpha);
    EXPECT_NEAR(field_reject_rate_mixed(f, 0.2, 8.0, alpha), 0.005, 1e-9);
  }
}

TEST(RequiredCoverage, MixedNeedsMoreCoverageThanPure) {
  // Heavier tails mean more escapes, hence a higher requirement.
  const double pure = required_fault_coverage(0.005, 0.2, 8.0);
  const double mixed = required_fault_coverage_mixed(0.005, 0.2, 8.0, 1.0);
  EXPECT_GT(mixed, pure);
}

TEST(RequiredCoverage, DomainChecks) {
  EXPECT_THROW(required_fault_coverage(0.0, 0.5, 2.0), ContractViolation);
  EXPECT_THROW(required_fault_coverage(1.0, 0.5, 2.0), ContractViolation);
  EXPECT_THROW(required_fault_coverage(0.01, 0.0, 2.0), ContractViolation);
}

TEST(RequirementCurve, CoversOpenYieldInterval) {
  const RequirementCurve curve = requirement_curve(0.01, 8.0, 49);
  ASSERT_EQ(curve.yields.size(), 49u);
  ASSERT_EQ(curve.coverages.size(), 49u);
  EXPECT_GT(curve.yields.front(), 0.0);
  EXPECT_LT(curve.yields.back(), 1.0);
  EXPECT_DOUBLE_EQ(curve.reject_target, 0.01);
  EXPECT_DOUBLE_EQ(curve.n0, 8.0);
}

TEST(RequirementCurve, MonotoneDecreasingInYield) {
  // Figs. 2-4: higher yield always relaxes the requirement.
  for (const double r : {0.01, 0.005, 0.001}) {
    for (const double n0 : {1.0, 4.0, 12.0}) {
      const RequirementCurve curve = requirement_curve(r, n0, 99);
      for (std::size_t i = 1; i < curve.coverages.size(); ++i) {
        EXPECT_LE(curve.coverages[i], curve.coverages[i - 1] + 1e-9)
            << "r=" << r << " n0=" << n0 << " at yield "
            << curve.yields[i];
      }
    }
  }
}

TEST(RequirementCurve, EveryPointSatisfiesTheTarget) {
  const RequirementCurve curve = requirement_curve(0.005, 6.0, 25);
  for (std::size_t i = 0; i < curve.yields.size(); ++i) {
    EXPECT_LE(field_reject_rate(curve.coverages[i], curve.yields[i], 6.0),
              0.005 + 1e-9);
  }
}

}  // namespace
}  // namespace lsiq::quality
