// Tests for the n0 estimators (Section 5), including recovery of known
// parameters from synthetic data and the paper's own Table 1 numbers.
#include "core/estimation.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/reject_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::quality {
namespace {

/// The paper's Table 1: cumulative fraction failed vs fault coverage for
/// 277 chips at yield ~0.07.
std::vector<CoveragePoint> table1_points() {
  return {{0.05, 0.41}, {0.08, 0.48}, {0.10, 0.52}, {0.15, 0.67},
          {0.20, 0.75}, {0.30, 0.82}, {0.36, 0.87}, {0.45, 0.91},
          {0.50, 0.92}, {0.65, 0.93}};
}

/// Noise-free synthetic points from the exact P(f) curve.
std::vector<CoveragePoint> exact_points(double y, double n0) {
  std::vector<CoveragePoint> points;
  for (double f = 0.05; f <= 0.66; f += 0.05) {
    points.push_back({f, reject_fraction(f, y, n0)});
  }
  return points;
}

TEST(SlopeEstimator, PaperSection7Numbers) {
  // Using only the first strobe: P'(0) = 0.41/0.05 = 8.2 and
  // n0 = 8.2 / 0.93 = 8.8 (the paper's numbers).
  const std::vector<CoveragePoint> first = {{0.05, 0.41}};
  const SlopeEstimate e = estimate_n0_slope(first, 0.07);
  EXPECT_NEAR(e.p_prime_zero, 8.2, 1e-9);
  EXPECT_NEAR(e.n0, 8.8, 0.05);
  EXPECT_EQ(e.points_used, 1u);
}

TEST(SlopeEstimator, UsesEarlyStrobesOnly) {
  const SlopeEstimate e = estimate_n0_slope(table1_points(), 0.07, 0.10);
  EXPECT_EQ(e.points_used, 3u);  // strobes at 0.05, 0.08, 0.10
  EXPECT_GT(e.n0, 5.0);
  EXPECT_LT(e.n0, 12.0);
}

TEST(SlopeEstimator, ExactDataUnderestimatesSlightly) {
  // P is concave, so a finite-coverage secant lies below the tangent at 0:
  // the slope estimate from exact data is biased low — the "pessimistic
  // (or safe)" direction the paper notes.
  const SlopeEstimate e =
      estimate_n0_slope(exact_points(0.2, 8.0), 0.2, 0.10);
  EXPECT_LT(e.n0, 8.0);
  EXPECT_GT(e.n0, 5.0);
}

TEST(SlopeEstimator, FallsBackToEarliestStrobe) {
  // No strobe below the cutoff: the earliest one is used alone.
  const std::vector<CoveragePoint> points = {{0.3, 0.6}, {0.5, 0.8}};
  const SlopeEstimate e = estimate_n0_slope(points, 0.0, 0.10);
  EXPECT_NEAR(e.p_prime_zero, 2.0, 1e-12);
  EXPECT_EQ(e.points_used, 1u);
}

TEST(DiscreteFit, PaperFig5SelectsN0EightOrNine) {
  // "The experimental points closely match the curve corresponding to
  // n0 = 8" was an eyeball fit; a numeric SSE fit over the same family
  // lands on 9 because the early strobes sit slightly above the n0 = 8
  // curve (the same feature that made the slope estimate 8.8). Both
  // verdicts are recorded; see EXPERIMENTS.md.
  const int fit = estimate_n0_discrete(table1_points(), 0.07, 12);
  EXPECT_GE(fit, 8);
  EXPECT_LE(fit, 9);
}

TEST(DiscreteFit, PaperRejectsN0ThreeOrFour) {
  // Section 7: "n0 = 3 or 4 produces a P(f) versus f curve that disagrees
  // significantly with the experimental result."
  const auto points = table1_points();
  auto sse = [&](double n0) {
    double total = 0.0;
    for (const auto& p : points) {
      const double e = reject_fraction(p.coverage, 0.07, n0) -
                       p.fraction_failed;
      total += e * e;
    }
    return total;
  };
  EXPECT_GT(sse(3.0), 5.0 * sse(8.0));
  EXPECT_GT(sse(4.0), 3.0 * sse(8.0));
}

TEST(DiscreteFit, RecoversExactInteger) {
  for (const int truth : {2, 5, 9, 12}) {
    const auto points = exact_points(0.3, truth);
    EXPECT_EQ(estimate_n0_discrete(points, 0.3), truth);
  }
}

TEST(LeastSquares, RecoversContinuousTruthFromExactData) {
  for (const double truth : {1.5, 4.2, 8.0, 17.5}) {
    const FitResult fit =
        estimate_n0_least_squares(exact_points(0.25, truth), 0.25);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.n0, truth, 1e-5);
    EXPECT_NEAR(fit.sse, 0.0, 1e-12);
  }
}

TEST(LeastSquares, Table1FitNearEight) {
  const FitResult fit = estimate_n0_least_squares(table1_points(), 0.07);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.n0, 8.0, 1.0);
}

TEST(LeastSquares, RobustToSmallNoise) {
  util::Rng rng(5);
  for (const double truth : {4.0, 8.0}) {
    auto points = exact_points(0.2, truth);
    for (auto& p : points) {
      p.fraction_failed = std::clamp(
          p.fraction_failed + rng.normal(0.0, 0.01), 0.0, 1.0);
    }
    const FitResult fit = estimate_n0_least_squares(points, 0.2);
    EXPECT_NEAR(fit.n0, truth, 1.0);
  }
}

TEST(Mle, RecoversTruthFromLargeSample) {
  // Sample first-fail bins from the exact model and re-estimate.
  const double y = 0.2;
  const double truth = 8.0;
  const std::vector<double> strobes = {0.05, 0.1, 0.2, 0.35, 0.5, 0.65};
  // Cell probabilities P(f_i) - P(f_{i-1}), survivor = 1 - P(f_last).
  std::vector<double> cell(strobes.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < strobes.size(); ++i) {
    cell[i] = reject_fraction(strobes[i], y, truth) - prev;
    prev = reject_fraction(strobes[i], y, truth);
  }
  util::Rng rng(7);
  std::vector<std::size_t> counts(strobes.size(), 0);
  std::size_t passed = 0;
  const int chips = 100000;
  for (int c = 0; c < chips; ++c) {
    double u = rng.uniform();
    bool binned = false;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      if (u < cell[i]) {
        ++counts[i];
        binned = true;
        break;
      }
      u -= cell[i];
    }
    if (!binned) ++passed;
  }
  const MleResult result = estimate_n0_mle(strobes, counts, passed, y);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.n0, truth, 0.2);
}

TEST(Mle, DomainChecks) {
  EXPECT_THROW(estimate_n0_mle({}, {}, 0, 0.2), ContractViolation);
  EXPECT_THROW(estimate_n0_mle({0.2, 0.1}, {1, 1}, 0, 0.2),
               ContractViolation);
  EXPECT_THROW(estimate_n0_mle({0.1}, {1, 2}, 0, 0.2), ContractViolation);
}

TEST(JointFit, RecoversBothParametersFromExactData) {
  const double y_truth = 0.25;
  const double n0_truth = 7.0;
  std::vector<CoveragePoint> points;
  for (double f = 0.02; f <= 0.9; f += 0.04) {
    points.push_back({f, reject_fraction(f, y_truth, n0_truth)});
  }
  const JointFit fit = estimate_yield_and_n0(points);
  EXPECT_NEAR(fit.yield, y_truth, 0.01);
  EXPECT_NEAR(fit.n0, n0_truth, 0.3);
  EXPECT_NEAR(fit.sse, 0.0, 1e-10);
}

TEST(JointFit, Table1GivesPlausibleYield) {
  const JointFit fit = estimate_yield_and_n0(table1_points());
  // The plateau at 0.93 implies a yield near 0.07.
  EXPECT_NEAR(fit.yield, 0.07, 0.03);
  EXPECT_NEAR(fit.n0, 8.0, 2.0);
}

TEST(Bootstrap, IntervalCoversTruthOnSyntheticLot) {
  // Sample a 277-chip lot from the exact model and check the bootstrap CI
  // brackets both the point estimate and the generating n0.
  const double y = 0.07;
  const double truth = 8.0;
  const std::vector<double> strobes = {0.05, 0.1, 0.2, 0.35, 0.5, 0.65};
  std::vector<double> cell(strobes.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < strobes.size(); ++i) {
    cell[i] = reject_fraction(strobes[i], y, truth) - prev;
    prev = reject_fraction(strobes[i], y, truth);
  }
  util::Rng rng(19);
  std::vector<std::size_t> counts(strobes.size(), 0);
  std::size_t passed = 0;
  for (int chip = 0; chip < 277; ++chip) {
    double u = rng.uniform();
    bool binned = false;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      if (u < cell[i]) {
        ++counts[i];
        binned = true;
        break;
      }
      u -= cell[i];
    }
    if (!binned) ++passed;
  }

  const BootstrapInterval interval =
      bootstrap_n0_interval(strobes, counts, passed, y, 200, 0.95, 7);
  EXPECT_LT(interval.lower, interval.point);
  EXPECT_GT(interval.upper, interval.point);
  EXPECT_LE(interval.lower, truth + 0.5);
  EXPECT_GE(interval.upper, truth - 0.5);
  // A 277-chip lot cannot pin n0 tighter than roughly +-1.
  EXPECT_GT(interval.upper - interval.lower, 0.5);
  EXPECT_LT(interval.upper - interval.lower, 8.0);
}

TEST(Bootstrap, IntervalShrinksWithLotSize) {
  const double y = 0.2;
  const double truth = 6.0;
  const std::vector<double> strobes = {0.05, 0.15, 0.3, 0.5, 0.7};
  auto make_counts = [&](std::size_t chips, std::vector<std::size_t>& counts,
                         std::size_t& passed) {
    counts.assign(strobes.size(), 0);
    passed = 0;
    double prev = 0.0;
    std::vector<double> cumulative(strobes.size());
    for (std::size_t i = 0; i < strobes.size(); ++i) {
      cumulative[i] = reject_fraction(strobes[i], y, truth);
      counts[i] = static_cast<std::size_t>(
          std::lround((cumulative[i] - prev) * static_cast<double>(chips)));
      prev = cumulative[i];
    }
    std::size_t failed = 0;
    for (const std::size_t c : counts) failed += c;
    passed = chips - failed;
  };

  std::vector<std::size_t> counts;
  std::size_t passed = 0;
  make_counts(100, counts, passed);
  const BootstrapInterval small =
      bootstrap_n0_interval(strobes, counts, passed, y, 150, 0.95, 3);
  make_counts(5000, counts, passed);
  const BootstrapInterval large =
      bootstrap_n0_interval(strobes, counts, passed, y, 150, 0.95, 3);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(Bootstrap, DomainChecks) {
  EXPECT_THROW(bootstrap_n0_interval({}, {}, 10, 0.2), ContractViolation);
  EXPECT_THROW(bootstrap_n0_interval({0.1}, {5}, 5, 0.2, 5),
               ContractViolation);  // too few replicates
  EXPECT_THROW(bootstrap_n0_interval({0.1}, {0}, 0, 0.2),
               ContractViolation);  // empty lot
}

TEST(Estimators, RejectEmptyOrMalformedPoints) {
  EXPECT_THROW(estimate_n0_slope({}, 0.1), ContractViolation);
  EXPECT_THROW(estimate_n0_discrete({}, 0.1), ContractViolation);
  EXPECT_THROW(
      estimate_n0_least_squares({CoveragePoint{1.5, 0.5}}, 0.1),
      ContractViolation);
}

}  // namespace
}  // namespace lsiq::quality
