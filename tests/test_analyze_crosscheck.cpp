// The soundness contract of the static analyzer, cross-checked against
// PODEM: every statically-proven-untestable fault site must be confirmed
// redundant by the decision procedure (untestable_sites ⊆ PODEM
// kUntestable on the collapsed universe), and where redundancy comes ONLY
// from tied constants the two must agree exactly. The converse direction
// is still not claimed in full, but the implication engine closed the
// classic gap: the last test is the reconvergent miss PR 7 pinned, now
// flipped to a positive detection (the remaining frontier lives in
// test_implication_crosscheck.cpp).
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "analyze/analyze.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault.hpp"
#include "fault/fault_list.hpp"
#include "tpg/podem.hpp"

namespace lsiq::analyze {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;

using FaultKey = std::tuple<circuit::GateId, std::int32_t, bool>;

FaultKey key(const fault::Fault& fault) {
  return {fault.gate, fault.pin, fault.stuck_at_one};
}

/// PODEM verdict per collapsed class of the full stuck-at universe.
std::vector<tpg::TestStatus> podem_verdicts(const Circuit& circuit,
                                            const fault::FaultList& faults) {
  std::vector<tpg::TestStatus> verdicts;
  verdicts.reserve(faults.class_count());
  for (const fault::Fault& fault : faults.representatives()) {
    verdicts.push_back(tpg::generate_test(circuit, fault).status);
  }
  return verdicts;
}

/// Every analyzer-untestable site, mapped through the collapsing tables
/// onto its class, must have a PODEM kUntestable verdict: equivalent
/// faults share their detecting pattern set, so proving the class
/// representative redundant proves the site.
void expect_sites_subset_of_podem(const Circuit& circuit,
                                  const Report& report) {
  const fault::FaultList faults = fault::FaultList::full_universe(circuit);
  const std::vector<tpg::TestStatus> verdicts =
      podem_verdicts(circuit, faults);
  for (const fault::Fault& site : report.untestable_sites) {
    const std::size_t index = faults.index_of(site);
    ASSERT_LT(index, faults.fault_count())
        << fault::fault_name(circuit, site);
    EXPECT_EQ(verdicts[faults.class_of(index)], tpg::TestStatus::kUntestable)
        << "analyzer claims untestable but PODEM found a test for "
        << fault::fault_name(circuit, site);
  }
}

TEST(AnalyzeCrosscheck, ConstantFedCircuitAgreesExactly) {
  // Redundancy here comes ONLY from tied constants, so the structural
  // pass must find every PODEM-redundant class — not just a subset.
  Circuit c("tied_cone");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId t0 = c.add_gate(GateType::kConst0, {}, "tie0");
  const GateId x = c.add_gate(GateType::kOr, {a, t0}, "x");
  const GateId m = c.add_gate(GateType::kAnd, {x, t0}, "m");
  const GateId out = c.add_gate(GateType::kOr, {m, b}, "out");
  c.mark_output(out);
  c.finalize();

  const Report report = analyze(c);
  ASSERT_TRUE(report.structure_ok);
  ASSERT_FALSE(report.untestable_sites.empty());
  expect_sites_subset_of_podem(c, report);

  // Exact agreement: every class PODEM proves redundant contains at
  // least one analyzer site, and every class with an analyzer site is
  // PODEM-redundant.
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const std::vector<tpg::TestStatus> verdicts = podem_verdicts(c, faults);
  std::set<std::size_t> flagged_classes;
  for (const fault::Fault& site : report.untestable_sites) {
    flagged_classes.insert(faults.class_of(faults.index_of(site)));
  }
  for (std::size_t i = 0; i < faults.class_count(); ++i) {
    const bool redundant = verdicts[i] == tpg::TestStatus::kUntestable;
    EXPECT_EQ(flagged_classes.count(i) != 0, redundant)
        << "class of "
        << fault::fault_name(c, faults.representatives()[i]);
  }
}

TEST(AnalyzeCrosscheck, BlockedConeSitesAreAllPodemRedundant) {
  // Observation-side untestability: a whole cone dies behind an AND tied
  // to 0. Activation on the cone's lines is easy, so these sites exercise
  // the propagation half of the proof.
  Circuit c("masked_cone");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId p = c.add_input("p");
  const GateId t0 = c.add_gate(GateType::kConst0, {}, "tie0");
  const GateId x = c.add_gate(GateType::kXor, {a, b}, "x");
  const GateId y = c.add_gate(GateType::kAnd, {x, t0}, "y");
  const GateId out = c.add_gate(GateType::kOr, {y, p}, "out");
  c.mark_output(out);
  c.finalize();

  const Report report = analyze(c);
  ASSERT_TRUE(report.structure_ok);
  // x, a-branch, b-branch faults (both polarities) are all unobservable.
  std::set<FaultKey> sites;
  for (const fault::Fault& site : report.untestable_sites) {
    sites.insert(key(site));
  }
  EXPECT_TRUE(sites.count({x, -1, false}) != 0);
  EXPECT_TRUE(sites.count({x, -1, true}) != 0);
  expect_sites_subset_of_podem(c, report);
}

TEST(AnalyzeCrosscheck, GeneratorCircuitsHoldTheSubsetContract) {
  // Healthy generator circuits have no tied constants: the analyzer must
  // find nothing, and PODEM agrees there is nothing constant-driven.
  for (const Circuit& c : {circuit::make_c17(), circuit::make_alu(2)}) {
    SCOPED_TRACE(c.name());
    const Report report = analyze(c);
    EXPECT_TRUE(report.untestable_sites.empty());
    expect_sites_subset_of_podem(c, report);
  }
}

TEST(AnalyzeCrosscheck, ReconvergentRedundancyCaughtByImplicationProver) {
  // y = a AND (NOT a) is constant 0 through reconvergence, not through a
  // tied input. The forward/backward structural sweep cannot see it — an
  // earlier revision pinned exactly this miss — but the implication
  // engine's contradiction probe proves y an implied constant, so the
  // analyzer now reports y s-a-0 with the untestable_implication rule.
  Circuit c("reconvergent");
  const GateId a = c.add_input("a");
  const GateId n = c.add_gate(GateType::kNot, {a}, "n");
  const GateId y = c.add_gate(GateType::kAnd, {a, n}, "y");
  const GateId b = c.add_input("b");
  const GateId out = c.add_gate(GateType::kOr, {y, b}, "out");
  c.mark_output(out);
  c.finalize();

  const Report report = analyze(c);
  std::set<FaultKey> sites;
  for (const fault::Fault& site : report.untestable_sites) {
    sites.insert(key(site));
  }
  EXPECT_TRUE(sites.count({y, -1, false}) != 0)
      << "implication prover missed the reconvergent constant on y";
  // The finding is attributed to the implication rule, not the structural
  // one (tied constants played no part here).
  bool implication_diagnostic = false;
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.rule == Rule::kUntestableImplication &&
        diagnostic.gate == y) {
      implication_diagnostic = true;
    }
  }
  EXPECT_TRUE(implication_diagnostic);

  const fault::Fault stuck0{y, -1, false};
  const tpg::PodemResult proof = tpg::generate_test(c, stuck0);
  EXPECT_EQ(proof.status, tpg::TestStatus::kUntestable);
  // Every flagged site — structural or implication-proven — must still be
  // confirmed by the decision procedure.
  expect_sites_subset_of_podem(c, report);
}

}  // namespace
}  // namespace lsiq::analyze
