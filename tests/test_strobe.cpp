// Tests for tester strobe schedules and their effect on fault simulation.
#include "fault/strobe.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "circuit/generators.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"

namespace lsiq::fault {
namespace {

using circuit::Circuit;
using circuit::GateId;
using circuit::GateType;
using sim::PatternSet;

TEST(StrobeSchedule, FullStrobesEverythingFromPatternZero) {
  const StrobeSchedule s = StrobeSchedule::full(4);
  EXPECT_TRUE(s.is_full());
  EXPECT_EQ(s.point_count(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(s.strobed(p, 0));
    EXPECT_EQ(s.lane_mask(p, 0), ~0ULL);
    EXPECT_EQ(s.lane_mask(p, 5), ~0ULL);
  }
}

TEST(StrobeSchedule, ProgressiveStartPatterns) {
  const StrobeSchedule s = StrobeSchedule::progressive(3, 10);
  EXPECT_FALSE(s.is_full());
  EXPECT_TRUE(s.strobed(0, 0));
  EXPECT_FALSE(s.strobed(1, 9));
  EXPECT_TRUE(s.strobed(1, 10));
  EXPECT_FALSE(s.strobed(2, 19));
  EXPECT_TRUE(s.strobed(2, 20));
}

TEST(StrobeSchedule, LaneMaskBlockBoundaries) {
  const StrobeSchedule s =
      StrobeSchedule::from_start_patterns({0, 10, 64, 100});
  // Point 0: always on.
  EXPECT_EQ(s.lane_mask(0, 0), ~0ULL);
  // Point 1: on from pattern 10 -> block 0 mask clears lanes 0..9.
  EXPECT_EQ(s.lane_mask(1, 0), ~0ULL << 10);
  EXPECT_EQ(s.lane_mask(1, 1), ~0ULL);
  // Point 2: on from pattern 64 -> block 0 fully off, block 1 fully on.
  EXPECT_EQ(s.lane_mask(2, 0), 0u);
  EXPECT_EQ(s.lane_mask(2, 1), ~0ULL);
  // Point 3: on from pattern 100 -> block 1 mask clears lanes 0..35.
  EXPECT_EQ(s.lane_mask(3, 1), ~0ULL << 36);
}

TEST(StrobeSchedule, ConsistencyBetweenStrobedAndLaneMask) {
  const StrobeSchedule s = StrobeSchedule::progressive(5, 7);
  for (std::size_t point = 0; point < 5; ++point) {
    for (std::size_t pattern = 0; pattern < 128; ++pattern) {
      const bool by_mask =
          ((s.lane_mask(point, pattern / 64) >> (pattern % 64)) & 1) != 0;
      EXPECT_EQ(by_mask, s.strobed(point, pattern))
          << "point " << point << " pattern " << pattern;
    }
  }
}

TEST(StrobeSchedule, LaneMaskAtExactBlockBoundary) {
  // offset == start - block_first lands exactly on 64 when the start
  // pattern is the first lane of the NEXT block; `~0ULL << 64` is
  // undefined behaviour, so this boundary must resolve to the all-off
  // mask, not a shift.
  const StrobeSchedule s = StrobeSchedule::from_start_patterns({64, 128});
  EXPECT_EQ(s.lane_mask(0, 0), 0u);    // offset = 64 - 0  = 64: all off
  EXPECT_EQ(s.lane_mask(0, 1), ~0ULL); // start <= block_first: all on
  EXPECT_EQ(s.lane_mask(1, 1), 0u);    // offset = 128 - 64 = 64: all off
  EXPECT_EQ(s.lane_mask(1, 2), ~0ULL);
  // One pattern either side of the boundary.
  const StrobeSchedule t = StrobeSchedule::from_start_patterns({63, 65});
  EXPECT_EQ(t.lane_mask(0, 0), ~0ULL << 63);  // only lane 63 on
  EXPECT_EQ(t.lane_mask(0, 1), ~0ULL);
  EXPECT_EQ(t.lane_mask(1, 0), 0u);
  EXPECT_EQ(t.lane_mask(1, 1), ~0ULL << 1);   // lane 0 of block 1 off
}

TEST(StrobeSchedule, ProgressiveOverflowRejected) {
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  const std::size_t half = max / 2;  // 2 * half fits, 3 * half wraps
  EXPECT_THROW(StrobeSchedule::progressive(4, half), ContractViolation);
  EXPECT_THROW(StrobeSchedule::progressive(3, max), ContractViolation);
  // Still-legal extremes: one point never overflows, step 0 never
  // overflows, and the largest representable products are accepted
  // ((point_count - 1) * step == max exactly).
  EXPECT_NO_THROW(StrobeSchedule::progressive(1, max));
  EXPECT_NO_THROW(StrobeSchedule::progressive(3, 0));
  EXPECT_NO_THROW(StrobeSchedule::progressive(2, max));
  EXPECT_NO_THROW(StrobeSchedule::progressive(3, half));
}

TEST(StrobeSchedule, DomainChecks) {
  EXPECT_THROW(StrobeSchedule::full(0), ContractViolation);
  EXPECT_THROW(StrobeSchedule::from_start_patterns({}), ContractViolation);
  const StrobeSchedule s = StrobeSchedule::full(2);
  EXPECT_THROW((void)s.strobed(2, 0), ContractViolation);
  EXPECT_THROW((void)s.lane_mask(2, 0), ContractViolation);
}

TEST(StrobedFaultSim, FullScheduleMatchesUnscheduled) {
  const Circuit c = circuit::make_alu(3);
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 150, 5);
  const StrobeSchedule schedule =
      StrobeSchedule::full(c.observed_points().size());

  const FaultSimResult plain = simulate_ppsfp(faults, patterns);
  const FaultSimResult scheduled =
      simulate_ppsfp(faults, patterns, &schedule);
  EXPECT_EQ(plain.first_detection, scheduled.first_detection);
}

TEST(StrobedFaultSim, SerialMatchesPpsfpUnderSchedule) {
  circuit::RandomDagSpec spec;
  spec.inputs = 10;
  spec.gates = 120;
  spec.seed = 321;
  const Circuit c = make_random_dag(spec);
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 150, 9);
  const StrobeSchedule schedule =
      StrobeSchedule::progressive(c.observed_points().size(), 13);

  const FaultSimResult serial =
      simulate_serial(faults, patterns, &schedule);
  const FaultSimResult ppsfp = simulate_ppsfp(faults, patterns, &schedule);
  ASSERT_EQ(serial.first_detection.size(), ppsfp.first_detection.size());
  for (std::size_t cl = 0; cl < serial.first_detection.size(); ++cl) {
    EXPECT_EQ(serial.first_detection[cl], ppsfp.first_detection[cl])
        << fault_name(c, faults.representatives()[cl]);
  }
}

TEST(StrobedFaultSim, SchedulingOnlyDelaysDetection) {
  const Circuit c = circuit::make_ripple_carry_adder(6);
  const FaultList faults = FaultList::full_universe(c);
  const PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 200, 3);
  const StrobeSchedule schedule =
      StrobeSchedule::progressive(c.observed_points().size(), 17);

  const FaultSimResult plain = simulate_ppsfp(faults, patterns);
  const FaultSimResult scheduled =
      simulate_ppsfp(faults, patterns, &schedule);
  for (std::size_t cl = 0; cl < plain.first_detection.size(); ++cl) {
    if (scheduled.first_detection[cl] >= 0) {
      ASSERT_GE(plain.first_detection[cl], 0);
      EXPECT_GE(scheduled.first_detection[cl], plain.first_detection[cl]);
    }
  }
  EXPECT_LE(scheduled.covered_faults, plain.covered_faults);
}

TEST(StrobedFaultSim, SingleObservedPointConfinesDetection) {
  // Two independent cones; only the first output is ever strobed, so
  // faults in the second cone go undetected.
  Circuit c("cones");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId y0 = c.add_gate(GateType::kNot, {a}, "y0");
  const GateId y1 = c.add_gate(GateType::kNot, {b}, "y1");
  c.mark_output(y0);
  c.mark_output(y1);
  c.finalize();
  const FaultList faults = FaultList::full_universe(c);

  PatternSet patterns(2);
  patterns.append({false, false});
  patterns.append({true, true});
  // Point 1 (y1) starts beyond the end of the program.
  const StrobeSchedule schedule =
      StrobeSchedule::from_start_patterns({0, 1000});
  const FaultSimResult r = simulate_ppsfp(faults, patterns, &schedule);

  const std::size_t y0_sa0 =
      faults.class_of(faults.index_of(Fault{y0, -1, false}));
  const std::size_t y1_sa0 =
      faults.class_of(faults.index_of(Fault{y1, -1, false}));
  EXPECT_GE(r.first_detection[y0_sa0], 0);
  EXPECT_EQ(r.first_detection[y1_sa0], -1);
}

TEST(StrobedFaultSim, DffPinFaultRespectsSchedule) {
  // The pseudo primary output of a flip-flop follows the schedule too.
  Circuit c("scan");
  const GateId a = c.add_input("a");
  const GateId ff = c.add_dff("ff");
  const GateId d = c.add_gate(GateType::kBuf, {a}, "d");
  c.connect_dff(ff, d);
  const GateId out = c.add_gate(GateType::kBuf, {ff}, "out");
  c.mark_output(out);
  c.finalize();

  const FaultList faults = FaultList::full_universe(c);
  const std::size_t cls =
      faults.class_of(faults.index_of(Fault{ff, 0, false}));

  PatternSet patterns(2);
  for (int i = 0; i < 6; ++i) {
    patterns.append({true, false});  // a=1: good D = 1 differs from s-a-0
  }
  // Observed points: PO `out` (index 0) and ff's D capture (index 1).
  // Delay the scan capture until pattern 4.
  const StrobeSchedule schedule =
      StrobeSchedule::from_start_patterns({0, 4});
  const FaultSimResult r = simulate_ppsfp(faults, patterns, &schedule);
  EXPECT_EQ(r.first_detection[cls], 4);
  const FaultSimResult rs = simulate_serial(faults, patterns, &schedule);
  EXPECT_EQ(rs.first_detection[cls], 4);
}

TEST(StrobedFaultSim, WrongPointCountRejected) {
  const Circuit c = circuit::make_c17();
  const FaultList faults = FaultList::full_universe(c);
  PatternSet patterns(5);
  patterns.append({true, false, true, false, true});
  const StrobeSchedule bad = StrobeSchedule::full(1);  // c17 has 2 outputs
  EXPECT_THROW(simulate_ppsfp(faults, patterns, &bad), ContractViolation);
}

}  // namespace
}  // namespace lsiq::fault
