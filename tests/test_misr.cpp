// Unit tests for the multi-input signature register.
#include "bist/misr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "tpg/lfsr.hpp"
#include "util/error.hpp"

namespace lsiq::bist {
namespace {

TEST(Misr, ConstructionAndDomainChecks) {
  const Misr m(16);
  EXPECT_EQ(m.width(), 16);
  EXPECT_EQ(m.taps(), tpg::maximal_taps(16));
  EXPECT_EQ(m.signature(), 0u);

  EXPECT_THROW(Misr(0), ContractViolation);
  EXPECT_THROW(Misr(-3), ContractViolation);
  EXPECT_THROW(Misr(65), ContractViolation);
  // Width without a standard polynomial requires explicit taps.
  EXPECT_THROW(Misr(5), Error);
  EXPECT_NO_THROW(Misr(5, 0x14));
  // Taps wider than the register are rejected.
  EXPECT_THROW(Misr(8, 0x100), ContractViolation);
}

TEST(Misr, StepMatchesHandComputedGaloisShift) {
  // Width 8, taps 0xB8 (the Lfsr table). From state 1: the shifted-out
  // bit is 1, so the register becomes (1 >> 1) ^ 0xB8 = 0xB8, then the
  // compacted input XORs in.
  Misr m(8);
  m.reset(1);
  m.step(0x00);
  EXPECT_EQ(m.signature(), 0xB8u);
  // 0xB8 has lsb 0: plain shift to 0x5C, then ^ 0x21.
  m.step(0x21);
  EXPECT_EQ(m.signature(), 0x7Du);
}

TEST(Misr, ZeroStateIsFixedOnlyWithoutInput) {
  Misr m(16);
  m.step(0);
  EXPECT_EQ(m.signature(), 0u);  // no error, no divergence
  m.step(1);
  EXPECT_NE(m.signature(), 0u);  // any input bit perturbs the register
}

TEST(Misr, NonZeroStateStaysNonZeroWithoutInput) {
  // The Galois transition is invertible, so a diverged signature cannot
  // fold back onto the good one unless a later error cancels it: aliasing
  // requires error activity, never mere waiting.
  Misr m(8);
  std::uint64_t s = 1;
  for (int i = 0; i < 1000; ++i) {
    s = m.next(s, 0);
    ASSERT_NE(s, 0u);
  }
}

TEST(Misr, DefaultPolynomialsAreMaximalLength) {
  // The shift sequence from state 1 must visit every non-zero state
  // before returning: period 2^w - 1. Brute-forceable for the small
  // widths the aliasing experiments use.
  for (const int width : {4, 8, 16}) {
    const Misr m(width);
    const std::uint64_t start = 1;
    std::uint64_t s = start;
    std::uint64_t period = 0;
    do {
      s = m.next(s, 0);
      ++period;
    } while (s != start);
    EXPECT_EQ(period, (1ULL << width) - 1) << "width " << width;
  }
}

TEST(Misr, TransitionIsLinearOverGf2) {
  // next(a ^ b, ca ^ cb) == next(a, ca) ^ next(b, cb) — the property the
  // session's difference-signature grading rests on.
  const Misr m(16);
  std::uint64_t a = 0xACE1, b = 0x1234, ca = 0x0F0F, cb = 0x8001;
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.next(a ^ b, ca ^ cb), m.next(a, ca) ^ m.next(b, cb));
    a = m.next(a, ca);
    b = m.next(b, cb);
    ca = (ca << 1) | (ca >> 15);
    cb ^= a;
  }
}

TEST(Misr, InputBitFoldsPointsModuloWidth) {
  const Misr m(4);
  EXPECT_EQ(m.input_bit(0), 1ULL << 0);
  EXPECT_EQ(m.input_bit(3), 1ULL << 3);
  EXPECT_EQ(m.input_bit(4), 1ULL << 0);  // wraps onto stage 0
  EXPECT_EQ(m.input_bit(7), 1ULL << 3);
  // Two points on one stage cancel: the space-compaction aliasing source.
  EXPECT_EQ(m.input_bit(1) ^ m.input_bit(5), 0u);
}

TEST(Misr, SignatureStaysInsideTheRegisterWidth) {
  Misr m(4);
  for (int i = 0; i < 100; ++i) {
    m.step(0xFFFFFFFFFFFFFFFFULL);  // over-wide input is masked
    EXPECT_LT(m.signature(), 16u);
  }
}

TEST(AliasingModel, ProbabilityIsTwoToMinusK) {
  EXPECT_DOUBLE_EQ(misr_aliasing_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(misr_aliasing_probability(4), 0.0625);
  EXPECT_DOUBLE_EQ(misr_aliasing_probability(16), 1.0 / 65536.0);
  EXPECT_DOUBLE_EQ(misr_aliasing_probability(32),
                   1.0 / 4294967296.0);
  EXPECT_THROW(misr_aliasing_probability(0), ContractViolation);
  EXPECT_THROW(misr_aliasing_probability(65), ContractViolation);
}

TEST(AliasingModel, ExpectedSignatureCoverage) {
  EXPECT_DOUBLE_EQ(expected_signature_coverage(0.0, 16), 0.0);
  EXPECT_DOUBLE_EQ(expected_signature_coverage(0.8, 4), 0.8 * 0.9375);
  EXPECT_NEAR(expected_signature_coverage(1.0, 32), 1.0, 1e-9);
  EXPECT_THROW(expected_signature_coverage(1.5, 16), ContractViolation);
}

}  // namespace
}  // namespace lsiq::bist
