// Unit and distribution tests for util/rng.
//
// The samplers back every Monte-Carlo experiment in the repository, so the
// moments and a few exact-pmf comparisons are verified here with tolerances
// sized for the fixed sample counts (all tests are deterministic).
#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace lsiq::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  // SplitMix64 seeding guarantees a non-degenerate state even for seed 0.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(rng.next_u64());
  }
  EXPECT_GE(seen.size(), 31u);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformBelowCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_below(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 10.0, 5.0 * std::sqrt(draws));
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Rng, UniformBelowRejectsZero) {
  Rng rng(17);
  EXPECT_THROW(rng.uniform_below(0), ContractViolation);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(19);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(Rng, NormalAffineParameters) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceEqualLambda) {
  const double lambda = GetParam();
  Rng rng(37);
  RunningStats stats;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    stats.add(static_cast<double>(rng.poisson(lambda)));
  }
  const double tol = 6.0 * std::sqrt(lambda / draws) + 0.02;
  EXPECT_NEAR(stats.mean(), lambda, lambda * 0.03 + tol);
  EXPECT_NEAR(stats.variance(), lambda, lambda * 0.06 + tol);
}

// Spans the Knuth (< 30) and PTRS (>= 30) regimes including the boundary.
INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 7.0, 29.5, 30.5, 100.0,
                                           400.0));

TEST(Rng, PoissonZeroMeanIsAlwaysZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0u);
  }
}

TEST(Rng, PoissonSmallMeanPmfAtZero) {
  // P(0) = e^-lambda; spot-check the sampler against the exact pmf.
  Rng rng(43);
  const double lambda = 2.0;
  int zeros = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    if (rng.poisson(lambda) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / draws, std::exp(-lambda), 0.005);
}

class GammaMoments
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMoments, MeanAndVariance) {
  const auto [shape, scale] = GetParam();
  Rng rng(47);
  RunningStats stats;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    stats.add(rng.gamma(shape, scale));
  }
  EXPECT_NEAR(stats.mean(), shape * scale, shape * scale * 0.03);
  EXPECT_NEAR(stats.variance(), shape * scale * scale,
              shape * scale * scale * 0.08);
}

// shape < 1 exercises the boost path; shape >= 1 the Marsaglia-Tsang core.
INSTANTIATE_TEST_SUITE_P(
    ShapeRegimes, GammaMoments,
    ::testing::Values(std::make_pair(0.5, 2.0), std::make_pair(1.0, 1.0),
                      std::make_pair(3.0, 0.5), std::make_pair(20.0, 0.1)));

TEST(Rng, NegativeBinomialMomentsMatchGammaPoissonMixture) {
  // mean = m, variance = m + m^2/shape.
  Rng rng(53);
  const double mean = 4.0;
  const double shape = 2.0;
  RunningStats stats;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    stats.add(static_cast<double>(rng.negative_binomial(mean, shape)));
  }
  EXPECT_NEAR(stats.mean(), mean, 0.1);
  EXPECT_NEAR(stats.variance(), mean + mean * mean / shape, 0.4);
}

TEST(Rng, NegativeBinomialLargeShapeApproachesPoisson) {
  Rng rng(59);
  const double mean = 5.0;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(rng.negative_binomial(mean, 1e6)));
  }
  EXPECT_NEAR(stats.variance(), mean, 0.2);  // Poisson: variance == mean
}

TEST(Rng, HypergeometricRangeAndMean) {
  Rng rng(61);
  const std::uint64_t population = 100;
  const std::uint64_t successes = 30;
  const std::uint64_t draws_per_trial = 20;
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k =
        rng.hypergeometric(population, successes, draws_per_trial);
    EXPECT_LE(k, draws_per_trial);
    EXPECT_LE(k, successes);
    stats.add(static_cast<double>(k));
  }
  // E[k] = draws * successes / population = 6.
  EXPECT_NEAR(stats.mean(), 6.0, 0.05);
}

TEST(Rng, HypergeometricExhaustiveDraw) {
  Rng rng(67);
  // Drawing the whole urn must return exactly the success count.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.hypergeometric(10, 4, 10), 4u);
  }
}

TEST(Rng, HypergeometricZeroDraws) {
  Rng rng(71);
  EXPECT_EQ(rng.hypergeometric(10, 4, 0), 0u);
}

TEST(Rng, HypergeometricRejectsBadArguments) {
  Rng rng(73);
  EXPECT_THROW(rng.hypergeometric(10, 11, 5), ContractViolation);
  EXPECT_THROW(rng.hypergeometric(10, 5, 11), ContractViolation);
}

TEST(Rng, SampleWithoutReplacementProducesDistinctInRange) {
  Rng rng(79);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto v : sample) {
      EXPECT_LT(v, 50u);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(83);
  const auto sample = rng.sample_without_replacement(8, 8);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, SampleWithoutReplacementIsApproximatelyUniform) {
  Rng rng(89);
  std::vector<int> counts(20, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (const auto v : rng.sample_without_replacement(20, 5)) {
      ++counts[v];
    }
  }
  // Each element appears with probability 5/20 = 0.25.
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(97);
  Rng child = parent.split();
  // Crude decorrelation check: matching outputs should be essentially absent.
  int matches = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(101);
  std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, original);
}

}  // namespace
}  // namespace lsiq::util
