// Tests for the central closed forms (Eq. 6-11): identities, monotonicity
// properties, agreement of the closed forms with the exact sums, and the
// gamma-mixed extension limits.
#include "core/reject_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace lsiq::quality {
namespace {

TEST(EscapeYield, ClosedFormSpotValues) {
  // Ybg = (1-f)(1-y) e^{-(n0-1) f}.
  EXPECT_NEAR(escape_yield(0.0, 0.3, 5.0), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(escape_yield(1.0, 0.3, 5.0), 0.0);
  EXPECT_NEAR(escape_yield(0.5, 0.2, 3.0), 0.5 * 0.8 * std::exp(-1.0),
              1e-12);
}

TEST(EscapeYield, N0OneReducesToWadsackForm) {
  // With exactly one fault per defective chip the exponential vanishes:
  // Ybg = (1-f)(1-y), the Wadsack expression.
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    EXPECT_NEAR(escape_yield(f, 0.4, 1.0), (1.0 - f) * 0.6, 1e-12);
  }
}

TEST(EscapeYield, ExactSumAgreesWithClosedFormForLargeN) {
  // The closed form uses q0 ~ (1-f)^n; with N = 10000 the exact Eq. 6 sum
  // must agree to a small relative error over the paper's parameter range.
  const unsigned N = 10000;
  for (const double y : {0.07, 0.2, 0.8}) {
    for (const double n0 : {2.0, 8.0, 10.0}) {
      for (const double f : {0.05, 0.3, 0.6, 0.9}) {
        const double closed = escape_yield(f, y, n0);
        const double exact = escape_yield_exact(f, y, n0, N);
        EXPECT_NEAR(exact / closed, 1.0, 0.02)
            << "y=" << y << " n0=" << n0 << " f=" << f;
      }
    }
  }
}

TEST(EscapeYield, ExactSumIsBelowClosedForm) {
  // (1-f)^n overestimates q0, so the closed form overestimates Ybg.
  const unsigned N = 2000;
  for (const double f : {0.2, 0.5, 0.8}) {
    EXPECT_LT(escape_yield_exact(f, 0.2, 10.0, N),
              escape_yield(f, 0.2, 10.0));
  }
}

TEST(FieldRejectRate, UntestedLotRejectRateIsDefectRate) {
  // r(0) = 1 - y: shipping untested product.
  for (const double y : {0.07, 0.5, 0.9}) {
    EXPECT_NEAR(field_reject_rate(0.0, y, 6.0), 1.0 - y, 1e-12);
  }
}

TEST(FieldRejectRate, FullCoverageShipsCleanly) {
  for (const double y : {0.07, 0.5}) {
    EXPECT_DOUBLE_EQ(field_reject_rate(1.0, y, 6.0), 0.0);
  }
}

TEST(FieldRejectRate, MonotoneDecreasingInCoverage) {
  for (const double y : {0.07, 0.2, 0.8}) {
    for (const double n0 : {1.0, 2.0, 8.0}) {
      double prev = 1.0;
      for (double f = 0.0; f <= 1.0 + 1e-12; f += 0.05) {
        const double r = field_reject_rate(std::min(f, 1.0), y, n0);
        EXPECT_LE(r, prev + 1e-15);
        prev = r;
      }
    }
  }
}

TEST(FieldRejectRate, HigherN0LowersRejectAtFixedCoverage) {
  // The paper's central observation: more faults per defective chip means
  // defective chips are easier to catch.
  for (double f = 0.1; f < 1.0; f += 0.2) {
    EXPECT_LT(field_reject_rate(f, 0.2, 10.0),
              field_reject_rate(f, 0.2, 2.0));
  }
}

TEST(FieldRejectRate, HigherYieldLowersReject) {
  for (double f = 0.1; f < 1.0; f += 0.2) {
    EXPECT_LT(field_reject_rate(f, 0.8, 5.0),
              field_reject_rate(f, 0.2, 5.0));
  }
}

TEST(FieldRejectRate, ExactVariantAgreesForLargeN) {
  for (const double f : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(field_reject_rate_exact(f, 0.2, 8.0, 20000),
                field_reject_rate(f, 0.2, 8.0),
                0.02 * field_reject_rate(f, 0.2, 8.0) + 1e-9);
  }
}

TEST(RejectFraction, BoundaryValues) {
  // P(0) = 0 (nothing rejected without tests), P(1) = 1 - y.
  EXPECT_DOUBLE_EQ(reject_fraction(0.0, 0.3, 6.0), 0.0);
  EXPECT_NEAR(reject_fraction(1.0, 0.3, 6.0), 0.7, 1e-12);
}

TEST(RejectFraction, ComplementOfEscapeAndYield) {
  // Identity: P(f) = 1 - y - Ybg(f) (Section 5).
  for (const double f : {0.05, 0.3, 0.7}) {
    for (const double y : {0.07, 0.5}) {
      EXPECT_NEAR(reject_fraction(f, y, 8.0),
                  1.0 - y - escape_yield(f, y, 8.0), 1e-12);
    }
  }
}

TEST(RejectFraction, MonotoneIncreasingInCoverage) {
  double prev = -1.0;
  for (double f = 0.0; f <= 1.0 + 1e-12; f += 0.02) {
    const double p = reject_fraction(std::min(f, 1.0), 0.07, 8.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RejectFractionSlope, Equation10Identity) {
  // P'(0) = (1-y) n0 = n_av.
  EXPECT_NEAR(reject_fraction_slope_at_zero(0.07, 8.0), 0.93 * 8.0, 1e-12);
  EXPECT_NEAR(reject_fraction_slope_at_zero(0.5, 2.0), 1.0, 1e-12);
}

TEST(RejectFractionSlope, MatchesNumericalDerivative) {
  const double y = 0.2;
  const double n0 = 6.0;
  for (const double f : {0.0, 0.1, 0.4, 0.8}) {
    const double h = 1e-7;
    const double numeric =
        (reject_fraction(f + h, y, n0) - reject_fraction(f, y, n0)) / h;
    EXPECT_NEAR(reject_fraction_slope(f, y, n0), numeric, 1e-5);
  }
}

TEST(YieldForRejectRate, InvertsEquation8) {
  // Eq. 11 gives the yield at which coverage f achieves reject r; feeding
  // that yield back into Eq. 8 must return r.
  for (const double n0 : {2.0, 8.0}) {
    for (const double r : {0.01, 0.005, 0.001}) {
      for (const double f : {0.3, 0.6, 0.9}) {
        const double y = yield_for_reject_rate(f, r, n0);
        ASSERT_GT(y, 0.0);
        EXPECT_NEAR(field_reject_rate(f, y, n0), r, 1e-9);
      }
    }
  }
}

TEST(YieldForRejectRate, ZeroCoverageNeedsYieldOneMinusR) {
  // r(0) = 1-y, so the yield achieving r without testing is 1-r.
  EXPECT_NEAR(yield_for_reject_rate(0.0, 0.01, 5.0), 0.99, 1e-9);
}

TEST(MixedModel, AlphaInfinityRecoversPoissonForms) {
  for (const double f : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(escape_yield_mixed(f, 0.2, 8.0, 1e9),
                escape_yield(f, 0.2, 8.0), 1e-6);
    EXPECT_NEAR(field_reject_rate_mixed(f, 0.2, 8.0, 1e9),
                field_reject_rate(f, 0.2, 8.0), 1e-6);
    EXPECT_NEAR(reject_fraction_mixed(f, 0.2, 8.0, 1e9),
                reject_fraction(f, 0.2, 8.0), 1e-6);
  }
}

TEST(MixedModel, HeavierTailRaisesEscapes) {
  // Gamma mixing (small alpha) concentrates faults on fewer chips: more
  // single-fault chips slip through, so escapes rise at fixed f, y, n0.
  for (const double f : {0.3, 0.6, 0.9}) {
    EXPECT_GT(escape_yield_mixed(f, 0.2, 8.0, 0.5),
              escape_yield(f, 0.2, 8.0));
  }
}

TEST(MixedModel, RejectFractionStaysAProbabilityComplement) {
  for (const double f : {0.0, 0.4, 1.0}) {
    const double p = reject_fraction_mixed(f, 0.3, 6.0, 1.5);
    const double ybg = escape_yield_mixed(f, 0.3, 6.0, 1.5);
    EXPECT_NEAR(p, 1.0 - 0.3 - ybg, 1e-12);
  }
}

TEST(RejectModel, DomainChecks) {
  EXPECT_THROW(escape_yield(-0.1, 0.5, 2.0), ContractViolation);
  EXPECT_THROW(escape_yield(0.5, 1.5, 2.0), ContractViolation);
  EXPECT_THROW(escape_yield(0.5, 0.5, 0.5), ContractViolation);
  EXPECT_THROW(yield_for_reject_rate(0.5, 1.0, 2.0), ContractViolation);
  EXPECT_THROW(escape_yield_mixed(0.5, 0.5, 2.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace lsiq::quality
