// Tests for the Wadsack [5] and Williams-Brown baseline models, including
// the paper's Section 7 comparison numbers.
#include "core/baselines.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/reject_model.hpp"
#include "util/error.hpp"

namespace lsiq::quality {
namespace {

TEST(Wadsack, RejectRateIsBilinear) {
  EXPECT_NEAR(wadsack_reject_rate(0.9, 0.07), 0.93 * 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(wadsack_reject_rate(1.0, 0.07), 0.0);
  EXPECT_NEAR(wadsack_reject_rate(0.0, 0.07), 0.93, 1e-12);
}

TEST(Wadsack, PaperSection7RequiredCoverages) {
  // "From this formula, for r = 0.01, y = 0.07, we get f = 99 percent and
  // for r = 0.001, f = 99.9 percent."
  EXPECT_NEAR(wadsack_required_coverage(0.01, 0.07), 0.98925, 1e-4);
  EXPECT_NEAR(wadsack_required_coverage(0.001, 0.07), 0.99892, 1e-4);
}

TEST(Wadsack, RequiredCoverageRoundTrips) {
  for (const double y : {0.07, 0.3, 0.8}) {
    for (const double r : {0.01, 0.001}) {
      const double f = wadsack_required_coverage(r, y);
      EXPECT_NEAR(wadsack_reject_rate(f, y), r, 1e-10);
    }
  }
}

TEST(Wadsack, ClampsWhenTargetIsLoose) {
  // y = 0.995: untested reject rate 0.005 < 0.01 target, so f = 0.
  EXPECT_DOUBLE_EQ(wadsack_required_coverage(0.01, 0.995), 0.0);
}

TEST(Wadsack, RelatesToPoissonModelAtN0One) {
  // With n0 = 1 the models share the same escape yield (1-f)(1-y); they
  // differ only in normalization. Wadsack divides escapes by all chips,
  // Eq. 8 by shipped chips: r_ours = wadsack / (y + wadsack).
  for (const double y : {0.07, 0.3, 0.8}) {
    for (const double f : {0.2, 0.9, 0.99}) {
      const double w = wadsack_reject_rate(f, y);
      EXPECT_NEAR(field_reject_rate(f, y, 1.0), w / (y + w), 1e-12)
          << "y=" << y << " f=" << f;
    }
  }
}

TEST(WilliamsBrown, DefectLevelIdentities) {
  // DL(1) = 0; DL(0) = 1 - y.
  EXPECT_DOUBLE_EQ(williams_brown_defect_level(1.0, 0.3), 0.0);
  EXPECT_NEAR(williams_brown_defect_level(0.0, 0.3), 0.7, 1e-12);
  // Spot value: y = 0.5, f = 0.5 -> 1 - sqrt(0.5).
  EXPECT_NEAR(williams_brown_defect_level(0.5, 0.5),
              1.0 - std::sqrt(0.5), 1e-12);
}

TEST(WilliamsBrown, MonotoneDecreasingInCoverage) {
  double prev = 1.0;
  for (double f = 0.0; f <= 1.0 + 1e-12; f += 0.05) {
    const double dl = williams_brown_defect_level(std::min(f, 1.0), 0.07);
    EXPECT_LE(dl, prev);
    prev = dl;
  }
}

TEST(WilliamsBrown, RequiredCoverageRoundTrips) {
  for (const double y : {0.07, 0.3, 0.8}) {
    for (const double r : {0.01, 0.001}) {
      const double f = williams_brown_required_coverage(r, y);
      EXPECT_NEAR(williams_brown_defect_level(f, y), r, 1e-10);
    }
  }
}

TEST(WilliamsBrown, DemandsEvenMoreThanWadsack) {
  // DL ~ -(1-f) ln(y) while Wadsack's r ~ (1-f)(1-y); since -ln(y) > 1-y,
  // Williams-Brown is the strictest of the single-parameter models.
  for (const double y : {0.07, 0.3, 0.8}) {
    const double wb = williams_brown_required_coverage(0.01, y);
    const double wadsack = wadsack_required_coverage(0.01, y);
    EXPECT_GT(wb, wadsack) << "y=" << y;
  }
  EXPECT_NEAR(williams_brown_required_coverage(0.01, 0.07), 0.9962, 1e-3);
}

TEST(Baselines, ComparisonAtPaperOperatingPoint) {
  // Section 7 headline: with n0 = 8 the Poisson model is satisfied by ~80%
  // coverage, while both baselines predict an order of magnitude worse
  // quality at that same coverage.
  const double ours = field_reject_rate(0.80, 0.07, 8.0);
  EXPECT_NEAR(ours, 0.01, 0.002);
  EXPECT_GT(wadsack_reject_rate(0.80, 0.07), 0.1);
  EXPECT_GT(williams_brown_defect_level(0.80, 0.07), 0.2);
}

TEST(Baselines, DomainChecks) {
  EXPECT_THROW(wadsack_reject_rate(1.5, 0.5), ContractViolation);
  EXPECT_THROW(wadsack_required_coverage(0.01, 1.0), ContractViolation);
  EXPECT_THROW(williams_brown_defect_level(0.5, 0.0), ContractViolation);
  EXPECT_THROW(williams_brown_required_coverage(0.01, 1.0),
               ContractViolation);
}

}  // namespace
}  // namespace lsiq::quality
