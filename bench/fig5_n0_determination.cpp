// Regenerates Fig. 5: the family of P(f) curves for n0 = 1..12 at
// y = 0.07 (Eq. 9), overlaid with the experimental points of the virtual
// 277-chip lot — the graphical n0-determination procedure of Section 5.
//
// The paper concludes the experimental points hug the n0 = 8 curve; the
// same experiment on the virtual line (whose ground truth IS n0 = 8)
// reproduces that conclusion, and the per-curve SSE table quantifies what
// the paper judged by eye — including its remark that n0 = 3 or 4
// "disagrees significantly".
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Figure 5",
                      "determination of n0: P(f) family (n0 = 1..12, "
                      "y = 0.07) + virtual lot data");

  // The P(f) family (the figure's curves), tabulated.
  bench::print_section("P(f) family, y = 0.07 (Eq. 9)");
  std::vector<std::string> headers = {"f"};
  for (int n0 = 1; n0 <= 12; ++n0) {
    headers.push_back("n0=" + std::to_string(n0));
  }
  util::TextTable family(std::move(headers));
  for (double f = 0.05; f <= 1.0001; f += 0.05) {
    std::vector<std::string> row = {util::format_double(f, 2)};
    for (int n0 = 1; n0 <= 12; ++n0) {
      row.push_back(util::format_double(
          quality::reject_fraction(std::min(f, 1.0), 0.07,
                                   static_cast<double>(n0)),
          3));
    }
    family.add_row(std::move(row));
  }
  std::cout << family.to_string();

  // The experimental overlay: same virtual experiment as Table 1, same
  // declarative spec (tools/specs/table1.spec), single-threaded engine.
  const circuit::Circuit chip = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);

  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = 1024;
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 24;  // same tester program as Table 1
  spec.engine.kind = "ppsfp";
  spec.lot.chip_count = 277;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;
  spec.lot.seed = 1981;
  spec.analysis.strobe_coverages = flow::table1_strobes();
  const flow::FlowResult result = flow::run(faults, spec);

  bench::print_section("experimental points (virtual 277-chip lot)");
  util::TextTable points_table({"f", "fraction failed", "P(f; n0=8)"});
  for (const auto& p : result.points()) {
    points_table.add_row(
        {util::format_double(p.coverage, 3),
         util::format_double(p.fraction_failed, 3),
         util::format_double(
             quality::reject_fraction(p.coverage, 0.07, 8.0), 3)});
  }
  std::cout << points_table.to_string();

  // Which curve do the points select? The paper's eyeball judgment,
  // quantified as per-curve SSE.
  bench::print_section("fit quality per candidate n0 (sum of squared errors)");
  const auto points = result.points();
  util::TextTable sse_table({"n0", "SSE", "verdict"});
  double best_sse = 1e300;
  int best_n0 = 1;
  std::vector<double> sse(13, 0.0);
  for (int n0 = 1; n0 <= 12; ++n0) {
    double total = 0.0;
    for (const auto& p : points) {
      const double err =
          quality::reject_fraction(p.coverage, 0.07,
                                   static_cast<double>(n0)) -
          p.fraction_failed;
      total += err * err;
    }
    sse[static_cast<std::size_t>(n0)] = total;
    if (total < best_sse) {
      best_sse = total;
      best_n0 = n0;
    }
  }
  for (int n0 = 1; n0 <= 12; ++n0) {
    std::string verdict;
    if (n0 == best_n0) {
      verdict = "<== best fit";
    } else if (n0 == 3 || n0 == 4) {
      verdict = "paper: 'disagrees significantly'";
    }
    sse_table.add_row({std::to_string(n0),
                       util::format_double(
                           sse[static_cast<std::size_t>(n0)], 4),
                       verdict});
  }
  std::cout << sse_table.to_string();
  std::cout << "\nGround truth of the virtual lot: n0 = 8 (paper's fit: 8; "
               "slope estimate: 8.8).\nBest fit here: n0 = "
            << best_n0 << ".\n";
  return 0;
}
