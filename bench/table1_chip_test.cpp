// Regenerates Table 1 and the Section 7 example end to end, driven by one
// declarative flow spec (the same scenario ships as data in
// tools/specs/table1.spec for the lsiq_flow CLI):
//
//   1. an LSI-scale circuit (16x16 array multiplier) stands in for the
//      paper's ~25,000-transistor chip;
//   2. the spec's source axis orders an LFSR pattern program and its
//      engine axis grades it with the PPSFP fault simulator (the LAMP
//      step), giving the cumulative coverage curve;
//   3. the lot axis manufactures a 277-chip virtual lot with ground truth
//      y = 0.07, n0 = 8 and runs it through the virtual tester (the
//      Sentry step), recording each chip's first failing pattern;
//   4. the Table-1 strobe table is read out at the paper's coverage
//      checkpoints and compared against the published column;
//   5. the Section 7 analysis follows: slope estimate, curve fits,
//      required-coverage conclusions and the Wadsack comparison — plus a
//      validation the 1981 authors could not run: the measured escape rate
//      of the virtual line against Eq. 8.
#include <iostream>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "core/baselines.hpp"
#include "core/coverage_requirement.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Table 1 + Section 7",
                      "virtual chip-test experiment, 277 chips, y = 0.07, "
                      "n0 = 8");

  // The paper's Table 1 for side-by-side comparison.
  struct PaperRow {
    double coverage;
    int failed;
    double fraction;
  };
  const PaperRow paper_rows[] = {
      {0.05, 113, 0.41}, {0.08, 134, 0.48}, {0.10, 144, 0.52},
      {0.15, 186, 0.67}, {0.20, 209, 0.75}, {0.30, 226, 0.82},
      {0.36, 242, 0.87}, {0.45, 251, 0.91}, {0.50, 256, 0.92},
      {0.65, 257, 0.93}};

  // 1: circuit and fault universe.
  const circuit::Circuit chip = circuit::make_array_multiplier(16);
  const circuit::CircuitStats stats = chip.stats();
  const fault::FaultList faults = fault::FaultList::full_universe(chip);

  // 2-4: the whole experiment as one spec (tools/specs/table1.spec).
  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = 1024;
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 24;  // output pin i strobed from pattern 24*i
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;  // one PPSFP worker per hardware thread
  spec.lot.chip_count = 277;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;
  spec.lot.seed = 1981;
  spec.analysis.strobe_coverages = flow::table1_strobes();
  const flow::FlowResult result = flow::run(faults, spec);

  std::cout << "LSI stand-in: " << chip.name() << ", "
            << stats.combinational_gates << " gates, depth " << stats.depth
            << ", fault universe N = " << faults.fault_count() << " ("
            << faults.class_count() << " collapsed classes)\n"
            << "Test program: " << result.patterns.size()
            << " LFSR patterns in tester order, progressive per-pin "
               "strobing\n(functional-program emulation — see "
               "fault/strobe.hpp; this is what makes\nthe coverage curve "
               "rise gradually, as the paper's Table 1 requires)\n";

  bench::print_section("Table 1 — result of chip test (paper vs reproduced)");
  std::cout << "Yield ~ 0.07, total number of chips = 277\n\n";
  util::TextTable table({"coverage", "patterns", "failed (paper)",
                         "failed (ours)", "fraction (paper)",
                         "fraction (ours)"});
  for (std::size_t i = 0; i < result.table.size(); ++i) {
    const wafer::StrobeRow& row = result.table[i];
    const PaperRow& paper = paper_rows[i];
    table.add_row({util::format_percent(row.target_coverage, 0),
                   std::to_string(row.pattern_index),
                   std::to_string(paper.failed),
                   std::to_string(row.cumulative_failed),
                   util::format_double(paper.fraction, 2),
                   util::format_double(row.cumulative_fraction, 2)});
  }
  std::cout << table.to_string();

  // 5: Section 7 analysis on the reproduced data.
  const auto points = result.points();

  bench::print_section("Section 7 — determination of n0");
  const quality::SlopeEstimate slope =
      quality::estimate_n0_slope({points.front()}, spec.lot.yield);
  const int discrete = quality::estimate_n0_discrete(points, spec.lot.yield);
  const quality::FitResult ls =
      quality::estimate_n0_least_squares(points, spec.lot.yield);
  util::TextTable estimates({"method", "paper", "reproduced"});
  estimates.add_row({"P'(0) from first strobe", "8.2",
                     util::format_double(slope.p_prime_zero, 2)});
  estimates.add_row({"n0 via Eq. 10 (slope/0.93)", "8.8",
                     util::format_double(slope.n0, 2)});
  estimates.add_row({"n0, Fig. 5 curve fit", "8", std::to_string(discrete)});
  estimates.add_row({"n0, least squares", "(n/a)",
                     util::format_double(ls.n0, 2)});
  estimates.add_row({"ground truth of virtual lot", "(unknown in 1981)",
                     util::format_double(result.lot->realized_n0(), 2)});
  std::cout << estimates.to_string();

  // Uncertainty the paper could not report: bootstrap CI on n0 from the
  // same 277-chip binned first-fail data.
  {
    std::vector<double> strobes;
    std::vector<std::size_t> bin_counts;
    std::size_t previous = 0;
    for (const wafer::StrobeRow& row : result.table) {
      strobes.push_back(row.actual_coverage);
      bin_counts.push_back(row.cumulative_failed - previous);
      previous = row.cumulative_failed;
    }
    const std::size_t passed = spec.lot.chip_count - previous;
    const quality::BootstrapInterval interval =
        quality::bootstrap_n0_interval(strobes, bin_counts, passed,
                                       spec.lot.yield, 300, 0.95, 1981);
    std::cout << "\nBootstrap (300 replicates): n0 = "
              << util::format_double(interval.point, 2) << ", 95% CI ["
              << util::format_double(interval.lower, 2) << ", "
              << util::format_double(interval.upper, 2)
              << "] — a 277-chip lot pins n0 to roughly +-1.5.\n";
  }

  bench::print_section("Section 7 — required coverage conclusions (n0 = 8)");
  util::TextTable conclusions(
      {"target r", "this model", "Wadsack [5]", "Williams-Brown"});
  for (const double r : {0.01, 0.001}) {
    conclusions.add_row(
        {util::format_probability(r),
         util::format_percent(
             quality::required_fault_coverage(r, spec.lot.yield, 8.0), 1),
         util::format_percent(
             quality::wadsack_required_coverage(r, spec.lot.yield), 1),
         util::format_percent(
             quality::williams_brown_required_coverage(r, spec.lot.yield),
             1)});
  }
  std::cout << conclusions.to_string()
            << "Paper: ~80% (r=1%) and ~95% (r=0.1%) vs Wadsack's 99% and "
               "99.9%.\n";

  bench::print_section(
      "beyond the paper: measured escape rate vs Eq. 8 (50,000-chip lot, "
      "program cut at the 65% strobe)");
  // Ship after the Table 1 program (f ~ 0.65) rather than the full set, so
  // Eq. 8 predicts a reject rate large enough to measure. Same spec, two
  // axes changed: the source becomes the sliced program, the lot grows.
  flow::FlowSpec big = spec;
  big.source = flow::PatternSourceSpec{};
  big.source.kind = "explicit";
  big.source.patterns =
      result.patterns.slice(0, result.table.back().pattern_index);
  big.lot.chip_count = 50000;
  big.lot.seed = 77;
  const flow::FlowResult validation = flow::run(faults, big);
  const double f_final = validation.final_coverage();
  const double predicted =
      quality::field_reject_rate(f_final, spec.lot.yield, spec.lot.n0);
  const double measured = validation.test->empirical_reject_rate();
  const auto [lo, hi] =
      util::wilson_interval(validation.test->shipped_defective_count(),
                            validation.test->passed_count());
  util::TextTable check({"quantity", "value"});
  check.add_row({"final program coverage f",
                 util::format_percent(f_final, 2)});
  check.add_row({"escapes / shipped",
                 std::to_string(validation.test->shipped_defective_count()) +
                     " / " +
                     std::to_string(validation.test->passed_count())});
  check.add_row({"measured reject rate", util::format_probability(measured)});
  check.add_row({"95% interval", util::format_probability(lo) + " .. " +
                                     util::format_probability(hi)});
  check.add_row({"Eq. 8 prediction r(f)", util::format_probability(predicted)});
  std::cout << check.to_string();
  return 0;
}
