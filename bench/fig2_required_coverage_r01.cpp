// Regenerates Fig. 2: fault coverage required for a field reject rate of
// 1-in-100 as a function of yield, for n0 = 1..12 (Eq. 11 inverted).
#include "bench_util.hpp"

int main() {
  using namespace lsiq;
  bench::print_banner("Figure 2",
                      "required fault coverage vs yield, r = 0.01 "
                      "(1-in-100), n0 = 1..12");
  bench::print_required_coverage_figure(
      0.01, {
                // Section 7: "for a 1 percent field reject rate, the fault
                // coverage should be about 80 percent" (y=0.07, n0=8).
                {0.07, 8.0, 0.80, "Section 7 text"},
            });
  return 0;
}
