// Ablation: how much do the paper's closed-form approximations cost?
//
// The headline formulas (Eq. 7-9) rest on q0(n) ~ (1-f)^n, valid when the
// fault universe N is large relative to n^2 f/(1-f). This bench measures
// the closed forms against the exact Eq. 6 sum (with the exact
// hypergeometric A.1) across the model's operating range and across
// universe sizes — including a c17-sized N = 46, where the approximation
// visibly strains, and LSI-scale N where it is excellent. This justifies
// the library defaulting to the closed forms while exposing *_exact
// variants.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/reject_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Ablation",
                      "closed forms (Eq. 7-8) vs exact hypergeometric sums "
                      "(Eq. 6 + A.1)");

  const unsigned universes[] = {46, 500, 2000, 16064};
  const double yields[] = {0.07, 0.2, 0.8};
  const double n0s[] = {2.0, 8.0, 12.0};

  bench::print_section(
      "max relative error of closed-form Ybg over f in [0.05, 0.95]");
  util::TextTable table({"N", "y", "n0", "max |rel err|", "at f"});
  for (const unsigned N : universes) {
    for (const double y : yields) {
      for (const double n0 : n0s) {
        double worst = 0.0;
        double worst_f = 0.0;
        for (double f = 0.05; f <= 0.951; f += 0.05) {
          const double exact = quality::escape_yield_exact(f, y, n0, N);
          const double closed = quality::escape_yield(f, y, n0);
          if (exact <= 0.0) continue;
          const double err = std::abs(closed / exact - 1.0);
          if (err > worst) {
            worst = err;
            worst_f = f;
          }
        }
        table.add_row({std::to_string(N), util::format_double(y, 2),
                       util::format_double(n0, 0),
                       util::format_percent(worst, 2),
                       util::format_double(worst_f, 2)});
      }
    }
  }
  std::cout << table.to_string();

  bench::print_section(
      "reject-rate error induced at the paper's operating point");
  util::TextTable op({"N", "closed r(0.80)", "exact r(0.80)", "rel err"});
  for (const unsigned N : universes) {
    const double closed = quality::field_reject_rate(0.80, 0.07, 8.0);
    const double exact =
        quality::field_reject_rate_exact(0.80, 0.07, 8.0, N);
    op.add_row({std::to_string(N), util::format_probability(closed),
                util::format_probability(exact),
                util::format_percent(closed / exact - 1.0, 2)});
  }
  std::cout << op.to_string()
            << "\nReading: at LSI-scale N the closed forms are within a "
               "fraction of a percent;\nonly toy universes (N ~ 50) show "
               "material deviation, and even there the\nclosed form errs "
               "on the optimistic side by a few percent.\n";
  return 0;
}
