// Extension bench: static testability prediction vs measured fault
// simulation on the mult16 stand-in product.
//
// The paper prices product quality from fault coverage; this harness asks
// how much of that coverage is knowable BEFORE simulating a single
// pattern. Three readouts:
//
//   * predicted vs measured coverage: the COP-style detection
//     probabilities of analyze_testability() folded into the expected
//     random-pattern coverage curve, next to the exact PPSFP-graded
//     coverage of the same LFSR program — the 2-point acceptance band the
//     test suite pins at 256 and 1024 patterns, shown over the whole
//     sweep;
//   * resistant-fault ranking: the hardest collapsed classes by detection
//     probability with their SCOAP detection costs — the static preview
//     of the coverage curve's long tail, i.e. which faults a random
//     program will still be missing at realistic lengths;
//   * structural density: the fanout-free-region partition of the
//     analyzer, the paper's checkpoint-argument view of where fault
//     classes concentrate.
#include <cstddef>
#include <iostream>

#include "analyze/analyze.hpp"
#include "analyze/testability.hpp"
#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner(
      "Static testability vs measured coverage (extension)",
      "array multiplier 16x16, COP/SCOAP prediction vs PPSFP grading of "
      "one 1024-pattern LFSR program");

  const circuit::Circuit chip = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const analyze::TestabilityReport report = analyze::analyze_testability(faults);

  std::cout << "universe: N = " << faults.fault_count() << " faults in "
            << faults.class_count() << " collapsed classes\n";

  // Grade the reference program once; prefixes come off the curve.
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(chip.pattern_inputs().size(), 1024, 1981);
  const fault::FaultSimResult sim = simulate_ppsfp(faults, patterns);
  const fault::CoverageCurve curve = sim.curve(faults, patterns.size());

  bench::print_section(
      "predicted vs measured coverage after t random patterns");
  util::TextTable vs({"patterns", "predicted f", "measured f", "diff"});
  for (const std::size_t t : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const double predicted = report.predicted_coverage(t);
    const double measured = curve.coverage_after(t);
    vs.add_row({std::to_string(t), util::format_percent(predicted, 2),
                util::format_percent(measured, 2),
                util::format_percent(predicted - measured, 2)});
  }
  std::cout << vs.to_string()
            << "Reading: the independence-assumption prediction lands "
               "within the 2-point band the\ntest suite enforces at 256 "
               "and 1024 patterns; the early-prefix optimism is the\n"
               "classic COP reconvergence error, washed out once every "
               "easy class is covered.\n";

  bench::print_section(
      "hardest collapsed classes (detection probability, SCOAP cost)");
  const std::vector<analyze::ResistantFault> resistant =
      analyze::resistant_faults(faults, report, /*threshold=*/1e-2,
                                /*max_entries=*/10);
  util::TextTable tail({"representative", "class size", "P(detect)",
                        "SCOAP cost", "E[patterns]"});
  for (const analyze::ResistantFault& entry : resistant) {
    tail.add_row({fault_name(chip, entry.fault),
                  std::to_string(faults.class_size(entry.class_index)),
                  util::format_probability(entry.detection_probability),
                  std::to_string(entry.scoap_cost),
                  util::format_double(
                      entry.detection_probability > 0.0
                          ? 1.0 / entry.detection_probability
                          : 0.0,
                      0)});
  }
  std::cout << tail.to_string()
            << "Reading: these classes are the coverage curve's tail — "
               "E[patterns] says how long a\nuniform random program must "
               "run before each is more likely covered than not.\n";

  bench::print_section("structural density (fanout-free regions)");
  const analyze::Report structural = analyze::analyze(chip);
  std::cout << "FFR partition: " << structural.ffr.regions
            << " regions, largest " << structural.ffr.largest
            << " gates, average "
            << util::format_double(structural.ffr.average, 2)
            << " gates/region\n"
            << "lint: " << structural.diagnostics.size()
            << " diagnostic(s), " << structural.untestable_sites.size()
            << " statically untestable fault site(s) — the generator "
               "netlist is clean,\nso every class above is resistant, "
               "not redundant.\n";
  return 0;
}
