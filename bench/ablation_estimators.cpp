// Ablation: robustness of the n0 estimators (Section 5).
//
// Two questions the paper leaves open, answered on the virtual line where
// ground truth is known:
//
//   1. How much lot does the procedure need? The paper used 277 chips and
//      suggested "100 to 200"; we sweep lot size and report the spread of
//      each estimator over independent lots.
//
//   2. What happens when reality is not the model? The physical-defect
//      generator produces clustered, negative-binomial fault counts (not
//      shifted Poisson); the estimators are biased but the fitted model is
//      judged by the quality question that matters: the predicted reject
//      rate at the program's final coverage vs the measured escape rate.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"
#include "tpg/lfsr.hpp"
#include "flow/flow.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

constexpr double kYield = 0.15;
constexpr double kTrueN0 = 8.0;

/// The shared experiment shape: an explicit program, full observation,
/// PPSFP grading, seven mid-curve strobes.
lsiq::flow::FlowSpec base_spec(const lsiq::sim::PatternSet& program) {
  lsiq::flow::FlowSpec spec;
  spec.source.kind = "explicit";
  spec.source.patterns = program;
  spec.engine.kind = "ppsfp";
  spec.lot.yield = kYield;
  spec.analysis.strobe_coverages = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  return spec;
}

}  // namespace

int main() {
  using namespace lsiq;

  bench::print_banner("Ablation",
                      "n0-estimator robustness vs lot size and defect "
                      "clustering");

  // Shared substrate: one fault-graded pattern program (8-bit multiplier
  // keeps the Monte-Carlo sweep fast).
  const circuit::Circuit chip = circuit::make_array_multiplier(8);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const sim::PatternSet program =
      tpg::lfsr_patterns(chip.pattern_inputs().size(), 512, 7);

  bench::print_section("estimator spread vs lot size (20 lots each, "
                       "truth n0 = 8, y = 0.15)");
  util::TextTable table({"chips", "slope mean+-sd", "discrete mean+-sd",
                         "least-squares mean+-sd", "MLE-ish bias note"});
  for (const std::size_t chips : {50u, 100u, 277u, 1000u, 5000u}) {
    util::RunningStats slope_stats;
    util::RunningStats discrete_stats;
    util::RunningStats ls_stats;
    for (std::uint64_t replica = 0; replica < 20; ++replica) {
      flow::FlowSpec spec = base_spec(program);
      spec.lot.chip_count = chips;
      spec.lot.n0 = kTrueN0;
      spec.lot.seed = 1000 + replica;
      spec.analysis.strobe_coverages = flow::table1_strobes();
      const flow::FlowResult result = flow::run(faults, spec);
      const auto points = result.points();
      slope_stats.add(
          quality::estimate_n0_slope(points, kYield).n0);
      discrete_stats.add(static_cast<double>(
          quality::estimate_n0_discrete(points, kYield)));
      ls_stats.add(
          quality::estimate_n0_least_squares(points, kYield).n0);
    }
    auto cell = [](const util::RunningStats& s) {
      return util::format_double(s.mean(), 2) + " +- " +
             util::format_double(s.stddev(), 2);
    };
    table.add_row({std::to_string(chips), cell(slope_stats),
                   cell(discrete_stats), cell(ls_stats),
                   chips <= 100 ? "high variance" : "stable"});
  }
  std::cout << table.to_string()
            << "Truth: n0 = 8. The paper's 100-200 chip recommendation "
               "gives ~ +-1 on n0;\nthe slope method is noisier than the "
               "curve fits at every lot size.\n";

  bench::print_section("model-faithful vs clustered physical lots "
                       "(20,000 chips, program cut to 12 patterns so "
                       "escapes are measurable)");
  // A short program leaves coverage in the mid-80s, where escape rates are
  // large enough to compare against the fitted model's prediction.
  const sim::PatternSet short_program = program.slice(0, 12);
  util::TextTable phys({"lot generator", "realized n0", "LS n0-hat",
                        "f_final", "predicted r(f_final)",
                        "measured escape rate"});

  // Model-faithful lot (truth n0 = 4, in the range of the physical lots).
  {
    flow::FlowSpec spec = base_spec(short_program);
    spec.lot.chip_count = 20000;
    spec.lot.n0 = 4.0;
    spec.lot.seed = 42;
    const flow::FlowResult result = flow::run(faults, spec);
    const quality::FitResult fit =
        quality::estimate_n0_least_squares(result.points(), kYield);
    const double f_final = result.final_coverage();
    phys.add_row(
        {"shifted Poisson (Eq. 1)",
         util::format_double(result.lot->realized_n0(), 2),
         util::format_double(fit.n0, 2), util::format_percent(f_final, 1),
         util::format_probability(
             quality::field_reject_rate(f_final, kYield, fit.n0)),
         util::format_probability(result.test->empirical_reject_rate())});
  }

  // Clustered physical lots at increasing faults-per-defect.
  for (const double mu : {0.5, 2.0, 5.0}) {
    flow::FlowSpec spec = base_spec(short_program);
    spec.lot.chip_count = 20000;
    wafer::PhysicalLotSpec physical;
    physical.chip_count = 20000;
    physical.defects_per_chip = 1.4;
    physical.variance_ratio = 0.5;
    physical.extra_faults_per_defect = mu;
    physical.seed = 43;
    spec.lot.physical = physical;
    const flow::FlowResult result = flow::run(faults, spec);
    const double y_real = result.lot->realized_yield();
    const quality::FitResult fit =
        quality::estimate_n0_least_squares(result.points(), y_real);
    const double f_final = result.final_coverage();
    phys.add_row(
        {"physical, faults/defect ~ 1+Poisson(" +
             util::format_double(mu, 1) + ")",
         util::format_double(result.lot->realized_n0(), 2),
         util::format_double(fit.n0, 2), util::format_percent(f_final, 1),
         util::format_probability(
             quality::field_reject_rate(f_final, y_real, fit.n0)),
         util::format_probability(result.test->empirical_reject_rate())});
  }
  std::cout << phys.to_string()
            << "Reading: even when per-chip fault counts are clustered "
               "rather than shifted\nPoisson, the fitted model's reject-"
               "rate prediction stays the right order of\nmagnitude — the "
               "adaptivity the paper claims for its experimental "
               "procedure.\n";
  return 0;
}
