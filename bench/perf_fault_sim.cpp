// Performance suite for the simulation substrate (google-benchmark):
// compiled parallel-pattern logic simulation, event-driven simulation,
// serial vs PPSFP vs multi-threaded PPSFP fault simulation, and PODEM.
//
// The headline ablation is serial vs PPSFP vs PPSFP-MT: parallel-pattern
// single-fault propagation with fault dropping on the compiled netlist —
// optionally fanned out over a worker pool — is why grading a
// 1000-pattern program on an LSI-scale circuit is interactive rather than
// an overnight job, the engineering that made the paper's Section 5
// procedure practical.
//
// Trajectory tracking: regenerate the committed BENCH_fault_sim.json with
//
//   ./perf_fault_sim --benchmark_filter='FaultSim|Grade'
//       --benchmark_out=BENCH_fault_sim.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "analyze/analyze.hpp"
#include "analyze/implication.hpp"
#include "analyze/redundancy.hpp"
#include "analyze/testability.hpp"
#include "circuit/compiled.hpp"
#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/shard.hpp"
#include "sim/event_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/podem.hpp"
#include "util/rng.hpp"

namespace {

using namespace lsiq;

circuit::Circuit circuit_for(int selector) {
  switch (selector) {
    case 0: return circuit::make_c17();
    case 1: return circuit::make_ripple_carry_adder(16);
    case 2: return circuit::make_array_multiplier(8);
    default: return circuit::make_array_multiplier(16);
  }
}

const char* circuit_name(int selector) {
  switch (selector) {
    case 0: return "c17";
    case 1: return "rca16";
    case 2: return "mult8";
    default: return "mult16";
  }
}

void BM_LogicSim_ParallelBlock(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  sim::ParallelSimulator simulator(c);
  util::Rng rng(1);
  std::vector<std::uint64_t> words(c.pattern_inputs().size());
  for (auto& w : words) w = rng.next_u64();

  for (auto _ : state) {
    simulator.simulate_block(words);
    benchmark::DoNotOptimize(simulator.values().data());
  }
  // 64 patterns per block.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_LogicSim_ParallelBlock)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_EventSim_SingleInputFlip(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  sim::EventSimulator simulator(c);
  std::vector<bool> inputs(c.pattern_inputs().size(), false);
  simulator.apply(inputs);
  std::size_t which = 0;
  for (auto _ : state) {
    inputs[which] = !inputs[which];
    simulator.set_input(which, inputs[which]);
    which = (which + 1) % inputs.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_EventSim_SingleInputFlip)->Arg(1)->Arg(2)->Arg(3);

void BM_FaultSim_Serial(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 64, 3);
  for (auto _ : state) {
    const fault::FaultSimResult r = simulate_serial(faults, patterns);
    benchmark::DoNotOptimize(r.covered_faults);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.class_count()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FaultSim_Serial)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_FaultSim_Ppsfp(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 64, 3);
  for (auto _ : state) {
    const fault::FaultSimResult r = simulate_ppsfp(faults, patterns);
    benchmark::DoNotOptimize(r.covered_faults);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.class_count()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FaultSim_Ppsfp)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_FaultSim_PpsfpMt(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 64, 3);
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    const fault::FaultSimResult r =
        simulate_ppsfp_mt(faults, patterns, nullptr, threads);
    benchmark::DoNotOptimize(r.covered_faults);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.class_count()));
  state.SetLabel(std::string(circuit_name(static_cast<int>(state.range(0)))) +
                 " x " + std::to_string(threads) + " threads");
}
BENCHMARK(BM_FaultSim_PpsfpMt)
    ->Args({3, 1})->Args({3, 2})->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

void BM_FaultSim_GradeFullProgram(benchmark::State& state) {
  // The Table 1 workload: grade a 1024-pattern program on the LSI
  // stand-in. Arg 0 = serial compiled PPSFP; arg N > 0 = simulate_ppsfp_mt
  // with N worker threads.
  const circuit::Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 1024, 1981);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const fault::FaultSimResult r =
        threads == 0 ? simulate_ppsfp(faults, patterns)
                     : simulate_ppsfp_mt(faults, patterns, nullptr, threads);
    benchmark::DoNotOptimize(r.coverage);
  }
  state.SetLabel(threads == 0
                     ? "mult16 x 1024 patterns, serial"
                     : "mult16 x 1024 patterns, " + std::to_string(threads) +
                           " threads");
}
BENCHMARK(BM_FaultSim_GradeFullProgram)->Arg(0)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_FaultSim_GradeTransitionProgram(benchmark::State& state) {
  // The same Table 1 workload on the transition universe: the two-pattern
  // kernel's launch gating plus the larger (less collapsed) class list.
  const circuit::Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::transition_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 1024, 1981);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const fault::FaultSimResult r =
        threads == 0 ? simulate_ppsfp(faults, patterns)
                     : simulate_ppsfp_mt(faults, patterns, nullptr, threads);
    benchmark::DoNotOptimize(r.coverage);
  }
  state.SetLabel(threads == 0
                     ? "mult16 x 1024 patterns, transition, serial"
                     : "mult16 x 1024 patterns, transition, " +
                           std::to_string(threads) + " threads");
}
BENCHMARK(BM_FaultSim_GradeTransitionProgram)->Arg(0)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_GradeWide(benchmark::State& state) {
  // The Table 1 workload scaled up (mult16 x 4096 patterns) through the
  // width-generic kernel. Arg = grading word width: 1 is the narrow
  // uint64_t path (the GradeFullProgram baseline), 4 and 8 grade 256 and
  // 512 patterns per pass through sim::WideWord.
  const circuit::Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 4096, 1981);
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const fault::FaultSimResult r =
        simulate_ppsfp(faults, patterns, nullptr, nullptr, width);
    benchmark::DoNotOptimize(r.coverage);
  }
  state.SetLabel("mult16 x 4096 patterns, width " + std::to_string(width));
}
// MinTime rather than Iterations(3): the width comparison is a perf-gate
// budget (--per BM_GradeWide), so the committed numbers need to be stable
// across runs, not just cheap to collect.
BENCHMARK(BM_GradeWide)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);

void BM_GradeSharded(benchmark::State& state) {
  // The sharded engine on the same workload: Arg = shard count, width 1,
  // each shard graded on the calling thread. Measures the sharding
  // layer's own overhead (range-restricted live lists, redundant good
  // passes per shard, the fold) against one unsharded pass.
  const circuit::Circuit c = circuit::make_array_multiplier(16);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const sim::PatternSet patterns =
      tpg::lfsr_patterns(c.pattern_inputs().size(), 4096, 1981);
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    fault::ShardedOptions options;
    options.shards = shards;
    const fault::FaultSimResult r =
        simulate_sharded(faults, patterns, nullptr, options);
    benchmark::DoNotOptimize(r.coverage);
  }
  state.SetLabel("mult16 x 4096 patterns, " + std::to_string(shards) +
                 " shards");
}
BENCHMARK(BM_GradeSharded)->Arg(1)->Arg(2)->Arg(7)
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);

void BM_Podem_PerFault(benchmark::State& state) {
  // Arg 0 = plain PODEM, arg 1 = implication-assisted. The engine is
  // built ONCE outside the timed loop, exactly how the ATPG driver
  // amortizes it — rebuilding the static-learning tables per solve would
  // be measuring engine construction, not the assist.
  const circuit::Circuit c = circuit::make_alu(4);
  const circuit::CompiledCircuit compiled(c);
  const analyze::ImplicationEngine engine(compiled);
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  const bool assisted = state.range(0) != 0;
  tpg::PodemOptions options;
  options.use_implications = assisted;
  if (assisted) options.implications = &engine;
  std::size_t index = 0;
  for (auto _ : state) {
    const tpg::PodemResult r = tpg::generate_test(
        c, faults.representatives()[index % faults.class_count()], options);
    benchmark::DoNotOptimize(r.status);
    ++index;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(assisted ? "alu4, implication-assisted" : "alu4, plain");
}
BENCHMARK(BM_Podem_PerFault)->Arg(0)->Arg(1);

// The static analyzer: the whole structural pass (topology, constant
// propagation, observability, untestable sites, FFR stats) has to stay
// cheap enough to run as a pre-flight gate before EVERY flow.
void BM_Analyze_Structural(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const analyze::Report report = analyze::analyze(c);
    benchmark::DoNotOptimize(report.diagnostics.size());
    benchmark::DoNotOptimize(report.ffr.regions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.gate_count()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Analyze_Structural)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The implication engine end to end: direct-implication tables, static
// learning, dominators, cones, plus a full FIRE redundancy sweep. This is
// the one-time cost flow::run pays (per circuit, amortized over every
// PODEM solve) when analyze_untestable is enabled.
void BM_Analyze_Implications(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  const circuit::CompiledCircuit compiled(c);
  for (auto _ : state) {
    const analyze::ImplicationEngine engine(compiled);
    const analyze::RedundancyReport report =
        analyze::identify_redundancies(engine);
    benchmark::DoNotOptimize(report.sites.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.gate_count()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Analyze_Implications)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

// COP + SCOAP over a collapsed universe: the testability half of the
// gate, and the cost of one predicted coverage curve.
void BM_Analyze_Testability(benchmark::State& state) {
  const circuit::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  const fault::FaultList faults = fault::FaultList::full_universe(c);
  for (auto _ : state) {
    const analyze::TestabilityReport report =
        analyze::analyze_testability(faults);
    benchmark::DoNotOptimize(report.predicted_coverage(1024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.class_count()));
  state.SetLabel(circuit_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Analyze_Testability)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
