// Shared helpers for the figure/table regeneration harnesses.
//
// Every bench binary prints: a banner identifying the paper artifact it
// regenerates, the regenerated rows/series as aligned text, and — where the
// paper gives concrete numbers — a side-by-side "paper vs. reproduced"
// comparison. EXPERIMENTS.md records the outputs.
#pragma once

#include <string>
#include <vector>

#include "core/coverage_requirement.hpp"

namespace lsiq::bench {

/// Print a top-level banner: which figure/table of the paper this binary
/// regenerates and under what parameters.
void print_banner(const std::string& artifact, const std::string& subtitle);

/// Print a section heading inside a bench's output.
void print_section(const std::string& title);

/// Render one Figs. 2-4 style figure: required coverage vs yield for
/// n0 = 1..12 at the given reject-rate target, as a column-per-n0 table
/// (yields down the rows). `spot_checks` are (yield, n0, paper_value)
/// triples quoted in the paper's text for this figure.
struct SpotCheck {
  double yield;
  double n0;
  double paper_value;
  std::string source;  ///< e.g. "Section 7 text"
};

void print_required_coverage_figure(double reject_target,
                                    const std::vector<SpotCheck>& spot_checks);

}  // namespace lsiq::bench
