// Ablation: spatial defect-density gradients vs the lot-level model.
//
// The paper treats a lot as exchangeable chips; real wafers have radial
// yield gradients (edge dies are worse — the phenomenon behind the
// clustered yield models of the paper's references [10]-[12]). This bench
// manufactures whole virtual wafers with a radial density profile, runs
// the standard characterization on the pooled lot, and asks the question
// that matters downstream: does the pooled (y, n0) fit still predict the
// measured escape rate, and what do per-zone fits look like?
#include <iostream>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/table.hpp"
#include "wafer/tester.hpp"
#include "wafer/wafer_map.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Ablation",
                      "radial defect gradients: wafer-map lots through the "
                      "Section 5 procedure");

  const circuit::Circuit chip = circuit::make_array_multiplier(8);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const sim::PatternSet program =
      tpg::lfsr_patterns(chip.pattern_inputs().size(), 512, 7);
  const fault::FaultSimResult graded = simulate_ppsfp(faults, program);

  wafer::WaferSpec spec;
  spec.wafer_diameter = 300.0;
  spec.die_width = 5.0;
  spec.die_height = 5.0;
  spec.center_defect_density = 0.03;
  spec.edge_density_multiplier = 4.0;
  spec.variance_ratio = 0.5;
  spec.extra_faults_per_defect = 2.0;
  spec.seed = 1981;
  const wafer::WaferMap map = wafer::WaferMap::generate(faults, spec);

  bench::print_section("wafer summary");
  std::cout << "dies: " << map.die_count()
            << ", pooled yield: " << util::format_percent(map.yield(), 1)
            << ", mean faults per defective die: "
            << util::format_double(map.mean_faults_per_defective_die(), 2)
            << "\n";

  bench::print_section("radial yield profile (edge multiplier 4x)");
  util::TextTable radial({"annulus r/R", "dies", "yield"});
  const double edges[] = {0.0, 0.3, 0.5, 0.7, 0.85, 1.01};
  for (std::size_t i = 0; i + 1 < std::size(edges); ++i) {
    std::size_t count = 0;
    for (const wafer::Die& die : map.dies()) {
      if (die.radius_fraction >= edges[i] &&
          die.radius_fraction < edges[i + 1]) {
        ++count;
      }
    }
    radial.add_row(
        {util::format_double(edges[i], 2) + ".." +
             util::format_double(edges[i + 1], 2),
         std::to_string(count),
         util::format_percent(map.yield_in_annulus(edges[i], edges[i + 1]),
                              1)});
  }
  std::cout << radial.to_string();

  // Pooled characterization: the wafer lot gets the full graded program
  // (the Section 5 step); the shipping decision is then taken after a
  // short 12-pattern production program (f ~ 0.9) so the escape rate is
  // large enough to measure against the fitted model.
  const wafer::ChipLot lot = map.to_lot();
  const fault::CoverageCurve curve = graded.curve(faults, program.size());
  const wafer::LotTestResult characterization =
      wafer::test_lot(lot, graded, program.size());
  const std::size_t ship_after = 12;
  const wafer::LotTestResult production =
      wafer::test_lot(lot, graded, ship_after);

  std::vector<quality::CoveragePoint> points;
  for (const double target :
       {0.05, 0.10, 0.20, 0.30, 0.45, 0.60, 0.75, 0.90}) {
    if (!curve.reaches(target)) break;
    const std::size_t t = curve.patterns_for_coverage(target);
    points.push_back(quality::CoveragePoint{
        curve.coverage_after(t),
        characterization.fraction_failed_within(t)});
  }
  const double y_pooled = map.yield();
  const quality::FitResult fit =
      quality::estimate_n0_least_squares(points, y_pooled);

  bench::print_section("pooled characterization vs measured quality");
  util::TextTable pooled({"quantity", "value"});
  pooled.add_row({"pooled yield", util::format_percent(y_pooled, 1)});
  pooled.add_row({"fitted n0 (least squares)",
                  util::format_double(fit.n0, 2)});
  pooled.add_row({"realized n0 (ground truth)",
                  util::format_double(map.mean_faults_per_defective_die(),
                                      2)});
  const double f_ship = curve.coverage_after(ship_after);
  pooled.add_row({"production program coverage f",
                  util::format_percent(f_ship, 1)});
  pooled.add_row(
      {"predicted r(f) from pooled fit",
       util::format_probability(
           quality::field_reject_rate(f_ship, y_pooled, fit.n0))});
  pooled.add_row(
      {"measured escape rate",
       util::format_probability(production.empirical_reject_rate())});
  std::cout << pooled.to_string()
            << "\nReading: the radial gradient makes per-chip defect counts "
               "over-dispersed\n(edge dies carry several defects), which the "
               "pooled shifted-Poisson fit\nabsorbs into a lower effective "
               "n0 — the same clustering bias the physical-\nlot ablation "
               "shows, now produced by honest wafer geometry.\n";
  return 0;
}
