// Regenerates Fig. 4: fault coverage required for a field reject rate of
// 1-in-1000 as a function of yield, for n0 = 1..12 (Eq. 11 inverted).
#include "bench_util.hpp"

int main() {
  using namespace lsiq;
  bench::print_banner("Figure 4",
                      "required fault coverage vs yield, r = 0.001 "
                      "(1-in-1000), n0 = 1..12");
  bench::print_required_coverage_figure(
      0.001, {
                 // Section 6: "for yield y = 0.3 and n0 = 8, the fault
                 // coverage should be about 85 percent."
                 {0.30, 8.0, 0.85, "Section 6 text"},
                 // Section 7: "improved to 95 percent in order to achieve
                 // a field reject rate of 1-in-1000" (y=0.07, n0=8).
                 {0.07, 8.0, 0.95, "Section 7 text"},
             });
  return 0;
}
