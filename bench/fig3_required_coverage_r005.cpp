// Regenerates Fig. 3: fault coverage required for a field reject rate of
// 1-in-200 as a function of yield, for n0 = 1..12 (Eq. 11 inverted).
#include "bench_util.hpp"

int main() {
  using namespace lsiq;
  bench::print_banner("Figure 3",
                      "required fault coverage vs yield, r = 0.005 "
                      "(1-in-200), n0 = 1..12");
  bench::print_required_coverage_figure(
      0.005, {
                 // The Fig. 1 discussion quotes these three requirements
                 // for r <= 0.005.
                 {0.80, 2.0, 0.95, "Section 4 text"},
                 {0.80, 10.0, 0.38, "Section 4 text"},
                 {0.20, 10.0, 0.63, "Section 4 text"},
             });
  return 0;
}
