// Signature-aliasing ablation: measured MISR aliasing versus the
// analytic 2^-k model, across register widths and session lengths.
//
// No figure in the paper covers this — BIST post-dates it — but the
// readout follows the Figs. 1-4 methodology: sweep a test-architecture
// parameter, evaluate the exact simulated quantity, and put the closed
// form next to it. Each sweep point is one coverage-only flow spec with a
// misr observation axis; only the swept field changes. Two sweeps:
//
//   * width sweep at fixed session length: aliasing fraction vs k,
//     against 2^-k (the Smith asymptote), plus the DPPM the coverage
//     loss costs at the Section 7 product parameters;
//   * length sweep at fixed narrow width: aliasing is a whole-session
//     property — more patterns mean more chances for a diverged
//     signature to fold back, but also more chances to re-diverge.
#include <iostream>

#include "bench_util.hpp"
#include "bist/misr.hpp"
#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner(
      "BIST signature aliasing (extension; Figs. 1-4 methodology)",
      "array multiplier 8x8, LFSR program, exact MISR-aliasing grading");

  const circuit::Circuit chip = circuit::make_array_multiplier(8);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const quality::QualityAnalyzer product(/*yield=*/0.07, /*n0=*/8.0);

  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = 512;
  spec.source.lfsr_seed = 29;
  spec.observe.kind = "misr";
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;
  spec.lot.chip_count = 0;  // coverage-only: the lot axis is not swept
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;

  bench::print_section("aliasing fraction vs MISR width (512 patterns)");
  util::TextTable by_width({"k", "full-obs cov", "sig cov",
                            "aliased classes", "measured frac",
                            "2^-k model", "DPPM gap"});
  for (const int width : {4, 8, 16, 24, 32}) {
    spec.observe.misr_width = width;
    const bist::BistResult r = *flow::run(faults, spec).bist;
    const double gap = product.dppm(r.signature_coverage) -
                       product.dppm(r.raw_coverage);
    by_width.add_row(
        {util::format_double(width, 0),
         util::format_percent(r.raw_coverage, 2),
         util::format_percent(r.signature_coverage, 2),
         util::format_double(static_cast<double>(r.aliased_classes.size()),
                             0),
         util::format_probability(r.measured_aliasing_fraction()),
         util::format_probability(bist::misr_aliasing_probability(width)),
         util::format_double(gap, 1)});
  }
  std::cout << by_width.to_string();

  bench::print_section("aliasing vs session length (k = 8)");
  spec.observe.misr_width = 8;
  util::TextTable by_length({"patterns", "full-obs cov", "sig cov",
                             "aliased classes", "measured frac"});
  for (const std::size_t patterns : {64u, 128u, 256u, 512u, 1024u}) {
    spec.source.pattern_count = patterns;
    const bist::BistResult r = *flow::run(faults, spec).bist;
    by_length.add_row(
        {util::format_double(static_cast<double>(patterns), 0),
         util::format_percent(r.raw_coverage, 2),
         util::format_percent(r.signature_coverage, 2),
         util::format_double(static_cast<double>(r.aliased_classes.size()),
                             0),
         util::format_probability(r.measured_aliasing_fraction())});
  }
  std::cout << by_length.to_string();

  return 0;
}
