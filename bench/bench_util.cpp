#include "bench_util.hpp"

#include <cstdio>
#include <iostream>

#include "core/reject_model.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace lsiq::bench {

void print_banner(const std::string& artifact, const std::string& subtitle) {
  const std::string rule(72, '=');
  std::cout << rule << "\n"
            << "Agrawal/Seth/Agrawal, \"LSI Product Quality and Fault "
               "Coverage\", DAC 1981\n"
            << artifact << " — " << subtitle << "\n"
            << rule << "\n";
}

void print_section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

void print_required_coverage_figure(
    double reject_target, const std::vector<SpotCheck>& spot_checks) {
  // Column per n0 (1..12 as in the paper's figures), yield down the rows.
  std::vector<std::string> headers = {"yield"};
  for (int n0 = 1; n0 <= 12; ++n0) {
    headers.push_back("n0=" + std::to_string(n0));
  }
  util::TextTable table(std::move(headers));
  for (double y = 0.05; y <= 0.951; y += 0.05) {
    std::vector<std::string> row = {util::format_double(y, 2)};
    for (int n0 = 1; n0 <= 12; ++n0) {
      const double f = quality::required_fault_coverage(
          reject_target, y, static_cast<double>(n0));
      row.push_back(util::format_double(f, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();

  if (!spot_checks.empty()) {
    print_section("paper spot checks");
    util::TextTable checks(
        {"yield", "n0", "paper f", "reproduced f", "source"});
    for (const SpotCheck& s : spot_checks) {
      const double f =
          quality::required_fault_coverage(reject_target, s.yield, s.n0);
      checks.add_row({util::format_double(s.yield, 2),
                      util::format_double(s.n0, 0),
                      util::format_percent(s.paper_value, 1),
                      util::format_percent(f, 1), s.source});
    }
    std::cout << checks.to_string();
  }
}

}  // namespace lsiq::bench
