// Performance suite for the statistical core (google-benchmark): closed
// forms, exact sums, the required-coverage solver and the estimators.
//
// The point being demonstrated: the paper's model is cheap enough to sit
// inside an interactive planning loop (millions of closed-form evaluations
// per second, microsecond-scale solver calls), while the exact
// hypergeometric sums cost orders of magnitude more — the quantitative
// case for the Appendix approximations.
#include <benchmark/benchmark.h>

#include "core/coverage_requirement.hpp"
#include "core/estimation.hpp"
#include "core/reject_model.hpp"

namespace {

using namespace lsiq;

void BM_FieldRejectRate_ClosedForm(benchmark::State& state) {
  double f = 0.0;
  for (auto _ : state) {
    f += 1e-9;
    benchmark::DoNotOptimize(
        quality::field_reject_rate(0.5 + f, 0.07, 8.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FieldRejectRate_ClosedForm);

void BM_FieldRejectRate_ExactSum(benchmark::State& state) {
  const unsigned N = static_cast<unsigned>(state.range(0));
  double f = 0.0;
  for (auto _ : state) {
    f += 1e-9;
    benchmark::DoNotOptimize(
        quality::field_reject_rate_exact(0.5 + f, 0.07, 8.0, N));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("N=" + std::to_string(N));
}
BENCHMARK(BM_FieldRejectRate_ExactSum)->Arg(1000)->Arg(16064);

void BM_RequiredCoverage_Solver(benchmark::State& state) {
  double r = 0.0;
  for (auto _ : state) {
    r += 1e-12;
    benchmark::DoNotOptimize(
        quality::required_fault_coverage(0.001 + r, 0.07, 8.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RequiredCoverage_Solver);

void BM_RequirementCurve_Figure(benchmark::State& state) {
  // One full Figs. 2-4 curve: 99 yield points, one solver call each.
  for (auto _ : state) {
    const quality::RequirementCurve curve =
        quality::requirement_curve(0.001, 8.0, 99);
    benchmark::DoNotOptimize(curve.coverages.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 99);
}
BENCHMARK(BM_RequirementCurve_Figure)->Unit(benchmark::kMicrosecond);

const std::vector<quality::CoveragePoint>& table1_points() {
  static const std::vector<quality::CoveragePoint> points = {
      {0.05, 0.41}, {0.08, 0.48}, {0.10, 0.52}, {0.15, 0.67},
      {0.20, 0.75}, {0.30, 0.82}, {0.36, 0.87}, {0.45, 0.91},
      {0.50, 0.92}, {0.65, 0.93}};
  return points;
}

void BM_Estimate_Slope(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::estimate_n0_slope(table1_points(), 0.07));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Estimate_Slope);

void BM_Estimate_DiscreteFit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::estimate_n0_discrete(table1_points(), 0.07));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Estimate_DiscreteFit);

void BM_Estimate_LeastSquares(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::estimate_n0_least_squares(table1_points(), 0.07));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Estimate_LeastSquares);

void BM_Estimate_JointFit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(quality::estimate_yield_and_n0(table1_points()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Estimate_JointFit)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
