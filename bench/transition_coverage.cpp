// Extension bench: stuck-at vs transition coverage curves and DPPM on the
// mult16 stand-in product.
//
// No figure in the paper covers this — the transition model post-dates it
// — but the readout follows the Figs. 1-4 methodology: sweep a test
// parameter (program length), evaluate the exact simulated quantity per
// fault model, and put the quality model's DPPM next to it. Two sweeps:
//
//   * coverage-curve comparison: coverage of both universes after the
//     same pattern prefixes, plus the pattern cost of fixed coverage
//     checkpoints — how much later the two-pattern universe is reached;
//   * DPPM comparison: what the delivered coverage of each model is worth
//     at the Section 7 product parameters, program length swept;
//   * deterministic closure: two-pattern transition ATPG (random phase +
//     launch/capture PODEM, pair-aware compaction) against the LFSR
//     program at equal pattern count — the coverage the random source
//     cannot reach at realistic lengths, bought deterministically.
#include <iostream>

#include "bench_util.hpp"
#include "circuit/generators.hpp"
#include "fault_model/universe.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner(
      "Stuck-at vs transition coverage (extension; Figs. 1-4 methodology)",
      "array multiplier 16x16, shared LFSR program, two-pattern "
      "launch/capture grading");

  const circuit::Circuit chip = circuit::make_array_multiplier(16);
  const quality::QualityAnalyzer product(/*yield=*/0.07, /*n0=*/8.0);

  // One coverage-only spec per model over the full 1024-pattern program;
  // prefixes are read off the cumulative curves.
  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = 1024;
  spec.source.lfsr_seed = 1981;
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;
  spec.lot.chip_count = 0;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;

  flow::FlowSpec transition_spec = spec;
  transition_spec.fault_model.kind = "transition";

  const flow::FlowResult sa = flow::run(chip, spec);
  const flow::FlowResult tr = flow::run(chip, transition_spec);
  const fault::CoverageCurve& sa_curve = *sa.curve;
  const fault::CoverageCurve& tr_curve = *tr.curve;

  {
    const fault::FaultList sa_universe =
        fault_model::universe(chip, fault_model::FaultModel::kStuckAt);
    const fault::FaultList tr_universe =
        fault_model::universe(chip, fault_model::FaultModel::kTransition);
    std::cout << "universe: N = " << sa_universe.fault_count()
              << " faults for both models; " << sa_universe.class_count()
              << " stuck-at classes vs " << tr_universe.class_count()
              << " transition classes (less collapsing)\n";
  }

  bench::print_section("coverage after t patterns (same LFSR program)");
  util::TextTable by_prefix({"patterns", "stuck-at f", "transition f",
                             "gap"});
  for (const std::size_t t : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const double f_sa = sa_curve.coverage_after(t);
    const double f_tr = tr_curve.coverage_after(t);
    by_prefix.add_row({std::to_string(t), util::format_percent(f_sa, 2),
                       util::format_percent(f_tr, 2),
                       util::format_percent(f_sa - f_tr, 2)});
  }
  std::cout << by_prefix.to_string();

  bench::print_section("pattern cost of fixed coverage checkpoints");
  util::TextTable by_target({"target f", "stuck-at patterns",
                             "transition patterns", "extra"});
  for (const double target : {0.50, 0.65, 0.80, 0.90, 0.95, 0.99}) {
    if (!sa_curve.reaches(target) || !tr_curve.reaches(target)) continue;
    const std::size_t t_sa = sa_curve.patterns_for_coverage(target);
    const std::size_t t_tr = tr_curve.patterns_for_coverage(target);
    by_target.add_row({util::format_percent(target, 0),
                       std::to_string(t_sa), std::to_string(t_tr),
                       std::to_string(t_tr - t_sa)});
  }
  std::cout << by_target.to_string();

  bench::print_section(
      "DPPM at delivered coverage vs program length (y = 0.07, n0 = 8)");
  util::TextTable dppm({"patterns", "stuck-at f", "s-a DPPM",
                        "transition f", "trans DPPM", "DPPM gap"});
  for (const std::size_t t : {64u, 128u, 256u, 512u, 1024u}) {
    const double f_sa = sa_curve.coverage_after(t);
    const double f_tr = tr_curve.coverage_after(t);
    const double d_sa = product.dppm(f_sa);
    const double d_tr = product.dppm(f_tr);
    dppm.add_row({std::to_string(t), util::format_percent(f_sa, 2),
                  util::format_double(d_sa, 0),
                  util::format_percent(f_tr, 2),
                  util::format_double(d_tr, 0),
                  util::format_double(d_tr - d_sa, 0)});
  }
  std::cout << dppm.to_string()
            << "Reading: if the shipped-defect population includes delay "
               "defects, the stuck-at\ncolumn is the optimistic bound — "
               "the transition column prices the same program\nagainst the "
               "two-pattern universe the Logic BIST literature grades.\n";

  bench::print_section(
      "deterministic closure: transition ATPG vs LFSR at equal length");
  flow::FlowSpec atpg_spec = transition_spec;
  atpg_spec.source = flow::PatternSourceSpec{};
  atpg_spec.source.kind = "atpg";
  atpg_spec.source.atpg.random_patterns = 256;
  atpg_spec.source.atpg.seed = 1981;
  atpg_spec.source.atpg_compact = true;
  const flow::FlowResult atpg_run = flow::run(chip, atpg_spec);
  const tpg::AtpgResult& atpg = *atpg_run.atpg;
  const std::size_t budget = atpg_run.patterns.size();

  util::TextTable closure({"program", "patterns", "transition f", "DPPM"});
  const auto closure_row = [&](const std::string& name, std::size_t t,
                               double f) {
    closure.add_row({name, std::to_string(t), util::format_percent(f, 2),
                     util::format_double(product.dppm(f), 0)});
  };
  closure_row("lfsr @ atpg budget", budget, tr_curve.coverage_after(budget));
  closure_row("atpg (compacted)", budget, atpg_run.final_coverage());
  closure_row("lfsr @ 1024", 1024, tr_curve.final_coverage());
  std::cout << closure.to_string()
            << "ATPG closure: " << atpg.redundant_classes
            << " classes proven redundant ("
            << atpg.untestable_launch_classes << " untestable-launch, "
            << atpg.untestable_capture_classes
            << " untestable-capture), effective coverage "
            << util::format_percent(atpg.effective_coverage, 2)
            << "; the survivors the\nLFSR program leaves at every length "
               "above are exactly what the PODEM phase closes.\n";
  return 0;
}
