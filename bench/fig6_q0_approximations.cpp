// Regenerates Fig. 6: the escape probability q0(n) for N = 1000 computed
// three ways — exact (A.1), second-order approximation (A.2) and the simple
// (1-f)^n form (A.3) — across the f = m/N sweep, for the family of n values
// the figure plots.
//
// The appendix's claims, checked numerically at the bottom: all three forms
// coincide for n <= 4; (A.2) tracks (A.1) for large n; (A.3)'s error is
// "small but can be noticed".
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/detection.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Figure 6",
                      "approximations for q0(n), N = 1000, exact (A.1) vs "
                      "(A.2) vs (1-f)^n (A.3)");

  const unsigned N = 1000;
  const unsigned n_family[] = {2, 4, 10, 31, 100};

  // The figure's y-axis spans 1 down to 1e-6; relative errors are only
  // meaningful (and only visible in the plot) above that floor.
  constexpr double kPlotFloor = 1e-6;

  for (const unsigned n : n_family) {
    bench::print_section("n = " + std::to_string(n));
    util::TextTable table(
        {"f", "exact (A.1)", "(A.2)", "(A.3)", "A.2 rel err", "A.3 rel err"});
    for (unsigned m = 100; m <= 900; m += 100) {
      const double f = static_cast<double>(m) / N;
      const double exact = quality::q0_exact(n, m, N);
      const double second = quality::q0_second_order(n, m, N);
      const double simple = quality::q0_simple(n, f);
      auto rel = [&](double v) {
        if (exact < kPlotFloor) return std::string("(below plot)");
        return util::format_percent(v / exact - 1.0, 2);
      };
      table.add_row({util::format_double(f, 1),
                     util::format_probability(exact),
                     util::format_probability(second),
                     util::format_probability(simple), rel(second),
                     rel(simple)});
    }
    std::cout << table.to_string();
  }

  bench::print_section(
      "appendix claims, quantified over the plotted range (q0 >= 1e-6)");
  util::TextTable claims({"n", "max |A.2 err|", "max |A.3 err|"});
  for (const unsigned n : n_family) {
    double worst_second = 0.0;
    double worst_simple = 0.0;
    for (unsigned m = 50; m <= 950; m += 50) {
      const double f = static_cast<double>(m) / N;
      const double exact = quality::q0_exact(n, m, N);
      if (exact < kPlotFloor) continue;
      worst_second = std::max(
          worst_second,
          std::abs(quality::q0_second_order(n, m, N) / exact - 1.0));
      worst_simple = std::max(
          worst_simple, std::abs(quality::q0_simple(n, f) / exact - 1.0));
    }
    claims.add_row({std::to_string(n), util::format_percent(worst_second, 3),
                    util::format_percent(worst_simple, 3)});
  }
  std::cout << claims.to_string()
            << "\nPaper: \"For n <= 4, all three values are the same. For "
               "larger n, the\napproximation (A.2) still coincides with the "
               "exact value (A.1). The error\nof (A.3) is small but can be "
               "noticed.\"\n";
  return 0;
}
