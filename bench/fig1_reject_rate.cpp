// Regenerates Fig. 1: field reject rate r(f) versus fault coverage for
// chips with yields 80% and 20%, each at n0 = 2 and n0 = 10 (Eq. 8).
//
// The paper reads three operating points off this plot (Section 4); they
// are reproduced in the spot-check table, including the known text/graph
// discrepancy at (y=0.2, n0=2) discussed in DESIGN.md.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/coverage_requirement.hpp"
#include "core/reject_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  bench::print_banner("Figure 1",
                      "field reject rate vs fault coverage, "
                      "y in {0.80, 0.20} x n0 in {2, 10}");

  util::TextTable table({"f", "y=0.80 n0=2", "y=0.80 n0=10", "y=0.20 n0=2",
                         "y=0.20 n0=10"});
  for (double f = 0.0; f <= 1.0001; f += 0.05) {
    const double fc = std::min(f, 1.0);
    table.add_row({util::format_double(fc, 2),
                   util::format_probability(
                       quality::field_reject_rate(fc, 0.80, 2.0)),
                   util::format_probability(
                       quality::field_reject_rate(fc, 0.80, 10.0)),
                   util::format_probability(
                       quality::field_reject_rate(fc, 0.20, 2.0)),
                   util::format_probability(
                       quality::field_reject_rate(fc, 0.20, 10.0))});
  }
  std::cout << table.to_string();

  bench::print_section("Section 4 operating points (target r <= 0.005)");
  util::TextTable spots({"yield", "n0", "paper f", "exact f from Eq. 8",
                         "r at paper f"});
  struct Point {
    double y;
    double n0;
    double paper_f;
  };
  for (const Point& p : {Point{0.80, 2.0, 0.95}, Point{0.80, 10.0, 0.38},
                         Point{0.20, 2.0, 0.99}, Point{0.20, 10.0, 0.63}}) {
    spots.add_row(
        {util::format_double(p.y, 2), util::format_double(p.n0, 0),
         util::format_percent(p.paper_f, 0),
         util::format_percent(
             quality::required_fault_coverage(0.005, p.y, p.n0), 2),
         util::format_probability(
             quality::field_reject_rate(p.paper_f, p.y, p.n0))});
  }
  std::cout << spots.to_string()
            << "\nNote: the (y=0.20, n0=2) row reproduces the paper's known"
               "\ngraph read-off: its quoted 99% coverage actually yields"
               " r = 0.0146;\nthe exact requirement is 99.66%. All other"
               " rows match the text.\n";
  return 0;
}
