// Cumulative fault-coverage curves.
//
// The paper's characterization procedure (Section 5) rests on the curve of
// cumulative fault coverage versus applied-pattern count, produced by a
// fault simulator evaluating the patterns *in tester order*. This type
// holds that curve and answers both directions: coverage after t patterns,
// and the first pattern index reaching a target coverage (used to place the
// tester "strobes" of Table 1).
#pragma once

#include <cstdint>
#include <vector>

namespace lsiq::fault {

class CoverageCurve {
 public:
  /// `cumulative_covered[t]` = universe faults covered by patterns 0..t
  /// (weighted by equivalence-class size); `universe_size` is the paper's N.
  CoverageCurve(std::vector<std::size_t> cumulative_covered,
                std::size_t universe_size);

  /// Build from per-class first-detection pattern indices (-1 = never) and
  /// class weights.
  static CoverageCurve from_first_detection(
      const std::vector<std::int64_t>& first_detection,
      const std::vector<std::size_t>& class_weights,
      std::size_t universe_size, std::size_t pattern_count);

  /// Number of patterns the curve covers.
  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return cumulative_.size();
  }

  /// The universe size N.
  [[nodiscard]] std::size_t universe_size() const noexcept {
    return universe_size_;
  }

  /// Faults covered by the first `patterns` patterns.
  [[nodiscard]] std::size_t covered_after(std::size_t patterns) const;

  /// Coverage fraction f = m/N after the first `patterns` patterns.
  [[nodiscard]] double coverage_after(std::size_t patterns) const;

  /// Final coverage of the whole set.
  [[nodiscard]] double final_coverage() const;

  /// Smallest pattern count t with coverage_after(t) >= target, found by
  /// binary search over the non-decreasing cumulative array. Returns the
  /// pattern_count() + 1 sentinel when the target is never reached; that
  /// value is NOT a valid pattern count, so callers must test reaches()
  /// (or compare against pattern_count()) before using it as an index.
  [[nodiscard]] std::size_t patterns_for_coverage(double target) const;

  /// True when some prefix of the pattern set reaches `target` coverage,
  /// i.e. patterns_for_coverage(target) returns a real pattern count and
  /// not the pattern_count() + 1 sentinel.
  [[nodiscard]] bool reaches(double target) const;

 private:
  std::vector<std::size_t> cumulative_;
  std::size_t universe_size_;
};

}  // namespace lsiq::fault
