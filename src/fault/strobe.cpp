#include "fault/strobe.hpp"

#include <limits>

#include "util/error.hpp"

namespace lsiq::fault {

StrobeSchedule StrobeSchedule::full(std::size_t point_count) {
  LSIQ_EXPECT(point_count > 0, "StrobeSchedule requires >= 1 point");
  return StrobeSchedule(std::vector<std::size_t>(point_count, 0));
}

StrobeSchedule StrobeSchedule::progressive(std::size_t point_count,
                                           std::size_t step) {
  LSIQ_EXPECT(point_count > 0, "StrobeSchedule requires >= 1 point");
  // The largest start pattern is (point_count - 1) * step; a silent wrap
  // would strobe late points from a tiny pattern index instead of never.
  LSIQ_EXPECT(step == 0 ||
                  point_count - 1 <=
                      std::numeric_limits<std::size_t>::max() / step,
              "progressive: point_count * step overflows size_t");
  std::vector<std::size_t> starts(point_count);
  for (std::size_t i = 0; i < point_count; ++i) {
    starts[i] = i * step;
  }
  return StrobeSchedule(std::move(starts));
}

StrobeSchedule StrobeSchedule::from_start_patterns(
    std::vector<std::size_t> start_patterns) {
  LSIQ_EXPECT(!start_patterns.empty(), "StrobeSchedule requires >= 1 point");
  return StrobeSchedule(std::move(start_patterns));
}

bool StrobeSchedule::strobed(std::size_t point, std::size_t pattern) const {
  LSIQ_EXPECT(point < starts_.size(), "strobed: point out of range");
  return pattern >= starts_[point];
}

std::uint64_t StrobeSchedule::lane_mask(std::size_t point,
                                        std::size_t block) const {
  LSIQ_EXPECT(point < starts_.size(), "lane_mask: point out of range");
  const std::size_t start = starts_[point];
  const std::size_t block_first = block * 64;
  if (start <= block_first) return ~0ULL;
  const std::size_t offset = start - block_first;
  if (offset >= 64) return 0;
  return ~0ULL << offset;
}

bool StrobeSchedule::is_full() const {
  for (const std::size_t s : starts_) {
    if (s != 0) return false;
  }
  return true;
}

}  // namespace lsiq::fault
