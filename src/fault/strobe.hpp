// Tester strobe schedules: which observation points the tester actually
// compares at which pattern.
//
// Production testers of the paper's era (the Fairchild Sentry among them)
// control strobing per output pin per pattern: a functional program begins
// by exercising and observing a narrow slice of the chip and brings more
// outputs under observation as it proceeds. This is why Table 1's first
// strobed pattern covers only 5% of faults — single full-observability
// patterns on combinational logic would start far higher.
//
// A StrobeSchedule assigns each observed point the pattern index from
// which it is strobed; detection before that index does not count. The
// default ("full") schedule strobes everything from pattern 0 and is what
// the fault simulators use when no schedule is given.
#pragma once

#include <cstdint>
#include <vector>

namespace lsiq::fault {

class StrobeSchedule {
 public:
  /// Everything strobed from the first pattern (classic scan testing).
  static StrobeSchedule full(std::size_t point_count);

  /// Point i strobed from pattern i * step (progressive bring-up).
  static StrobeSchedule progressive(std::size_t point_count,
                                    std::size_t step);

  /// Explicit per-point start patterns.
  static StrobeSchedule from_start_patterns(
      std::vector<std::size_t> start_patterns);

  [[nodiscard]] std::size_t point_count() const noexcept {
    return starts_.size();
  }

  /// True when the point is compared at the given pattern.
  [[nodiscard]] bool strobed(std::size_t point, std::size_t pattern) const;

  /// Lanes of a 64-pattern block in which `point` is strobed (bit p set
  /// when pattern block*64+p is strobed).
  [[nodiscard]] std::uint64_t lane_mask(std::size_t point,
                                        std::size_t block) const;

  /// True when every point is strobed from pattern 0.
  [[nodiscard]] bool is_full() const;

 private:
  explicit StrobeSchedule(std::vector<std::size_t> starts)
      : starts_(std::move(starts)) {}

  std::vector<std::size_t> starts_;
};

}  // namespace lsiq::fault
