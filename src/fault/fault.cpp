#include "fault/fault.hpp"

#include "util/error.hpp"

namespace lsiq::fault {

std::string fault_name(const circuit::Circuit& circuit, const Fault& fault) {
  const std::string base = circuit.gate(fault.gate).name;
  const std::string site =
      is_stem(fault) ? "/out" : "/in" + std::to_string(fault.pin);
  return base + site + (fault.stuck_at_one ? " s-a-1" : " s-a-0");
}

circuit::GateId fault_line(const circuit::Circuit& circuit,
                           const Fault& fault) {
  if (is_stem(fault)) return fault.gate;
  const auto& fanin = circuit.gate(fault.gate).fanin;
  LSIQ_EXPECT(fault.pin >= 0 &&
                  static_cast<std::size_t>(fault.pin) < fanin.size(),
              "fault pin out of range");
  return fanin[static_cast<std::size_t>(fault.pin)];
}

}  // namespace lsiq::fault
