#include "fault/fault.hpp"

#include "circuit/compiled.hpp"
#include "util/error.hpp"

namespace lsiq::fault {

std::string fault_name(const circuit::Circuit& circuit, const Fault& fault) {
  return fault_name(circuit, fault, fault_model::FaultModel::kStuckAt);
}

std::string fault_name(const circuit::Circuit& circuit, const Fault& fault,
                       fault_model::FaultModel model) {
  const std::string base = circuit.gate(fault.gate).name;
  const std::string site =
      is_stem(fault) ? "/out" : "/in" + std::to_string(fault.pin);
  return base + site + " " +
         fault_model::polarity_name(model, fault.stuck_at_one);
}

circuit::GateId fault_line(const circuit::Circuit& circuit,
                           const Fault& fault) {
  if (is_stem(fault)) return fault.gate;
  const auto& fanin = circuit.gate(fault.gate).fanin;
  LSIQ_EXPECT(fault.pin >= 0 &&
                  static_cast<std::size_t>(fault.pin) < fanin.size(),
              "fault pin out of range");
  return fanin[static_cast<std::size_t>(fault.pin)];
}

circuit::GateId fault_line(const circuit::CompiledCircuit& compiled,
                           const Fault& fault) {
  if (is_stem(fault)) return fault.gate;
  LSIQ_EXPECT(fault.pin >= 0 && static_cast<std::size_t>(fault.pin) <
                                    compiled.fanin_count(fault.gate),
              "fault pin out of range");
  return compiled.fanin(fault.gate)[fault.pin];
}

}  // namespace lsiq::fault
