#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "sim/parallel_sim.hpp"
#include "sim/wide_word.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::fault {

using circuit::Circuit;
using circuit::CompiledCircuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

// ---- Propagator ----
//
// Both kernels share the work_ scratch: a copy of the current block's
// good-machine words (begin_block), locally overwritten with the faulty
// machine while one fault is in flight. Keeping the scratch clean between
// calls is what lets gate evaluation read a single value array with no
// per-operand bookkeeping. All topology reads go through the compiled CSR
// arrays.

namespace {

/// Validate a shared compiled view before member initializers touch it.
std::shared_ptr<const CompiledCircuit> require_compiled(
    std::shared_ptr<const CompiledCircuit> compiled, const char* who) {
  if (compiled == nullptr) {
    throw ContractViolation(std::string(who) +
                            " requires a compiled circuit");
  }
  return compiled;
}

}  // namespace

Propagator::Propagator(const Circuit& circuit)
    : Propagator(std::make_shared<const CompiledCircuit>(circuit)) {}

Propagator::Propagator(std::shared_ptr<const CompiledCircuit> compiled)
    : compiled_(require_compiled(std::move(compiled), "Propagator")),
      queued_(compiled_->node_count(), 0),
      buckets_(compiled_->depth() + 1),
      work_(compiled_->node_count(), 0) {
  touched_.reserve(compiled_->node_count());
}

void Propagator::schedule_fanout(GateId id) {
  const CompiledCircuit& c = *compiled_;
  const GateId* readers = c.fanout(id);
  const std::size_t count = c.fanout_count(id);
  for (std::size_t i = 0; i < count; ++i) {
    const GateId reader = readers[i];
    if (c.type(reader) == GateType::kDff) continue;  // capture boundary
    if (queued_[reader] != 0) continue;
    queued_[reader] = 1;
    const std::size_t level = c.level(reader);
    buckets_[level].push_back(reader);
    max_level_ = std::max(max_level_, level);
  }
}

void Propagator::begin_block(const std::vector<std::uint64_t>& good) {
  const std::size_t n = compiled_->node_count();
  LSIQ_EXPECT(good.size() == n || good.size() == n + 1,
              "begin_block: good values must cover every gate");
  // A ParallelSimulator buffer carries its block epoch in the trailing
  // word; remember it so the detect paths can catch a buffer that was
  // re-simulated after this sync. Hand-built n-word buffers have no
  // stamp and opt out of the check (stamp_ = 0 is never a real epoch).
  stamp_ = good.size() == n + 1 ? good[n] : 0;
  work_.assign(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(n));
  dirty_level_ = compiled_->depth() + 1;  // nothing written yet
  block_synced_ = true;
}

void Propagator::check_sync(const std::vector<std::uint64_t>& good,
                            const char* who) const {
  LSIQ_EXPECT(block_synced_, std::string(who) +
                                 ": begin_block must follow every new "
                                 "good-machine block");
  const std::size_t n = compiled_->node_count();
  if (stamp_ != 0 && good.size() == n + 1) {
    assert(good[n] == stamp_ &&
           "stale begin_block sync: buffer re-simulated since");
    LSIQ_EXPECT(good[n] == stamp_,
                std::string(who) +
                    ": stale sync — the good-value buffer was re-simulated "
                    "after begin_block; call begin_block again for the new "
                    "block");
  }
}

/// Restore the good view over the resimulation dirty suffix, so the wave
/// kernel can interleave with detect_word_resim on one scratch.
void Propagator::sweep_clean(const std::uint64_t* good) {
  const CompiledCircuit& c = *compiled_;
  if (dirty_level_ > c.depth()) return;
  const auto& order = c.eval_order();
  for (std::size_t i = c.eval_level_begin(dirty_level_); i < order.size();
       ++i) {
    work_[order[i]] = good[order[i]];
  }
  dirty_level_ = c.depth() + 1;
}

bool Propagator::resolve_site(const Fault& fault, const std::uint64_t* good,
                              const std::vector<std::uint64_t>* point_masks,
                              std::uint64_t* result,
                              std::uint64_t* faulty_site) const {
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;

  // A branch fault on a flip-flop's D pin never propagates through logic;
  // it is captured directly at that flip-flop's pseudo primary output,
  // whose index the compiled view keeps per gate (no flip_flops() scan).
  if (!is_stem(fault) && c.type(fault.gate) == GateType::kDff) {
    const std::uint64_t diff = sv_word ^ good[c.fanin(fault.gate)[0]];
    if (point_masks == nullptr) {
      *result = diff;
    } else {
      const std::uint32_t point = c.point_index(fault.gate);
      LSIQ_EXPECT(point != CompiledCircuit::kNoPoint,
                  "resolve_site: DFF gate has no scan-capture point");
      *result = diff & (*point_masks)[point];
    }
    return true;
  }

  if (is_stem(fault)) {
    *faulty_site = sv_word;
  } else {
    LSIQ_EXPECT(fault.pin >= 0 && static_cast<std::size_t>(fault.pin) <
                                      c.fanin_count(fault.gate),
                "resolve_site: fault pin out of range");
    *faulty_site = c.eval_word_with_pin(fault.gate, good, fault.pin,
                                        sv_word);
  }
  if ((*faulty_site ^ good[fault.gate]) == 0) {
    *result = 0;  // fault effect never appears at the site in this block
    return true;
  }
  return false;
}

std::uint64_t Propagator::detect_word(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  check_sync(good_values, "detect_word");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();

  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, point_masks, &resolved, &faulty_site)) {
    return resolved;
  }

  sweep_clean(good);
  std::uint64_t* work = work_.data();
  const GateId site = fault.gate;
  work[site] = faulty_site;
  touched_.push_back(site);
  const std::size_t site_level = c.level(site);
  max_level_ = site_level;
  schedule_fanout(site);

  // Level-ordered wave; every scheduled gate has level > its scheduler.
  // Untouched operands read their good value straight from work, so
  // evaluation needs no faulty/good merge.
  for (std::size_t level = site_level; level <= max_level_; ++level) {
    auto& bucket = buckets_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      const std::uint64_t value = c.eval_word(id, work);
      if (value != work[id]) {
        // A gate is evaluated at most once per wave, so work[id] still
        // holds the good value and the difference is a real fault effect.
        work[id] = value;
        touched_.push_back(id);
        schedule_fanout(id);
      }
    }
    bucket.clear();
  }

  // Observation: untouched points satisfy work == good, contributing 0.
  std::uint64_t detect = 0;
  const auto& points = c.observed_points();
  if (point_masks == nullptr) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= work[points[i]] ^ good[points[i]];
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= (work[points[i]] ^ good[points[i]]) & (*point_masks)[i];
    }
  }

  // Restore the good view for the next fault.
  for (const GateId id : touched_) {
    work[id] = good[id];
  }
  touched_.clear();
  return detect;
}

std::uint64_t Propagator::detect_word_resim(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  check_sync(good_values, "detect_word_resim");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();

  // Site evaluation reads the caller's good array (always clean; work_ may
  // hold the previous fault's machine at levels >= dirty_level_).
  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, point_masks, &resolved, &faulty_site)) {
    return resolved;
  }

  // One flat sweep over the level-sorted suffix recomputes the faulty
  // machine: gates off the fault's cone re-derive their good values, gates
  // on it their faulty ones. Starting at min(site level, dirty level)
  // also overwrites everything the previous fault left behind, which is a
  // no-op start when faults arrive sorted by non-increasing site level.
  const GateId site = fault.gate;
  const std::size_t site_level = c.level(site);
  const std::size_t start_level = std::min(site_level, dirty_level_);
  std::uint64_t* work = work_.data();
  work[site] = faulty_site;
  c.eval_suffix(start_level, work, site);
  dirty_level_ = site_level;
  // A source site (input or flip-flop stem) is never re-evaluated by any
  // later sweep, so its injected value must be cleared by hand; evaluable
  // sites are overwritten naturally once the next fault's sweep reaches
  // them. Observation still sees the injected value: source points read
  // work_ below, and the restore happens after the detect word is built.
  const bool site_is_source =
      c.type(site) == GateType::kInput || c.type(site) == GateType::kDff;

  // Observation: untouched points satisfy work == good, so the diff is 0
  // without any reached-set bookkeeping.
  std::uint64_t detect = 0;
  const auto& points = c.observed_points();
  if (point_masks == nullptr) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= work[points[i]] ^ good[points[i]];
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= (work[points[i]] ^ good[points[i]]) & (*point_masks)[i];
    }
  }
  if (site_is_source) {
    work[site] = good[site];
  }
  return detect;
}

std::uint64_t Propagator::detect_word_transition(
    const Fault& fault, const std::vector<std::uint64_t>& good,
    const fault_model::TwoPatternWindow& window,
    const std::vector<std::uint64_t>* point_masks) {
  check_sync(good, "detect_word_transition");
  const std::uint64_t launch = window.launch_mask(
      fault_line(*compiled_, fault), fault.stuck_at_one, good.data());
  if (launch == 0) return 0;  // no lane launched: capture cannot matter
  return detect_word_resim(fault, good, point_masks) & launch;
}

std::uint64_t Propagator::point_diff_words(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    std::vector<std::uint64_t>& diffs) {
  check_sync(good_values, "point_diff_words");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();
  const auto& points = c.observed_points();
  diffs.assign(points.size(), 0);

  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, nullptr, &resolved, &faulty_site)) {
    // Either the fault effect never appears at the site (resolved == 0,
    // all diffs stay zero) or this is a DFF D-pin capture whose whole
    // difference lands on that flip-flop's pseudo primary output.
    if (resolved != 0) {
      const std::uint32_t point = c.point_index(fault.gate);
      LSIQ_EXPECT(point != CompiledCircuit::kNoPoint,
                  "point_diff_words: DFF gate has no scan-capture point");
      diffs[point] = resolved;
    }
    return resolved;
  }

  // Same suffix sweep as detect_word_resim (see there for the dirty-level
  // bookkeeping); only the observation differs — per point instead of OR.
  const GateId site = fault.gate;
  const std::size_t site_level = c.level(site);
  const std::size_t start_level = std::min(site_level, dirty_level_);
  std::uint64_t* work = work_.data();
  work[site] = faulty_site;
  c.eval_suffix(start_level, work, site);
  dirty_level_ = site_level;
  const bool site_is_source =
      c.type(site) == GateType::kInput || c.type(site) == GateType::kDff;

  std::uint64_t detect = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t diff = work[points[i]] ^ good[points[i]];
    diffs[i] = diff;
    detect |= diff;
  }
  if (site_is_source) {
    work[site] = good[site];
  }
  return detect;
}

namespace {

/// Full faulty-machine simulation of one block (every gate re-evaluated).
/// Independent of the event-driven path on purpose: it is the oracle the
/// fast engines are validated against, so it deliberately walks the plain
/// Circuit container rather than the compiled view.
std::vector<std::uint64_t> simulate_faulty_block_full(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& input_words) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  std::vector<std::uint64_t> values(circuit.gate_count(), 0);

  const auto& inputs = circuit.pattern_inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values[inputs[i]] = input_words[i];
  }
  if (is_stem(fault)) {
    const GateType t = circuit.gate(fault.gate).type;
    if (t == GateType::kInput || t == GateType::kDff) {
      values[fault.gate] = sv_word;
    }
  }
  for (const GateId id : circuit.topological_order()) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    if (!is_stem(fault) && id == fault.gate &&
        g.type != GateType::kDff) {
      values[id] = sim::eval_gate_word_with_pin(circuit, id, values,
                                                fault.pin, sv_word);
    } else {
      values[id] = sim::eval_gate_word(circuit, id, values);
    }
    if (is_stem(fault) && id == fault.gate) {
      values[id] = sv_word;
    }
  }
  return values;
}

std::uint64_t observe_difference(const Circuit& circuit, const Fault& fault,
                                 const std::vector<std::uint64_t>& faulty,
                                 const std::vector<std::uint64_t>& good,
                                 const std::vector<std::uint64_t>*
                                     point_masks) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  const auto& points = circuit.observed_points();
  const std::size_t num_po = circuit.primary_outputs().size();
  const bool dff_pin_fault =
      !is_stem(fault) && circuit.gate(fault.gate).type == GateType::kDff;

  std::uint64_t detect = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::uint64_t faulty_value = faulty[points[i]];
    if (dff_pin_fault && i >= num_po &&
        circuit.flip_flops()[i - num_po] == fault.gate) {
      faulty_value = sv_word;  // the faulted scan capture sees the stuck value
    }
    std::uint64_t diff = faulty_value ^ good[points[i]];
    if (point_masks != nullptr) {
      diff &= (*point_masks)[i];
    }
    detect |= diff;
  }
  return detect;
}

/// Per-block strobe lane masks, or nullptr when the schedule is full (or
/// absent) and masking can be skipped entirely.
class ScheduleMasks {
 public:
  ScheduleMasks(const Circuit& circuit, const StrobeSchedule* schedule)
      : schedule_(schedule != nullptr && !schedule->is_full() ? schedule
                                                              : nullptr) {
    if (schedule != nullptr) {
      LSIQ_EXPECT(schedule->point_count() ==
                      circuit.observed_points().size(),
                  "strobe schedule must cover every observed point");
    }
    if (schedule_ != nullptr) {
      masks_.resize(circuit.observed_points().size());
    }
  }

  /// Masks for one block; nullptr means "everything strobed".
  const std::vector<std::uint64_t>* for_block(std::size_t block) {
    if (schedule_ == nullptr) return nullptr;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
      masks_[i] = schedule_->lane_mask(i, block);
    }
    return &masks_;
  }

 private:
  const StrobeSchedule* schedule_;
  std::vector<std::uint64_t> masks_;
};

/// Live-fault work list for the PPSFP engines: every class index in
/// [class_begin, class_end), sorted by non-increasing fault-site level
/// (ties in class order). Suffix resimulation sweeps [site level, depth],
/// so this order makes each fault's sweep exactly overwrite what the
/// previous fault dirtied — detect words are order-independent, only the
/// sweep start depends on it.
std::vector<std::uint32_t> sorted_live_list(const FaultList& faults,
                                            const CompiledCircuit& compiled,
                                            std::size_t class_begin,
                                            std::size_t class_end) {
  std::vector<std::uint32_t> live(class_end - class_begin);
  for (std::size_t c = 0; c < live.size(); ++c) {
    live[c] = static_cast<std::uint32_t>(class_begin + c);
  }
  std::stable_sort(live.begin(), live.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return compiled.level(faults.representatives()[a].gate) >
                            compiled.level(faults.representatives()[b].gate);
                   });
  return live;
}

void finalize_result(const FaultList& faults, FaultSimResult& result) {
  result.finalize(faults);
}

}  // namespace

void FaultSimResult::finalize(const FaultList& faults) {
  covered_faults = 0;
  detected_classes = 0;
  for (std::size_t c = 0; c < first_detection.size(); ++c) {
    if (first_detection[c] >= 0) {
      ++detected_classes;
      covered_faults += faults.class_size(c);
    }
  }
  coverage = static_cast<double>(covered_faults) /
             static_cast<double>(faults.fault_count());
}

CoverageCurve FaultSimResult::curve(const FaultList& faults,
                                    std::size_t pattern_count) const {
  std::vector<std::size_t> weights(faults.class_count());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] = faults.class_size(c);
  }
  return CoverageCurve::from_first_detection(
      first_detection, weights, faults.fault_count(), pattern_count);
}

FaultSimResult simulate_serial(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_serial: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;

  // Good-machine simulation, one pass, values retained per block.
  sim::ParallelSimulator good_sim(circuit);
  std::vector<std::vector<std::uint64_t>> good_blocks;
  good_blocks.reserve(patterns.block_count());
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    good_blocks.push_back(good_sim.values());
  }

  // Reference launch word for a transition fault: bit p = the fault line's
  // good value at pattern p-1, matched against the pre-transition value.
  // Kept independent of fault_model::TwoPatternWindow on purpose — the
  // serial engine is the oracle the fast engines' window bookkeeping is
  // cross-checked against.
  const auto launch_word = [&](const Fault& fault, std::size_t b) {
    const GateId line = fault_line(circuit, fault);
    const std::uint64_t previous =
        (good_blocks[b][line] << 1) |
        (b > 0 ? good_blocks[b - 1][line] >> 63 : 0);
    std::uint64_t launch = fault.stuck_at_one ? previous : ~previous;
    if (b == 0) launch &= ~1ULL;  // the first pattern has no launch
    return launch;
  };

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    // Cooperative watchdog checkpoint (free when no deadline is active).
    util::poll_deadline();
    const Fault& fault = faults.representatives()[c];
    for (std::size_t b = 0; b < patterns.block_count(); ++b) {
      const std::vector<std::uint64_t> faulty = simulate_faulty_block_full(
          circuit, fault, patterns.block_words(b));
      std::uint64_t detect =
          observe_difference(circuit, fault, faulty, good_blocks[b],
                             strobe_masks.for_block(b)) &
          patterns.block_mask(b);
      if (transition) detect &= launch_word(fault, b);
      if (detect != 0) {
        result.first_detection[c] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
        break;
      }
    }
  }
  finalize_result(faults, result);
  return result;
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values) {
  Propagator propagator(circuit);
  propagator.begin_block(good_values);
  return propagator.detect_word(fault, good_values);
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  Propagator propagator(circuit);
  propagator.begin_block(good_values);
  return propagator.detect_word(fault, good_values, point_masks);
}

namespace {

/// The classic 64-lane PPSFP engine over one class range — the exact
/// inner loops simulate_ppsfp / simulate_ppsfp_mt have always run, with
/// the live list restricted to [class_begin, class_end) and detections
/// written straight into the caller's first_detection vector.
void grade_range_narrow(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    const std::shared_ptr<const CompiledCircuit>& compiled, bool use_pool,
    std::size_t num_threads, std::size_t class_begin, std::size_t class_end,
    std::vector<std::int64_t>& first_detection) {
  const Circuit& circuit = faults.circuit();
  ScheduleMasks strobe_masks(circuit, schedule);
  sim::ParallelSimulator good_sim(compiled);
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  // One launch window, advanced on the coordinating thread between blocks
  // and read-only inside a block, so the gating each lane applies is a
  // pure function of the block index — thread-count independence holds.
  fault_model::TwoPatternWindow window(
      transition ? compiled->node_count() : 0);

  // Live list in resimulation order, compacted in place as faults drop.
  std::vector<std::uint32_t> live =
      sorted_live_list(faults, *compiled, class_begin, class_end);

  if (!use_pool) {
    Propagator propagator(compiled);
    for (std::size_t b = 0; b < patterns.block_count() && !live.empty();
         ++b) {
      // Cooperative watchdog checkpoint, once per 64-pattern block (free
      // when no deadline is active).
      util::poll_deadline();
      good_sim.simulate_block(patterns.block_words(b));
      const std::vector<std::uint64_t>& good = good_sim.values();
      const std::uint64_t mask = patterns.block_mask(b);
      const std::vector<std::uint64_t>* point_masks =
          strobe_masks.for_block(b);

      propagator.begin_block(good);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::uint32_t c = live[i];
        const Fault& rep = faults.representatives()[c];
        const std::uint64_t detect =
            (transition
                 ? propagator.detect_word_transition(rep, good, window,
                                                     point_masks)
                 : propagator.detect_word_resim(rep, good, point_masks)) &
            mask;
        if (detect != 0) {
          first_detection[c] =
              static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
        } else {
          live[kept++] = c;  // still undetected: keep simulating it
        }
      }
      live.resize(kept);
      if (transition) window.advance(good);
    }
    return;
  }

  util::ThreadPool pool(num_threads);
  const std::size_t lanes = pool.size();
  std::vector<Propagator> propagators;
  propagators.reserve(lanes);
  for (std::size_t t = 0; t < lanes; ++t) {
    propagators.emplace_back(compiled);
  }

  // Each lane takes a strided slice of the live list — still
  // non-increasing in site level (the resim fast path), and far better
  // balanced than contiguous chunks, whose per-fault sweep cost varies
  // with site level. Detect words are written per live-list slot and
  // folded into first_detection serially — the result bytes are
  // independent of thread interleaving by construction.
  std::vector<std::uint64_t> detects(live.size(), 0);

  for (std::size_t b = 0; b < patterns.block_count() && !live.empty(); ++b) {
    // Watchdog checkpoint on the coordinating thread: lanes only run
    // inside pool.run, so polling here bounds the whole block.
    util::poll_deadline();
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    const std::uint64_t mask = patterns.block_mask(b);
    const std::vector<std::uint64_t>* point_masks = strobe_masks.for_block(b);

    const std::size_t live_count = live.size();
    pool.run([&](std::size_t lane) {
      if (lane >= live_count) return;
      Propagator& propagator = propagators[lane];
      propagator.begin_block(good);
      for (std::size_t i = lane; i < live_count; i += lanes) {
        const Fault& rep = faults.representatives()[live[i]];
        detects[i] =
            (transition
                 ? propagator.detect_word_transition(rep, good, window,
                                                     point_masks)
                 : propagator.detect_word_resim(rep, good, point_masks)) &
            mask;
      }
    });

    // Per-block fault-drop compaction, in live-list order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live_count; ++i) {
      if (detects[i] != 0) {
        first_detection[live[i]] = static_cast<std::int64_t>(
            b * 64 + std::countr_zero(detects[i]));
      } else {
        live[kept++] = live[i];
      }
    }
    live.resize(kept);
    if (transition) window.advance(good);
  }
}

// ---- wide kernel ----
//
// The N x 64-lane mirror of Propagator's suffix-resimulation path: the
// same site resolution, the same levelized suffix sweep (through the
// width-generic CompiledCircuit::eval_suffix_t), the same observation OR
// — every scalar uint64_t op becomes a WideWord<N> op. detect words per
// fault per pattern are bit-identical to the narrow kernel's because the
// whole computation is bitwise and per-lane independent.

template <std::size_t N>
class WidePropagator {
 public:
  using Word = sim::WideWord<N>;

  explicit WidePropagator(std::shared_ptr<const CompiledCircuit> compiled)
      : compiled_(require_compiled(std::move(compiled), "WidePropagator")),
        work_(compiled_->node_count(), Word{}) {}

  void begin_block(const Word* good) {
    std::copy(good, good + compiled_->node_count(), work_.begin());
    dirty_level_ = compiled_->depth() + 1;
  }

  Word detect_word_resim(const Fault& fault, const Word* good,
                         const Word* point_masks) {
    const CompiledCircuit& c = *compiled_;
    Word resolved{};
    Word faulty_site{};
    if (resolve_site(fault, good, point_masks, &resolved, &faulty_site)) {
      return resolved;
    }

    const GateId site = fault.gate;
    const std::size_t site_level = c.level(site);
    const std::size_t start_level = std::min(site_level, dirty_level_);
    Word* work = work_.data();
    work[site] = faulty_site;
    c.eval_suffix_t<Word>(start_level, work, site);
    dirty_level_ = site_level;
    const bool site_is_source =
        c.type(site) == GateType::kInput || c.type(site) == GateType::kDff;

    Word detect{};
    const auto& points = c.observed_points();
    if (point_masks == nullptr) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        detect |= work[points[i]] ^ good[points[i]];
      }
    } else {
      for (std::size_t i = 0; i < points.size(); ++i) {
        detect |= (work[points[i]] ^ good[points[i]]) & point_masks[i];
      }
    }
    if (site_is_source) {
      work[site] = good[site];
    }
    return detect;
  }

  Word detect_word_transition(
      const Fault& fault, const Word* good,
      const fault_model::WideTwoPatternWindow<N>& window,
      const Word* point_masks) {
    const Word launch = window.launch_mask(fault_line(*compiled_, fault),
                                           fault.stuck_at_one, good);
    if (!launch.any()) return Word{};  // no lane launched
    return detect_word_resim(fault, good, point_masks) & launch;
  }

 private:
  bool resolve_site(const Fault& fault, const Word* good,
                    const Word* point_masks, Word* result,
                    Word* faulty_site) const {
    const CompiledCircuit& c = *compiled_;
    const Word sv_word = fault.stuck_at_one ? Word::ones() : Word::zeros();

    if (!is_stem(fault) && c.type(fault.gate) == GateType::kDff) {
      const Word diff = sv_word ^ good[c.fanin(fault.gate)[0]];
      if (point_masks == nullptr) {
        *result = diff;
      } else {
        const std::uint32_t point = c.point_index(fault.gate);
        LSIQ_EXPECT(point != CompiledCircuit::kNoPoint,
                    "resolve_site: DFF gate has no scan-capture point");
        *result = diff & point_masks[point];
      }
      return true;
    }

    if (is_stem(fault)) {
      *faulty_site = sv_word;
    } else {
      LSIQ_EXPECT(fault.pin >= 0 && static_cast<std::size_t>(fault.pin) <
                                        c.fanin_count(fault.gate),
                  "resolve_site: fault pin out of range");
      *faulty_site = c.eval_value_with_pin<Word>(fault.gate, good, fault.pin,
                                                 sv_word);
    }
    if (!(*faulty_site ^ good[fault.gate]).any()) {
      *result = Word{};  // effect never appears at the site in this block
      return true;
    }
    return false;
  }

  std::shared_ptr<const CompiledCircuit> compiled_;
  std::vector<Word> work_;
  std::size_t dirty_level_ = 0;
};

/// First detected pattern index inside wide block `wide_block`, given a
/// nonzero wide detect word.
template <std::size_t N>
std::int64_t first_wide_detection(std::size_t wide_block,
                                  const sim::WideWord<N>& detect) {
  for (std::size_t j = 0; j < N; ++j) {
    if (detect.w[j] != 0) {
      return static_cast<std::int64_t>((wide_block * N + j) * 64 +
                                       std::countr_zero(detect.w[j]));
    }
  }
  return -1;
}

/// The wide engine over one class range: per wide block of N*64 patterns,
/// one width-generic good-machine pass, then per live fault one wide
/// detect word. Structure mirrors grade_range_narrow exactly; fault drop
/// happens per wide block, which cannot change first_detection because
/// detect words are pure per-pattern functions.
template <std::size_t N>
void grade_range_wide(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    const std::shared_ptr<const CompiledCircuit>& compiled, bool use_pool,
    std::size_t num_threads, std::size_t class_begin, std::size_t class_end,
    std::vector<std::int64_t>& first_detection) {
  using Word = sim::WideWord<N>;
  const CompiledCircuit& c = *compiled;
  const auto& inputs = c.pattern_inputs();
  const auto& points = c.observed_points();
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  const std::size_t narrow_blocks = patterns.block_count();
  const std::size_t wide_blocks = (narrow_blocks + N - 1) / N;

  if (schedule != nullptr) {
    LSIQ_EXPECT(schedule->point_count() == points.size(),
                "strobe schedule must cover every observed point");
  }
  const StrobeSchedule* strobes =
      (schedule != nullptr && !schedule->is_full()) ? schedule : nullptr;

  std::vector<Word> good(c.node_count(), Word{});
  std::vector<Word> point_mask_words(strobes != nullptr ? points.size() : 0);
  fault_model::WideTwoPatternWindow<N> window(
      transition ? c.node_count() : 0);

  std::vector<std::uint32_t> live =
      sorted_live_list(faults, c, class_begin, class_end);
  std::vector<Word> detects(live.size(), Word{});

  // Lazily constructed so the single-threaded path spawns no pool.
  std::unique_ptr<util::ThreadPool> pool;
  std::vector<WidePropagator<N>> propagators;
  std::size_t lanes = 1;
  if (use_pool) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
    lanes = pool->size();
  }
  propagators.reserve(lanes);
  for (std::size_t t = 0; t < lanes; ++t) {
    propagators.emplace_back(compiled);
  }

  // --- narrow warm-up over the first wide block ---
  //
  // Grading from pattern 0 at full width is a pessimization: the bulk of
  // a random program's detections land in the first few 64-pattern
  // blocks, and a fault detected there costs an N-word sweep wide but a
  // one-word sweep narrow. So the first wide block's worth of patterns
  // runs through the classic narrow kernel — identical detect words,
  // identical first_detection — and the wide loop below starts at wide
  // block 1 with only the harder faults still live.
  {
    const std::size_t warm_blocks = std::min<std::size_t>(narrow_blocks, N);
    ScheduleMasks strobe_masks(faults.circuit(), schedule);
    sim::ParallelSimulator good_sim(compiled);
    fault_model::TwoPatternWindow narrow_window(
        transition ? c.node_count() : 0);
    std::vector<Propagator> narrow_propagators;
    narrow_propagators.reserve(lanes);
    for (std::size_t t = 0; t < lanes; ++t) {
      narrow_propagators.emplace_back(compiled);
    }
    std::vector<std::uint64_t> narrow_detects(live.size(), 0);

    for (std::size_t b = 0; b < warm_blocks && !live.empty(); ++b) {
      util::poll_deadline();
      good_sim.simulate_block(patterns.block_words(b));
      const std::vector<std::uint64_t>& good = good_sim.values();
      const std::uint64_t mask = patterns.block_mask(b);
      const std::vector<std::uint64_t>* narrow_point_masks =
          strobe_masks.for_block(b);

      const std::size_t live_count = live.size();
      if (pool == nullptr) {
        Propagator& propagator = narrow_propagators[0];
        propagator.begin_block(good);
        for (std::size_t i = 0; i < live_count; ++i) {
          const Fault& rep = faults.representatives()[live[i]];
          narrow_detects[i] =
              (transition ? propagator.detect_word_transition(
                                rep, good, narrow_window, narrow_point_masks)
                          : propagator.detect_word_resim(
                                rep, good, narrow_point_masks)) &
              mask;
        }
      } else {
        pool->run([&](std::size_t lane) {
          if (lane >= live_count) return;
          Propagator& propagator = narrow_propagators[lane];
          propagator.begin_block(good);
          for (std::size_t i = lane; i < live_count; i += lanes) {
            const Fault& rep = faults.representatives()[live[i]];
            narrow_detects[i] =
                (transition
                     ? propagator.detect_word_transition(
                           rep, good, narrow_window, narrow_point_masks)
                     : propagator.detect_word_resim(rep, good,
                                                    narrow_point_masks)) &
                mask;
          }
        });
      }

      std::size_t kept = 0;
      for (std::size_t i = 0; i < live_count; ++i) {
        if (narrow_detects[i] != 0) {
          first_detection[live[i]] = static_cast<std::int64_t>(
              b * 64 + std::countr_zero(narrow_detects[i]));
        } else {
          live[kept++] = live[i];
        }
      }
      live.resize(kept);
      if (transition) narrow_window.advance(good);
    }

    // Hand the launch carry across the narrow/wide seam: lane 0 of wide
    // block 1 launches against the last pattern the warm-up graded.
    if (transition && !live.empty()) {
      window.seed_from_narrow(good_sim.values());
    }
  }

  for (std::size_t wb = 1; wb < wide_blocks && !live.empty(); ++wb) {
    util::poll_deadline();

    // Wide good-machine pass over narrow blocks [wb*N, wb*N + N). Blocks
    // past the end of the program read all-zero inputs; every lane they
    // produce is masked out below, so the values never matter.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      Word w{};
      for (std::size_t j = 0; j < N; ++j) {
        const std::size_t b = wb * N + j;
        w.w[j] = b < narrow_blocks ? patterns.block_word(i, b) : 0;
      }
      good[inputs[i]] = w;
    }
    c.eval_suffix_t<Word>(0, good.data());

    Word mask{};
    for (std::size_t j = 0; j < N; ++j) {
      const std::size_t b = wb * N + j;
      mask.w[j] = b < narrow_blocks ? patterns.block_mask(b) : 0;
    }
    const Word* point_masks = nullptr;
    if (strobes != nullptr) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        Word w{};
        for (std::size_t j = 0; j < N; ++j) {
          const std::size_t b = wb * N + j;
          w.w[j] = b < narrow_blocks ? strobes->lane_mask(i, b) : 0;
        }
        point_mask_words[i] = w;
      }
      point_masks = point_mask_words.data();
    }

    const std::size_t live_count = live.size();
    if (pool == nullptr) {
      WidePropagator<N>& propagator = propagators[0];
      propagator.begin_block(good.data());
      for (std::size_t i = 0; i < live_count; ++i) {
        const Fault& rep = faults.representatives()[live[i]];
        detects[i] =
            (transition
                 ? propagator.detect_word_transition(rep, good.data(),
                                                     window, point_masks)
                 : propagator.detect_word_resim(rep, good.data(),
                                                point_masks)) &
            mask;
      }
    } else {
      pool->run([&](std::size_t lane) {
        if (lane >= live_count) return;
        WidePropagator<N>& propagator = propagators[lane];
        propagator.begin_block(good.data());
        for (std::size_t i = lane; i < live_count; i += lanes) {
          const Fault& rep = faults.representatives()[live[i]];
          detects[i] =
              (transition
                   ? propagator.detect_word_transition(rep, good.data(),
                                                       window, point_masks)
                   : propagator.detect_word_resim(rep, good.data(),
                                                  point_masks)) &
              mask;
        }
      });
    }

    // Per-wide-block fault-drop compaction, in live-list order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live_count; ++i) {
      if (detects[i].any()) {
        first_detection[live[i]] = first_wide_detection<N>(wb, detects[i]);
      } else {
        live[kept++] = live[i];
      }
    }
    live.resize(kept);
    if (transition) window.advance(good.data());
  }
}

}  // namespace

void grade_class_range(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    const std::shared_ptr<const CompiledCircuit>& compiled,
    std::size_t width, bool use_pool, std::size_t num_threads,
    std::size_t class_begin, std::size_t class_end,
    std::vector<std::int64_t>& first_detection) {
  LSIQ_EXPECT(compiled != nullptr,
              "grade_class_range: compiled view required");
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "grade_class_range: compiled view does not match the circuit");
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "grade_class_range: pattern width does not match circuit");
  LSIQ_EXPECT(class_begin <= class_end && class_end <= faults.class_count(),
              "grade_class_range: class range out of bounds");
  LSIQ_EXPECT(first_detection.size() == faults.class_count(),
              "grade_class_range: first_detection must cover every class");
  switch (width) {
    case 1:
      grade_range_narrow(faults, patterns, schedule, compiled, use_pool,
                         num_threads, class_begin, class_end,
                         first_detection);
      return;
    case 4:
      grade_range_wide<4>(faults, patterns, schedule, compiled, use_pool,
                          num_threads, class_begin, class_end,
                          first_detection);
      return;
    case 8:
      grade_range_wide<8>(faults, patterns, schedule, compiled, use_pool,
                          num_threads, class_begin, class_end,
                          first_detection);
      return;
    default:
      throw ContractViolation("grade_class_range: width must be 1, 4, or 8");
  }
}

FaultSimResult simulate_ppsfp(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    std::shared_ptr<const CompiledCircuit> compiled, std::size_t width) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_ppsfp: pattern width does not match circuit");
  // One compiled view shared by the good-machine simulator and the
  // propagator; a caller-supplied view skips recompilation entirely.
  if (compiled == nullptr) {
    compiled = std::make_shared<const CompiledCircuit>(circuit);
  }
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "simulate_ppsfp: compiled view does not match the circuit");

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);
  grade_class_range(faults, patterns, schedule, compiled, width,
                    /*use_pool=*/false, 1, 0, faults.class_count(),
                    result.first_detection);
  finalize_result(faults, result);
  return result;
}

FaultSimResult simulate_ppsfp_mt(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule, std::size_t num_threads,
    std::shared_ptr<const CompiledCircuit> compiled, std::size_t width) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_ppsfp_mt: pattern width does not match circuit");
  if (compiled == nullptr) {
    compiled = std::make_shared<const CompiledCircuit>(circuit);
  }
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "simulate_ppsfp_mt: compiled view does not match the circuit");

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);
  grade_class_range(faults, patterns, schedule, compiled, width,
                    /*use_pool=*/true, num_threads, 0, faults.class_count(),
                    result.first_detection);
  finalize_result(faults, result);
  return result;
}

}  // namespace lsiq::fault
