#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>

#include "sim/parallel_sim.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::fault {

using circuit::Circuit;
using circuit::CompiledCircuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

// ---- Propagator ----
//
// Both kernels share the work_ scratch: a copy of the current block's
// good-machine words (begin_block), locally overwritten with the faulty
// machine while one fault is in flight. Keeping the scratch clean between
// calls is what lets gate evaluation read a single value array with no
// per-operand bookkeeping. All topology reads go through the compiled CSR
// arrays.

namespace {

/// Validate a shared compiled view before member initializers touch it.
std::shared_ptr<const CompiledCircuit> require_compiled(
    std::shared_ptr<const CompiledCircuit> compiled, const char* who) {
  if (compiled == nullptr) {
    throw ContractViolation(std::string(who) +
                            " requires a compiled circuit");
  }
  return compiled;
}

}  // namespace

Propagator::Propagator(const Circuit& circuit)
    : Propagator(std::make_shared<const CompiledCircuit>(circuit)) {}

Propagator::Propagator(std::shared_ptr<const CompiledCircuit> compiled)
    : compiled_(require_compiled(std::move(compiled), "Propagator")),
      queued_(compiled_->node_count(), 0),
      buckets_(compiled_->depth() + 1),
      work_(compiled_->node_count(), 0) {
  touched_.reserve(compiled_->node_count());
}

void Propagator::schedule_fanout(GateId id) {
  const CompiledCircuit& c = *compiled_;
  const GateId* readers = c.fanout(id);
  const std::size_t count = c.fanout_count(id);
  for (std::size_t i = 0; i < count; ++i) {
    const GateId reader = readers[i];
    if (c.type(reader) == GateType::kDff) continue;  // capture boundary
    if (queued_[reader] != 0) continue;
    queued_[reader] = 1;
    const std::size_t level = c.level(reader);
    buckets_[level].push_back(reader);
    max_level_ = std::max(max_level_, level);
  }
}

void Propagator::begin_block(const std::vector<std::uint64_t>& good) {
  LSIQ_EXPECT(good.size() == compiled_->node_count(),
              "begin_block: good values must cover every gate");
  work_.assign(good.begin(), good.end());
  dirty_level_ = compiled_->depth() + 1;  // nothing written yet
  block_synced_ = true;
}

/// Restore the good view over the resimulation dirty suffix, so the wave
/// kernel can interleave with detect_word_resim on one scratch.
void Propagator::sweep_clean(const std::uint64_t* good) {
  const CompiledCircuit& c = *compiled_;
  if (dirty_level_ > c.depth()) return;
  const auto& order = c.eval_order();
  for (std::size_t i = c.eval_level_begin(dirty_level_); i < order.size();
       ++i) {
    work_[order[i]] = good[order[i]];
  }
  dirty_level_ = c.depth() + 1;
}

bool Propagator::resolve_site(const Fault& fault, const std::uint64_t* good,
                              const std::vector<std::uint64_t>* point_masks,
                              std::uint64_t* result,
                              std::uint64_t* faulty_site) const {
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;

  // A branch fault on a flip-flop's D pin never propagates through logic;
  // it is captured directly at that flip-flop's pseudo primary output,
  // whose index the compiled view keeps per gate (no flip_flops() scan).
  if (!is_stem(fault) && c.type(fault.gate) == GateType::kDff) {
    const std::uint64_t diff = sv_word ^ good[c.fanin(fault.gate)[0]];
    if (point_masks == nullptr) {
      *result = diff;
    } else {
      const std::uint32_t point = c.point_index(fault.gate);
      LSIQ_EXPECT(point != CompiledCircuit::kNoPoint,
                  "resolve_site: DFF gate has no scan-capture point");
      *result = diff & (*point_masks)[point];
    }
    return true;
  }

  if (is_stem(fault)) {
    *faulty_site = sv_word;
  } else {
    LSIQ_EXPECT(fault.pin >= 0 && static_cast<std::size_t>(fault.pin) <
                                      c.fanin_count(fault.gate),
                "resolve_site: fault pin out of range");
    *faulty_site = c.eval_word_with_pin(fault.gate, good, fault.pin,
                                        sv_word);
  }
  if ((*faulty_site ^ good[fault.gate]) == 0) {
    *result = 0;  // fault effect never appears at the site in this block
    return true;
  }
  return false;
}

std::uint64_t Propagator::detect_word(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  LSIQ_EXPECT(block_synced_,
              "detect_word: begin_block must follow every new good-machine "
              "block");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();

  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, point_masks, &resolved, &faulty_site)) {
    return resolved;
  }

  sweep_clean(good);
  std::uint64_t* work = work_.data();
  const GateId site = fault.gate;
  work[site] = faulty_site;
  touched_.push_back(site);
  const std::size_t site_level = c.level(site);
  max_level_ = site_level;
  schedule_fanout(site);

  // Level-ordered wave; every scheduled gate has level > its scheduler.
  // Untouched operands read their good value straight from work, so
  // evaluation needs no faulty/good merge.
  for (std::size_t level = site_level; level <= max_level_; ++level) {
    auto& bucket = buckets_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      const std::uint64_t value = c.eval_word(id, work);
      if (value != work[id]) {
        // A gate is evaluated at most once per wave, so work[id] still
        // holds the good value and the difference is a real fault effect.
        work[id] = value;
        touched_.push_back(id);
        schedule_fanout(id);
      }
    }
    bucket.clear();
  }

  // Observation: untouched points satisfy work == good, contributing 0.
  std::uint64_t detect = 0;
  const auto& points = c.observed_points();
  if (point_masks == nullptr) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= work[points[i]] ^ good[points[i]];
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= (work[points[i]] ^ good[points[i]]) & (*point_masks)[i];
    }
  }

  // Restore the good view for the next fault.
  for (const GateId id : touched_) {
    work[id] = good[id];
  }
  touched_.clear();
  return detect;
}

std::uint64_t Propagator::detect_word_resim(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  LSIQ_EXPECT(block_synced_,
              "detect_word_resim: begin_block must follow every new "
              "good-machine block");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();

  // Site evaluation reads the caller's good array (always clean; work_ may
  // hold the previous fault's machine at levels >= dirty_level_).
  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, point_masks, &resolved, &faulty_site)) {
    return resolved;
  }

  // One flat sweep over the level-sorted suffix recomputes the faulty
  // machine: gates off the fault's cone re-derive their good values, gates
  // on it their faulty ones. Starting at min(site level, dirty level)
  // also overwrites everything the previous fault left behind, which is a
  // no-op start when faults arrive sorted by non-increasing site level.
  const GateId site = fault.gate;
  const std::size_t site_level = c.level(site);
  const std::size_t start_level = std::min(site_level, dirty_level_);
  std::uint64_t* work = work_.data();
  work[site] = faulty_site;
  c.eval_suffix(start_level, work, site);
  dirty_level_ = site_level;
  // A source site (input or flip-flop stem) is never re-evaluated by any
  // later sweep, so its injected value must be cleared by hand; evaluable
  // sites are overwritten naturally once the next fault's sweep reaches
  // them. Observation still sees the injected value: source points read
  // work_ below, and the restore happens after the detect word is built.
  const bool site_is_source =
      c.type(site) == GateType::kInput || c.type(site) == GateType::kDff;

  // Observation: untouched points satisfy work == good, so the diff is 0
  // without any reached-set bookkeeping.
  std::uint64_t detect = 0;
  const auto& points = c.observed_points();
  if (point_masks == nullptr) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= work[points[i]] ^ good[points[i]];
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      detect |= (work[points[i]] ^ good[points[i]]) & (*point_masks)[i];
    }
  }
  if (site_is_source) {
    work[site] = good[site];
  }
  return detect;
}

std::uint64_t Propagator::detect_word_transition(
    const Fault& fault, const std::vector<std::uint64_t>& good,
    const fault_model::TwoPatternWindow& window,
    const std::vector<std::uint64_t>* point_masks) {
  LSIQ_EXPECT(block_synced_,
              "detect_word_transition: begin_block must follow every new "
              "good-machine block");
  const std::uint64_t launch = window.launch_mask(
      fault_line(*compiled_, fault), fault.stuck_at_one, good.data());
  if (launch == 0) return 0;  // no lane launched: capture cannot matter
  return detect_word_resim(fault, good, point_masks) & launch;
}

std::uint64_t Propagator::point_diff_words(
    const Fault& fault, const std::vector<std::uint64_t>& good_values,
    std::vector<std::uint64_t>& diffs) {
  LSIQ_EXPECT(block_synced_,
              "point_diff_words: begin_block must follow every new "
              "good-machine block");
  const CompiledCircuit& c = *compiled_;
  const std::uint64_t* good = good_values.data();
  const auto& points = c.observed_points();
  diffs.assign(points.size(), 0);

  std::uint64_t resolved = 0;
  std::uint64_t faulty_site = 0;
  if (resolve_site(fault, good, nullptr, &resolved, &faulty_site)) {
    // Either the fault effect never appears at the site (resolved == 0,
    // all diffs stay zero) or this is a DFF D-pin capture whose whole
    // difference lands on that flip-flop's pseudo primary output.
    if (resolved != 0) {
      const std::uint32_t point = c.point_index(fault.gate);
      LSIQ_EXPECT(point != CompiledCircuit::kNoPoint,
                  "point_diff_words: DFF gate has no scan-capture point");
      diffs[point] = resolved;
    }
    return resolved;
  }

  // Same suffix sweep as detect_word_resim (see there for the dirty-level
  // bookkeeping); only the observation differs — per point instead of OR.
  const GateId site = fault.gate;
  const std::size_t site_level = c.level(site);
  const std::size_t start_level = std::min(site_level, dirty_level_);
  std::uint64_t* work = work_.data();
  work[site] = faulty_site;
  c.eval_suffix(start_level, work, site);
  dirty_level_ = site_level;
  const bool site_is_source =
      c.type(site) == GateType::kInput || c.type(site) == GateType::kDff;

  std::uint64_t detect = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t diff = work[points[i]] ^ good[points[i]];
    diffs[i] = diff;
    detect |= diff;
  }
  if (site_is_source) {
    work[site] = good[site];
  }
  return detect;
}

namespace {

/// Full faulty-machine simulation of one block (every gate re-evaluated).
/// Independent of the event-driven path on purpose: it is the oracle the
/// fast engines are validated against, so it deliberately walks the plain
/// Circuit container rather than the compiled view.
std::vector<std::uint64_t> simulate_faulty_block_full(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& input_words) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  std::vector<std::uint64_t> values(circuit.gate_count(), 0);

  const auto& inputs = circuit.pattern_inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values[inputs[i]] = input_words[i];
  }
  if (is_stem(fault)) {
    const GateType t = circuit.gate(fault.gate).type;
    if (t == GateType::kInput || t == GateType::kDff) {
      values[fault.gate] = sv_word;
    }
  }
  for (const GateId id : circuit.topological_order()) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    if (!is_stem(fault) && id == fault.gate &&
        g.type != GateType::kDff) {
      values[id] = sim::eval_gate_word_with_pin(circuit, id, values,
                                                fault.pin, sv_word);
    } else {
      values[id] = sim::eval_gate_word(circuit, id, values);
    }
    if (is_stem(fault) && id == fault.gate) {
      values[id] = sv_word;
    }
  }
  return values;
}

std::uint64_t observe_difference(const Circuit& circuit, const Fault& fault,
                                 const std::vector<std::uint64_t>& faulty,
                                 const std::vector<std::uint64_t>& good,
                                 const std::vector<std::uint64_t>*
                                     point_masks) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  const auto& points = circuit.observed_points();
  const std::size_t num_po = circuit.primary_outputs().size();
  const bool dff_pin_fault =
      !is_stem(fault) && circuit.gate(fault.gate).type == GateType::kDff;

  std::uint64_t detect = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::uint64_t faulty_value = faulty[points[i]];
    if (dff_pin_fault && i >= num_po &&
        circuit.flip_flops()[i - num_po] == fault.gate) {
      faulty_value = sv_word;  // the faulted scan capture sees the stuck value
    }
    std::uint64_t diff = faulty_value ^ good[points[i]];
    if (point_masks != nullptr) {
      diff &= (*point_masks)[i];
    }
    detect |= diff;
  }
  return detect;
}

/// Per-block strobe lane masks, or nullptr when the schedule is full (or
/// absent) and masking can be skipped entirely.
class ScheduleMasks {
 public:
  ScheduleMasks(const Circuit& circuit, const StrobeSchedule* schedule)
      : schedule_(schedule != nullptr && !schedule->is_full() ? schedule
                                                              : nullptr) {
    if (schedule != nullptr) {
      LSIQ_EXPECT(schedule->point_count() ==
                      circuit.observed_points().size(),
                  "strobe schedule must cover every observed point");
    }
    if (schedule_ != nullptr) {
      masks_.resize(circuit.observed_points().size());
    }
  }

  /// Masks for one block; nullptr means "everything strobed".
  const std::vector<std::uint64_t>* for_block(std::size_t block) {
    if (schedule_ == nullptr) return nullptr;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
      masks_[i] = schedule_->lane_mask(i, block);
    }
    return &masks_;
  }

 private:
  const StrobeSchedule* schedule_;
  std::vector<std::uint64_t> masks_;
};

/// Live-fault work list for the PPSFP engines: every class index, sorted
/// by non-increasing fault-site level (ties in class order). Suffix
/// resimulation sweeps [site level, depth], so this order makes each
/// fault's sweep exactly overwrite what the previous fault dirtied —
/// detect words are order-independent, only the sweep start depends on it.
std::vector<std::uint32_t> sorted_live_list(const FaultList& faults,
                                            const CompiledCircuit& compiled) {
  std::vector<std::uint32_t> live(faults.class_count());
  for (std::size_t c = 0; c < live.size(); ++c) {
    live[c] = static_cast<std::uint32_t>(c);
  }
  std::stable_sort(live.begin(), live.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return compiled.level(faults.representatives()[a].gate) >
                            compiled.level(faults.representatives()[b].gate);
                   });
  return live;
}

void finalize_result(const FaultList& faults, FaultSimResult& result) {
  result.covered_faults = 0;
  result.detected_classes = 0;
  for (std::size_t c = 0; c < result.first_detection.size(); ++c) {
    if (result.first_detection[c] >= 0) {
      ++result.detected_classes;
      result.covered_faults += faults.class_size(c);
    }
  }
  result.coverage = static_cast<double>(result.covered_faults) /
                    static_cast<double>(faults.fault_count());
}

}  // namespace

CoverageCurve FaultSimResult::curve(const FaultList& faults,
                                    std::size_t pattern_count) const {
  std::vector<std::size_t> weights(faults.class_count());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] = faults.class_size(c);
  }
  return CoverageCurve::from_first_detection(
      first_detection, weights, faults.fault_count(), pattern_count);
}

FaultSimResult simulate_serial(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_serial: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;

  // Good-machine simulation, one pass, values retained per block.
  sim::ParallelSimulator good_sim(circuit);
  std::vector<std::vector<std::uint64_t>> good_blocks;
  good_blocks.reserve(patterns.block_count());
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    good_blocks.push_back(good_sim.values());
  }

  // Reference launch word for a transition fault: bit p = the fault line's
  // good value at pattern p-1, matched against the pre-transition value.
  // Kept independent of fault_model::TwoPatternWindow on purpose — the
  // serial engine is the oracle the fast engines' window bookkeeping is
  // cross-checked against.
  const auto launch_word = [&](const Fault& fault, std::size_t b) {
    const GateId line = fault_line(circuit, fault);
    const std::uint64_t previous =
        (good_blocks[b][line] << 1) |
        (b > 0 ? good_blocks[b - 1][line] >> 63 : 0);
    std::uint64_t launch = fault.stuck_at_one ? previous : ~previous;
    if (b == 0) launch &= ~1ULL;  // the first pattern has no launch
    return launch;
  };

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    // Cooperative watchdog checkpoint (free when no deadline is active).
    util::poll_deadline();
    const Fault& fault = faults.representatives()[c];
    for (std::size_t b = 0; b < patterns.block_count(); ++b) {
      const std::vector<std::uint64_t> faulty = simulate_faulty_block_full(
          circuit, fault, patterns.block_words(b));
      std::uint64_t detect =
          observe_difference(circuit, fault, faulty, good_blocks[b],
                             strobe_masks.for_block(b)) &
          patterns.block_mask(b);
      if (transition) detect &= launch_word(fault, b);
      if (detect != 0) {
        result.first_detection[c] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
        break;
      }
    }
  }
  finalize_result(faults, result);
  return result;
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values) {
  Propagator propagator(circuit);
  propagator.begin_block(good_values);
  return propagator.detect_word(fault, good_values);
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  Propagator propagator(circuit);
  propagator.begin_block(good_values);
  return propagator.detect_word(fault, good_values, point_masks);
}

FaultSimResult simulate_ppsfp(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    std::shared_ptr<const CompiledCircuit> compiled) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_ppsfp: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);

  // One compiled view shared by the good-machine simulator and the
  // propagator; a caller-supplied view skips recompilation entirely.
  if (compiled == nullptr) {
    compiled = std::make_shared<const CompiledCircuit>(circuit);
  }
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "simulate_ppsfp: compiled view does not match the circuit");
  sim::ParallelSimulator good_sim(compiled);
  Propagator propagator(compiled);
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  fault_model::TwoPatternWindow window(
      transition ? compiled->node_count() : 0);

  // Live list in resimulation order, compacted in place as faults drop.
  std::vector<std::uint32_t> live = sorted_live_list(faults, *compiled);

  for (std::size_t b = 0; b < patterns.block_count() && !live.empty(); ++b) {
    // Cooperative watchdog checkpoint, once per 64-pattern block (free
    // when no deadline is active).
    util::poll_deadline();
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    const std::uint64_t mask = patterns.block_mask(b);
    const std::vector<std::uint64_t>* point_masks = strobe_masks.for_block(b);

    propagator.begin_block(good);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::uint32_t c = live[i];
      const Fault& rep = faults.representatives()[c];
      const std::uint64_t detect =
          (transition
               ? propagator.detect_word_transition(rep, good, window,
                                                   point_masks)
               : propagator.detect_word_resim(rep, good, point_masks)) &
          mask;
      if (detect != 0) {
        result.first_detection[c] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
      } else {
        live[kept++] = c;  // still undetected: keep simulating it
      }
    }
    live.resize(kept);
    if (transition) window.advance(good);
  }

  finalize_result(faults, result);
  return result;
}

FaultSimResult simulate_ppsfp_mt(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule, std::size_t num_threads,
    std::shared_ptr<const CompiledCircuit> compiled) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_ppsfp_mt: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);

  if (compiled == nullptr) {
    compiled = std::make_shared<const CompiledCircuit>(circuit);
  }
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "simulate_ppsfp_mt: compiled view does not match the circuit");
  sim::ParallelSimulator good_sim(compiled);
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  // One launch window shared read-only by every lane; advanced on the
  // main thread between blocks, so the gating each lane applies is a pure
  // function of the block index — thread-count independence is preserved.
  fault_model::TwoPatternWindow window(
      transition ? compiled->node_count() : 0);

  util::ThreadPool pool(num_threads);
  const std::size_t lanes = pool.size();
  std::vector<Propagator> propagators;
  propagators.reserve(lanes);
  for (std::size_t t = 0; t < lanes; ++t) {
    propagators.emplace_back(compiled);
  }

  // Live list in resimulation order; each lane takes a strided slice —
  // still non-increasing in site level (the resim fast path), and far
  // better balanced than contiguous chunks, whose per-fault sweep cost
  // varies with site level. Detect words are written per live-list slot
  // and folded into first_detection serially — the result bytes are
  // independent of thread interleaving by construction.
  std::vector<std::uint32_t> live = sorted_live_list(faults, *compiled);
  std::vector<std::uint64_t> detects(live.size(), 0);

  for (std::size_t b = 0; b < patterns.block_count() && !live.empty(); ++b) {
    // Watchdog checkpoint on the coordinating thread: lanes only run
    // inside pool.run, so polling here bounds the whole block.
    util::poll_deadline();
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    const std::uint64_t mask = patterns.block_mask(b);
    const std::vector<std::uint64_t>* point_masks = strobe_masks.for_block(b);

    const std::size_t live_count = live.size();
    pool.run([&](std::size_t lane) {
      if (lane >= live_count) return;
      Propagator& propagator = propagators[lane];
      propagator.begin_block(good);
      for (std::size_t i = lane; i < live_count; i += lanes) {
        const Fault& rep = faults.representatives()[live[i]];
        detects[i] =
            (transition
                 ? propagator.detect_word_transition(rep, good, window,
                                                     point_masks)
                 : propagator.detect_word_resim(rep, good, point_masks)) &
            mask;
      }
    });

    // Per-block fault-drop compaction, in live-list order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live_count; ++i) {
      if (detects[i] != 0) {
        result.first_detection[live[i]] = static_cast<std::int64_t>(
            b * 64 + std::countr_zero(detects[i]));
      } else {
        live[kept++] = live[i];
      }
    }
    live.resize(kept);
    if (transition) window.advance(good);
  }

  finalize_result(faults, result);
  return result;
}

}  // namespace lsiq::fault
