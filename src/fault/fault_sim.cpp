#include "fault/fault_sim.hpp"

#include <bit>

#include "sim/parallel_sim.hpp"
#include "util/error.hpp"

namespace lsiq::fault {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

namespace {

/// Event-driven faulty-machine propagation over one 64-pattern block.
/// Scratch arrays are epoch-stamped so consecutive faults reuse them
/// without clearing — the heart of the PPSFP inner loop.
class Propagator {
 public:
  explicit Propagator(const Circuit& circuit)
      : circuit_(&circuit),
        faulty_(circuit.gate_count(), 0),
        epoch_of_(circuit.gate_count(), 0),
        queued_(circuit.gate_count(), 0) {
    std::size_t depth = 0;
    for (GateId id = 0; id < circuit.gate_count(); ++id) {
      depth = std::max<std::size_t>(depth, circuit.gate(id).level);
    }
    buckets_.resize(depth + 1);
  }

  /// Detection word (bit p = pattern p of the block detects the fault).
  /// `good` holds the good-machine words of every gate. `point_masks`,
  /// when non-null, gives per observed point the lanes in which the tester
  /// strobes it this block (strobe-schedule support); null means full
  /// observability.
  std::uint64_t detect_word(const Fault& fault,
                            const std::vector<std::uint64_t>& good,
                            const std::vector<std::uint64_t>* point_masks =
                                nullptr) {
    ++epoch_;
    const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
    const Gate& site_gate = circuit_->gate(fault.gate);

    // A branch fault on a flip-flop's D pin never propagates through logic;
    // it is captured directly at that flip-flop's pseudo primary output.
    if (!is_stem(fault) && site_gate.type == GateType::kDff) {
      const std::uint64_t diff = sv_word ^ good[site_gate.fanin.front()];
      if (point_masks == nullptr) return diff;
      return diff & (*point_masks)[dff_point_index(fault.gate)];
    }

    std::uint64_t faulty_site;
    if (is_stem(fault)) {
      faulty_site = sv_word;
    } else {
      faulty_site = sim::eval_gate_word_with_pin(*circuit_, fault.gate, good,
                                                 fault.pin, sv_word);
    }
    if ((faulty_site ^ good[fault.gate]) == 0) {
      return 0;  // fault effect never appears at the site in this block
    }

    set_faulty(fault.gate, faulty_site);
    max_level_ = site_gate.level;
    schedule_fanout(fault.gate);

    // Level-ordered wave; every scheduled gate has level > its scheduler.
    for (std::size_t level = site_gate.level; level <= max_level_; ++level) {
      auto& bucket = buckets_[level];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId id = bucket[i];
        queued_[id] = 0;
        const std::uint64_t value = eval_mixed(id, good);
        if (value != good[id]) {
          set_faulty(id, value);
          schedule_fanout(id);
        } else if (epoch_of_[id] == epoch_) {
          // Reconvergence cancelled the effect; restore the good view.
          faulty_[id] = value;
        }
      }
      bucket.clear();
    }

    // Observation.
    std::uint64_t detect = 0;
    const auto& points = circuit_->observed_points();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const GateId point = points[i];
      if (epoch_of_[point] != epoch_) continue;
      std::uint64_t diff = faulty_[point] ^ good[point];
      if (point_masks != nullptr) {
        diff &= (*point_masks)[i];
      }
      detect |= diff;
    }
    return detect;
  }

 private:
  /// Observed-point index of a flip-flop's pseudo primary output.
  std::size_t dff_point_index(GateId dff) const {
    const auto& ffs = circuit_->flip_flops();
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      if (ffs[i] == dff) {
        return circuit_->primary_outputs().size() + i;
      }
    }
    throw Error("dff_point_index: gate is not a registered flip-flop");
  }
  void set_faulty(GateId id, std::uint64_t value) {
    faulty_[id] = value;
    epoch_of_[id] = epoch_;
  }

  std::uint64_t operand(GateId id,
                        const std::vector<std::uint64_t>& good) const {
    return epoch_of_[id] == epoch_ ? faulty_[id] : good[id];
  }

  std::uint64_t eval_mixed(GateId id, const std::vector<std::uint64_t>& good) {
    const Gate& g = circuit_->gate(id);
    scratch_.resize(g.fanin.size());
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      scratch_[i] = operand(g.fanin[i], good);
    }
    // Inline word-level evaluation over the mixed operands (cheaper than
    // routing through the id-indexed eval_gate_word interface).
    switch (g.type) {
      case GateType::kBuf:
        return scratch_[0];
      case GateType::kNot:
        return ~scratch_[0];
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint64_t acc = scratch_[0];
        for (std::size_t i = 1; i < scratch_.size(); ++i) acc &= scratch_[i];
        return g.type == GateType::kNand ? ~acc : acc;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint64_t acc = scratch_[0];
        for (std::size_t i = 1; i < scratch_.size(); ++i) acc |= scratch_[i];
        return g.type == GateType::kNor ? ~acc : acc;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::uint64_t acc = scratch_[0];
        for (std::size_t i = 1; i < scratch_.size(); ++i) acc ^= scratch_[i];
        return g.type == GateType::kXnor ? ~acc : acc;
      }
      default:
        throw Error("eval_mixed: unexpected gate type in propagation wave");
    }
  }

  void schedule_fanout(GateId id) {
    for (const GateId reader : circuit_->gate(id).fanout) {
      const Gate& g = circuit_->gate(reader);
      if (g.type == GateType::kDff) continue;  // capture boundary
      if (queued_[reader] != 0) continue;
      queued_[reader] = 1;
      buckets_[g.level].push_back(reader);
      max_level_ = std::max<std::size_t>(max_level_, g.level);
    }
  }

  const Circuit* circuit_;
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> epoch_of_;
  std::vector<char> queued_;
  std::vector<std::vector<GateId>> buckets_;
  std::vector<std::uint64_t> scratch_;
  std::uint32_t epoch_ = 0;
  std::size_t max_level_ = 0;
};

/// Full faulty-machine simulation of one block (every gate re-evaluated).
/// Independent of the event-driven path on purpose: it is the oracle the
/// fast engine is validated against.
std::vector<std::uint64_t> simulate_faulty_block_full(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& input_words) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  std::vector<std::uint64_t> values(circuit.gate_count(), 0);

  const auto& inputs = circuit.pattern_inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values[inputs[i]] = input_words[i];
  }
  if (is_stem(fault)) {
    const GateType t = circuit.gate(fault.gate).type;
    if (t == GateType::kInput || t == GateType::kDff) {
      values[fault.gate] = sv_word;
    }
  }
  for (const GateId id : circuit.topological_order()) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    if (!is_stem(fault) && id == fault.gate &&
        g.type != GateType::kDff) {
      values[id] = sim::eval_gate_word_with_pin(circuit, id, values,
                                                fault.pin, sv_word);
    } else {
      values[id] = sim::eval_gate_word(circuit, id, values);
    }
    if (is_stem(fault) && id == fault.gate) {
      values[id] = sv_word;
    }
  }
  return values;
}

std::uint64_t observe_difference(const Circuit& circuit, const Fault& fault,
                                 const std::vector<std::uint64_t>& faulty,
                                 const std::vector<std::uint64_t>& good,
                                 const std::vector<std::uint64_t>*
                                     point_masks) {
  const std::uint64_t sv_word = fault.stuck_at_one ? ~0ULL : 0ULL;
  const auto& points = circuit.observed_points();
  const std::size_t num_po = circuit.primary_outputs().size();
  const bool dff_pin_fault =
      !is_stem(fault) && circuit.gate(fault.gate).type == GateType::kDff;

  std::uint64_t detect = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::uint64_t faulty_value = faulty[points[i]];
    if (dff_pin_fault && i >= num_po &&
        circuit.flip_flops()[i - num_po] == fault.gate) {
      faulty_value = sv_word;  // the faulted scan capture sees the stuck value
    }
    std::uint64_t diff = faulty_value ^ good[points[i]];
    if (point_masks != nullptr) {
      diff &= (*point_masks)[i];
    }
    detect |= diff;
  }
  return detect;
}

/// Per-block strobe lane masks, or nullptr when the schedule is full (or
/// absent) and masking can be skipped entirely.
class ScheduleMasks {
 public:
  ScheduleMasks(const Circuit& circuit, const StrobeSchedule* schedule)
      : schedule_(schedule != nullptr && !schedule->is_full() ? schedule
                                                              : nullptr) {
    if (schedule != nullptr) {
      LSIQ_EXPECT(schedule->point_count() ==
                      circuit.observed_points().size(),
                  "strobe schedule must cover every observed point");
    }
    if (schedule_ != nullptr) {
      masks_.resize(circuit.observed_points().size());
    }
  }

  /// Masks for one block; nullptr means "everything strobed".
  const std::vector<std::uint64_t>* for_block(std::size_t block) {
    if (schedule_ == nullptr) return nullptr;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
      masks_[i] = schedule_->lane_mask(i, block);
    }
    return &masks_;
  }

 private:
  const StrobeSchedule* schedule_;
  std::vector<std::uint64_t> masks_;
};

void finalize_result(const FaultList& faults, FaultSimResult& result) {
  result.covered_faults = 0;
  result.detected_classes = 0;
  for (std::size_t c = 0; c < result.first_detection.size(); ++c) {
    if (result.first_detection[c] >= 0) {
      ++result.detected_classes;
      result.covered_faults += faults.class_size(c);
    }
  }
  result.coverage = static_cast<double>(result.covered_faults) /
                    static_cast<double>(faults.fault_count());
}

}  // namespace

CoverageCurve FaultSimResult::curve(const FaultList& faults,
                                    std::size_t pattern_count) const {
  std::vector<std::size_t> weights(faults.class_count());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] = faults.class_size(c);
  }
  return CoverageCurve::from_first_detection(
      first_detection, weights, faults.fault_count(), pattern_count);
}

FaultSimResult simulate_serial(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_serial: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);

  // Good-machine simulation, one pass, values retained per block.
  sim::ParallelSimulator good_sim(circuit);
  std::vector<std::vector<std::uint64_t>> good_blocks;
  good_blocks.reserve(patterns.block_count());
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    good_blocks.push_back(good_sim.values());
  }

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    const Fault& fault = faults.representatives()[c];
    for (std::size_t b = 0; b < patterns.block_count(); ++b) {
      const std::vector<std::uint64_t> faulty = simulate_faulty_block_full(
          circuit, fault, patterns.block_words(b));
      const std::uint64_t detect =
          observe_difference(circuit, fault, faulty, good_blocks[b],
                             strobe_masks.for_block(b)) &
          patterns.block_mask(b);
      if (detect != 0) {
        result.first_detection[c] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
        break;
      }
    }
  }
  finalize_result(faults, result);
  return result;
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values) {
  Propagator propagator(circuit);
  return propagator.detect_word(fault, good_values);
}

std::uint64_t detect_word_for_fault(
    const Circuit& circuit, const Fault& fault,
    const std::vector<std::uint64_t>& good_values,
    const std::vector<std::uint64_t>* point_masks) {
  Propagator propagator(circuit);
  return propagator.detect_word(fault, good_values, point_masks);
}

FaultSimResult simulate_ppsfp(const FaultList& faults,
                              const sim::PatternSet& patterns,
                              const StrobeSchedule* schedule) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_ppsfp: pattern width does not match circuit");
  ScheduleMasks strobe_masks(circuit, schedule);

  FaultSimResult result;
  result.first_detection.assign(faults.class_count(), -1);

  sim::ParallelSimulator good_sim(circuit);
  Propagator propagator(circuit);

  // Live list, compacted in place as faults drop.
  std::vector<std::uint32_t> live(faults.class_count());
  for (std::size_t c = 0; c < live.size(); ++c) {
    live[c] = static_cast<std::uint32_t>(c);
  }

  for (std::size_t b = 0; b < patterns.block_count() && !live.empty(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    const std::uint64_t mask = patterns.block_mask(b);
    const std::vector<std::uint64_t>* point_masks = strobe_masks.for_block(b);

    std::size_t kept = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::uint32_t c = live[i];
      const std::uint64_t detect =
          propagator.detect_word(faults.representatives()[c], good,
                                 point_masks) &
          mask;
      if (detect != 0) {
        result.first_detection[c] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(detect));
      } else {
        live[kept++] = c;  // still undetected: keep simulating it
      }
    }
    live.resize(kept);
  }

  finalize_result(faults, result);
  return result;
}

}  // namespace lsiq::fault
