// Pass/fail fault dictionaries and cause diagnosis.
//
// The paper's experiment records only each chip's *first* failing pattern;
// a tester can just as cheaply log the full pass/fail vector, and with a
// precomputed dictionary that vector identifies which fault (class) is on
// the chip — the classic post-test diagnosis flow. Included because a
// production-quality release of this system is expected to close the loop
// from "chip failed" to "where", and because the dictionary doubles as an
// independent check of the fault simulator (every signature is rederived
// per fault without dropping).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.hpp"
#include "fault/strobe.hpp"
#include "sim/pattern.hpp"

namespace lsiq::fault {

class FaultDictionary {
 public:
  /// Build the full pass/fail dictionary: for every collapsed fault class,
  /// the bit vector over patterns ("signature") with bit t set when
  /// pattern t detects the class. No fault dropping — the whole program is
  /// graded for every fault. Optionally under a strobe schedule.
  static FaultDictionary build(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule = nullptr);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return signatures_.size();
  }
  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return pattern_count_;
  }

  /// Signature of one class as packed 64-pattern words.
  [[nodiscard]] const std::vector<std::uint64_t>& signature(
      std::size_t class_index) const;

  /// Does pattern t detect the class?
  [[nodiscard]] bool detects(std::size_t class_index,
                             std::size_t pattern) const;

  struct Candidate {
    std::size_t class_index = 0;
    /// Jaccard similarity between observed and dictionary signatures
    /// (1.0 = exact match).
    double score = 0.0;
  };

  /// Rank fault classes by signature similarity to an observed pass/fail
  /// vector (true = chip failed that pattern). Returns the top_k highest
  /// scores, ties broken by class index. An all-pass observation returns
  /// an empty list.
  [[nodiscard]] std::vector<Candidate> diagnose(
      const std::vector<bool>& failing_patterns, std::size_t top_k) const;

  /// Number of distinct signatures — the dictionary's diagnostic
  /// resolution (classes sharing a signature cannot be told apart by this
  /// program).
  [[nodiscard]] std::size_t distinct_signature_count() const;

 private:
  FaultDictionary() = default;

  std::vector<std::vector<std::uint64_t>> signatures_;
  std::size_t pattern_count_ = 0;
};

}  // namespace lsiq::fault
