#include "fault/shard.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::fault {

ShardPlan ShardPlan::split(std::size_t class_count, std::size_t shard_count) {
  LSIQ_EXPECT(shard_count >= 1, "ShardPlan: at least one shard required");
  ShardPlan plan;
  plan.class_count_ = class_count;
  plan.ranges_.reserve(shard_count);
  const std::size_t base = class_count / shard_count;
  const std::size_t extra = class_count % shard_count;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    plan.ranges_.push_back(ShardRange{begin, begin + size});
    begin += size;
  }
  return plan;
}

std::vector<std::int64_t> fold_shards(
    const ShardPlan& plan,
    const std::vector<std::vector<std::int64_t>>& per_shard) {
  LSIQ_EXPECT(per_shard.size() == plan.shard_count(),
              "fold_shards: one vector per shard required");
  std::vector<std::int64_t> folded(plan.class_count(), -1);
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardRange& range = plan.shard(s);
    LSIQ_EXPECT(per_shard[s].size() == plan.class_count(),
                "fold_shards: shard vector must cover every class");
    for (std::size_t c = range.begin; c < range.end; ++c) {
      folded[c] = per_shard[s][c];
    }
  }
  return folded;
}

FaultSimResult simulate_sharded(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule, const ShardedOptions& options,
    std::shared_ptr<const circuit::CompiledCircuit> compiled) {
  const circuit::Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "simulate_sharded: pattern width does not match circuit");
  if (compiled == nullptr) {
    compiled =
        std::make_shared<const circuit::CompiledCircuit>(circuit);
  }
  LSIQ_EXPECT(compiled->node_count() == circuit.gate_count(),
              "simulate_sharded: compiled view does not match the circuit");

  const std::size_t shard_count = options.shards != 0
                                      ? options.shards
                                      : util::resolve_worker_count(0);
  const ShardPlan plan = ShardPlan::split(faults.class_count(), shard_count);
  const bool use_pool = options.num_threads != 1;

  // Grade each shard into its own full-length vector, exactly as a
  // remote lane would ship one back, then fold. Shards run one after
  // another here — the parallelism inside a shard is the engine's own
  // (num_threads), and the shard loop is the seam where MPI ranks or GPU
  // lanes slot in.
  std::vector<std::vector<std::int64_t>> per_shard(plan.shard_count());
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    per_shard[s].assign(faults.class_count(), -1);
    const ShardRange& range = plan.shard(s);
    if (range.size() == 0) continue;
    grade_class_range(faults, patterns, schedule, compiled, options.width,
                      use_pool, options.num_threads, range.begin, range.end,
                      per_shard[s]);
  }

  FaultSimResult result;
  result.first_detection = fold_shards(plan, per_shard);
  result.finalize(faults);
  return result;
}

}  // namespace lsiq::fault
