// Fault records over netlist sites.
//
// A fault site is a (gate, pin) pair: pin == -1 is the gate's output line
// (the "stem"), pin >= 0 is one input pin (a "branch" of the driving net's
// fanout). The same record serves every fault model (see
// fault_model/fault_model.hpp): under stuck-at, `stuck_at_one` is the
// stuck value; under transition, it selects slow-to-fall (true) versus
// slow-to-rise (false) — the polarity whose capture behaviour is the
// matching stuck-at. The interpreting model is carried by the FaultList
// the fault came from, not by the record itself.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "circuit/netlist.hpp"
#include "fault_model/fault_model.hpp"

namespace lsiq::circuit {
class CompiledCircuit;  // circuit/compiled.hpp
}

namespace lsiq::fault {

struct Fault {
  circuit::GateId gate = circuit::kNoGate;
  std::int32_t pin = -1;      ///< -1 = output stem, >= 0 = input pin index
  bool stuck_at_one = false;  ///< stuck value

  friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// True when the fault sits on the gate's output line.
inline bool is_stem(const Fault& f) noexcept { return f.pin < 0; }

/// Human-readable fault name, e.g. "G16/out s-a-1" or "G22/in0 s-a-0"
/// (stuck-at interpretation).
std::string fault_name(const circuit::Circuit& circuit, const Fault& fault);

/// Model-aware variant: "G16/out slow-to-fall" under kTransition.
std::string fault_name(const circuit::Circuit& circuit, const Fault& fault,
                       fault_model::FaultModel model);

/// The signal line the fault lives on: the gate itself for a stem fault,
/// the driving gate for a branch fault. For a transition fault this is the
/// line whose previous-pattern value is the launch condition.
circuit::GateId fault_line(const circuit::Circuit& circuit,
                           const Fault& fault);

/// Same over the compiled view (the form the grading engines use).
circuit::GateId fault_line(const circuit::CompiledCircuit& compiled,
                           const Fault& fault);

}  // namespace lsiq::fault
