// The single stuck-at fault model.
//
// A fault site is a (gate, pin) pair: pin == -1 is the gate's output line
// (the "stem"), pin >= 0 is one input pin (a "branch" of the driving net's
// fanout). Each site can be stuck-at-0 or stuck-at-1. This is the fault
// model whose coverage figure the paper's analysis turns into a product
// quality statement.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "circuit/netlist.hpp"

namespace lsiq::fault {

struct Fault {
  circuit::GateId gate = circuit::kNoGate;
  std::int32_t pin = -1;      ///< -1 = output stem, >= 0 = input pin index
  bool stuck_at_one = false;  ///< stuck value

  friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// True when the fault sits on the gate's output line.
inline bool is_stem(const Fault& f) noexcept { return f.pin < 0; }

/// Human-readable fault name, e.g. "G16/out s-a-1" or "G22/in0 s-a-0".
std::string fault_name(const circuit::Circuit& circuit, const Fault& fault);

/// The signal line the fault lives on: the gate itself for a stem fault,
/// the driving gate for a branch fault.
circuit::GateId fault_line(const circuit::Circuit& circuit,
                           const Fault& fault);

}  // namespace lsiq::fault
