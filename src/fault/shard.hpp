// Fault-range sharding over the PPSFP grading core.
//
// The collapsed-class range is embarrassingly parallel: per-class detect
// words are pure functions of the pattern set, so any contiguous split of
// [0, class_count) can be graded independently — different engines,
// different thread counts, different machines — and the per-shard
// first_detection vectors folded back into a result bit-identical to one
// simulate_ppsfp call over the whole range. ShardPlan owns the split,
// fold_shards the recombination, and simulate_sharded runs the whole
// in-process loop: shard -> grade (grade_class_range, any width, MT per
// shard) -> fold -> finalize. This is the seam a later MPI or GPU backend
// drops into — replace the in-process grade call per shard, keep the plan
// and the fold.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/compiled.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/strobe.hpp"
#include "sim/pattern.hpp"

namespace lsiq::fault {

/// One shard's half-open collapsed-class range.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// A balanced contiguous split of the collapsed-class range into K shards.
class ShardPlan {
 public:
  /// Split `class_count` classes into `shard_count` contiguous ranges
  /// whose sizes differ by at most one (the first class_count %
  /// shard_count shards carry the extra class). shard_count must be >= 1;
  /// when it exceeds class_count the surplus shards are empty — legal,
  /// they simply grade nothing.
  static ShardPlan split(std::size_t class_count, std::size_t shard_count);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return ranges_.size();
  }
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_;
  }
  [[nodiscard]] const ShardRange& shard(std::size_t i) const {
    return ranges_.at(i);
  }
  [[nodiscard]] const std::vector<ShardRange>& shards() const noexcept {
    return ranges_;
  }

 private:
  std::size_t class_count_ = 0;
  std::vector<ShardRange> ranges_;
};

/// Fold per-shard first-detection vectors into one full-range vector:
/// shard i contributes exactly its range's entries. Each per_shard[i]
/// must be class_count long (entries outside shard i's range are
/// ignored). The fold is a pure scatter, so the result is byte-identical
/// to grading the whole range in one call — the property the shard tests
/// pin.
std::vector<std::int64_t> fold_shards(
    const ShardPlan& plan,
    const std::vector<std::vector<std::int64_t>>& per_shard);

struct ShardedOptions {
  /// Number of shards; 0 = util::resolve_worker_count(0), one per
  /// hardware thread.
  std::size_t shards = 0;
  /// Grading word width per shard (1, 4 or 8 — see simulate_ppsfp).
  std::size_t width = 1;
  /// Worker threads per shard: 1 grades each shard on the calling
  /// thread; any other value (0 = hardware threads) grades each shard
  /// with the MT engine.
  std::size_t num_threads = 1;
};

/// Sharded grading: split the collapsed-class range, grade each shard
/// independently through grade_class_range, fold, finalize. Bit-identical
/// first_detection to simulate_ppsfp for every shard count, width, and
/// thread count. `compiled` as in simulate_ppsfp.
FaultSimResult simulate_sharded(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule = nullptr,
    const ShardedOptions& options = {},
    std::shared_ptr<const circuit::CompiledCircuit> compiled = nullptr);

}  // namespace lsiq::fault
