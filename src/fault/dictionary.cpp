#include "fault/dictionary.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "fault/fault_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/error.hpp"

namespace lsiq::fault {

using circuit::Circuit;

FaultDictionary FaultDictionary::build(const FaultList& faults,
                                       const sim::PatternSet& patterns,
                                       const StrobeSchedule* schedule) {
  const Circuit& circuit = faults.circuit();
  LSIQ_EXPECT(patterns.input_count() == circuit.pattern_inputs().size(),
              "FaultDictionary: pattern width does not match circuit");
  LSIQ_EXPECT(!patterns.empty(), "FaultDictionary: empty pattern set");
  if (schedule != nullptr) {
    LSIQ_EXPECT(schedule->point_count() == circuit.observed_points().size(),
                "FaultDictionary: schedule must cover every observed point");
  }

  FaultDictionary dictionary;
  dictionary.pattern_count_ = patterns.size();
  dictionary.signatures_.assign(
      faults.class_count(),
      std::vector<std::uint64_t>(patterns.block_count(), 0));

  sim::ParallelSimulator good_sim(circuit);
  Propagator propagator(good_sim.compiled());
  // Transition universes: per-class signatures are launch-gated pair
  // detections, so diagnosis over a transition dictionary matches chips
  // failing on delay defects.
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  fault_model::TwoPatternWindow window(
      transition ? good_sim.compiled()->node_count() : 0);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    propagator.begin_block(good_sim.values());
    const std::uint64_t lane_mask = patterns.block_mask(b);
    std::vector<std::uint64_t> point_masks;
    const std::vector<std::uint64_t>* masks = nullptr;
    if (schedule != nullptr && !schedule->is_full()) {
      point_masks.resize(circuit.observed_points().size());
      for (std::size_t i = 0; i < point_masks.size(); ++i) {
        point_masks[i] = schedule->lane_mask(i, b);
      }
      masks = &point_masks;
    }
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      const Fault& rep = faults.representatives()[c];
      const std::uint64_t word =
          (transition
               ? propagator.detect_word_transition(rep, good_sim.values(),
                                                   window, masks)
               : propagator.detect_word(rep, good_sim.values(), masks)) &
          lane_mask;
      dictionary.signatures_[c][b] = word;
    }
    if (transition) window.advance(good_sim.values());
  }
  return dictionary;
}

const std::vector<std::uint64_t>& FaultDictionary::signature(
    std::size_t class_index) const {
  LSIQ_EXPECT(class_index < signatures_.size(),
              "signature: class index out of range");
  return signatures_[class_index];
}

bool FaultDictionary::detects(std::size_t class_index,
                              std::size_t pattern) const {
  LSIQ_EXPECT(pattern < pattern_count_, "detects: pattern out of range");
  const auto& sig = signature(class_index);
  return ((sig[pattern / 64] >> (pattern % 64)) & 1ULL) != 0;
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    const std::vector<bool>& failing_patterns, std::size_t top_k) const {
  LSIQ_EXPECT(failing_patterns.size() == pattern_count_,
              "diagnose: observation length mismatch");

  // Pack the observation.
  std::vector<std::uint64_t> observed((pattern_count_ + 63) / 64, 0);
  bool any_fail = false;
  for (std::size_t t = 0; t < pattern_count_; ++t) {
    if (failing_patterns[t]) {
      observed[t / 64] |= 1ULL << (t % 64);
      any_fail = true;
    }
  }
  if (!any_fail) return {};

  std::vector<Candidate> candidates;
  candidates.reserve(signatures_.size());
  for (std::size_t c = 0; c < signatures_.size(); ++c) {
    std::size_t intersection = 0;
    std::size_t set_union = 0;
    for (std::size_t w = 0; w < observed.size(); ++w) {
      intersection += static_cast<std::size_t>(
          std::popcount(observed[w] & signatures_[c][w]));
      set_union += static_cast<std::size_t>(
          std::popcount(observed[w] | signatures_[c][w]));
    }
    if (set_union == 0) continue;  // never-detected class vs failing chip
    candidates.push_back(Candidate{
        c, static_cast<double>(intersection) /
               static_cast<double>(set_union)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  if (candidates.size() > top_k) candidates.resize(top_k);
  return candidates;
}

std::size_t FaultDictionary::distinct_signature_count() const {
  std::map<std::vector<std::uint64_t>, int> seen;
  for (const auto& sig : signatures_) {
    seen.emplace(sig, 0);
  }
  return seen.size();
}

}  // namespace lsiq::fault
