#include "fault/fault_list.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace lsiq::fault {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Keep the smaller index as root so representatives are deterministic.
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

void FaultList::enumerate_sites() {
  const Circuit& circuit = *circuit_;
  gate_offset_.resize(circuit.gate_count() + 1, 0);
  for (GateId id = 0; id < circuit.gate_count(); ++id) {
    gate_offset_[id] = faults_.size();
    // Stem faults.
    faults_.push_back(Fault{id, -1, false});
    faults_.push_back(Fault{id, -1, true});
    // Branch faults, one pair per input pin.
    const Gate& g = circuit.gate(id);
    for (std::int32_t pin = 0;
         pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
      faults_.push_back(Fault{id, pin, false});
      faults_.push_back(Fault{id, pin, true});
    }
  }
  gate_offset_[circuit.gate_count()] = faults_.size();
}

FaultList FaultList::full_universe(const Circuit& circuit) {
  LSIQ_EXPECT(circuit.finalized(),
              "FaultList requires a finalized circuit");
  FaultList list(circuit);
  list.enumerate_sites();
  list.collapse();
  return list;
}

FaultList FaultList::transition_universe(const Circuit& circuit) {
  LSIQ_EXPECT(circuit.finalized(),
              "FaultList requires a finalized circuit");
  FaultList list(circuit);
  list.model_ = fault_model::FaultModel::kTransition;
  list.enumerate_sites();
  list.collapse();
  return list;
}

FaultList FaultList::checkpoints(const Circuit& circuit) {
  LSIQ_EXPECT(circuit.finalized(),
              "FaultList requires a finalized circuit");
  FaultList list(circuit);
  list.gate_offset_.assign(circuit.gate_count() + 1, 0);

  for (GateId id = 0; id < circuit.gate_count(); ++id) {
    list.gate_offset_[id] = list.faults_.size();
    const Gate& g = circuit.gate(id);
    // Checkpoints: source outputs (primary and scan inputs) ...
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      list.faults_.push_back(Fault{id, -1, false});
      list.faults_.push_back(Fault{id, -1, true});
    }
    // ... and branches of nets with fanout >= 2.
    for (std::int32_t pin = 0;
         pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
      const GateId driver = g.fanin[static_cast<std::size_t>(pin)];
      if (circuit.gate(driver).fanout.size() >= 2) {
        list.faults_.push_back(Fault{id, pin, false});
        list.faults_.push_back(Fault{id, pin, true});
      }
    }
  }
  list.gate_offset_[circuit.gate_count()] = list.faults_.size();

  // Checkpoint faults are pairwise non-equivalent by construction; classes
  // are singletons.
  list.class_of_.resize(list.faults_.size());
  std::iota(list.class_of_.begin(), list.class_of_.end(), 0);
  list.representatives_ = list.faults_;
  list.class_sizes_.assign(list.faults_.size(), 1);
  return list;
}

std::size_t FaultList::index_of(const Fault& fault) const {
  if (fault.gate >= circuit_->gate_count()) return faults_.size();
  for (std::size_t i = gate_offset_[fault.gate];
       i < gate_offset_[fault.gate + 1]; ++i) {
    if (faults_[i] == fault) return i;
  }
  return faults_.size();
}

void FaultList::collapse() {
  DisjointSets sets(faults_.size());

  auto unite = [&](const Fault& a, const Fault& b) {
    const std::size_t ia = index_of(a);
    const std::size_t ib = index_of(b);
    LSIQ_EXPECT(ia < faults_.size() && ib < faults_.size(),
                "collapse: fault missing from universe");
    sets.unite(ia, ib);
  };

  // The multi-input controlling-value rules hold only for stuck-at: they
  // identify capture behaviour but not the launch condition a transition
  // fault adds (an AND output held at 0 does not pin which input was 0 on
  // the launch pattern). BUF/NOT and branch==stem preserve both — the
  // input of a single-input gate transitions exactly when its output does
  // (with polarity flipped through a NOT), and a single-fanout branch IS
  // its driver's line.
  const bool multi_input_rules =
      model_ == fault_model::FaultModel::kStuckAt;

  for (GateId id = 0; id < circuit_->gate_count(); ++id) {
    const Gate& g = circuit_->gate(id);

    // Gate-local input/output equivalences.
    switch (g.type) {
      case GateType::kBuf:
        unite(Fault{id, 0, false}, Fault{id, -1, false});
        unite(Fault{id, 0, true}, Fault{id, -1, true});
        break;
      case GateType::kNot:
        unite(Fault{id, 0, false}, Fault{id, -1, true});
        unite(Fault{id, 0, true}, Fault{id, -1, false});
        break;
      case GateType::kAnd:
        if (!multi_input_rules) break;
        for (std::int32_t pin = 0;
             pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
          unite(Fault{id, pin, false}, Fault{id, -1, false});
        }
        break;
      case GateType::kNand:
        if (!multi_input_rules) break;
        for (std::int32_t pin = 0;
             pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
          unite(Fault{id, pin, false}, Fault{id, -1, true});
        }
        break;
      case GateType::kOr:
        if (!multi_input_rules) break;
        for (std::int32_t pin = 0;
             pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
          unite(Fault{id, pin, true}, Fault{id, -1, true});
        }
        break;
      case GateType::kNor:
        if (!multi_input_rules) break;
        for (std::int32_t pin = 0;
             pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
          unite(Fault{id, pin, true}, Fault{id, -1, false});
        }
        break;
      default:
        break;  // XOR/XNOR, sources, constants: no gate-local equivalences
    }

    // Single-fanout nets: the branch is the same line as the stem.
    for (std::int32_t pin = 0;
         pin < static_cast<std::int32_t>(g.fanin.size()); ++pin) {
      const GateId driver = g.fanin[static_cast<std::size_t>(pin)];
      if (circuit_->gate(driver).fanout.size() == 1) {
        unite(Fault{id, pin, false}, Fault{driver, -1, false});
        unite(Fault{id, pin, true}, Fault{driver, -1, true});
      }
    }
  }

  // Materialize classes in deterministic (root index) order.
  std::vector<std::size_t> root_to_class(faults_.size(), faults_.size());
  class_of_.resize(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const std::size_t root = sets.find(i);
    if (root_to_class[root] == faults_.size()) {
      root_to_class[root] = representatives_.size();
      representatives_.push_back(faults_[root]);
      class_sizes_.push_back(0);
    }
    class_of_[i] = root_to_class[root];
    ++class_sizes_[root_to_class[root]];
  }
}

std::size_t FaultList::class_size(std::size_t class_index) const {
  LSIQ_EXPECT(class_index < class_sizes_.size(),
              "class_size: index out of range");
  return class_sizes_[class_index];
}

std::size_t FaultList::class_of(std::size_t fault_index) const {
  LSIQ_EXPECT(fault_index < class_of_.size(),
              "class_of: index out of range");
  return class_of_[fault_index];
}

}  // namespace lsiq::fault
