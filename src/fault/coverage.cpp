#include "fault/coverage.hpp"

#include "util/error.hpp"

namespace lsiq::fault {

CoverageCurve::CoverageCurve(std::vector<std::size_t> cumulative_covered,
                             std::size_t universe_size)
    : cumulative_(std::move(cumulative_covered)),
      universe_size_(universe_size) {
  LSIQ_EXPECT(universe_size_ > 0, "CoverageCurve: empty fault universe");
  for (std::size_t t = 0; t < cumulative_.size(); ++t) {
    LSIQ_EXPECT(cumulative_[t] <= universe_size_,
                "CoverageCurve: covered count exceeds universe");
    if (t > 0) {
      LSIQ_EXPECT(cumulative_[t] >= cumulative_[t - 1],
                  "CoverageCurve: cumulative count must be non-decreasing");
    }
  }
}

CoverageCurve CoverageCurve::from_first_detection(
    const std::vector<std::int64_t>& first_detection,
    const std::vector<std::size_t>& class_weights, std::size_t universe_size,
    std::size_t pattern_count) {
  LSIQ_EXPECT(first_detection.size() == class_weights.size(),
              "from_first_detection: size mismatch");
  std::vector<std::size_t> newly(pattern_count, 0);
  for (std::size_t c = 0; c < first_detection.size(); ++c) {
    const std::int64_t t = first_detection[c];
    if (t < 0) continue;
    LSIQ_EXPECT(static_cast<std::size_t>(t) < pattern_count,
                "from_first_detection: detection index out of range");
    newly[static_cast<std::size_t>(t)] += class_weights[c];
  }
  std::vector<std::size_t> cumulative(pattern_count, 0);
  std::size_t running = 0;
  for (std::size_t t = 0; t < pattern_count; ++t) {
    running += newly[t];
    cumulative[t] = running;
  }
  return CoverageCurve(std::move(cumulative), universe_size);
}

std::size_t CoverageCurve::covered_after(std::size_t patterns) const {
  if (patterns > cumulative_.size()) patterns = cumulative_.size();
  if (patterns == 0) return 0;  // also covers the empty curve
  return cumulative_[patterns - 1];
}

double CoverageCurve::coverage_after(std::size_t patterns) const {
  return static_cast<double>(covered_after(patterns)) /
         static_cast<double>(universe_size_);
}

double CoverageCurve::final_coverage() const {
  return coverage_after(cumulative_.size());
}

std::size_t CoverageCurve::patterns_for_coverage(double target) const {
  LSIQ_EXPECT(target >= 0.0 && target <= 1.0,
              "patterns_for_coverage: target outside [0,1]");
  // coverage_after(t) is a monotone transform of the non-decreasing
  // cumulative array, so the predicate "coverage_after(t) >= target" is
  // monotone in t and the first true position can be bisected. lo/hi
  // bracket the answer in [1, size()+1]; hi starts at (and stays on, when
  // the target is never reached) the sentinel, and mid < hi keeps every
  // probe inside the curve.
  std::size_t lo = 1;
  std::size_t hi = cumulative_.size() + 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (coverage_after(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool CoverageCurve::reaches(double target) const {
  return patterns_for_coverage(target) <= cumulative_.size();
}

}  // namespace lsiq::fault
