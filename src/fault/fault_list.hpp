// Fault universe enumeration and structural equivalence collapsing.
//
// The paper's N — "total number of possible faults on a chip" — is the size
// of this universe; its coverage f = m/N is computed against it. Collapsing
// groups faults that no test can distinguish (classic structural
// equivalence), so the simulators only carry one representative per class
// while coverage is still accounted over the full universe via class sizes.
//
// Stuck-at equivalence rules (union-find closure):
//   * single-input gates:  in s-a-v  ==  out s-a-v (BUF) / out s-a-!v (NOT)
//   * AND:  any in s-a-0  ==  out s-a-0      NAND:  any in s-a-0 == out s-a-1
//   * OR:   any in s-a-1  ==  out s-a-1      NOR:   any in s-a-1 == out s-a-0
//   * single-fanout nets:  branch s-a-v  ==  driver stem s-a-v
// XOR/XNOR gates contribute no equivalences.
//
// The transition universe (transition_universe) enumerates the same sites
// and polarities but keeps only the rules that preserve the LAUNCH
// condition as well as capture detection: single-input gates (a BUF/NOT
// input transitions exactly when its output does) and single-fanout
// branch == stem (same line). The multi-input controlling-value rules do
// NOT hold — an AND output at 0 does not pin which input was 0 on the
// launch pattern — so transition universes collapse less and carry more
// classes for the same circuit.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.hpp"
#include "fault/fault.hpp"
#include "fault_model/fault_model.hpp"

namespace lsiq::fault {

/// NOTE ON LIFETIME: a FaultList refers to its Circuit by reference; the
/// circuit must outlive the list and must not be moved after the list is
/// built (moving a Circuit transfers its storage and leaves the reference
/// dangling).
class FaultList {
 public:
  /// Enumerate every stuck-at fault in the circuit (2 per stem + 2 per
  /// input pin) and collapse equivalences.
  static FaultList full_universe(const circuit::Circuit& circuit);

  /// Enumerate every transition fault (slow-to-rise + slow-to-fall on the
  /// same sites) and collapse with the transition rules (header comment).
  /// The list is tagged FaultModel::kTransition, which switches every
  /// grading engine to two-pattern launch/capture detection.
  static FaultList transition_universe(const circuit::Circuit& circuit);

  /// The checkpoint subset: faults on primary inputs (and scan outputs) and
  /// on fanout branches. For fanout-free-region analysis and as a cheaper
  /// ATPG target list.
  static FaultList checkpoints(const circuit::Circuit& circuit);

  /// The fault model this universe enumerates — how `stuck_at_one` and the
  /// detection kernel are to be interpreted.
  [[nodiscard]] fault_model::FaultModel model() const noexcept {
    return model_;
  }

  /// Total faults enumerated before collapsing (the paper's N).
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return faults_.size();
  }

  /// Number of equivalence classes (faults actually simulated).
  [[nodiscard]] std::size_t class_count() const noexcept {
    return representatives_.size();
  }

  /// All enumerated faults, in deterministic order.
  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }

  /// One representative fault per equivalence class.
  [[nodiscard]] const std::vector<Fault>& representatives() const noexcept {
    return representatives_;
  }

  /// Number of universe faults collapsed into class `class_index` — the
  /// weight used to convert detected classes into covered universe faults.
  [[nodiscard]] std::size_t class_size(std::size_t class_index) const;

  /// Class index of an enumerated fault.
  [[nodiscard]] std::size_t class_of(std::size_t fault_index) const;

  /// Index of a fault in faults(); returns fault_count() when the fault is
  /// not part of this universe (e.g. pin of a source gate).
  [[nodiscard]] std::size_t index_of(const Fault& fault) const;

  [[nodiscard]] const circuit::Circuit& circuit() const noexcept {
    return *circuit_;
  }

 private:
  explicit FaultList(const circuit::Circuit& circuit) : circuit_(&circuit) {}
  /// Shared enumeration (2 per stem + 2 per input pin) of both universes.
  void enumerate_sites();
  void collapse();

  const circuit::Circuit* circuit_;
  fault_model::FaultModel model_ = fault_model::FaultModel::kStuckAt;
  std::vector<Fault> faults_;
  std::vector<std::size_t> class_of_;
  std::vector<Fault> representatives_;
  std::vector<std::size_t> class_sizes_;
  /// Prefix offset per gate into faults_ (stem faults first, then pins).
  std::vector<std::size_t> gate_offset_;
};

}  // namespace lsiq::fault
