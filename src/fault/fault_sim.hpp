// Fault simulation over a model-tagged universe (stuck-at or transition).
//
// Every engine keys its detection kernel off FaultList::model(): stuck-at
// universes grade with classic one-pattern detection; transition universes
// grade pattern PAIRS — the capture pattern must detect the matching
// stuck-at fault while the preceding pattern launches the transition (see
// fault_model/transition.hpp for the factoring that makes the launch word
// a pure good-machine quantity, identical across engines and threads).
//
// Three engines with one contract:
//
//   * simulate_serial — the reference implementation: for every fault, the
//     whole circuit is re-simulated with the fault injected, block by
//     block. O(faults x gates x blocks); trusted because it is simple.
//     The test suite cross-checks the fast engines against it.
//
//   * simulate_ppsfp — parallel-pattern single-fault propagation, the
//     production engine (same family of techniques as the paper's LAMP
//     runs): good-machine simulation once per 64-pattern block, then for
//     each still-undetected fault an event-driven faulty re-simulation
//     forward from the fault site only, with fault dropping. Runs on the
//     compiled netlist (circuit/compiled.hpp), not the pointer-per-pin
//     Circuit container.
//
//   * simulate_ppsfp_mt — the same computation fanned out over a
//     persistent worker pool: each thread owns a Propagator and grades a
//     strided slice of the live-fault list per block (stride keeps the
//     per-lane work balanced, since per-fault cost varies with fault-site
//     level). Per-fault detect words do not depend on evaluation order,
//     so the result is bit-identical to simulate_ppsfp.
//
// All return, per collapsed fault class, the index of the first pattern
// that detects it — the raw material for coverage curves (Section 5) and
// for the virtual tester's first-failing-pattern experiment (Table 1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/compiled.hpp"
#include "circuit/netlist.hpp"
#include "fault/coverage.hpp"
#include "fault/fault_list.hpp"
#include "fault/strobe.hpp"
#include "fault_model/transition.hpp"
#include "sim/pattern.hpp"

namespace lsiq::fault {

struct FaultSimResult {
  /// Per collapsed class: first detecting pattern index, or -1 if the
  /// pattern set never detects the class.
  std::vector<std::int64_t> first_detection;

  /// Universe faults covered (weighted by class size).
  std::size_t covered_faults = 0;

  /// Detected collapsed classes.
  std::size_t detected_classes = 0;

  /// Final coverage f = covered_faults / N over the full universe.
  double coverage = 0.0;

  /// Cumulative coverage versus pattern count.
  [[nodiscard]] CoverageCurve curve(const FaultList& faults,
                                    std::size_t pattern_count) const;

  /// Recompute covered_faults / detected_classes / coverage from
  /// first_detection. Every engine calls this last; the sharded engine's
  /// fold step calls it after scattering the per-shard vectors.
  void finalize(const FaultList& faults);
};

/// Event-driven faulty-machine propagation over one 64-pattern block — the
/// PPSFP inner loop, exposed as a reusable handle. Construction allocates
/// O(gate_count) scratch; detect_word() reuses it across faults via epoch
/// stamping, so one Propagator should be kept alive for a whole grading
/// run (the fault dictionary and ATPG confirmation loops do exactly that).
class Propagator {
 public:
  /// Compiles the circuit privately; prefer the shared-view constructor
  /// when a compiled view already exists.
  explicit Propagator(const circuit::Circuit& circuit);
  explicit Propagator(
      std::shared_ptr<const circuit::CompiledCircuit> compiled);

  /// Sync the propagation scratch to a freshly simulated good-machine
  /// block. REQUIRED before the first detect_word / detect_word_resim of
  /// every block. `good` is either node_count() words (a hand-built
  /// buffer) or node_count()+1 words — a ParallelSimulator::values()
  /// buffer whose trailing word is the block epoch stamped by
  /// simulate_block. With the stamp present, every detect call verifies
  /// the buffer has not been re-simulated since this sync and fails
  /// loudly (assert + LSIQ_EXPECT) on the classic forgotten-begin_block
  /// bug; without it the caller is on their own. (The one-shot
  /// detect_word_for_fault wrappers sync internally.)
  void begin_block(const std::vector<std::uint64_t>& good);

  /// Detection word for one fault (bit p = pattern p of the block detects
  /// it). `good` holds the good-machine words of every gate for this block
  /// (a completed ParallelSimulator::simulate_block over the same
  /// circuit) and must be the buffer last passed to begin_block.
  /// `point_masks`, when non-null, gives per observed point the lanes in
  /// which the tester strobes it this block; null means full
  /// observability. Event-driven: cost scales with the fault's cone, the
  /// right kernel when effects die near the site.
  std::uint64_t detect_word(const Fault& fault,
                            const std::vector<std::uint64_t>& good,
                            const std::vector<std::uint64_t>* point_masks =
                                nullptr);

  /// Same contract as detect_word, computed by levelized suffix
  /// resimulation instead of an event-driven wave: every gate at
  /// level >= the fault site's level is re-evaluated in one flat sweep.
  /// ~4x less bookkeeping per touched gate, so it wins whenever fault
  /// effects spread widely (the PPSFP block-grading regime); detect_word
  /// wins when effects die near the site. Fastest when consecutive calls
  /// are ordered by non-increasing site level — any order is correct, but
  /// an out-of-order call pays an extra prefix sweep to clear stale state.
  std::uint64_t detect_word_resim(const Fault& fault,
                                  const std::vector<std::uint64_t>& good,
                                  const std::vector<std::uint64_t>*
                                      point_masks = nullptr);

  /// Two-pattern transition kernel: the detect word of the matching
  /// capture stuck-at fault (suffix resimulation, same contract as
  /// detect_word_resim) gated by the launch word `window` derives from the
  /// fault line's previous-pattern good values. `fault` is a transition
  /// fault in the fault_model encoding (stuck_at_one == slow-to-fall);
  /// `window` must be tracking the same block sequence as begin_block —
  /// advance() it only after every fault of the block is graded. A fault
  /// with no launched lane skips capture simulation entirely.
  std::uint64_t detect_word_transition(
      const Fault& fault, const std::vector<std::uint64_t>& good,
      const fault_model::TwoPatternWindow& window,
      const std::vector<std::uint64_t>* point_masks = nullptr);

  /// Per-point difference words for one fault over the current block:
  /// resizes `diffs` to observed_points().size() and sets bit p of
  /// diffs[i] when pattern p of the block makes point i differ from the
  /// good machine; returns the OR over points (exactly detect_word's
  /// result with full observability). Signature compaction (bist::) needs
  /// the per-point structure the OR throws away — two errors reaching one
  /// MISR stage in the same cycle cancel. Suffix-resimulation kernel;
  /// same begin_block and call-ordering contract as detect_word_resim.
  std::uint64_t point_diff_words(const Fault& fault,
                                 const std::vector<std::uint64_t>& good,
                                 std::vector<std::uint64_t>& diffs);

  [[nodiscard]] const std::shared_ptr<const circuit::CompiledCircuit>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  /// Shared prologue of both kernels: DFF D-pin captures and faults whose
  /// effect never appears at the site resolve to a final detect word
  /// (returns true, sets `result`); otherwise sets `faulty_site` to the
  /// word to inject and returns false.
  bool resolve_site(const Fault& fault, const std::uint64_t* good,
                    const std::vector<std::uint64_t>* point_masks,
                    std::uint64_t* result, std::uint64_t* faulty_site) const;
  void schedule_fanout(circuit::GateId id);
  void sweep_clean(const std::uint64_t* good);
  /// Stale-sync guard run by every detect entry point: `good` must be the
  /// buffer last passed to begin_block, un-resimulated since (verified via
  /// the trailing epoch stamp when the buffer carries one).
  void check_sync(const std::vector<std::uint64_t>& good,
                  const char* who) const;

  std::shared_ptr<const circuit::CompiledCircuit> compiled_;
  std::vector<char> queued_;
  std::vector<std::vector<circuit::GateId>> buckets_;
  std::vector<circuit::GateId> touched_;
  std::size_t max_level_ = 0;
  /// Shared scratch of both kernels: the good-machine view of the current
  /// block. detect_word writes its wave here and restores it via touched_
  /// before returning; detect_word_resim leaves its machine in place at
  /// levels >= dirty_level_ and lets the next sweep overwrite it.
  std::vector<std::uint64_t> work_;
  std::size_t dirty_level_ = 0;
  bool block_synced_ = false;
  /// Block epoch of the stamped buffer last seen by begin_block;
  /// 0 when that buffer carried no stamp (epochs start at 1).
  std::uint64_t stamp_ = 0;
};

/// Reference engine (see header comment). Intended for small circuits.
/// `schedule`, when given, restricts which observation points count at
/// which pattern (see strobe.hpp); it must cover exactly
/// circuit.observed_points().size() points.
FaultSimResult simulate_serial(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule = nullptr);

/// Production engine: PPSFP with fault dropping on the compiled netlist.
/// `compiled`, when non-null, must be a compiled view of faults.circuit()
/// and is used instead of recompiling — the batch runner's per-(circuit,
/// model) artifact cache passes it so N specs over one circuit compile
/// once. `width` in {1, 4, 8} selects the grading word: width w grades
/// w*64 patterns per good-machine pass through the sim::WideWord kernel
/// (width 1 is the classic uint64_t path). Results are bit-identical for
/// every width and with or without a caller-supplied compiled view.
FaultSimResult simulate_ppsfp(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule = nullptr,
    std::shared_ptr<const circuit::CompiledCircuit> compiled = nullptr,
    std::size_t width = 1);

/// Multi-threaded PPSFP: per block, the live-fault list is partitioned
/// across `num_threads` workers (resolved by util::resolve_worker_count;
/// 0 = one per hardware thread), each with its own Propagator; fault
/// dropping compacts the list after every block. Bit-identical to
/// simulate_ppsfp and simulate_serial. `compiled` and `width` as in
/// simulate_ppsfp.
FaultSimResult simulate_ppsfp_mt(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule = nullptr, std::size_t num_threads = 0,
    std::shared_ptr<const circuit::CompiledCircuit> compiled = nullptr,
    std::size_t width = 1);

/// The PPSFP-family grading core, exposed for the sharding layer
/// (fault/shard.hpp): grade collapsed classes [class_begin, class_end) of
/// `faults` over the whole pattern set and write each graded class's
/// first-detection index (or -1) into `first_detection`, which must
/// already be sized faults.class_count(); entries outside the range are
/// not touched. `compiled` must be a non-null view of faults.circuit().
/// `width` in {1, 4, 8}. With `use_pool` false the range grades on the
/// calling thread; true fans it out over resolve_worker_count(num_threads)
/// lanes. The bits written are identical for every width / thread / range
/// split — per-class detect words are pure functions of the patterns.
void grade_class_range(
    const FaultList& faults, const sim::PatternSet& patterns,
    const StrobeSchedule* schedule,
    const std::shared_ptr<const circuit::CompiledCircuit>& compiled,
    std::size_t width, bool use_pool, std::size_t num_threads,
    std::size_t class_begin, std::size_t class_end,
    std::vector<std::int64_t>& first_detection);

/// Detection words for one fault over one simulated block: bit p is set
/// when pattern p of the block detects the fault. Convenience wrappers
/// that build a throwaway Propagator (three O(gate_count) allocations per
/// call) — grading loops should hold a Propagator instead.
std::uint64_t detect_word_for_fault(const circuit::Circuit& circuit,
                                    const Fault& fault,
                                    const std::vector<std::uint64_t>&
                                        good_values);

/// Strobe-aware variant: `point_masks` gives, per observed point, the
/// lanes in which that point is strobed for this block (null = all).
std::uint64_t detect_word_for_fault(const circuit::Circuit& circuit,
                                    const Fault& fault,
                                    const std::vector<std::uint64_t>&
                                        good_values,
                                    const std::vector<std::uint64_t>*
                                        point_masks);

}  // namespace lsiq::fault
