// Single stuck-at fault simulation.
//
// Two engines with one contract:
//
//   * simulate_serial — the reference implementation: for every fault, the
//     whole circuit is re-simulated with the fault injected, block by
//     block. O(faults x gates x blocks); trusted because it is simple.
//     The test suite cross-checks the fast engine against it.
//
//   * simulate_ppsfp — parallel-pattern single-fault propagation, the
//     production engine (same family of techniques as the paper's LAMP
//     runs): good-machine simulation once per 64-pattern block, then for
//     each still-undetected fault an event-driven faulty re-simulation
//     forward from the fault site only, with fault dropping.
//
// Both return, per collapsed fault class, the index of the first pattern
// that detects it — the raw material for coverage curves (Section 5) and
// for the virtual tester's first-failing-pattern experiment (Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "fault/coverage.hpp"
#include "fault/fault_list.hpp"
#include "fault/strobe.hpp"
#include "sim/pattern.hpp"

namespace lsiq::fault {

struct FaultSimResult {
  /// Per collapsed class: first detecting pattern index, or -1 if the
  /// pattern set never detects the class.
  std::vector<std::int64_t> first_detection;

  /// Universe faults covered (weighted by class size).
  std::size_t covered_faults = 0;

  /// Detected collapsed classes.
  std::size_t detected_classes = 0;

  /// Final coverage f = covered_faults / N over the full universe.
  double coverage = 0.0;

  /// Cumulative coverage versus pattern count.
  [[nodiscard]] CoverageCurve curve(const FaultList& faults,
                                    std::size_t pattern_count) const;
};

/// Reference engine (see header comment). Intended for small circuits.
/// `schedule`, when given, restricts which observation points count at
/// which pattern (see strobe.hpp); it must cover exactly
/// circuit.observed_points().size() points.
FaultSimResult simulate_serial(const FaultList& faults,
                               const sim::PatternSet& patterns,
                               const StrobeSchedule* schedule = nullptr);

/// Production engine: PPSFP with fault dropping.
FaultSimResult simulate_ppsfp(const FaultList& faults,
                              const sim::PatternSet& patterns,
                              const StrobeSchedule* schedule = nullptr);

/// Detection words for one fault over one simulated block: bit p is set
/// when pattern p of the block detects the fault. `good_values` must hold
/// the good-machine words of every gate for this block (a completed
/// ParallelSimulator::simulate_block). Exposed for the PPSFP inner loop and
/// reused by the test generator to confirm its tests.
std::uint64_t detect_word_for_fault(const circuit::Circuit& circuit,
                                    const Fault& fault,
                                    const std::vector<std::uint64_t>&
                                        good_values);

/// Strobe-aware variant: `point_masks` gives, per observed point, the
/// lanes in which that point is strobed for this block (null = all).
std::uint64_t detect_word_for_fault(const circuit::Circuit& circuit,
                                    const Fault& fault,
                                    const std::vector<std::uint64_t>&
                                        good_values,
                                    const std::vector<std::uint64_t>*
                                        point_masks);

}  // namespace lsiq::fault
