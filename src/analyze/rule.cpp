#include "analyze/rule.hpp"

#include <algorithm>
#include <sstream>

namespace lsiq::analyze {

namespace {

/// JSON string escaping for the diagnostic wire format — same escapes the
/// batch result store uses, so the two JSONL streams are uniformly
/// machine-readable.
void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string join_diagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::size_t errors = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Policy::kError) ++errors;
  }
  std::ostringstream out;
  out << "lint failed (" << errors << " error"
      << (errors == 1 ? "" : "s") << ", " << (diagnostics.size() - errors)
      << " warning" << (diagnostics.size() - errors == 1 ? "" : "s") << ")";
  for (const Diagnostic& d : diagnostics) {
    out << "\n  " << d.text();
  }
  return out.str();
}

}  // namespace

std::optional<Policy> policy_from_name(std::string_view name) noexcept {
  for (const Policy policy : {Policy::kOff, Policy::kWarn, Policy::kError}) {
    if (name == policy_name(policy)) return policy;
  }
  return std::nullopt;
}

Policy Options::policy(RuleClass cls) const noexcept {
  switch (cls) {
    case RuleClass::kStructure: return structure;
    case RuleClass::kDeadLogic: return dead_logic;
    case RuleClass::kUntestable: return untestable;
    case RuleClass::kTestability: return testability;
  }
  return Policy::kOff;
}

bool Options::any_enabled() const noexcept {
  return structure != Policy::kOff || dead_logic != Policy::kOff ||
         untestable != Policy::kOff || testability != Policy::kOff;
}

std::string Diagnostic::to_jsonl() const {
  std::string out = "{\"rule\":";
  append_json_string(out, rule_name(rule));
  out += ",\"class\":";
  append_json_string(out, rule_class_name(rule_class(rule)));
  out += ",\"severity\":";
  append_json_string(out, severity == Policy::kError ? "error" : "warning");
  out += ",\"object\":";
  append_json_string(out, object);
  out += ",\"message\":";
  append_json_string(out, message);
  out += "}";
  return out;
}

std::string Diagnostic::text() const {
  std::string out = severity == Policy::kError ? "error[" : "warning[";
  out += rule_name(rule);
  out += "]";
  if (!object.empty()) {
    out += " ";
    out += object;
  }
  out += ": ";
  out += message;
  return out;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     const bool a_wide = a.gate == circuit::kNoGate;
                     const bool b_wide = b.gate == circuit::kNoGate;
                     if (a_wide != b_wide) return b_wide;
                     return a.gate < b.gate;
                   });
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Policy::kError) return true;
  }
  return false;
}

LintError::LintError(std::vector<Diagnostic> diagnostics)
    : Error(join_diagnostics(diagnostics), ErrorCode::kLint),
      diagnostics_(std::move(diagnostics)) {}

}  // namespace lsiq::analyze
