// Testability analysis: per-line controllability/observability, per-class
// random-pattern detection probabilities, and a predicted coverage curve —
// the static half of the paper's coverage-vs-quality argument.
//
// Two measure families over one circuit:
//
//   * SCOAP (tpg/scoap.hpp, promoted here to a public report): integer
//     difficulty costs. Good for RANKING — the hard-fault tail of a
//     random-pattern coverage curve is exactly the high-SCOAP tail.
//   * COP-style probabilities (computed here): P(line = 1) under uniform
//     random patterns (signal probability) and P(a fault effect on the
//     line propagates to an observed point) (observation probability),
//     combined per collapsed fault class into a detection probability
//     d_i. Good for PREDICTION: the expected coverage of an n-pattern
//     random program is sum_i w_i * (1 - (1 - d_i)^n) / N, which
//     tests/test_analyze_testability.cpp pins against measured fault-sim
//     coverage on mult16 (within 2 points at 256 and 1024 patterns).
//
// Both passes assume signal independence (the classic COP simplification);
// reconvergent fanout makes individual line estimates approximate, which
// is why the validation target is the aggregate curve, not per-line
// values. Structural equivalence makes the per-class reduction exact in
// spirit: collapsed faults share their detecting pattern set, so one
// representative prices the whole class.
#pragma once

#include <cstddef>
#include <vector>

#include "analyze/rule.hpp"
#include "fault/fault_list.hpp"
#include "tpg/scoap.hpp"

namespace lsiq::analyze {

/// One ranked entry of the resistant-fault report.
struct ResistantFault {
  std::size_t class_index = 0;       ///< into FaultList::representatives()
  fault::Fault fault;                ///< the class representative
  double detection_probability = 0;  ///< per random pattern
  std::uint32_t scoap_cost = 0;      ///< SCOAP detection-cost estimate
};

/// The full testability report over one collapsed fault universe.
struct TestabilityReport {
  /// Per line (GateId-indexed): P(line = 1) under uniform random inputs.
  std::vector<double> signal_probability;

  /// Per line: P(a fault effect on the line reaches an observed point).
  std::vector<double> observe_probability;

  /// The SCOAP measures (CC0/CC1/CO) for the same circuit — the integer
  /// difficulty view of the same structure.
  tpg::TestabilityMeasures scoap;

  /// Per collapsed class: P(one uniform random pattern detects it).
  std::vector<double> detection_probability;

  /// Universe bookkeeping mirrored from the FaultList: class weights and
  /// the paper's N, so the report can predict coverage standalone.
  std::vector<std::size_t> class_sizes;
  std::size_t fault_count = 0;

  /// Expected coverage of an n-pattern uniform random program:
  /// sum_i w_i * (1 - (1 - d_i)^n) / N.
  [[nodiscard]] double predicted_coverage(std::size_t patterns) const;

  /// Classes with detection probability below `threshold`, hardest first
  /// (ties broken by class index for determinism).
  [[nodiscard]] std::vector<std::size_t> resistant_classes(
      double threshold) const;
};

/// Compute the full report for a collapsed universe (any fault model: a
/// transition fault is at least as hard as its capture stuck-at, so the
/// stuck-at detection probability is the optimistic bound used for both).
TestabilityReport analyze_testability(const fault::FaultList& faults);

/// The ranked resistant-fault list (report + universe -> entries), capped
/// at `max_entries`.
std::vector<ResistantFault> resistant_faults(
    const fault::FaultList& faults, const TestabilityReport& report,
    double threshold, std::size_t max_entries);

/// The testability rule class as diagnostics: one resistant_fault finding
/// per class under Options::resistant_threshold (capped at
/// Options::max_per_rule), severity per Options::testability. Empty when
/// the class is kOff.
std::vector<Diagnostic> testability_diagnostics(
    const fault::FaultList& faults, const TestabilityReport& report,
    const Options& options);

}  // namespace lsiq::analyze
