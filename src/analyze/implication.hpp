// Static logic implications, implied constants and stem dominators over a
// compiled netlist — the decision-procedure half of the static analyzer.
//
// The structural pass (analyze.hpp) only learns what tied constants force;
// everything reconvergent is out of its reach. This engine closes part of
// that gap without a single simulation: assume one literal (line = value),
// propagate it over the ternary lattice with the full set of forward and
// backward gate rules, and read the closure. Three products fall out:
//
//   * implied constants — a literal whose closure is contradictory is
//     impossible, so its line is constant at the opposite value (this is
//     how y = AND(a, NOT a) is proven constant-0 with no tied inputs);
//   * indirect implications — contrapositives of propagated closures that
//     no local gate rule derives (z = OR(AND(a,b), AND(a,c)) gives
//     z=1 => a=1), learned once and replayed during later propagations
//     (classic static learning, Schulz's SOCRATES);
//   * necessary assignments — the good-machine values every test for a
//     fault must establish: the activation literal plus the non-cone side
//     inputs of every dominator of the fault site held non-controlling
//     (unique sensitization), all closed under the implication graph. A
//     contradictory necessary set is a redundancy proof; a consistent one
//     prunes PODEM's search (tpg/podem.hpp, PodemOptions::use_implications).
//
// Dominators are computed on the fanout DAG toward a virtual sink joined
// to every observed point (primary outputs and flip-flop D drivers), so a
// gate's dominator chain is exactly the set of gates every propagation
// path from it must cross. Flip-flops are full-scan boundaries: nothing
// propagates through a DFF (its output is an independent pattern input,
// its D driver is itself observed).
//
// Everything here reasons about the GOOD machine only — implied values
// hold for every input pattern, so every verdict is sound under any
// single-fault hypothesis. Memory is O(node_count^2 / 8) for the fanout
// cone bitsets: built for ATPG-scale circuits, like PODEM itself.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/analyze.hpp"
#include "circuit/compiled.hpp"
#include "fault/fault.hpp"
#include "sim/logic_value.hpp"

namespace lsiq::analyze {

/// A literal: line `gate` carrying `value`. Encoded 2 * gate + value so
/// literal lists pack into flat vectors.
using Literal = std::uint32_t;

[[nodiscard]] constexpr Literal make_literal(circuit::GateId gate,
                                             bool one) noexcept {
  return 2 * gate + (one ? 1u : 0u);
}
[[nodiscard]] constexpr circuit::GateId literal_line(Literal lit) noexcept {
  return lit / 2;
}
[[nodiscard]] constexpr bool literal_one(Literal lit) noexcept {
  return (lit & 1u) != 0;
}
[[nodiscard]] constexpr Literal literal_not(Literal lit) noexcept {
  return lit ^ 1u;
}

/// The good-machine requirements shared by every test for one fault (or
/// one justification objective), closed under the implication graph.
/// `contradictory` means no input pattern satisfies them all — a static
/// proof of redundancy (unjustifiability).
struct NecessaryAssignments {
  std::vector<Literal> literals;  ///< sorted, base constants excluded
  bool contradictory = false;
};

class ImplicationEngine {
 public:
  /// Build the implication graph: seed constants, run the learning sweep
  /// (implied constants + indirect implications), compute dominators and
  /// fanout cones. The compiled view must outlive the engine.
  explicit ImplicationEngine(const circuit::CompiledCircuit& compiled);

  [[nodiscard]] const circuit::CompiledCircuit& compiled() const noexcept {
    return *compiled_;
  }

  /// Constant verdict of a line, including implication-derived constants
  /// (a superset of what tied-constant propagation alone proves).
  [[nodiscard]] LineValue constant(circuit::GateId id) const;

  /// Assume `assumptions` on top of the baked-in constants and run the
  /// implication closure (forward/backward gate rules plus learned
  /// indirect implications). `values` is resized to node_count() and
  /// overwritten with the closure. Returns false on contradiction.
  bool propagate(const std::vector<Literal>& assumptions,
                 std::vector<sim::Tri>& values) const;

  // ---- dominators on the fanout DAG ----

  /// True when at least one path from the gate reaches an observed point.
  [[nodiscard]] bool reaches_observed(circuit::GateId id) const {
    return reachable_[id] != 0;
  }

  /// Immediate dominator of `id` toward the observed points; kNoGate when
  /// the virtual sink is the only dominator (or the gate is unreachable).
  [[nodiscard]] circuit::GateId immediate_dominator(circuit::GateId id) const;

  /// The full dominator chain of `id` (excluding `id` and the virtual
  /// sink), nearest first: every propagation path from `id` to an
  /// observed point passes through each of these gates.
  [[nodiscard]] std::vector<circuit::GateId> dominators(
      circuit::GateId id) const;

  /// True when `target` lies in the transitive fanout cone of `source`
  /// (source itself included).
  [[nodiscard]] bool in_cone(circuit::GateId source,
                             circuit::GateId target) const {
    return (cone_[static_cast<std::size_t>(source) * cone_stride_ +
                  target / 64] >>
            (target % 64) &
            1u) != 0;
  }

  // ---- necessary assignments ----

  /// Necessary good-machine assignments for DETECTING `fault`: activation
  /// plus unique sensitization through the dominator chain, closed under
  /// implications. contradictory == true is a sound redundancy proof.
  [[nodiscard]] NecessaryAssignments necessary_assignments(
      const fault::Fault& fault) const;

  /// The seed-level necessary literals of `fault` BEFORE closure: the
  /// activation literal, the reading gate's side pins at non-controlling
  /// values (branch faults), and the non-cone side inputs of every
  /// dominator held non-controlling. Sorted and deduplicated. This is the
  /// raw requirement list FIRE's inverted index and the cheap pairwise
  /// conflict check consume; necessary_assignments() is its closure.
  [[nodiscard]] std::vector<Literal> necessary_seeds(
      const fault::Fault& fault) const;

  /// Necessary assignments for JUSTIFYING line == value (no observation
  /// requirement): the closure of the single literal. contradictory ==
  /// true proves the line constant at the opposite value.
  [[nodiscard]] NecessaryAssignments justification_assignments(
      circuit::GateId line, bool value) const;

 private:
  /// Worklist state of one propagation (reused via caller-owned buffers).
  bool set_value(std::vector<sim::Tri>& values,
                 std::vector<circuit::GateId>& queue, circuit::GateId id,
                 sim::Tri value) const;
  bool examine(std::vector<sim::Tri>& values,
               std::vector<circuit::GateId>& queue,
               circuit::GateId id) const;
  bool drain(std::vector<sim::Tri>& values,
             std::vector<circuit::GateId>& queue) const;

  void build_base();
  void build_cones();
  void build_dominators();
  void learn();
  /// One constants round: probe every free literal, bake contradictions
  /// into base_ as implied constants. Returns true when base_ changed.
  bool sweep_constants();

  /// Nearest common dominator of two processed nodes (CHK intersect,
  /// walking idom chains by rank toward the sink).
  [[nodiscard]] circuit::GateId intersect_doms(circuit::GateId a,
                                               circuit::GateId b) const;

  /// Collect the closure of `seeds` into a NecessaryAssignments record.
  [[nodiscard]] NecessaryAssignments close_over(
      std::vector<Literal> seeds) const;

  const circuit::CompiledCircuit* compiled_;
  std::size_t n_ = 0;

  /// Baked-in per-line constants (tied + implication-derived).
  std::vector<sim::Tri> base_;

  /// Learned indirect implications: for each literal (index), the
  /// literals it forces that no local gate rule derives.
  std::vector<std::vector<Literal>> learned_;

  /// Fanout-cone bitsets, cone_stride_ words per gate.
  std::vector<std::uint64_t> cone_;
  std::size_t cone_stride_ = 0;

  /// Dominators: immediate dominator per gate (sink_ = virtual sink id,
  /// kNoGate = unreachable), processing rank for chain walks.
  circuit::GateId sink_ = 0;
  std::vector<circuit::GateId> idom_;
  std::vector<std::uint32_t> rank_;
  std::vector<char> reachable_;
};

}  // namespace lsiq::analyze
