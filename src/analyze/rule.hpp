// The static-analysis rule taxonomy: stable rule IDs, rule classes,
// per-class policies and structured diagnostics.
//
// Mirrors the util::ErrorCode design: every rule has a stable lower_snake
// name that is part of the JSONL diagnostic wire format — never renumber
// or rename existing entries, only append. A Diagnostic is the unit the
// whole subsystem deals in: the analyzer emits them, the flow pre-run gate
// filters them by per-class Policy, `lsiq_flow --check` streams them as
// JSON lines, and LintError carries them through the batch runner's error
// taxonomy (ErrorCode::kLint).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/gate.hpp"
#include "util/error.hpp"

namespace lsiq::analyze {

/// Stable rule identifiers. Append-only (the names below are the JSONL
/// wire form and appear in FlowSpec analyze policies' documentation).
enum class Rule : int {
  // -- class "structure": the netlist is malformed --
  kCycle = 0,            ///< combinational feedback loop
  kFloatingGate = 1,     ///< non-source gate with no fanin (undriven net)
  kUnconnectedDff = 2,   ///< flip-flop whose D input was never connected
  kNoObservedOutput = 3, ///< no primary output and no flip-flop D input
  kNoPatternInput = 4,   ///< no primary input and no flip-flop output

  // -- class "dead_logic": logic that cannot affect any observed point --
  kDanglingGate = 5,     ///< gate with no fanout that is not observed
  kUnusedInput = 6,      ///< primary input that drives nothing
  kUnobservableGate = 7, ///< every path to an observed point is blocked

  // -- class "untestable": fault sites provably redundant --
  kConstantLine = 8,     ///< line held constant by tied Const0/Const1 inputs
  kUntestableFault = 9,  ///< statically proven untestable stuck-at site

  // -- class "testability": random-pattern-resistant faults --
  kResistantFault = 10,  ///< detection probability below the threshold

  // -- class "untestable", implication prover (appended: IDs are stable) --
  kUntestableImplication = 11,  ///< redundancy proven by the implication
                                ///< engine (implied constants, necessary-
                                ///< assignment conflicts, FIRE stems)
};

/// Rules are gated per class, not per rule: a policy knob per failure
/// *kind* keeps the FlowSpec surface small while the rule list grows.
enum class RuleClass : int {
  kStructure = 0,
  kDeadLogic = 1,
  kUntestable = 2,
  kTestability = 3,
};

/// What the flow pre-run gate does with a class's findings.
enum class Policy : int {
  kOff = 0,   ///< do not run the class's rules
  kWarn = 1,  ///< report, continue the run
  kError = 2, ///< report and refuse the run (LintError)
};

/// Stable lower_snake name of a rule (the JSONL wire form).
[[nodiscard]] constexpr const char* rule_name(Rule rule) noexcept {
  switch (rule) {
    case Rule::kCycle: return "cycle";
    case Rule::kFloatingGate: return "floating_gate";
    case Rule::kUnconnectedDff: return "unconnected_dff";
    case Rule::kNoObservedOutput: return "no_observed_output";
    case Rule::kNoPatternInput: return "no_pattern_input";
    case Rule::kDanglingGate: return "dangling_gate";
    case Rule::kUnusedInput: return "unused_input";
    case Rule::kUnobservableGate: return "unobservable_gate";
    case Rule::kConstantLine: return "constant_line";
    case Rule::kUntestableFault: return "untestable_fault";
    case Rule::kResistantFault: return "resistant_fault";
    case Rule::kUntestableImplication: return "untestable_implication";
  }
  return "unknown";
}

[[nodiscard]] constexpr RuleClass rule_class(Rule rule) noexcept {
  switch (rule) {
    case Rule::kCycle:
    case Rule::kFloatingGate:
    case Rule::kUnconnectedDff:
    case Rule::kNoObservedOutput:
    case Rule::kNoPatternInput: return RuleClass::kStructure;
    case Rule::kDanglingGate:
    case Rule::kUnusedInput:
    case Rule::kUnobservableGate: return RuleClass::kDeadLogic;
    case Rule::kConstantLine:
    case Rule::kUntestableFault:
    case Rule::kUntestableImplication: return RuleClass::kUntestable;
    case Rule::kResistantFault: return RuleClass::kTestability;
  }
  return RuleClass::kStructure;
}

/// Stable name of a rule class (the FlowSpec analyze_* key suffixes).
[[nodiscard]] constexpr const char* rule_class_name(RuleClass cls) noexcept {
  switch (cls) {
    case RuleClass::kStructure: return "structure";
    case RuleClass::kDeadLogic: return "dead_logic";
    case RuleClass::kUntestable: return "untestable";
    case RuleClass::kTestability: return "testability";
  }
  return "unknown";
}

/// Stable policy names (the FlowSpec analyze_* key values).
[[nodiscard]] constexpr const char* policy_name(Policy policy) noexcept {
  switch (policy) {
    case Policy::kOff: return "off";
    case Policy::kWarn: return "warn";
    case Policy::kError: return "error";
  }
  return "off";
}

/// Inverse of policy_name; nullopt for an unrecognized name.
[[nodiscard]] std::optional<Policy> policy_from_name(
    std::string_view name) noexcept;

/// How the analyzer is configured: one Policy per rule class plus the
/// testability-class knobs. The defaults match AnalyzeSpec's defaults
/// (flow/spec.hpp): structural damage refuses the run, dead logic and
/// untestable sites warn, the testability scan is opt-in (it needs a
/// fault universe and a full probability pass).
struct Options {
  Policy structure = Policy::kError;
  Policy dead_logic = Policy::kWarn;
  Policy untestable = Policy::kWarn;
  Policy testability = Policy::kOff;

  /// "testability": classes with random-pattern detection probability
  /// below this are reported as resistant_fault.
  double resistant_threshold = 1e-3;

  /// Cap on diagnostics emitted per rule; findings beyond it are folded
  /// into one summary diagnostic so a tied-off megacone cannot flood the
  /// report. The analysis itself is never truncated.
  std::size_t max_per_rule = 25;

  [[nodiscard]] Policy policy(RuleClass cls) const noexcept;

  /// True when at least one class is not kOff.
  [[nodiscard]] bool any_enabled() const noexcept;
};

/// One finding: which rule fired, on what, at what severity. `gate` is
/// kNoGate for circuit-wide findings (e.g. no_pattern_input).
struct Diagnostic {
  Rule rule = Rule::kCycle;
  Policy severity = Policy::kWarn;  ///< kWarn or kError (never kOff)
  circuit::GateId gate = circuit::kNoGate;
  std::string object;   ///< gate / net / fault name the finding anchors to
  std::string message;

  /// One JSON line (stable key order), e.g.
  /// {"rule":"cycle","class":"structure","severity":"error",...}.
  [[nodiscard]] std::string to_jsonl() const;

  /// Human one-liner: "error[cycle] n3: combinational cycle: ...".
  [[nodiscard]] std::string text() const;
};

/// True when any diagnostic in the list is error-severity.
[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diagnostics);

/// Deterministic diagnostic order: by rule id, then gate index, with each
/// rule's circuit-wide / summary entries (gate == kNoGate) last. Stable,
/// so same-gate findings keep their emission order (e.g. pins ascending).
/// Both analyze() and the flow check gate apply this, which is what makes
/// `--check` JSONL output byte-stable run over run.
void sort_diagnostics(std::vector<Diagnostic>& diagnostics);

/// Thrown by the flow pre-run gate when a rule class set to Policy::kError
/// fired. Carries EVERY diagnostic of the failed analysis (errors and
/// warnings), so --check can print the full picture from the exception.
/// ErrorCode::kLint is permanent: the same netlist re-lints identically,
/// so the batch runner never retries a lint failure.
class LintError : public Error {
 public:
  explicit LintError(std::vector<Diagnostic> diagnostics);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace lsiq::analyze
