#include "analyze/analyze.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "analyze/implication.hpp"
#include "analyze/redundancy.hpp"
#include "circuit/compiled.hpp"

namespace lsiq::analyze {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;
using circuit::kNoGate;

bool is_source(GateType type) noexcept {
  return type == GateType::kInput || type == GateType::kConst0 ||
         type == GateType::kConst1;
}

/// The whole analysis works on derived adjacency (consumer lists per
/// line) and its own Kahn order, because the input circuit may be
/// unfinalized — lint exists precisely for netlists finalize() rejects.
struct Topology {
  /// Consumer (gate, pin) pairs per driving line.
  std::vector<std::vector<std::pair<GateId, std::int32_t>>> readers;
  /// Kahn order over combinational edges (edges into a DFF's D pin are
  /// sequential and excluded). Complete iff acyclic.
  std::vector<GateId> order;
  bool acyclic = true;
  /// One representative combinational cycle (signal-flow order) when
  /// !acyclic.
  std::vector<GateId> cycle;
};

Topology derive_topology(const Circuit& circuit) {
  const std::size_t n = circuit.gate_count();
  Topology topo;
  topo.readers.resize(n);
  std::vector<std::uint32_t> indegree(n, 0);
  for (GateId id = 0; id < n; ++id) {
    const Gate& gate = circuit.gate(id);
    const bool sequential = gate.type == GateType::kDff;
    for (std::int32_t pin = 0;
         pin < static_cast<std::int32_t>(gate.fanin.size()); ++pin) {
      topo.readers[gate.fanin[pin]].emplace_back(id, pin);
      if (!sequential) ++indegree[id];
    }
  }

  topo.order.reserve(n);
  std::vector<GateId> frontier;
  for (GateId id = 0; id < n; ++id) {
    if (indegree[id] == 0) frontier.push_back(id);
  }
  // Pop the smallest id each round: the order (and thus every diagnostic
  // derived from it) is deterministic regardless of construction order.
  std::make_heap(frontier.begin(), frontier.end(), std::greater<>());
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), std::greater<>());
    const GateId id = frontier.back();
    frontier.pop_back();
    topo.order.push_back(id);
    for (const auto& [reader, pin] : topo.readers[id]) {
      if (circuit.gate(reader).type == GateType::kDff) continue;
      if (--indegree[reader] == 0) {
        frontier.push_back(reader);
        std::push_heap(frontier.begin(), frontier.end(), std::greater<>());
      }
    }
  }

  if (topo.order.size() == n) return topo;
  topo.acyclic = false;

  // Extract one actual cycle for the diagnostic: from the smallest
  // unresolved gate, walk fanin edges within the unresolved set (every
  // unresolved gate has one) until a gate repeats.
  std::vector<char> unresolved(n, 1);
  for (const GateId id : topo.order) unresolved[id] = 0;
  GateId start = kNoGate;
  for (GateId id = 0; id < n; ++id) {
    if (unresolved[id] != 0) {
      start = id;
      break;
    }
  }
  std::vector<GateId> path;
  std::vector<std::uint32_t> visited_at(n, 0xffffffffu);
  GateId current = start;
  while (visited_at[current] == 0xffffffffu) {
    visited_at[current] = static_cast<std::uint32_t>(path.size());
    path.push_back(current);
    GateId next = kNoGate;
    for (const GateId fanin : circuit.gate(current).fanin) {
      if (unresolved[fanin] != 0 &&
          (next == kNoGate || fanin < next)) {
        next = fanin;
      }
    }
    current = next;  // never kNoGate: unresolved gates keep indegree > 0
  }
  // path[visited_at[current]..] walks the cycle along fanin (i.e. against
  // signal flow); reverse it so the diagnostic reads driver -> reader.
  topo.cycle.assign(path.begin() + visited_at[current], path.end());
  std::reverse(topo.cycle.begin(), topo.cycle.end());
  return topo;
}

/// True when a constant on the OTHER pins of `gate` forces its output
/// regardless of pin `pin` — the propagation-blocking test used both for
/// observability and for branch-fault untestability.
bool pin_blocked(const Gate& gate, std::int32_t pin,
                 const std::vector<LineValue>& constant) {
  const bool and_like =
      gate.type == GateType::kAnd || gate.type == GateType::kNand;
  const bool or_like =
      gate.type == GateType::kOr || gate.type == GateType::kNor;
  if (!and_like && !or_like) return false;  // XOR/XNOR/BUF/NOT/DFF: never
  const LineValue controlling = and_like ? LineValue::kZero : LineValue::kOne;
  for (std::int32_t q = 0;
       q < static_cast<std::int32_t>(gate.fanin.size()); ++q) {
    if (q == pin) continue;
    if (constant[gate.fanin[q]] == controlling) return true;
  }
  return false;
}

LineValue evaluate_constant(const Gate& gate,
                            const std::vector<LineValue>& constant) {
  const auto in = [&](std::size_t pin) { return constant[gate.fanin[pin]]; };
  switch (gate.type) {
    case GateType::kInput:
    case GateType::kDff:  // scan-loadable: the tester controls it
      return LineValue::kUnknown;
    case GateType::kConst0: return LineValue::kZero;
    case GateType::kConst1: return LineValue::kOne;
    case GateType::kBuf:
      return gate.fanin.empty() ? LineValue::kUnknown : in(0);
    case GateType::kNot:
      if (gate.fanin.empty() || in(0) == LineValue::kUnknown) {
        return LineValue::kUnknown;
      }
      return in(0) == LineValue::kZero ? LineValue::kOne : LineValue::kZero;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: {
      const bool and_like =
          gate.type == GateType::kAnd || gate.type == GateType::kNand;
      const LineValue controlling =
          and_like ? LineValue::kZero : LineValue::kOne;
      bool all_known = !gate.fanin.empty();
      bool controlled = false;
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        if (in(pin) == controlling) controlled = true;
        if (in(pin) == LineValue::kUnknown) all_known = false;
      }
      if (!controlled && !all_known) return LineValue::kUnknown;
      // Controlled => controlling value out; all non-controlling => the
      // other value. Inverting types flip it.
      bool out = and_like ? !controlled : controlled;
      if (gate.type == GateType::kNand || gate.type == GateType::kNor) {
        out = !out;
      }
      return out ? LineValue::kOne : LineValue::kZero;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      if (gate.fanin.empty()) return LineValue::kUnknown;
      bool parity = gate.type == GateType::kXnor;
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        if (in(pin) == LineValue::kUnknown) return LineValue::kUnknown;
        parity ^= in(pin) == LineValue::kOne;
      }
      return parity ? LineValue::kOne : LineValue::kZero;
    }
  }
  return LineValue::kUnknown;
}

/// Diagnostic sink with the per-rule cap: findings beyond
/// Options::max_per_rule collapse into one trailing summary per rule.
class Emitter {
 public:
  Emitter(const Options& options, std::vector<Diagnostic>* out)
      : options_(options), out_(out) {}

  void emit(Rule rule, GateId gate, std::string object,
            std::string message) {
    const Policy policy = options_.policy(rule_class(rule));
    if (policy == Policy::kOff) return;
    const std::size_t count = ++counts_[rule];
    if (count > options_.max_per_rule) return;
    out_->push_back(Diagnostic{rule, policy, gate, std::move(object),
                               std::move(message)});
  }

  /// Append the "... and N more" summaries for every overflowing rule.
  void finish() {
    for (const auto& [rule, count] : counts_) {
      if (count <= options_.max_per_rule) continue;
      const Policy policy = options_.policy(rule_class(rule));
      out_->push_back(Diagnostic{
          rule, policy, kNoGate, "",
          std::to_string(count - options_.max_per_rule) + " more " +
              std::string(rule_name(rule)) + " finding" +
              (count - options_.max_per_rule == 1 ? "" : "s") +
              " suppressed (" + std::to_string(count) + " total)"});
    }
  }

 private:
  const Options& options_;
  std::vector<Diagnostic>* out_;
  std::map<Rule, std::size_t> counts_;
};

std::string value_text(LineValue value) {
  return value == LineValue::kOne ? "1" : "0";
}

}  // namespace

Report analyze(const Circuit& circuit, const Options& options) {
  Report report;
  Emitter emit(options, &report.diagnostics);
  const std::size_t n = circuit.gate_count();

  // ---- structure: the checks that decide whether analysis can proceed ----
  const Topology topo = derive_topology(circuit);
  if (!topo.acyclic) {
    std::string path;
    for (const GateId id : topo.cycle) {
      path += circuit.gate(id).name;
      path += " -> ";
    }
    path += circuit.gate(topo.cycle.front()).name;
    emit.emit(Rule::kCycle, topo.cycle.front(),
              circuit.gate(topo.cycle.front()).name,
              "combinational cycle: " + path);
    report.structure_ok = false;
  }

  bool has_pattern_input = false;
  for (GateId id = 0; id < n; ++id) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff) {
      has_pattern_input = true;
    }
    if (gate.type == GateType::kDff && gate.fanin.empty()) {
      emit.emit(Rule::kUnconnectedDff, id, gate.name,
                "flip-flop D input was never connected (connect_dff)");
      report.structure_ok = false;
    }
    if (!is_source(gate.type) && gate.type != GateType::kDff &&
        gate.fanin.empty()) {
      emit.emit(Rule::kFloatingGate, id, gate.name,
                std::string(circuit::gate_type_name(gate.type)) +
                    " gate has no fanin (undriven net)");
      report.structure_ok = false;
    }
  }
  if (!has_pattern_input && n > 0) {
    emit.emit(Rule::kNoPatternInput, kNoGate, circuit.name(),
              "circuit has no primary input and no flip-flop: nothing is "
              "controllable");
    report.structure_ok = false;
  }

  // The observed set under the full-scan model: primary outputs plus
  // every flip-flop's D driver (derived here, not via observed_points(),
  // which requires a finalized circuit).
  std::vector<char> observed(n, 0);
  bool any_observed = false;
  for (const GateId id : circuit.primary_outputs()) {
    observed[id] = 1;
    any_observed = true;
  }
  for (const GateId id : circuit.flip_flops()) {
    const Gate& dff = circuit.gate(id);
    if (!dff.fanin.empty()) {
      observed[dff.fanin[0]] = 1;
      any_observed = true;
    }
  }
  if (!any_observed && n > 0) {
    emit.emit(Rule::kNoObservedOutput, kNoGate, circuit.name(),
              "circuit has no primary output and no flip-flop D input: "
              "nothing is observable");
    report.structure_ok = false;
  }

  if (!report.structure_ok) {
    // No usable topological order (or no I/O at all): the value/flow
    // analyses below would report nonsense on top of real damage.
    emit.finish();
    sort_diagnostics(report.diagnostics);
    return report;
  }

  // ---- constant propagation (forward, in topological order) ----
  report.constant.assign(n, LineValue::kUnknown);
  for (const GateId id : topo.order) {
    report.constant[id] = evaluate_constant(circuit.gate(id), report.constant);
  }
  for (const GateId id : topo.order) {
    const Gate& gate = circuit.gate(id);
    if (is_source(gate.type)) continue;  // Const0/Const1 are constant by design
    if (report.constant[id] == LineValue::kUnknown) continue;
    emit.emit(Rule::kConstantLine, id, gate.name,
              "line is constant " + value_text(report.constant[id]) +
                  " under every input (tied constants reach it)");
  }

  // ---- observability (backward, in reverse topological order) ----
  report.observable.assign(n, 0);
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const GateId id = *it;
    if (observed[id] != 0) {
      report.observable[id] = 1;
      continue;
    }
    for (const auto& [reader, pin] : topo.readers[id]) {
      const Gate& consumer = circuit.gate(reader);
      // A DFF reader means `id` is its D driver, already in the observed
      // seed; this loop only decides propagation through logic.
      if (consumer.type == GateType::kDff) continue;
      if (report.observable[reader] != 0 &&
          !pin_blocked(consumer, pin, report.constant)) {
        report.observable[id] = 1;
        break;
      }
    }
  }

  // The backward pass treats ANY controlling constant on a sibling pin
  // as blocking — too strong when the sibling lies inside the flagged
  // gate's own fanout cone, where its faulty value need not equal the
  // constant good value (two effect-carrying inputs can still produce a
  // differing output). Re-check every flagged gate with the cone guard:
  // a sibling constant blocks only from OUTSIDE the fault cone, where
  // good and faulty values provably coincide. Guarded reach is a
  // superset of the unguarded pass, so gates already marked observable
  // never need the (per-gate O(E)) recheck.
  {
    std::vector<char> cone(n, 0);
    std::vector<char> reach(n, 0);
    std::vector<GateId> stack;
    for (const GateId source : topo.order) {
      if (report.observable[source] != 0) continue;
      if (topo.readers[source].empty()) continue;  // dangling: stays flagged
      std::fill(cone.begin(), cone.end(), 0);
      std::fill(reach.begin(), reach.end(), 0);
      stack.assign(1, source);
      cone[source] = 1;
      while (!stack.empty()) {
        const GateId id = stack.back();
        stack.pop_back();
        for (const auto& [reader, pin] : topo.readers[id]) {
          if (circuit.gate(reader).type == GateType::kDff) continue;
          if (cone[reader] != 0) continue;
          cone[reader] = 1;
          stack.push_back(reader);
        }
      }
      stack.assign(1, source);
      reach[source] = 1;
      bool hit = observed[source] != 0;
      while (!hit && !stack.empty()) {
        const GateId id = stack.back();
        stack.pop_back();
        for (const auto& [reader, pin] : topo.readers[id]) {
          const Gate& consumer = circuit.gate(reader);
          if (consumer.type == GateType::kDff) continue;
          if (reach[reader] != 0) continue;
          const bool and_like = consumer.type == GateType::kAnd ||
                                consumer.type == GateType::kNand;
          const bool or_like = consumer.type == GateType::kOr ||
                               consumer.type == GateType::kNor;
          bool blocked = false;
          if (and_like || or_like) {
            const LineValue controlling =
                and_like ? LineValue::kZero : LineValue::kOne;
            for (std::int32_t q = 0;
                 q < static_cast<std::int32_t>(consumer.fanin.size()); ++q) {
              if (q == pin) continue;
              const GateId sibling = consumer.fanin[q];
              if (report.constant[sibling] == controlling &&
                  cone[sibling] == 0) {
                blocked = true;
                break;
              }
            }
          }
          if (blocked) continue;
          reach[reader] = 1;
          if (observed[reader] != 0) {
            hit = true;
            break;
          }
          stack.push_back(reader);
        }
      }
      if (hit) report.observable[source] = 1;
    }
  }

  for (const GateId id : topo.order) {
    const Gate& gate = circuit.gate(id);
    if (report.observable[id] != 0) continue;
    if (gate.type == GateType::kInput && topo.readers[id].empty()) {
      emit.emit(Rule::kUnusedInput, id, gate.name,
                "primary input drives nothing");
    } else if (topo.readers[id].empty()) {
      emit.emit(Rule::kDanglingGate, id, gate.name,
                "gate output drives nothing and is not observed");
    } else {
      emit.emit(Rule::kUnobservableGate, id, gate.name,
                "no path to an observed point (every route is dead or "
                "blocked by constants)");
    }
  }

  // ---- statically untestable stuck-at sites ----
  // Enumerated in FaultList site order (stems first, then pins, per gate)
  // so the cross-check against a collapsed universe is a plain walk.
  for (GateId id = 0; id < n; ++id) {
    const Gate& gate = circuit.gate(id);
    const bool site_observable = report.observable[id] != 0;
    for (const bool stuck_at_one : {false, true}) {
      const LineValue stuck =
          stuck_at_one ? LineValue::kOne : LineValue::kZero;
      const char* reason = nullptr;
      if (report.constant[id] == stuck) {
        reason = "the line already holds the stuck value on every pattern";
      } else if (!site_observable) {
        reason = "the fault effect cannot reach an observed point";
      }
      if (reason == nullptr) continue;
      const fault::Fault fault{id, -1, stuck_at_one};
      report.untestable_sites.push_back(fault);
      emit.emit(Rule::kUntestableFault, id,
                fault::fault_name(circuit, fault),
                std::string("statically untestable: ") + reason);
    }
    for (std::int32_t pin = 0;
         pin < static_cast<std::int32_t>(gate.fanin.size()); ++pin) {
      const GateId driver = gate.fanin[pin];
      // A DFF's D pin is itself an observed point; only activation can
      // fail there. Everywhere else the branch is dead if the pin is
      // blocked or the gate output is unobservable.
      const bool branch_observable =
          gate.type == GateType::kDff ||
          (site_observable && !pin_blocked(gate, pin, report.constant));
      for (const bool stuck_at_one : {false, true}) {
        const LineValue stuck =
            stuck_at_one ? LineValue::kOne : LineValue::kZero;
        const char* reason = nullptr;
        if (report.constant[driver] == stuck) {
          reason = "the driving line already holds the stuck value on "
                   "every pattern";
        } else if (!branch_observable) {
          reason = "the fault effect cannot reach an observed point";
        }
        if (reason == nullptr) continue;
        const fault::Fault fault{id, pin, stuck_at_one};
        report.untestable_sites.push_back(fault);
        emit.emit(Rule::kUntestableFault, id,
                  fault::fault_name(circuit, fault),
                  std::string("statically untestable: ") + reason);
      }
    }
  }

  // ---- implication-prover redundancies (finalized circuits only) ----
  // The structural verdicts above come from tied constants alone; the
  // implication engine adds implied constants, necessary-assignment
  // conflicts and FIRE stem conflicts — the reconvergent redundancies a
  // forward/backward sweep cannot see. Only finalized circuits can be
  // compiled, and the prover only runs when its class is enabled.
  if (circuit.finalized() &&
      options.policy(RuleClass::kUntestable) != Policy::kOff) {
    const circuit::CompiledCircuit compiled(circuit);
    const ImplicationEngine engine(compiled);
    const RedundancyReport redundancy = identify_redundancies(engine);
    std::vector<fault::Fault> merged;
    merged.reserve(report.untestable_sites.size() + redundancy.sites.size());
    auto structural = report.untestable_sites.begin();
    for (const RedundantSite& site : redundancy.sites) {
      while (structural != report.untestable_sites.end() &&
             *structural < site.fault) {
        merged.push_back(*structural++);
      }
      if (structural != report.untestable_sites.end() &&
          *structural == site.fault) {
        merged.push_back(*structural++);  // already proven structurally
        continue;
      }
      merged.push_back(site.fault);
      std::string message = "statically untestable: ";
      switch (site.reason) {
        case RedundancyReason::kActivationConstant:
          message += "an implied constant holds the stuck value on every "
                     "pattern";
          break;
        case RedundancyReason::kUnobservable:
          message += "no propagation path reaches an observed point";
          break;
        case RedundancyReason::kNecessaryConflict:
          message += "necessary assignments conflict on line '" +
                     circuit.gate(site.witness).name + "'";
          break;
        case RedundancyReason::kStemConflict:
          message += "detection needs stem '" +
                     circuit.gate(site.witness).name +
                     "' at 0 and 1 at once (FIRE)";
          break;
      }
      emit.emit(Rule::kUntestableImplication, site.fault.gate,
                fault::fault_name(circuit, site.fault), std::move(message));
    }
    merged.insert(merged.end(), structural, report.untestable_sites.end());
    report.untestable_sites = std::move(merged);
  }

  // ---- fanout-free regions (over combinational gates) ----
  {
    std::vector<GateId> region(n, kNoGate);
    std::vector<std::size_t> size_of(n, 0);
    for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
      const GateId id = *it;
      const Gate& gate = circuit.gate(id);
      if (is_source(gate.type) || gate.type == GateType::kDff) continue;
      const auto& readers = topo.readers[id];
      const bool root = observed[id] != 0 || readers.size() != 1 ||
                        circuit.gate(readers.front().first).type ==
                            GateType::kDff;
      region[id] = root ? id : region[readers.front().first];
      if (region[id] == kNoGate) region[id] = id;  // reader outside FFR scope
      ++size_of[region[id]];
    }
    for (GateId id = 0; id < n; ++id) {
      if (size_of[id] == 0) continue;
      ++report.ffr.regions;
      report.ffr.largest = std::max(report.ffr.largest, size_of[id]);
      report.ffr.average += static_cast<double>(size_of[id]);
    }
    if (report.ffr.regions > 0) {
      report.ffr.average /= static_cast<double>(report.ffr.regions);
    }
  }

  emit.finish();
  sort_diagnostics(report.diagnostics);
  return report;
}

}  // namespace lsiq::analyze
