// Static netlist analysis: structural lint, constant propagation, and
// statically-proven-untestable fault sites — no simulation, no ATPG.
//
// The 1981 paper prices product quality by which faults a test program
// can and cannot detect; until now the library only learned "cannot"
// AFTER simulating (or after PODEM exhausted a decision tree). analyze()
// is the cheap structural front-end: one forward pass (ternary constant
// propagation from tied Const0/Const1 inputs), one backward pass
// (constant-blocked observability), plus the structural checks finalize()
// either enforces by exception (cycles, unconnected flip-flops) or cannot
// see at all (dead cones, tied-off logic, undetectable fault sites).
//
// Soundness contract: every fault in Report::untestable_sites is PROVABLY
// redundant — either its line is held constant at the stuck value
// (activation impossible) or every path from its site to an observed
// point passes a side pin held at a controlling constant (observation
// impossible). PODEM must agree: tests/test_analyze_crosscheck.cpp pins
// untestable_sites ⊆ PODEM kUntestable on collapsed universes. Beyond the
// structural pass, analyze() now also runs the implication engine
// (analyze/implication.hpp + analyze/redundancy.hpp): implied constants,
// necessary-assignment conflicts and FIRE stem proofs land as
// untestable_implication diagnostics and catch a useful slice of the
// reconvergent redundancy the structural pass cannot see. Completeness is
// still not claimed — tests/test_implication_crosscheck.cpp pins a
// reconvergent case only a full decision procedure (PODEM) finds.
//
// Unlike every other consumer in the library, the analyzer accepts
// UNFINALIZED circuits: finalize() throws on the very defects (cycles,
// unconnected DFFs) a linter exists to report, so analyze() derives its
// own fanout lists and topological order from the fanin lists.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/rule.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault.hpp"

namespace lsiq::analyze {

/// Ternary constant-propagation lattice value of a line.
enum class LineValue : std::int8_t {
  kUnknown = -1,  ///< depends on inputs
  kZero = 0,      ///< provably 0 under every input pattern
  kOne = 1,       ///< provably 1 under every input pattern
};

/// Fanout-free-region statistics: the FFR partition of the combinational
/// logic (every gate belongs to the cone of the nearest downstream stem or
/// observed point). The paper's checkpoint argument — faults on FFR inputs
/// dominate — makes region count/size the natural density measure for a
/// test program.
struct FfrStats {
  std::size_t regions = 0;
  std::size_t largest = 0;
  double average = 0.0;
};

/// Everything one structural analysis produces. The vectors are indexed
/// by GateId; `diagnostics` carries only the findings of classes enabled
/// in Options (capped per rule), while the analysis vectors are always
/// complete when the circuit is acyclic.
struct Report {
  std::vector<Diagnostic> diagnostics;

  /// True when no structure-class rule fired. When false the circuit has
  /// no usable topological order and the analysis vectors below are
  /// empty.
  bool structure_ok = true;

  /// Constant-propagation verdict per line.
  std::vector<LineValue> constant;

  /// Per line: can a fault effect on it possibly reach an observed point
  /// (false = provably not, through constants/dead cones)?
  std::vector<char> observable;

  /// Statically proven untestable stuck-at fault sites, in the
  /// enumeration order of fault::FaultList (stems first, then pins, per
  /// gate). Sound: each is PODEM-redundant. Not complete: reconvergent
  /// redundancy is out of structural reach.
  std::vector<fault::Fault> untestable_sites;

  FfrStats ffr;

  [[nodiscard]] bool has_error_diagnostics() const {
    return has_errors(diagnostics);
  }
};

/// Run the structural analysis (everything except the testability class,
/// which needs a fault universe — see analyze/testability.hpp). Accepts
/// finalized and unfinalized circuits alike; never throws on netlist
/// defects — they become diagnostics.
Report analyze(const circuit::Circuit& circuit, const Options& options = {});

}  // namespace lsiq::analyze
