#include "analyze/testability.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "circuit/netlist.hpp"
#include "fault/fault.hpp"

namespace lsiq::analyze {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

/// P(pin `pin` of `gate` is at its non-blocking value) — the COP
/// propagation weight of one side pin.
double side_probability(const Gate& gate, std::size_t pin,
                        const std::vector<double>& p1) {
  switch (gate.type) {
    case GateType::kAnd:
    case GateType::kNand: return p1[gate.fanin[pin]];
    case GateType::kOr:
    case GateType::kNor: return 1.0 - p1[gate.fanin[pin]];
    default: return 1.0;  // XOR/XNOR/BUF/NOT always propagate
  }
}

/// P(a change on pin `pin` propagates through `gate`), given the gate
/// output's own observation probability.
double propagation_probability(const Gate& gate, std::size_t pin,
                               const std::vector<double>& p1,
                               double gate_observe) {
  double probability = gate_observe;
  for (std::size_t q = 0; q < gate.fanin.size(); ++q) {
    if (q == pin) continue;
    probability *= side_probability(gate, q, p1);
  }
  return probability;
}

double signal_probability_of(const Gate& gate,
                             const std::vector<double>& p1) {
  const auto in = [&](std::size_t pin) { return p1[gate.fanin[pin]]; };
  switch (gate.type) {
    case GateType::kInput:
    case GateType::kDff: return 0.5;  // uniform random pattern bits
    case GateType::kConst0: return 0.0;
    case GateType::kConst1: return 1.0;
    case GateType::kBuf: return in(0);
    case GateType::kNot: return 1.0 - in(0);
    case GateType::kAnd:
    case GateType::kNand: {
      double product = 1.0;
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        product *= in(pin);
      }
      return gate.type == GateType::kAnd ? product : 1.0 - product;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double product = 1.0;
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        product *= 1.0 - in(pin);
      }
      return gate.type == GateType::kOr ? 1.0 - product : product;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      double parity = 0.0;  // P(XOR of the pins seen so far = 1)
      for (std::size_t pin = 0; pin < gate.fanin.size(); ++pin) {
        parity = parity * (1.0 - in(pin)) + (1.0 - parity) * in(pin);
      }
      return gate.type == GateType::kXor ? parity : 1.0 - parity;
    }
  }
  return 0.5;
}

std::string format_probability(double value) {
  char text[32];
  std::snprintf(text, sizeof text, "%.2e", value);
  return text;
}

}  // namespace

double TestabilityReport::predicted_coverage(std::size_t patterns) const {
  if (fault_count == 0) return 0.0;
  double covered = 0.0;
  for (std::size_t i = 0; i < detection_probability.size(); ++i) {
    const double miss =
        std::pow(1.0 - detection_probability[i],
                 static_cast<double>(patterns));
    covered += static_cast<double>(class_sizes[i]) * (1.0 - miss);
  }
  return covered / static_cast<double>(fault_count);
}

std::vector<std::size_t> TestabilityReport::resistant_classes(
    double threshold) const {
  std::vector<std::size_t> classes;
  for (std::size_t i = 0; i < detection_probability.size(); ++i) {
    if (detection_probability[i] < threshold) classes.push_back(i);
  }
  std::sort(classes.begin(), classes.end(),
            [&](std::size_t a, std::size_t b) {
              if (detection_probability[a] != detection_probability[b]) {
                return detection_probability[a] < detection_probability[b];
              }
              return a < b;
            });
  return classes;
}

TestabilityReport analyze_testability(const fault::FaultList& faults) {
  const Circuit& circuit = faults.circuit();
  const std::size_t n = circuit.gate_count();
  TestabilityReport report;
  report.scoap = tpg::compute_scoap(circuit);
  report.fault_count = faults.fault_count();
  report.class_sizes.resize(faults.class_count());
  for (std::size_t i = 0; i < faults.class_count(); ++i) {
    report.class_sizes[i] = faults.class_size(i);
  }

  // Forward: signal probabilities in topological order.
  report.signal_probability.assign(n, 0.5);
  for (const GateId id : circuit.topological_order()) {
    report.signal_probability[id] =
        signal_probability_of(circuit.gate(id), report.signal_probability);
  }
  const std::vector<double>& p1 = report.signal_probability;

  // Backward: observation probabilities in reverse topological order.
  // Observed points (POs and DFF D drivers) see the tester directly; a
  // stem's probability is the BEST single fanout branch — independence
  // would overcount shared reconvergent paths, and the best-path lower
  // bound is what tracks measured coverage (see the validation test).
  std::vector<char> observed(n, 0);
  for (const GateId id : circuit.observed_points()) observed[id] = 1;
  report.observe_probability.assign(n, 0.0);
  const std::vector<GateId>& order = circuit.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    if (observed[id] != 0) {
      report.observe_probability[id] = 1.0;
      continue;
    }
    double best = 0.0;
    for (const GateId reader : circuit.gate(id).fanout) {
      const Gate& consumer = circuit.gate(reader);
      if (consumer.type == GateType::kDff) continue;  // driver is observed
      for (std::size_t pin = 0; pin < consumer.fanin.size(); ++pin) {
        if (consumer.fanin[pin] != id) continue;
        best = std::max(
            best, propagation_probability(
                      consumer, pin, p1, report.observe_probability[reader]));
      }
    }
    report.observe_probability[id] = best;
  }

  // Per-class detection probability from the representative: activation
  // (the line must hold the fault-free complement of the stuck value)
  // times observation from the site. Equivalence makes the choice of
  // representative immaterial: e.g. AND in s-a-0 == out s-a-0 and
  // p1(in) * prod(side p1) == prod(all p1) — the same product.
  report.detection_probability.resize(faults.class_count());
  for (std::size_t i = 0; i < faults.class_count(); ++i) {
    const fault::Fault& fault = faults.representatives()[i];
    const GateId line = fault::fault_line(circuit, fault);
    const double activation =
        fault.stuck_at_one ? 1.0 - p1[line] : p1[line];
    double observation = 0.0;
    if (fault.pin < 0) {
      observation = report.observe_probability[fault.gate];
    } else {
      const Gate& gate = circuit.gate(fault.gate);
      observation =
          gate.type == GateType::kDff
              ? 1.0  // the D pin is itself an observed point
              : propagation_probability(
                    gate, static_cast<std::size_t>(fault.pin), p1,
                    report.observe_probability[fault.gate]);
    }
    report.detection_probability[i] =
        std::clamp(activation * observation, 0.0, 1.0);
  }
  return report;
}

std::vector<ResistantFault> resistant_faults(
    const fault::FaultList& faults, const TestabilityReport& report,
    double threshold, std::size_t max_entries) {
  std::vector<ResistantFault> entries;
  for (const std::size_t index : report.resistant_classes(threshold)) {
    if (entries.size() >= max_entries) break;
    ResistantFault entry;
    entry.class_index = index;
    entry.fault = faults.representatives()[index];
    entry.detection_probability = report.detection_probability[index];
    entry.scoap_cost = tpg::fault_detection_cost(faults.circuit(),
                                                 report.scoap, entry.fault);
    entries.push_back(entry);
  }
  return entries;
}

std::vector<Diagnostic> testability_diagnostics(
    const fault::FaultList& faults, const TestabilityReport& report,
    const Options& options) {
  std::vector<Diagnostic> diagnostics;
  if (options.testability == Policy::kOff) return diagnostics;
  const std::vector<std::size_t> resistant =
      report.resistant_classes(options.resistant_threshold);
  const std::size_t shown = std::min(resistant.size(), options.max_per_rule);
  for (std::size_t k = 0; k < shown; ++k) {
    const std::size_t index = resistant[k];
    const fault::Fault& fault = faults.representatives()[index];
    diagnostics.push_back(Diagnostic{
        Rule::kResistantFault, options.testability, fault.gate,
        fault::fault_name(faults.circuit(), fault, faults.model()),
        "random-pattern detection probability " +
            format_probability(report.detection_probability[index]) +
            " is below the threshold " +
            format_probability(options.resistant_threshold) + " (class of " +
            std::to_string(faults.class_size(index)) + ")"});
  }
  if (resistant.size() > shown) {
    diagnostics.push_back(Diagnostic{
        Rule::kResistantFault, options.testability, circuit::kNoGate, "",
        std::to_string(resistant.size() - shown) +
            " more resistant_fault findings suppressed (" +
            std::to_string(resistant.size()) + " total)"});
  }
  return diagnostics;
}

}  // namespace lsiq::analyze
