// Fault-independent static redundancy identification over the
// implication graph — the FIRE recipe (Iyer & Abramovici) plus the
// cheaper proofs that fall out of the same machinery.
//
// Every verdict is a proof that NO input pattern detects the fault, so
// the sites reported here are sound against PODEM: they must come back
// kUntestable from the complete search. Four provers run, cheapest
// first:
//
//   * activation  — the faulted line provably holds the stuck value on
//     every pattern (implied constants included, which is what catches
//     reconvergent ties like y = AND(a, NOT a));
//   * observability — no structural path from the effect source to any
//     observed point;
//   * necessary conflict — the fault's necessary assignments (activation,
//     reading-gate side pins, dominator side inputs outside the fault
//     cone) demand both values of one line, or a value an implied
//     constant forbids;
//   * stem conflict (FIRE proper) — some fanout stem s must be 0 to meet
//     one necessary assignment and 1 to meet another: detection requires
//     s = 0 AND s = 1, so no pattern exists. Implemented per stem with an
//     inverted literal -> faults index over the per-fault necessary
//     seeds, so each stem costs two implication closures, not a pass
//     over every fault.
//
// Sites come back in FaultList site order (per gate: stem then pins,
// stuck-at-0 then stuck-at-1), which lets the analyze pass merge them
// against its structural verdicts with a single sorted walk.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/implication.hpp"
#include "fault/fault.hpp"

namespace lsiq::analyze {

enum class RedundancyReason : std::uint8_t {
  kActivationConstant,      ///< line constant at the stuck value
  kUnobservable,            ///< no path from the effect source
  kNecessaryConflict,       ///< necessary assignments contradict
  kStemConflict,            ///< FIRE: both values of one stem required
};

/// Short human-readable tag for a reason ("activation", "stem", ...).
[[nodiscard]] const char* redundancy_reason_name(RedundancyReason reason);

struct RedundantSite {
  fault::Fault fault;
  RedundancyReason reason;
  /// The proof's witness line: the conflicting line for
  /// kNecessaryConflict, the stem for kStemConflict, kNoGate otherwise.
  circuit::GateId witness = circuit::kNoGate;
};

struct RedundancyReport {
  std::vector<RedundantSite> sites;  ///< FaultList site order
};

/// Run all four provers over every stuck-at site of the engine's circuit.
[[nodiscard]] RedundancyReport identify_redundancies(
    const ImplicationEngine& engine);

}  // namespace lsiq::analyze
