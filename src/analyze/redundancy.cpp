#include "analyze/redundancy.hpp"

#include <cstddef>

#include "circuit/compiled.hpp"
#include "sim/logic_value.hpp"

namespace lsiq::analyze {

namespace {

using circuit::GateId;
using circuit::GateType;
using circuit::kNoGate;
using sim::Tri;

constexpr std::uint32_t kNoStamp = 0xffffffffu;

}  // namespace

const char* redundancy_reason_name(RedundancyReason reason) {
  switch (reason) {
    case RedundancyReason::kActivationConstant:
      return "activation";
    case RedundancyReason::kUnobservable:
      return "observability";
    case RedundancyReason::kNecessaryConflict:
      return "necessary-conflict";
    case RedundancyReason::kStemConflict:
      return "stem-conflict";
  }
  return "?";
}

RedundancyReport identify_redundancies(const ImplicationEngine& engine) {
  const circuit::CompiledCircuit& compiled = engine.compiled();
  const GateId n = static_cast<GateId>(compiled.node_count());

  // ---- enumerate every stuck-at site in FaultList site order ----
  std::vector<fault::Fault> faults;
  for (GateId id = 0; id < n; ++id) {
    for (const bool stuck_at_one : {false, true}) {
      faults.push_back(fault::Fault{id, -1, stuck_at_one});
    }
    const std::int32_t pins =
        static_cast<std::int32_t>(compiled.fanin_count(id));
    for (std::int32_t pin = 0; pin < pins; ++pin) {
      for (const bool stuck_at_one : {false, true}) {
        faults.push_back(fault::Fault{id, pin, stuck_at_one});
      }
    }
  }

  const std::size_t fault_count = faults.size();
  std::vector<char> redundant(fault_count, 0);
  std::vector<RedundancyReason> reason(fault_count,
                                       RedundancyReason::kActivationConstant);
  std::vector<GateId> witness(fault_count, kNoGate);

  // ---- cheap provers + necessary-seed collection for FIRE ----
  // The inverted index maps a KILLING literal (the negation of some
  // fault's necessary assignment) to the faults it kills: when a stem
  // closure forces that literal, those faults cannot be detected while
  // the stem holds that value.
  std::vector<std::vector<std::uint32_t>> killed_by(2 * n);
  for (std::size_t i = 0; i < fault_count; ++i) {
    const fault::Fault& fault = faults[i];
    const GateId line = fault::fault_line(compiled, fault);
    const LineValue stuck =
        fault.stuck_at_one ? LineValue::kOne : LineValue::kZero;
    if (engine.constant(line) == stuck) {
      redundant[i] = 1;
      reason[i] = RedundancyReason::kActivationConstant;
      continue;
    }
    const bool captured = !fault::is_stem(fault) &&
                          compiled.type(fault.gate) == GateType::kDff;
    if (!captured && !engine.reaches_observed(fault.gate)) {
      redundant[i] = 1;
      reason[i] = RedundancyReason::kUnobservable;
      continue;
    }
    const std::vector<Literal> seeds = engine.necessary_seeds(fault);
    // Seed-level conflicts: two opposite literals on one line (sorted
    // seeds put them adjacent), or a literal an implied constant forbids.
    bool conflicted = false;
    for (std::size_t s = 0; s < seeds.size() && !conflicted; ++s) {
      const GateId seed_line = literal_line(seeds[s]);
      if (s + 1 < seeds.size() && literal_line(seeds[s + 1]) == seed_line) {
        conflicted = true;
        witness[i] = seed_line;
        break;
      }
      const LineValue required =
          literal_one(seeds[s]) ? LineValue::kOne : LineValue::kZero;
      const LineValue constant = engine.constant(seed_line);
      if (constant != LineValue::kUnknown && constant != required) {
        conflicted = true;
        witness[i] = seed_line;
      }
    }
    if (conflicted) {
      redundant[i] = 1;
      reason[i] = RedundancyReason::kNecessaryConflict;
      continue;
    }
    for (const Literal seed : seeds) {
      killed_by[literal_not(seed)].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // ---- FIRE: per-stem conflict sets ----
  // For each fanout stem s and polarity v, the closure of s = v kills the
  // faults whose necessary assignments it negates. A fault killed under
  // BOTH polarities needs s = 0 and s = 1 at once: redundant.
  std::vector<std::uint32_t> killed_zero(fault_count, kNoStamp);
  std::vector<std::uint32_t> killed_one(fault_count, kNoStamp);
  std::vector<Tri> closure;
  std::vector<std::uint32_t> hit;  // faults killed under the current stem
  for (GateId stem = 0; stem < n; ++stem) {
    if (compiled.fanout_count(stem) < 2) continue;
    if (engine.constant(stem) != LineValue::kUnknown) continue;
    hit.clear();
    bool closed_both = true;
    for (const bool one : {false, true}) {
      if (!engine.propagate({make_literal(stem, one)}, closure)) {
        closed_both = false;  // implied constant the round cap missed
        break;
      }
      std::vector<std::uint32_t>& killed = one ? killed_one : killed_zero;
      for (GateId line = 0; line < n; ++line) {
        if (closure[line] == Tri::kX ||
            engine.constant(line) != LineValue::kUnknown) {
          continue;
        }
        const Literal forced =
            make_literal(line, closure[line] == Tri::kOne);
        for (const std::uint32_t index : killed_by[forced]) {
          if (killed[index] != stem) {
            killed[index] = stem;
            if (one) hit.push_back(index);
          }
        }
      }
    }
    if (!closed_both) continue;
    for (const std::uint32_t index : hit) {
      if (redundant[index] == 0 && killed_zero[index] == stem) {
        redundant[index] = 1;
        reason[index] = RedundancyReason::kStemConflict;
        witness[index] = stem;
      }
    }
  }

  RedundancyReport report;
  for (std::size_t i = 0; i < fault_count; ++i) {
    if (redundant[i] == 0) continue;
    report.sites.push_back(RedundantSite{faults[i], reason[i], witness[i]});
  }
  return report;
}

}  // namespace lsiq::analyze
