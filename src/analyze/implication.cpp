#include "analyze/implication.hpp"

#include <algorithm>

namespace lsiq::analyze {

namespace {

using circuit::CompiledCircuit;
using circuit::GateId;
using circuit::GateType;
using circuit::kNoGate;
using sim::Tri;

bool and_like(GateType type) noexcept {
  return type == GateType::kAnd || type == GateType::kNand;
}
bool or_like(GateType type) noexcept {
  return type == GateType::kOr || type == GateType::kNor;
}

Tri literal_tri(Literal lit) noexcept {
  return literal_one(lit) ? Tri::kOne : Tri::kZero;
}

/// Caps that keep the one-time learning sweep near-linear: per-literal
/// closures larger than this are not indexed (their contrapositives are
/// almost all derivable anyway), and no literal accumulates more learned
/// edges than it could usefully replay.
constexpr std::size_t kMaxForcedStored = 256;
constexpr std::size_t kMaxLearnedPerLiteral = 64;
/// Round caps for the implied-constant fixpoints (each round is a full
/// 2n-literal probe; real circuits converge in one or two).
constexpr int kConstantRounds = 4;
constexpr int kPostLearnRounds = 2;

}  // namespace

ImplicationEngine::ImplicationEngine(const CompiledCircuit& compiled)
    : compiled_(&compiled), n_(compiled.node_count()) {
  build_base();
  learn();
  build_cones();
  build_dominators();
}

LineValue ImplicationEngine::constant(GateId id) const {
  switch (base_[id]) {
    case Tri::kZero:
      return LineValue::kZero;
    case Tri::kOne:
      return LineValue::kOne;
    default:
      return LineValue::kUnknown;
  }
}

bool ImplicationEngine::set_value(std::vector<Tri>& values,
                                  std::vector<GateId>& queue, GateId id,
                                  Tri value) const {
  if (value == Tri::kX) return true;
  const Tri current = values[id];
  if (current == value) return true;
  if (current != Tri::kX) return false;  // 0 and 1 both forced: contradiction
  values[id] = value;
  // Re-examine the gate itself (its backward rules just armed) and every
  // reader (their forward/backward rules see a new operand). Values are
  // monotone X -> {0,1}, so total enqueues are bounded by edges + nodes.
  queue.push_back(id);
  const GateId* outs = compiled_->fanout(id);
  const std::size_t count = compiled_->fanout_count(id);
  for (std::size_t i = 0; i < count; ++i) queue.push_back(outs[i]);
  return true;
}

bool ImplicationEngine::examine(std::vector<Tri>& values,
                                std::vector<GateId>& queue, GateId id) const {
  // Learned indirect implications fire off the gate's literal regardless
  // of its type (they encode non-local consequences, not gate semantics).
  if (!learned_.empty() && values[id] != Tri::kX) {
    const Literal lit = make_literal(id, values[id] == Tri::kOne);
    for (const Literal forced : learned_[lit]) {
      if (!set_value(values, queue, literal_line(forced),
                     literal_tri(forced))) {
        return false;
      }
    }
  }

  const GateType type = compiled_->type(id);
  // Sources: inputs and flip-flop outputs are free variables, and a DFF
  // is a scan boundary — its D driver is observed, its output is an
  // independent pattern input, so nothing implies across it either way.
  if (type == GateType::kInput || type == GateType::kDff) return true;
  if (type == GateType::kConst0) return set_value(values, queue, id, Tri::kZero);
  if (type == GateType::kConst1) return set_value(values, queue, id, Tri::kOne);

  const GateId* pins = compiled_->fanin(id);
  const int count = static_cast<int>(compiled_->fanin_count(id));
  if (count == 0) return true;  // floating gate: lint's problem, not ours
  const Tri out = values[id];

  if (type == GateType::kBuf || type == GateType::kNot) {
    const bool invert = type == GateType::kNot;
    const Tri in = values[pins[0]];
    if (in != Tri::kX &&
        !set_value(values, queue, id, invert ? sim::tri_not(in) : in)) {
      return false;
    }
    if (out != Tri::kX &&
        !set_value(values, queue, pins[0], invert ? sim::tri_not(out) : out)) {
      return false;
    }
    return true;
  }

  if (and_like(type) || or_like(type)) {
    const bool is_and = and_like(type);
    const bool invert = type == GateType::kNand || type == GateType::kNor;
    const Tri controlling = is_and ? Tri::kZero : Tri::kOne;
    const Tri neutral = is_and ? Tri::kOne : Tri::kZero;
    int unknown = 0;
    GateId unknown_pin = kNoGate;
    bool controlled = false;
    for (int i = 0; i < count; ++i) {
      const Tri v = values[pins[i]];
      if (v == controlling) controlled = true;
      if (v == Tri::kX) {
        ++unknown;
        unknown_pin = pins[i];
      }
    }
    // Forward: one controlling input decides the output; all-neutral does
    // too.
    if (controlled) {
      const Tri forward = invert ? sim::tri_not(controlling) : controlling;
      if (!set_value(values, queue, id, forward)) return false;
    } else if (unknown == 0) {
      const Tri forward = invert ? sim::tri_not(neutral) : neutral;
      if (!set_value(values, queue, id, forward)) return false;
    }
    // Backward: the neutral-side output value forces every input neutral;
    // the controlled-side output with exactly one unknown input is the
    // unit rule (that input must be the controlling one).
    if (out != Tri::kX) {
      const Tri effective = invert ? sim::tri_not(out) : out;
      if (effective == neutral) {
        for (int i = 0; i < count; ++i) {
          if (!set_value(values, queue, pins[i], neutral)) return false;
        }
      } else if (!controlled && unknown == 1) {
        if (!set_value(values, queue, unknown_pin, controlling)) return false;
      }
    }
    return true;
  }

  // XOR / XNOR: parity forward once every input is known; with exactly
  // one unknown input and a known output, solve the parity backward.
  const bool invert = type == GateType::kXnor;
  int unknown = 0;
  GateId unknown_pin = kNoGate;
  bool parity = invert;  // folds the inversion in: parity == output value
  for (int i = 0; i < count; ++i) {
    const Tri v = values[pins[i]];
    if (v == Tri::kX) {
      ++unknown;
      unknown_pin = pins[i];
    } else {
      parity ^= v == Tri::kOne;
    }
  }
  if (unknown == 0) {
    if (!set_value(values, queue, id, parity ? Tri::kOne : Tri::kZero)) {
      return false;
    }
  } else if (unknown == 1 && out != Tri::kX) {
    const bool in = (out == Tri::kOne) != parity;
    if (!set_value(values, queue, unknown_pin, in ? Tri::kOne : Tri::kZero)) {
      return false;
    }
  }
  return true;
}

bool ImplicationEngine::drain(std::vector<Tri>& values,
                              std::vector<GateId>& queue) const {
  while (!queue.empty()) {
    const GateId id = queue.back();
    queue.pop_back();
    if (!examine(values, queue, id)) return false;
  }
  return true;
}

bool ImplicationEngine::propagate(const std::vector<Literal>& assumptions,
                                  std::vector<Tri>& values) const {
  values = base_;
  std::vector<GateId> queue;
  queue.reserve(64);
  for (const Literal lit : assumptions) {
    if (!set_value(values, queue, literal_line(lit), literal_tri(lit))) {
      return false;
    }
  }
  return drain(values, queue);
}

void ImplicationEngine::build_base() {
  base_.assign(n_, Tri::kX);
  std::vector<GateId> queue;
  for (GateId id = 0; id < static_cast<GateId>(n_); ++id) {
    const GateType type = compiled_->type(id);
    if (type == GateType::kConst0) {
      set_value(base_, queue, id, Tri::kZero);
    } else if (type == GateType::kConst1) {
      set_value(base_, queue, id, Tri::kOne);
    }
  }
  // Tied constants are consistent facts; this drain cannot contradict.
  drain(base_, queue);
}

bool ImplicationEngine::sweep_constants() {
  bool changed = false;
  std::vector<Tri> values;
  std::vector<GateId> queue;
  for (GateId id = 0; id < static_cast<GateId>(n_); ++id) {
    if (base_[id] != Tri::kX) continue;
    for (const bool one : {false, true}) {
      if (propagate({make_literal(id, one)}, values)) continue;
      // `id = one` is impossible on every pattern: the opposite value is
      // an implied constant. Bake it in and propagate its consequences
      // (a true fact — this drain cannot contradict).
      queue.clear();
      set_value(base_, queue, id, one ? Tri::kZero : Tri::kOne);
      drain(base_, queue);
      changed = true;
      break;
    }
  }
  return changed;
}

void ImplicationEngine::learn() {
  learned_.clear();

  // Phase 1: implied constants from gate rules alone. Each new constant
  // can enable more, so iterate (capped; real circuits settle fast).
  for (int round = 0; round < kConstantRounds; ++round) {
    if (!sweep_constants()) break;
  }

  // Phase 2: the direct closure F[L] of every free literal — both the
  // source of contrapositives and the redundancy filter below.
  const std::size_t literal_count = 2 * n_;
  std::vector<std::vector<Literal>> forced(literal_count);
  std::vector<char> truncated(literal_count, 0);
  std::vector<Tri> values;
  for (GateId id = 0; id < static_cast<GateId>(n_); ++id) {
    if (base_[id] != Tri::kX) continue;
    for (const bool one : {false, true}) {
      const Literal lit = make_literal(id, one);
      if (!propagate({lit}, values)) continue;  // phase-1 cap leftovers
      auto& list = forced[lit];
      for (GateId m = 0; m < static_cast<GateId>(n_); ++m) {
        if (m == id || base_[m] != Tri::kX || values[m] == Tri::kX) continue;
        if (list.size() >= kMaxForcedStored) {
          truncated[lit] = 1;
          break;
        }
        list.push_back(make_literal(m, values[m] == Tri::kOne));
      }
      std::sort(list.begin(), list.end());
    }
  }

  // Phase 3: contrapositive learning. L => M gives not-M => not-L; store
  // the pair on not-M unless its own direct closure already derives it
  // (then it is not an *indirect* implication, just gate rules replayed).
  // Distinct (lit, m) pairs give distinct edges, so no dedup is needed.
  learned_.assign(literal_count, {});
  for (Literal lit = 0; lit < static_cast<Literal>(literal_count); ++lit) {
    for (const Literal m : forced[lit]) {
      const Literal source = literal_not(m);
      const Literal target = literal_not(lit);
      if (truncated[source] != 0) continue;
      const auto& direct = forced[source];
      if (std::binary_search(direct.begin(), direct.end(), target)) continue;
      auto& edges = learned_[source];
      if (edges.size() >= kMaxLearnedPerLiteral) continue;
      edges.push_back(target);
    }
  }

  // Phase 4: constants only the learned edges can expose.
  for (int round = 0; round < kPostLearnRounds; ++round) {
    if (!sweep_constants()) break;
  }
}

void ImplicationEngine::build_cones() {
  cone_stride_ = (n_ + 63) / 64;
  cone_.assign(n_ * cone_stride_, 0);
  const auto& order = compiled_->source().topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    std::uint64_t* row = cone_.data() + static_cast<std::size_t>(id) * cone_stride_;
    row[id / 64] |= 1ULL << (id % 64);
    const GateId* outs = compiled_->fanout(id);
    const std::size_t count = compiled_->fanout_count(id);
    for (std::size_t i = 0; i < count; ++i) {
      const GateId reader = outs[i];
      // Fault effects stop at a scan boundary: the DFF's capture is
      // observed, its output this pattern is an unaffected free variable.
      if (compiled_->type(reader) == GateType::kDff) continue;
      const std::uint64_t* src =
          cone_.data() + static_cast<std::size_t>(reader) * cone_stride_;
      for (std::size_t w = 0; w < cone_stride_; ++w) row[w] |= src[w];
    }
  }
}

GateId ImplicationEngine::intersect_doms(GateId a, GateId b) const {
  while (a != b) {
    while (rank_[a] > rank_[b]) a = idom_[a];
    while (rank_[b] > rank_[a]) b = idom_[b];
  }
  return a;
}

void ImplicationEngine::build_dominators() {
  const circuit::Circuit& circuit = compiled_->source();
  sink_ = static_cast<GateId>(n_);
  idom_.assign(n_ + 1, kNoGate);
  rank_.assign(n_ + 1, 0);
  reachable_.assign(n_, 0);

  // The observed set under the full-scan model: primary outputs plus
  // every flip-flop's D driver.
  std::vector<char> observed(n_, 0);
  for (const GateId id : circuit.primary_outputs()) observed[id] = 1;
  for (const GateId id : circuit.flip_flops()) {
    if (compiled_->fanin_count(id) > 0) observed[compiled_->fanin(id)[0]] = 1;
  }

  // Cooper–Harvey–Kennedy over the fanout DAG toward the virtual sink.
  // Reverse topological order finalizes every successor before its
  // drivers, so one pass suffices; rank increases in processing order
  // and idom chains strictly decrease it, which is what intersect walks.
  idom_[sink_] = sink_;
  rank_[sink_] = 0;
  std::uint32_t next_rank = 1;
  const auto& order = circuit.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    rank_[id] = next_rank++;
    GateId dom = observed[id] != 0 ? sink_ : kNoGate;
    const GateId* outs = compiled_->fanout(id);
    const std::size_t count = compiled_->fanout_count(id);
    for (std::size_t i = 0; i < count; ++i) {
      const GateId reader = outs[i];
      if (compiled_->type(reader) == GateType::kDff) continue;
      if (reachable_[reader] == 0) continue;
      dom = dom == kNoGate ? reader : intersect_doms(dom, reader);
    }
    if (dom == kNoGate) continue;  // no path to any observed point
    reachable_[id] = 1;
    idom_[id] = dom;
  }
}

GateId ImplicationEngine::immediate_dominator(GateId id) const {
  const GateId dom = idom_[id];
  return dom == kNoGate || dom == sink_ ? kNoGate : dom;
}

std::vector<GateId> ImplicationEngine::dominators(GateId id) const {
  std::vector<GateId> chain;
  if (reachable_[id] == 0) return chain;
  for (GateId dom = idom_[id]; dom != sink_; dom = idom_[dom]) {
    chain.push_back(dom);
  }
  return chain;
}

std::vector<Literal> ImplicationEngine::necessary_seeds(
    const fault::Fault& fault) const {
  std::vector<Literal> seeds;
  const GateId line = fault::fault_line(*compiled_, fault);
  // Activation: the good machine must drive the opposite of the stuck
  // value onto the faulted line.
  seeds.push_back(make_literal(line, !fault.stuck_at_one));

  GateId source = fault.gate;
  if (!fault::is_stem(fault)) {
    const GateType type = compiled_->type(fault.gate);
    // A DFF's D pin is itself captured: activation is the whole story.
    if (type == GateType::kDff) return seeds;
    // The effect lives only on the faulted branch, so every other pin of
    // the reading gate carries its good value — and must be
    // non-controlling or the gate output is identical in both machines.
    if (and_like(type) || or_like(type)) {
      const bool neutral_one = and_like(type);
      const GateId* pins = compiled_->fanin(fault.gate);
      const int count = static_cast<int>(compiled_->fanin_count(fault.gate));
      for (int q = 0; q < count; ++q) {
        if (q == fault.pin) continue;
        seeds.push_back(make_literal(pins[q], neutral_one));
      }
    }
  }

  // Unique sensitization: every propagation path crosses every dominator
  // of the effect source, so each dominator's side inputs that lie
  // OUTSIDE the fault cone (their good and faulty values coincide) must
  // be non-controlling. Side inputs inside the cone may carry the effect
  // and impose nothing.
  if (reachable_[source] != 0) {
    for (GateId dom = idom_[source]; dom != sink_; dom = idom_[dom]) {
      const GateType type = compiled_->type(dom);
      if (!and_like(type) && !or_like(type)) continue;
      const bool neutral_one = and_like(type);
      const GateId* pins = compiled_->fanin(dom);
      const int count = static_cast<int>(compiled_->fanin_count(dom));
      for (int q = 0; q < count; ++q) {
        if (in_cone(source, pins[q])) continue;
        seeds.push_back(make_literal(pins[q], neutral_one));
      }
    }
  }

  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

NecessaryAssignments ImplicationEngine::necessary_assignments(
    const fault::Fault& fault) const {
  // Observability prerequisite: a branch into a DFF is captured directly;
  // every other fault needs a structural path from its effect source.
  const bool captured = !fault::is_stem(fault) &&
                        compiled_->type(fault.gate) == GateType::kDff;
  if (!captured && reachable_[fault.gate] == 0) {
    NecessaryAssignments out;
    out.contradictory = true;
    return out;
  }
  return close_over(necessary_seeds(fault));
}

NecessaryAssignments ImplicationEngine::justification_assignments(
    GateId line, bool value) const {
  return close_over({make_literal(line, value)});
}

NecessaryAssignments ImplicationEngine::close_over(
    std::vector<Literal> seeds) const {
  NecessaryAssignments out;
  std::vector<Tri> values;
  if (!propagate(seeds, values)) {
    out.contradictory = true;
    return out;
  }
  for (GateId id = 0; id < static_cast<GateId>(n_); ++id) {
    if (base_[id] == Tri::kX && values[id] != Tri::kX) {
      out.literals.push_back(make_literal(id, values[id] == Tri::kOne));
    }
  }
  return out;
}

}  // namespace lsiq::analyze
