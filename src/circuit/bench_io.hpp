// Reader and writer for the ISCAS-85/89 `.bench` netlist format.
//
// The format (used by the ISCAS benchmark suites the testing literature is
// built on) is line oriented:
//
//     # comment
//     INPUT(G1)
//     OUTPUT(G17)
//     G17 = NAND(G8, G9)
//     G8  = DFF(G5)
//
// Signals may be referenced before they are defined (sequential feedback),
// so parsing is two-pass. The writer emits gates in topological order and
// round-trips through the parser bit-exactly up to whitespace.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace lsiq::circuit {

/// Parse a `.bench` netlist from a stream. The returned circuit is
/// finalized. Throws lsiq::ParseError with a line number on malformed input
/// and lsiq::Error on structural violations (cycles, dangling signals).
Circuit read_bench(std::istream& in, const std::string& circuit_name);

/// Parse a `.bench` netlist from a string (convenience for tests/examples).
Circuit read_bench_string(const std::string& text,
                          const std::string& circuit_name = "bench");

/// Parse a `.bench` file from disk.
Circuit read_bench_file(const std::string& path);

/// Serialize a finalized circuit to `.bench` text.
void write_bench(const Circuit& circuit, std::ostream& out);

/// Serialize to a string.
std::string write_bench_string(const Circuit& circuit);

}  // namespace lsiq::circuit
