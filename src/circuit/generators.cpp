#include "circuit/generators.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::circuit {

namespace {

/// One-bit full adder; returns {sum, carry_out}. 5 gates.
struct BitPair {
  GateId sum;
  GateId carry;
};

BitPair full_adder(Circuit& c, GateId a, GateId b, GateId cin,
                   const std::string& prefix) {
  const GateId axb = c.add_gate(GateType::kXor, {a, b}, prefix + "_axb");
  const GateId sum = c.add_gate(GateType::kXor, {axb, cin}, prefix + "_s");
  const GateId ab = c.add_gate(GateType::kAnd, {a, b}, prefix + "_ab");
  const GateId cx = c.add_gate(GateType::kAnd, {axb, cin}, prefix + "_cx");
  const GateId cout = c.add_gate(GateType::kOr, {ab, cx}, prefix + "_co");
  return {sum, cout};
}

/// Half adder; returns {sum, carry_out}. 2 gates.
BitPair half_adder(Circuit& c, GateId a, GateId b, const std::string& prefix) {
  const GateId sum = c.add_gate(GateType::kXor, {a, b}, prefix + "_s");
  const GateId cout = c.add_gate(GateType::kAnd, {a, b}, prefix + "_co");
  return {sum, cout};
}

/// Ripple adder over equal-width vectors with carry-in; returns sum bits and
/// the final carry.
std::vector<GateId> ripple_add(Circuit& c, const std::vector<GateId>& a,
                               const std::vector<GateId>& b, GateId cin,
                               const std::string& prefix, GateId* cout_out) {
  LSIQ_EXPECT(a.size() == b.size(), "ripple_add: operand width mismatch");
  std::vector<GateId> sums;
  sums.reserve(a.size());
  GateId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string bit_prefix = prefix + "_fa" + std::to_string(i);
    BitPair r{};
    if (carry == kNoGate) {
      r = half_adder(c, a[i], b[i], bit_prefix);
    } else {
      r = full_adder(c, a[i], b[i], carry, bit_prefix);
    }
    sums.push_back(r.sum);
    carry = r.carry;
  }
  if (cout_out != nullptr) *cout_out = carry;
  return sums;
}

}  // namespace

Circuit make_c17() {
  Circuit c("c17");
  const GateId g1 = c.add_input("G1");
  const GateId g2 = c.add_input("G2");
  const GateId g3 = c.add_input("G3");
  const GateId g6 = c.add_input("G6");
  const GateId g7 = c.add_input("G7");
  const GateId g10 = c.add_gate(GateType::kNand, {g1, g3}, "G10");
  const GateId g11 = c.add_gate(GateType::kNand, {g3, g6}, "G11");
  const GateId g16 = c.add_gate(GateType::kNand, {g2, g11}, "G16");
  const GateId g19 = c.add_gate(GateType::kNand, {g11, g7}, "G19");
  const GateId g22 = c.add_gate(GateType::kNand, {g10, g16}, "G22");
  const GateId g23 = c.add_gate(GateType::kNand, {g16, g19}, "G23");
  c.mark_output(g22);
  c.mark_output(g23);
  c.finalize();
  return c;
}

Circuit make_ripple_carry_adder(int width) {
  LSIQ_EXPECT(width >= 1, "adder width must be >= 1");
  Circuit c("rca" + std::to_string(width));
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(c.add_input("b" + std::to_string(i)));
  }
  const GateId cin = c.add_input("cin");
  GateId cout = kNoGate;
  const std::vector<GateId> sums = ripple_add(c, a, b, cin, "add", &cout);
  for (int i = 0; i < width; ++i) {
    c.mark_output(sums[static_cast<std::size_t>(i)]);
  }
  c.mark_output(cout);
  c.finalize();
  return c;
}

Circuit make_array_multiplier(int width) {
  LSIQ_EXPECT(width >= 2, "multiplier width must be >= 2");
  Circuit c("mult" + std::to_string(width));
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(c.add_input("b" + std::to_string(i)));
  }

  // Shift-and-add over explicit bit vectors: no constant padding, so the
  // fault universe carries no structurally redundant constant-input faults
  // (important: the quality experiments measure coverage against this
  // universe). After processing row r, `acc` holds the bits of
  // (a * b[0..r]) — bits [0, r) of it are final product bits.
  auto pp = [&](int row, int j) {
    return c.add_gate(GateType::kAnd,
                      {a[static_cast<std::size_t>(j)],
                       b[static_cast<std::size_t>(row)]},
                      "pp" + std::to_string(row) + "_" + std::to_string(j));
  };

  std::vector<GateId> acc;
  for (int j = 0; j < width; ++j) {
    acc.push_back(pp(0, j));
  }

  for (int row = 1; row < width; ++row) {
    // Add (pp[row] << row) to acc. Bits below `row` are untouched; the
    // overlap of acc[row..] with the new row is summed with half/full
    // adders; the final carry extends the accumulator.
    std::vector<GateId> high(acc.begin() + row, acc.end());
    std::vector<GateId> sums;
    GateId carry = kNoGate;
    for (int j = 0; j < width; ++j) {
      const std::string prefix =
          "r" + std::to_string(row) + "_c" + std::to_string(j);
      const GateId p = pp(row, j);
      const bool have_high = static_cast<std::size_t>(j) < high.size();
      BitPair bit{};
      if (have_high && carry != kNoGate) {
        bit = full_adder(c, high[static_cast<std::size_t>(j)], p, carry,
                         prefix);
      } else if (have_high) {
        bit = half_adder(c, high[static_cast<std::size_t>(j)], p, prefix);
      } else if (carry != kNoGate) {
        bit = half_adder(c, p, carry, prefix);
      } else {
        sums.push_back(p);
        continue;
      }
      sums.push_back(bit.sum);
      carry = bit.carry;
    }
    acc.resize(static_cast<std::size_t>(row));
    acc.insert(acc.end(), sums.begin(), sums.end());
    if (carry != kNoGate) {
      acc.push_back(carry);
    }
  }

  LSIQ_EXPECT(acc.size() == static_cast<std::size_t>(2 * width),
              "multiplier accumulator width mismatch");
  for (const GateId bit : acc) {
    c.mark_output(bit);
  }
  c.finalize();
  return c;
}

Circuit make_majority(int inputs) {
  LSIQ_EXPECT(inputs >= 3 && inputs <= 9 && inputs % 2 == 1,
              "majority requires an odd input count in [3, 9]");
  Circuit c("maj" + std::to_string(inputs));
  std::vector<GateId> in;
  for (int i = 0; i < inputs; ++i) {
    in.push_back(c.add_input("x" + std::to_string(i)));
  }
  const int need = (inputs + 1) / 2;

  // Enumerate all C(inputs, need) minimal product terms.
  std::vector<GateId> terms;
  std::vector<int> pick(static_cast<std::size_t>(need));
  for (int i = 0; i < need; ++i) pick[static_cast<std::size_t>(i)] = i;
  int term_index = 0;
  for (;;) {
    std::vector<GateId> fanin;
    for (const int p : pick) fanin.push_back(in[static_cast<std::size_t>(p)]);
    terms.push_back(c.add_gate(GateType::kAnd, fanin,
                               "t" + std::to_string(term_index++)));
    // Next combination in lexicographic order.
    int i = need - 1;
    while (i >= 0 &&
           pick[static_cast<std::size_t>(i)] == inputs - need + i) {
      --i;
    }
    if (i < 0) break;
    ++pick[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < need; ++j) {
      pick[static_cast<std::size_t>(j)] =
          pick[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  const GateId out = c.add_gate(GateType::kOr, terms, "maj_out");
  c.mark_output(out);
  c.finalize();
  return c;
}

Circuit make_parity_tree(int inputs) {
  LSIQ_EXPECT(inputs >= 2, "parity tree requires >= 2 inputs");
  Circuit c("parity" + std::to_string(inputs));
  std::vector<GateId> layer;
  for (int i = 0; i < inputs; ++i) {
    layer.push_back(c.add_input("x" + std::to_string(i)));
  }
  int id = 0;
  while (layer.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(c.add_gate(GateType::kXor, {layer[i], layer[i + 1]},
                                "p" + std::to_string(id++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.mark_output(layer.front());
  c.finalize();
  return c;
}

Circuit make_mux_tree(int select_bits) {
  LSIQ_EXPECT(select_bits >= 1 && select_bits <= 8,
              "mux tree requires select_bits in [1, 8]");
  Circuit c("mux" + std::to_string(select_bits));
  const int leaves = 1 << select_bits;
  std::vector<GateId> data;
  for (int i = 0; i < leaves; ++i) {
    data.push_back(c.add_input("d" + std::to_string(i)));
  }
  std::vector<GateId> sel;
  std::vector<GateId> sel_n;
  for (int i = 0; i < select_bits; ++i) {
    sel.push_back(c.add_input("s" + std::to_string(i)));
  }
  for (int i = 0; i < select_bits; ++i) {
    sel_n.push_back(c.add_gate(GateType::kNot,
                               {sel[static_cast<std::size_t>(i)]},
                               "sn" + std::to_string(i)));
  }

  std::vector<GateId> layer = data;
  int id = 0;
  for (int bit = 0; bit < select_bits; ++bit) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string p = "m" + std::to_string(id++);
      const GateId lo = c.add_gate(
          GateType::kAnd, {layer[i], sel_n[static_cast<std::size_t>(bit)]},
          p + "_lo");
      const GateId hi = c.add_gate(
          GateType::kAnd, {layer[i + 1], sel[static_cast<std::size_t>(bit)]},
          p + "_hi");
      next.push_back(c.add_gate(GateType::kOr, {lo, hi}, p + "_o"));
    }
    layer = std::move(next);
  }
  c.mark_output(layer.front());
  c.finalize();
  return c;
}

Circuit make_decoder(int address_bits) {
  LSIQ_EXPECT(address_bits >= 1 && address_bits <= 8,
              "decoder requires address_bits in [1, 8]");
  Circuit c("dec" + std::to_string(address_bits));
  std::vector<GateId> addr;
  for (int i = 0; i < address_bits; ++i) {
    addr.push_back(c.add_input("a" + std::to_string(i)));
  }
  const GateId enable = c.add_input("en");
  std::vector<GateId> addr_n;
  for (int i = 0; i < address_bits; ++i) {
    addr_n.push_back(c.add_gate(GateType::kNot,
                                {addr[static_cast<std::size_t>(i)]},
                                "an" + std::to_string(i)));
  }
  const int rows = 1 << address_bits;
  for (int row = 0; row < rows; ++row) {
    std::vector<GateId> fanin;
    for (int bit = 0; bit < address_bits; ++bit) {
      const bool one = ((row >> bit) & 1) != 0;
      fanin.push_back(one ? addr[static_cast<std::size_t>(bit)]
                          : addr_n[static_cast<std::size_t>(bit)]);
    }
    fanin.push_back(enable);
    const GateId out =
        c.add_gate(GateType::kAnd, fanin, "y" + std::to_string(row));
    c.mark_output(out);
  }
  c.finalize();
  return c;
}

Circuit make_comparator(int width) {
  LSIQ_EXPECT(width >= 1, "comparator width must be >= 1");
  Circuit c("cmp" + std::to_string(width));
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(c.add_input("b" + std::to_string(i)));
  }

  // Per-bit equality, then prefix products from the MSB down.
  std::vector<GateId> eq;
  for (int i = 0; i < width; ++i) {
    eq.push_back(c.add_gate(GateType::kXnor,
                            {a[static_cast<std::size_t>(i)],
                             b[static_cast<std::size_t>(i)]},
                            "eq" + std::to_string(i)));
  }
  // eq_all[i] = all bits above i are equal (for i = width-1 this is "true";
  // model it by just omitting the term).
  std::vector<GateId> gt_terms;
  std::vector<GateId> lt_terms;
  GateId prefix_eq = kNoGate;
  for (int i = width - 1; i >= 0; --i) {
    const GateId ai = a[static_cast<std::size_t>(i)];
    const GateId bi = b[static_cast<std::size_t>(i)];
    const GateId not_b =
        c.add_gate(GateType::kNot, {bi}, "nb" + std::to_string(i));
    const GateId not_a =
        c.add_gate(GateType::kNot, {ai}, "na" + std::to_string(i));
    GateId gt_here = c.add_gate(GateType::kAnd, {ai, not_b},
                                "gtb" + std::to_string(i));
    GateId lt_here = c.add_gate(GateType::kAnd, {not_a, bi},
                                "ltb" + std::to_string(i));
    if (prefix_eq != kNoGate) {
      gt_here = c.add_gate(GateType::kAnd, {gt_here, prefix_eq},
                           "gtp" + std::to_string(i));
      lt_here = c.add_gate(GateType::kAnd, {lt_here, prefix_eq},
                           "ltp" + std::to_string(i));
    }
    gt_terms.push_back(gt_here);
    lt_terms.push_back(lt_here);
    prefix_eq = (prefix_eq == kNoGate)
                    ? eq[static_cast<std::size_t>(i)]
                    : c.add_gate(GateType::kAnd,
                                 {prefix_eq, eq[static_cast<std::size_t>(i)]},
                                 "eqp" + std::to_string(i));
  }
  const GateId gt =
      gt_terms.size() == 1
          ? gt_terms.front()
          : c.add_gate(GateType::kOr, gt_terms, "gt");
  const GateId lt =
      lt_terms.size() == 1
          ? lt_terms.front()
          : c.add_gate(GateType::kOr, lt_terms, "lt");
  c.mark_output(lt);
  c.mark_output(prefix_eq);  // eq output
  c.mark_output(gt);
  c.finalize();
  return c;
}

Circuit make_alu(int width) {
  LSIQ_EXPECT(width >= 1, "ALU width must be >= 1");
  Circuit c("alu" + std::to_string(width));
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(c.add_input("b" + std::to_string(i)));
  }
  const GateId op0 = c.add_input("op0");
  const GateId op1 = c.add_input("op1");
  const GateId op2 = c.add_input("op2");
  const GateId cin = c.add_input("cin");

  const GateId nop0 = c.add_gate(GateType::kNot, {op0}, "nop0");
  const GateId nop1 = c.add_gate(GateType::kNot, {op1}, "nop1");
  const GateId nop2 = c.add_gate(GateType::kNot, {op2}, "nop2");

  // Opcode one-hot lines: 000 AND, 001 OR, 010 XOR, 011 NOR,
  // 100 ADD, 101 SUB, 110 PASS-A, 111 NOT-A.
  auto sel = [&](bool b2, bool b1, bool b0, const std::string& name) {
    return c.add_gate(GateType::kAnd,
                      {b2 ? op2 : nop2, b1 ? op1 : nop1, b0 ? op0 : nop0},
                      name);
  };
  const GateId is_and = sel(false, false, false, "is_and");
  const GateId is_or = sel(false, false, true, "is_or");
  const GateId is_xor = sel(false, true, false, "is_xor");
  const GateId is_nor = sel(false, true, true, "is_nor");
  const GateId is_add = sel(true, false, false, "is_add");
  const GateId is_sub = sel(true, false, true, "is_sub");
  const GateId is_pass = sel(true, true, false, "is_pass");
  const GateId is_nota = sel(true, true, true, "is_nota");

  // Adder operand: b for ADD, ~b for SUB; carry-in forced for SUB.
  std::vector<GateId> b_eff;
  for (int i = 0; i < width; ++i) {
    const GateId nb = c.add_gate(GateType::kNot,
                                 {b[static_cast<std::size_t>(i)]},
                                 "addnb" + std::to_string(i));
    const GateId pick_b =
        c.add_gate(GateType::kAnd,
                   {b[static_cast<std::size_t>(i)], is_add},
                   "pb" + std::to_string(i));
    const GateId pick_nb = c.add_gate(GateType::kAnd, {nb, is_sub},
                                      "pnb" + std::to_string(i));
    b_eff.push_back(
        c.add_gate(GateType::kOr, {pick_b, pick_nb}, "be" + std::to_string(i)));
  }
  const GateId sub_cin = c.add_gate(GateType::kOr,
                                    {c.add_gate(GateType::kAnd, {cin, is_add},
                                                "cin_add"),
                                     is_sub},
                                    "cin_eff");
  GateId cout = kNoGate;
  const std::vector<GateId> sum =
      ripple_add(c, a, b_eff, sub_cin, "alu_add", &cout);

  for (int i = 0; i < width; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    const std::string n = std::to_string(i);
    const GateId and_i = c.add_gate(GateType::kAnd, {a[ui], b[ui]}, "fand" + n);
    const GateId or_i = c.add_gate(GateType::kOr, {a[ui], b[ui]}, "for" + n);
    const GateId xor_i = c.add_gate(GateType::kXor, {a[ui], b[ui]}, "fxor" + n);
    const GateId nor_i = c.add_gate(GateType::kNor, {a[ui], b[ui]}, "fnor" + n);
    const GateId nota_i = c.add_gate(GateType::kNot, {a[ui]}, "fnota" + n);

    std::vector<GateId> terms = {
        c.add_gate(GateType::kAnd, {and_i, is_and}, "m_and" + n),
        c.add_gate(GateType::kAnd, {or_i, is_or}, "m_or" + n),
        c.add_gate(GateType::kAnd, {xor_i, is_xor}, "m_xor" + n),
        c.add_gate(GateType::kAnd, {nor_i, is_nor}, "m_nor" + n),
        c.add_gate(GateType::kAnd, {sum[ui], is_add}, "m_add" + n),
        c.add_gate(GateType::kAnd, {sum[ui], is_sub}, "m_sub" + n),
        c.add_gate(GateType::kAnd, {a[ui], is_pass}, "m_pass" + n),
        c.add_gate(GateType::kAnd, {nota_i, is_nota}, "m_nota" + n),
    };
    const GateId y = c.add_gate(GateType::kOr, terms, "y" + n);
    c.mark_output(y);
  }
  c.mark_output(cout);
  c.finalize();
  return c;
}

Circuit make_scan_accumulator(int width) {
  LSIQ_EXPECT(width >= 1, "accumulator width must be >= 1");
  Circuit c("acc" + std::to_string(width));
  std::vector<GateId> a;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  std::vector<GateId> state;
  for (int i = 0; i < width; ++i) {
    state.push_back(c.add_dff("s" + std::to_string(i)));
  }
  GateId cout = kNoGate;
  const std::vector<GateId> sum =
      ripple_add(c, a, state, kNoGate, "acc", &cout);
  for (int i = 0; i < width; ++i) {
    c.connect_dff(state[static_cast<std::size_t>(i)],
                  sum[static_cast<std::size_t>(i)]);
    c.mark_output(sum[static_cast<std::size_t>(i)]);
  }
  c.mark_output(cout);
  c.finalize();
  return c;
}

Circuit make_carry_select_adder(int width, int block) {
  LSIQ_EXPECT(width >= 1, "adder width must be >= 1");
  LSIQ_EXPECT(block >= 1 && block <= width, "block size must be in [1, width]");
  Circuit c("csa" + std::to_string(width) + "b" + std::to_string(block));
  std::vector<GateId> a;
  std::vector<GateId> b;
  for (int i = 0; i < width; ++i) {
    a.push_back(c.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(c.add_input("b" + std::to_string(i)));
  }
  const GateId cin = c.add_input("cin");

  // 2:1 mux as AND/OR network.
  auto mux = [&](GateId sel, GateId when0, GateId when1,
                 const std::string& name) {
    const GateId nsel = c.add_gate(GateType::kNot, {sel}, name + "_ns");
    const GateId lo = c.add_gate(GateType::kAnd, {when0, nsel}, name + "_lo");
    const GateId hi = c.add_gate(GateType::kAnd, {when1, sel}, name + "_hi");
    return c.add_gate(GateType::kOr, {lo, hi}, name + "_o");
  };

  std::vector<GateId> sums(static_cast<std::size_t>(width));
  GateId carry = cin;
  for (int base = 0; base < width; base += block) {
    const int bits = std::min(block, width - base);
    const std::string tag = "blk" + std::to_string(base);
    const std::vector<GateId> aa(a.begin() + base, a.begin() + base + bits);
    const std::vector<GateId> bb(b.begin() + base, b.begin() + base + bits);
    if (base == 0) {
      // First block: the real carry-in is a primary input; ripple directly.
      GateId cout = kNoGate;
      const std::vector<GateId> s =
          ripple_add(c, aa, bb, carry, tag, &cout);
      for (int i = 0; i < bits; ++i) {
        sums[static_cast<std::size_t>(base + i)] = s[static_cast<std::size_t>(i)];
      }
      carry = cout;
      continue;
    }
    // Speculative block: compute both carry hypotheses, select afterwards.
    const GateId zero = c.add_gate(GateType::kConst0, {}, tag + "_c0");
    const GateId one = c.add_gate(GateType::kConst1, {}, tag + "_c1");
    GateId cout0 = kNoGate;
    GateId cout1 = kNoGate;
    const std::vector<GateId> s0 =
        ripple_add(c, aa, bb, zero, tag + "_h0", &cout0);
    const std::vector<GateId> s1 =
        ripple_add(c, aa, bb, one, tag + "_h1", &cout1);
    for (int i = 0; i < bits; ++i) {
      sums[static_cast<std::size_t>(base + i)] =
          mux(carry, s0[static_cast<std::size_t>(i)],
              s1[static_cast<std::size_t>(i)],
              tag + "_m" + std::to_string(i));
    }
    carry = mux(carry, cout0, cout1, tag + "_mc");
  }

  for (const GateId s : sums) {
    c.mark_output(s);
  }
  c.mark_output(carry);
  c.finalize();
  return c;
}

Circuit make_barrel_rotator(int width) {
  LSIQ_EXPECT(width >= 2 && (width & (width - 1)) == 0 && width <= 64,
              "barrel rotator width must be a power of two in [2, 64]");
  Circuit c("rot" + std::to_string(width));
  std::vector<GateId> data;
  for (int i = 0; i < width; ++i) {
    data.push_back(c.add_input("d" + std::to_string(i)));
  }
  int stages = 0;
  while ((1 << stages) < width) ++stages;
  std::vector<GateId> shift;
  for (int s = 0; s < stages; ++s) {
    shift.push_back(c.add_input("s" + std::to_string(s)));
  }

  auto mux = [&](GateId sel, GateId when0, GateId when1,
                 const std::string& name) {
    const GateId nsel = c.add_gate(GateType::kNot, {sel}, name + "_ns");
    const GateId lo = c.add_gate(GateType::kAnd, {when0, nsel}, name + "_lo");
    const GateId hi = c.add_gate(GateType::kAnd, {when1, sel}, name + "_hi");
    return c.add_gate(GateType::kOr, {lo, hi}, name + "_o");
  };

  // Stage s rotates left by 2^s when shift[s] is set: output bit i takes
  // input bit (i - 2^s) mod width.
  std::vector<GateId> layer = data;
  for (int s = 0; s < stages; ++s) {
    const int amount = 1 << s;
    std::vector<GateId> next(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const int from = ((i - amount) % width + width) % width;
      next[static_cast<std::size_t>(i)] =
          mux(shift[static_cast<std::size_t>(s)],
              layer[static_cast<std::size_t>(i)],
              layer[static_cast<std::size_t>(from)],
              "st" + std::to_string(s) + "_b" + std::to_string(i));
    }
    layer = std::move(next);
  }
  for (const GateId bit : layer) {
    c.mark_output(bit);
  }
  c.finalize();
  return c;
}

Circuit make_random_dag(const RandomDagSpec& spec) {
  LSIQ_EXPECT(spec.inputs >= 2, "random dag requires >= 2 inputs");
  LSIQ_EXPECT(spec.gates >= 1, "random dag requires >= 1 gate");
  LSIQ_EXPECT(spec.max_fanin >= 2, "random dag requires max_fanin >= 2");
  LSIQ_EXPECT(spec.inverter_fraction >= 0.0 && spec.inverter_fraction < 1.0,
              "inverter_fraction must be in [0, 1)");

  util::Rng rng(spec.seed);
  Circuit c("rand_i" + std::to_string(spec.inputs) + "_g" +
            std::to_string(spec.gates) + "_s" + std::to_string(spec.seed));

  std::vector<GateId> nodes;
  std::vector<bool> consumed;
  for (int i = 0; i < spec.inputs; ++i) {
    nodes.push_back(c.add_input("x" + std::to_string(i)));
    consumed.push_back(false);
  }

  static constexpr GateType kVariadic[] = {GateType::kAnd, GateType::kNand,
                                           GateType::kOr, GateType::kNor,
                                           GateType::kXor, GateType::kXnor};

  for (int g = 0; g < spec.gates; ++g) {
    const bool unary = rng.uniform() < spec.inverter_fraction;
    GateType type;
    int fanin_count;
    if (unary) {
      type = rng.bernoulli(0.8) ? GateType::kNot : GateType::kBuf;
      fanin_count = 1;
    } else {
      type = kVariadic[rng.uniform_below(std::size(kVariadic))];
      fanin_count = 2 + static_cast<int>(rng.uniform_below(
                            static_cast<std::uint64_t>(spec.max_fanin - 1)));
    }

    // Prefer yet-unconsumed nodes so the DAG stays connected and inputs do
    // not dangle; fall back to uniform choice for reconvergence.
    std::vector<GateId> fanin;
    for (int k = 0; k < fanin_count; ++k) {
      GateId pick = kNoGate;
      if (rng.bernoulli(0.5)) {
        std::vector<GateId> unconsumed;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (!consumed[i]) unconsumed.push_back(nodes[i]);
        }
        if (!unconsumed.empty()) {
          pick = unconsumed[rng.uniform_below(unconsumed.size())];
        }
      }
      if (pick == kNoGate) {
        pick = nodes[rng.uniform_below(nodes.size())];
      }
      if (std::find(fanin.begin(), fanin.end(), pick) != fanin.end()) {
        // Duplicate pin; retry once with a uniform pick, else accept a
        // smaller gate.
        pick = nodes[rng.uniform_below(nodes.size())];
        if (std::find(fanin.begin(), fanin.end(), pick) != fanin.end()) {
          continue;
        }
      }
      fanin.push_back(pick);
    }
    if (static_cast<int>(fanin.size()) < min_fanin(type)) {
      // Degenerate draw; demote to an inverter on the sole pin.
      if (fanin.empty()) fanin.push_back(nodes[rng.uniform_below(nodes.size())]);
      type = GateType::kNot;
      fanin.resize(1);
    }

    const GateId id = c.add_gate(type, fanin);
    for (const GateId f : fanin) {
      consumed[f] = true;
    }
    nodes.push_back(id);
    consumed.push_back(false);
  }

  // Everything still unconsumed becomes (or feeds) an output.
  bool marked_any = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (consumed[i]) continue;
    GateId sink = nodes[i];
    if (c.gate(sink).type == GateType::kInput) {
      sink = c.add_gate(GateType::kBuf, {sink});
    }
    c.mark_output(sink);
    marked_any = true;
  }
  LSIQ_EXPECT(marked_any, "random dag produced no outputs");
  c.finalize();
  return c;
}

}  // namespace lsiq::circuit
