// Parameterized structural netlist generators.
//
// The paper's experiment ran on a ~25,000-transistor production LSI chip we
// cannot have; these generators provide circuits of controllable size whose
// fault universes stand in for it (see DESIGN.md, substitution table). They
// also provide the small, exhaustively-verifiable circuits the test suite
// checks the simulators against.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"

namespace lsiq::circuit {

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates. The
/// smallest standard circuit in the testing literature; handy for
/// hand-checkable tests.
Circuit make_c17();

/// Ripple-carry adder: inputs a[0..width), b[0..width), cin; outputs
/// sum[0..width), cout. 5 gates per bit.
Circuit make_ripple_carry_adder(int width);

/// Array multiplier computing p = a * b for `width`-bit operands using an
/// AND partial-product matrix summed by ripple-carry adders. For width 16
/// this is a ~4,000-gate circuit with a fault universe comfortably larger
/// than n0 — the stand-in for the paper's LSI chip.
Circuit make_array_multiplier(int width);

/// Odd-input majority function via sum-of-products over all minimal product
/// terms C(n, (n+1)/2); n must be odd and small (<= 9).
Circuit make_majority(int inputs);

/// Balanced XOR parity tree over `inputs` bits (inputs >= 2).
Circuit make_parity_tree(int inputs);

/// 2^select-to-1 multiplexer tree: data inputs d[0..2^select), select lines
/// s[0..select), one output.
Circuit make_mux_tree(int select_bits);

/// n-to-2^n decoder with enable: outputs one-hot when enabled.
Circuit make_decoder(int address_bits);

/// Unsigned magnitude comparator: outputs lt/eq/gt for two `width`-bit words.
Circuit make_comparator(int width);

/// A 74181-flavoured ALU slice array: two `width`-bit operands, 3-bit
/// opcode (AND/OR/XOR/NOR/ADD/SUB/pass-A/NOT-A), carry-in; `width`+1 bit
/// result (carry-out observed). A mixed-function block with reconvergent
/// fanout, good for exercising ATPG.
Circuit make_alu(int width);

/// Scan accumulator: a `width`-bit register (scan flip-flops) whose next
/// state is register + input, with the sum also driving primary outputs.
/// Exercises the full-scan DFF paths (pseudo-PI/PO, scan captures) at
/// parameterized scale — the sequential-circuit workload for the fault
/// simulators and ATPG.
Circuit make_scan_accumulator(int width);

/// Carry-select adder: the word is split into `block` -bit groups; each
/// group computes both carry-in hypotheses with ripple adders and a mux
/// picks the real one. Same function as make_ripple_carry_adder but with
/// heavy reconvergent fanout — a structurally different ATPG workload.
Circuit make_carry_select_adder(int width, int block);

/// Logarithmic barrel rotator: `width` (a power of two) data inputs,
/// log2(width) shift-amount inputs, rotate-left by the shift amount.
Circuit make_barrel_rotator(int width);

/// Parameters for the random-DAG generator.
struct RandomDagSpec {
  int inputs = 16;
  int gates = 200;          ///< combinational gates to create
  int max_fanin = 4;        ///< variadic gates pick arity in [2, max_fanin]
  double inverter_fraction = 0.15;  ///< share of 1-input gates (NOT/BUF)
  std::uint64_t seed = 1;
};

/// Random combinational DAG. Every input is consumed, every sink gate
/// becomes a primary output, and construction guarantees acyclicity. Random
/// circuits are the property-test workhorse: the serial and parallel fault
/// simulators are cross-checked over hundreds of these.
Circuit make_random_dag(const RandomDagSpec& spec);

}  // namespace lsiq::circuit
