// Gate-level primitives of the netlist data model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lsiq::circuit {

/// Identifier of a gate inside one Circuit. Dense, assigned in creation
/// order, usable as a vector index everywhere (simulator state, fault lists).
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = 0xffffffffu;

/// Supported gate functions.
///
/// kDff models a scan flip-flop under the full-scan test assumption used
/// throughout the library: its output behaves as a pseudo primary input
/// (controllable by the tester through the scan chain) and its data input as
/// a pseudo primary output (observable through the scan chain). This is the
/// standard reduction that lets combinational test generation and fault
/// simulation cover sequential designs.
enum class GateType : std::uint8_t {
  kInput,   ///< primary input; no fanin
  kBuf,     ///< identity; 1 fanin
  kNot,     ///< inverter; 1 fanin
  kAnd,     ///< >= 2 fanin
  kNand,    ///< >= 2 fanin
  kOr,      ///< >= 2 fanin
  kNor,     ///< >= 2 fanin
  kXor,     ///< parity; >= 2 fanin
  kXnor,    ///< complemented parity; >= 2 fanin
  kConst0,  ///< constant 0; no fanin
  kConst1,  ///< constant 1; no fanin
  kDff,     ///< scan flip-flop; 1 fanin (the D input)
};

/// Human-readable gate-type name ("NAND", "DFF", ...), matching the keywords
/// of the ISCAS .bench format where one exists.
std::string_view gate_type_name(GateType type);

/// Inverse of gate_type_name; accepts the .bench aliases ("BUFF" for kBuf).
/// Returns false if the keyword is unknown.
bool parse_gate_type(std::string_view keyword, GateType& out);

/// True for types whose output is the complement of the uncomplemented
/// sibling (kNand/kNor/kXnor/kNot).
bool is_inverting(GateType type) noexcept;

/// Number of fanins the type requires: exact for fixed-arity types, the
/// minimum (2) for the variadic ones. kInput/kConst0/kConst1 take 0.
int min_fanin(GateType type) noexcept;

/// Largest fanin the type accepts (1 for kBuf/kNot/kDff, unbounded for the
/// variadic types, 0 for sources).
int max_fanin(GateType type) noexcept;

/// One gate record. Fanout and level are derived by Circuit::finalize().
struct Gate {
  GateType type = GateType::kBuf;
  std::string name;              ///< unique within the circuit
  std::vector<GateId> fanin;     ///< driver gates, in port order
  std::vector<GateId> fanout;    ///< reader gates (derived)
  std::uint32_t level = 0;       ///< logic depth from inputs (derived)
};

}  // namespace lsiq::circuit
