#include "circuit/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace lsiq::circuit {

namespace {

struct Assignment {
  std::string target;
  GateType type = GateType::kBuf;
  std::vector<std::string> args;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError(".bench line " + std::to_string(line) + ": " + message);
}

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse "KEYWORD(arg1, arg2, ...)" returning keyword and args.
bool parse_call(const std::string& text, std::string& keyword,
                std::vector<std::string>& args) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  keyword = strip(text.substr(0, open));
  args.clear();
  std::string inner = text.substr(open + 1, close - open - 1);
  std::size_t start = 0;
  while (start <= inner.size()) {
    const std::size_t comma = inner.find(',', start);
    const std::string piece =
        strip(comma == std::string::npos ? inner.substr(start)
                                         : inner.substr(start, comma - start));
    if (!piece.empty()) args.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !keyword.empty();
}

/// A signal named by an INPUT/OUTPUT directive, with the line that named
/// it so later validation failures can point at the offending line.
struct NamedSignal {
  std::string name;
  int line = 0;
};

}  // namespace

Circuit read_bench(std::istream& in, const std::string& circuit_name) {
  std::vector<NamedSignal> input_names;
  std::vector<NamedSignal> output_names;
  std::vector<Assignment> assignments;
  std::unordered_map<std::string, std::size_t> assignment_of;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = strip(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      std::string keyword;
      std::vector<std::string> args;
      if (!parse_call(line, keyword, args) || args.size() != 1) {
        fail(line_no, "expected INPUT(name), OUTPUT(name) or an assignment");
      }
      if (keyword == "INPUT") {
        input_names.push_back({args.front(), line_no});
      } else if (keyword == "OUTPUT") {
        output_names.push_back({args.front(), line_no});
      } else {
        fail(line_no, "unknown directive `" + keyword + "`");
      }
      continue;
    }

    Assignment a;
    a.target = strip(line.substr(0, eq));
    a.line = line_no;
    if (a.target.empty()) fail(line_no, "missing assignment target");
    std::string keyword;
    if (!parse_call(strip(line.substr(eq + 1)), keyword, a.args)) {
      fail(line_no, "malformed right-hand side");
    }
    if (!parse_gate_type(keyword, a.type)) {
      fail(line_no, "unknown gate type `" + keyword + "`");
    }
    const int lo = min_fanin(a.type);
    const int hi = max_fanin(a.type);
    if (static_cast<int>(a.args.size()) < lo ||
        static_cast<int>(a.args.size()) > hi) {
      fail(line_no, "gate `" + keyword + "` given " +
                        std::to_string(a.args.size()) + " operand(s)");
    }
    if (assignment_of.count(a.target) != 0) {
      fail(line_no, "signal `" + a.target + "` assigned twice");
    }
    assignment_of.emplace(a.target, assignments.size());
    assignments.push_back(std::move(a));
  }

  Circuit circuit(circuit_name);
  std::unordered_map<std::string, GateId> ids;

  for (const NamedSignal& input : input_names) {
    if (ids.count(input.name) != 0) {
      fail(input.line, "input `" + input.name + "` declared twice");
    }
    const auto assigned = assignment_of.find(input.name);
    if (assigned != assignment_of.end()) {
      fail(assignments[assigned->second].line,
           "signal `" + input.name + "` is both INPUT and assigned");
    }
    ids.emplace(input.name, circuit.add_input(input.name));
  }

  // Flip-flops first: their outputs are level-0 sources, which breaks
  // sequential feedback for the creation order below.
  for (const Assignment& a : assignments) {
    if (a.type == GateType::kDff) {
      ids.emplace(a.target, circuit.add_dff(a.target));
    }
  }

  // Kahn creation order over combinational dependencies.
  std::vector<std::size_t> pending(assignments.size(), 0);
  std::unordered_map<std::string, std::vector<std::size_t>> waiters;
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const Assignment& a = assignments[i];
    if (a.type == GateType::kDff) continue;  // already created
    for (const std::string& arg : a.args) {
      if (ids.count(arg) != 0) continue;  // input or DFF: satisfied
      const auto it = assignment_of.find(arg);
      if (it == assignment_of.end()) {
        fail(a.line, "operand `" + arg + "` is never defined");
      }
      ++pending[i];
      waiters[arg].push_back(i);
    }
    if (pending[i] == 0) ready.push(i);
  }

  std::size_t created = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    const Assignment& a = assignments[i];
    std::vector<GateId> fanin;
    fanin.reserve(a.args.size());
    for (const std::string& arg : a.args) fanin.push_back(ids.at(arg));
    ids.emplace(a.target, circuit.add_gate(a.type, fanin, a.target));
    ++created;
    const auto it = waiters.find(a.target);
    if (it != waiters.end()) {
      for (const std::size_t w : it->second) {
        if (--pending[w] == 0) ready.push(w);
      }
    }
  }

  std::size_t dff_count = 0;
  for (const Assignment& a : assignments) {
    if (a.type == GateType::kDff) ++dff_count;
  }
  if (created + dff_count != assignments.size()) {
    throw ParseError("netlist `" + circuit_name +
                     "` contains a combinational cycle");
  }

  // Connect flip-flop D inputs now that every signal exists.
  for (const Assignment& a : assignments) {
    if (a.type != GateType::kDff) continue;
    const auto it = ids.find(a.args.front());
    if (it == ids.end()) {
      fail(a.line, "DFF operand `" + a.args.front() + "` is never defined");
    }
    circuit.connect_dff(ids.at(a.target), it->second);
  }

  std::unordered_set<std::string> seen_outputs;
  for (const NamedSignal& output : output_names) {
    const auto it = ids.find(output.name);
    if (it == ids.end()) {
      fail(output.line, "OUTPUT `" + output.name + "` is never defined");
    }
    if (!seen_outputs.insert(output.name).second) {
      fail(output.line, "OUTPUT `" + output.name + "` declared twice");
    }
    circuit.mark_output(it->second);
  }

  circuit.finalize();
  return circuit;
}

Circuit read_bench_string(const std::string& text,
                          const std::string& circuit_name) {
  std::istringstream in(text);
  return read_bench(in, circuit_name);
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open .bench file: " + path);
  }
  // Derive the circuit name from the basename without extension.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  return read_bench(in, name);
}

void write_bench(const Circuit& circuit, std::ostream& out) {
  LSIQ_EXPECT(circuit.finalized(), "write_bench requires a finalized circuit");
  out << "# " << circuit.name() << "\n";
  const CircuitStats stats = circuit.stats();
  out << "# " << stats.primary_inputs << " inputs, " << stats.primary_outputs
      << " outputs, " << stats.flip_flops << " flip-flops, "
      << stats.combinational_gates << " gates\n";
  for (const GateId id : circuit.primary_inputs()) {
    out << "INPUT(" << circuit.gate(id).name << ")\n";
  }
  for (const GateId id : circuit.primary_outputs()) {
    out << "OUTPUT(" << circuit.gate(id).name << ")\n";
  }
  for (const GateId id : circuit.topological_order()) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i != 0) out << ", ";
      out << circuit.gate(g.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Circuit& circuit) {
  std::ostringstream out;
  write_bench(circuit, out);
  return out.str();
}

}  // namespace lsiq::circuit
