#include "circuit/netlist.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace lsiq::circuit {

Circuit::Circuit(std::string name) : name_(std::move(name)) {}

void Circuit::require_finalized(const char* what) const {
  if (!finalized_) {
    throw Error(std::string(what) + " requires a finalized circuit");
  }
}

void Circuit::require_not_finalized(const char* what) const {
  if (finalized_) {
    throw Error(std::string(what) + " is not allowed after finalize()");
  }
}

GateId Circuit::add_input(const std::string& name) {
  require_not_finalized("add_input");
  LSIQ_EXPECT(!name.empty(), "primary inputs must be named");
  LSIQ_EXPECT(by_name_.find(name) == by_name_.end(),
              "duplicate gate name: " + name);
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = GateType::kInput;
  g.name = name;
  gates_.push_back(std::move(g));
  by_name_.emplace(name, id);
  primary_inputs_.push_back(id);
  is_output_.push_back(false);
  return id;
}

GateId Circuit::add_gate(GateType type, const std::vector<GateId>& fanin,
                         const std::string& name) {
  require_not_finalized("add_gate");
  LSIQ_EXPECT(type != GateType::kInput, "use add_input for primary inputs");
  const int lo = min_fanin(type);
  const int hi = max_fanin(type);
  LSIQ_EXPECT(static_cast<int>(fanin.size()) >= lo &&
                  static_cast<int>(fanin.size()) <= hi,
              std::string("bad fanin count for ") +
                  std::string(gate_type_name(type)));
  for (const GateId f : fanin) {
    LSIQ_EXPECT(f < gates_.size(), "fanin id out of range");
  }

  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.name = name.empty() ? "g" + std::to_string(id) : name;
  LSIQ_EXPECT(by_name_.find(g.name) == by_name_.end(),
              "duplicate gate name: " + g.name);
  g.fanin = fanin;
  by_name_.emplace(g.name, id);
  gates_.push_back(std::move(g));
  is_output_.push_back(false);
  if (type == GateType::kDff) {
    flip_flops_.push_back(id);
  }
  return id;
}

GateId Circuit::add_dff(const std::string& name) {
  require_not_finalized("add_dff");
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = GateType::kDff;
  g.name = name.empty() ? "g" + std::to_string(id) : name;
  LSIQ_EXPECT(by_name_.find(g.name) == by_name_.end(),
              "duplicate gate name: " + g.name);
  by_name_.emplace(g.name, id);
  gates_.push_back(std::move(g));
  is_output_.push_back(false);
  flip_flops_.push_back(id);
  return id;
}

void Circuit::connect_dff(GateId dff, GateId driver) {
  require_not_finalized("connect_dff");
  LSIQ_EXPECT(dff < gates_.size(), "connect_dff: dff id out of range");
  LSIQ_EXPECT(driver < gates_.size(), "connect_dff: driver id out of range");
  Gate& g = gates_[dff];
  LSIQ_EXPECT(g.type == GateType::kDff, "connect_dff: gate is not a DFF");
  LSIQ_EXPECT(g.fanin.empty(), "connect_dff: DFF already connected");
  g.fanin.push_back(driver);
}

void Circuit::set_fanin(GateId id, const std::vector<GateId>& fanin) {
  require_not_finalized("set_fanin");
  LSIQ_EXPECT(id < gates_.size(), "set_fanin: id out of range");
  Gate& g = gates_[id];
  LSIQ_EXPECT(g.type != GateType::kInput && g.type != GateType::kConst0 &&
                  g.type != GateType::kConst1,
              "set_fanin: sources have no fanin");
  for (const GateId f : fanin) {
    LSIQ_EXPECT(f < gates_.size(), "set_fanin: fanin id out of range");
  }
  g.fanin = fanin;
}

void Circuit::mark_output(GateId id) {
  require_not_finalized("mark_output");
  LSIQ_EXPECT(id < gates_.size(), "mark_output: id out of range");
  LSIQ_EXPECT(!is_output_[id], "gate marked as output twice: " +
                                   gates_[id].name);
  is_output_[id] = true;
  primary_outputs_.push_back(id);
}

void Circuit::finalize() {
  require_not_finalized("finalize");
  LSIQ_EXPECT(!gates_.empty(), "finalize: circuit is empty");

  for (const GateId ff : flip_flops_) {
    if (gates_[ff].fanin.size() != 1) {
      throw Error("finalize: flip-flop " + gates_[ff].name +
                  " has no connected D input");
    }
  }

  // Derive fanout lists.
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (const GateId f : gates_[id].fanin) {
      gates_[f].fanout.push_back(id);
    }
  }

  // Levelize with Kahn's algorithm. DFF outputs are level-0 sources under
  // the full-scan model, so a DFF never contributes to a combinational
  // cycle; its fanin edge is still checked for dangling references but is
  // excluded from the level graph.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  for (GateId id = 0; id < gates_.size(); ++id) {
    if (gates_[id].type == GateType::kDff) continue;
    pending[id] = static_cast<std::uint32_t>(gates_[id].fanin.size());
  }
  std::queue<GateId> ready;
  for (GateId id = 0; id < gates_.size(); ++id) {
    if (pending[id] == 0) {
      gates_[id].level = 0;
      ready.push(id);
    }
  }

  topo_order_.clear();
  topo_order_.reserve(gates_.size());
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop();
    topo_order_.push_back(id);
    for (const GateId reader : gates_[id].fanout) {
      if (gates_[reader].type == GateType::kDff) continue;
      gates_[reader].level =
          std::max(gates_[reader].level, gates_[id].level + 1);
      if (--pending[reader] == 0) {
        ready.push(reader);
      }
    }
  }
  if (topo_order_.size() != gates_.size()) {
    throw Error("finalize: circuit " + name_ +
                " contains a combinational cycle");
  }

  // Full-scan views.
  pattern_inputs_ = primary_inputs_;
  pattern_inputs_.insert(pattern_inputs_.end(), flip_flops_.begin(),
                         flip_flops_.end());
  LSIQ_EXPECT(!pattern_inputs_.empty(),
              "finalize: circuit has no controllable inputs");

  observed_points_ = primary_outputs_;
  for (const GateId ff : flip_flops_) {
    observed_points_.push_back(gates_[ff].fanin.front());
  }
  if (observed_points_.empty()) {
    throw Error("finalize: circuit " + name_ + " has no observable outputs");
  }

  finalized_ = true;
}

const Gate& Circuit::gate(GateId id) const {
  LSIQ_EXPECT(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

const std::vector<GateId>& Circuit::pattern_inputs() const {
  require_finalized("pattern_inputs");
  return pattern_inputs_;
}

const std::vector<GateId>& Circuit::observed_points() const {
  require_finalized("observed_points");
  return observed_points_;
}

const std::vector<GateId>& Circuit::topological_order() const {
  require_finalized("topological_order");
  return topo_order_;
}

GateId Circuit::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoGate : it->second;
}

CircuitStats Circuit::stats() const {
  require_finalized("stats");
  CircuitStats s;
  s.gates = gates_.size();
  s.primary_inputs = primary_inputs_.size();
  s.primary_outputs = primary_outputs_.size();
  s.flip_flops = flip_flops_.size();
  std::size_t fanout_total = 0;
  for (const Gate& g : gates_) {
    s.depth = std::max<std::size_t>(s.depth, g.level);
    s.literals += g.fanin.size();
    s.max_fanout = std::max(s.max_fanout, g.fanout.size());
    fanout_total += g.fanout.size();
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kDff:
        break;
      default:
        ++s.combinational_gates;
    }
  }
  s.avg_fanout =
      s.gates == 0 ? 0.0
                   : static_cast<double>(fanout_total) /
                         static_cast<double>(s.gates);
  return s;
}

}  // namespace lsiq::circuit
