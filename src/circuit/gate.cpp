#include "circuit/gate.hpp"

#include <limits>

namespace lsiq::circuit {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput:  return "INPUT";
    case GateType::kBuf:    return "BUF";
    case GateType::kNot:    return "NOT";
    case GateType::kAnd:    return "AND";
    case GateType::kNand:   return "NAND";
    case GateType::kOr:     return "OR";
    case GateType::kNor:    return "NOR";
    case GateType::kXor:    return "XOR";
    case GateType::kXnor:   return "XNOR";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kDff:    return "DFF";
  }
  return "?";
}

bool parse_gate_type(std::string_view keyword, GateType& out) {
  // Uppercase compare without allocation.
  auto equals_ci = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const char ca = (a[i] >= 'a' && a[i] <= 'z')
                          ? static_cast<char>(a[i] - 'a' + 'A')
                          : a[i];
      if (ca != b[i]) return false;
    }
    return true;
  };
  struct Entry {
    std::string_view keyword;
    GateType type;
  };
  static constexpr Entry kEntries[] = {
      {"BUF", GateType::kBuf},       {"BUFF", GateType::kBuf},
      {"NOT", GateType::kNot},       {"INV", GateType::kNot},
      {"AND", GateType::kAnd},       {"NAND", GateType::kNand},
      {"OR", GateType::kOr},         {"NOR", GateType::kNor},
      {"XOR", GateType::kXor},       {"XNOR", GateType::kXnor},
      {"DFF", GateType::kDff},       {"CONST0", GateType::kConst0},
      {"CONST1", GateType::kConst1},
  };
  for (const Entry& e : kEntries) {
    if (equals_ci(keyword, e.keyword)) {
      out = e.type;
      return true;
    }
  }
  return false;
}

bool is_inverting(GateType type) noexcept {
  switch (type) {
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

int min_fanin(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    default:
      return 2;
  }
}

int max_fanin(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      return 1;
    default:
      return std::numeric_limits<int>::max();
  }
}

}  // namespace lsiq::circuit
