// Flat, cache-friendly compilation of a finalized Circuit.
//
// The Circuit container is built for construction and inspection: each Gate
// owns its name and heap-allocated fanin/fanout vectors, so hot simulation
// loops that walk it chase a pointer per pin and a bounds-checked accessor
// per gate. CompiledCircuit freezes the same topology into CSR arrays —
// one contiguous pin array with per-gate offsets, packed type/level
// records, the evaluation order with sources stripped, and the
// observed-point index of every gate — which is what the parallel-pattern
// simulator and the PPSFP propagator index in their inner loops.
//
// Gate ids are unchanged: arrays are indexed by GateId exactly as Circuit
// is, so values buffers move between the two representations freely.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace lsiq::circuit {

class CompiledCircuit {
 public:
  /// point_index() value for gates that are not observed.
  static constexpr std::uint32_t kNoPoint = 0xffffffffu;

  /// One step of the evaluation program: dest = op(values[a], values[b]).
  /// For single-operand and generic steps, `b` mirrors `a`.
  struct EvalStep {
    GateId a;
    GateId b;
    GateId dest;
  };

  /// Operation of a run of consecutive EvalSteps. The two-input kinds are
  /// the overwhelming majority in practice and evaluate in tight
  /// dispatch-free loops; everything else (constants, wide gates) takes
  /// the generic per-gate path.
  enum class RunKind : std::uint8_t {
    kAnd2, kNand2, kOr2, kNor2, kXor2, kXnor2, kBuf1, kNot1, kGeneric,
  };

  /// A maximal run of same-kind steps within one level.
  struct EvalRun {
    std::uint32_t begin;  ///< first step index
    std::uint32_t end;    ///< one past the last step index
    RunKind kind;
  };

  /// Compile a finalized circuit. The Circuit must outlive the compiled
  /// view (gate names and construction metadata are not copied).
  explicit CompiledCircuit(const Circuit& circuit);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return type_.size();
  }
  /// Maximum level over all gates.
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  [[nodiscard]] GateType type(GateId id) const noexcept {
    return static_cast<GateType>(type_[id]);
  }
  [[nodiscard]] std::uint32_t level(GateId id) const noexcept {
    return level_[id];
  }

  // ---- CSR topology ----

  [[nodiscard]] std::size_t fanin_count(GateId id) const noexcept {
    return fanin_offset_[id + 1] - fanin_offset_[id];
  }
  /// Pointer to the first fanin of `id` inside the shared pin array.
  [[nodiscard]] const GateId* fanin(GateId id) const noexcept {
    return fanin_.data() + fanin_offset_[id];
  }

  [[nodiscard]] std::size_t fanout_count(GateId id) const noexcept {
    return fanout_offset_[id + 1] - fanout_offset_[id];
  }
  [[nodiscard]] const GateId* fanout(GateId id) const noexcept {
    return fanout_.data() + fanout_offset_[id];
  }

  // ---- precomputed views ----

  /// Topological order restricted to gates the simulator evaluates:
  /// everything except kInput and kDff sources (constants included).
  /// Sorted by level, so the slice from eval_level_begin(L) to the end is
  /// exactly the gates at level >= L — the suffix the resimulation fault
  /// kernel sweeps.
  [[nodiscard]] const std::vector<GateId>& eval_order() const noexcept {
    return eval_order_;
  }

  /// Index into eval_order() of the first gate at level >= `level`
  /// (eval_order().size() when no such gate exists).
  [[nodiscard]] std::size_t eval_level_begin(std::size_t level) const noexcept {
    return level > depth_ ? eval_order_.size() : eval_level_begin_[level];
  }

  /// Evaluate every gate at level >= `from_level` into `values` (dense,
  /// node_count() words) through the run-structured program — the hot
  /// levelized sweep shared by good-machine simulation (from_level = 0)
  /// and suffix resimulation. `skip`, when not kNoGate, names one gate
  /// whose value is left untouched (an injected fault site).
  void eval_suffix(std::size_t from_level, std::uint64_t* values,
                   GateId skip = kNoGate) const;
  [[nodiscard]] const std::vector<GateId>& pattern_inputs() const noexcept {
    return pattern_inputs_;
  }
  [[nodiscard]] const std::vector<GateId>& observed_points() const noexcept {
    return observed_points_;
  }

  /// Observed-point index of a gate, kNoPoint when unobserved. For a kDff
  /// gate this is the index of its pseudo primary output (the scan capture
  /// of its D input) — the O(1) replacement for scanning flip_flops().
  /// When a gate drives several observed points, the first index is
  /// returned; detection logic only needs *an* index with the right mask
  /// for DFF captures, and iterates the full point list otherwise.
  [[nodiscard]] std::uint32_t point_index(GateId id) const noexcept {
    return point_index_of_[id];
  }

  /// The circuit this view was compiled from.
  [[nodiscard]] const Circuit& source() const noexcept { return *source_; }

  // ---- word-parallel gate evaluation over the flat arrays ----
  //
  // The kernels are templates over the word type W so the same program
  // evaluates classic 64-pattern uint64_t blocks and N x 64-lane
  // sim::WideWord<N> blocks. W only needs bitwise &,|,^,~ plus
  // value-initialization to all-zeros (`W{}`); all-ones is `~W{}`.

  /// Evaluate gate `id` over the dense per-gate word array `values`.
  /// Not valid for kInput/kDff sources.
  template <typename W>
  [[nodiscard]] W eval_value(GateId id, const W* values) const {
    const std::uint32_t begin = fanin_offset_[id];
    const std::uint32_t end = fanin_offset_[id + 1];
    const GateId* pins = fanin_.data();
    switch (static_cast<GateType>(type_[id])) {
      case GateType::kConst0:
        return W{};
      case GateType::kConst1:
        return ~W{};
      case GateType::kBuf:
        return values[pins[begin]];
      case GateType::kNot:
        return ~values[pins[begin]];
      case GateType::kAnd:
      case GateType::kNand: {
        W acc = values[pins[begin]];
        for (std::uint32_t i = begin + 1; i < end; ++i) acc &= values[pins[i]];
        return type_[id] == static_cast<std::uint8_t>(GateType::kNand) ? ~acc
                                                                       : acc;
      }
      case GateType::kOr:
      case GateType::kNor: {
        W acc = values[pins[begin]];
        for (std::uint32_t i = begin + 1; i < end; ++i) acc |= values[pins[i]];
        return type_[id] == static_cast<std::uint8_t>(GateType::kNor) ? ~acc
                                                                      : acc;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        W acc = values[pins[begin]];
        for (std::uint32_t i = begin + 1; i < end; ++i) acc ^= values[pins[i]];
        return type_[id] == static_cast<std::uint8_t>(GateType::kXnor) ? ~acc
                                                                       : acc;
      }
      case GateType::kInput:
      case GateType::kDff:
        break;
    }
    return W{};  // unreachable for well-formed calls; sources are assigned
  }

  /// Same, but the fanin at `pin` reads `forced` instead of its driver
  /// value — word-parallel injection of an input-pin (branch) stuck-at.
  template <typename W>
  [[nodiscard]] W eval_value_with_pin(GateId id, const W* values,
                                      std::int32_t pin, W forced) const {
    const std::uint32_t begin = fanin_offset_[id];
    const std::uint32_t end = fanin_offset_[id + 1];
    const GateId* pins = fanin_.data();
    const auto operand = [&](std::uint32_t i) {
      return static_cast<std::int32_t>(i - begin) == pin ? forced
                                                         : values[pins[i]];
    };
    switch (static_cast<GateType>(type_[id])) {
      case GateType::kConst0:
        return W{};
      case GateType::kConst1:
        return ~W{};
      case GateType::kBuf:
        return operand(begin);
      case GateType::kNot:
        return ~operand(begin);
      case GateType::kAnd:
      case GateType::kNand: {
        W acc = operand(begin);
        for (std::uint32_t i = begin + 1; i < end; ++i) acc &= operand(i);
        return type_[id] == static_cast<std::uint8_t>(GateType::kNand) ? ~acc
                                                                       : acc;
      }
      case GateType::kOr:
      case GateType::kNor: {
        W acc = operand(begin);
        for (std::uint32_t i = begin + 1; i < end; ++i) acc |= operand(i);
        return type_[id] == static_cast<std::uint8_t>(GateType::kNor) ? ~acc
                                                                      : acc;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        W acc = operand(begin);
        for (std::uint32_t i = begin + 1; i < end; ++i) acc ^= operand(i);
        return type_[id] == static_cast<std::uint8_t>(GateType::kXnor) ? ~acc
                                                                       : acc;
      }
      case GateType::kInput:
      case GateType::kDff:
        break;
    }
    return W{};  // unreachable for well-formed calls; sources are assigned
  }

  [[nodiscard]] std::uint64_t eval_word(GateId id,
                                        const std::uint64_t* values) const {
    return eval_value<std::uint64_t>(id, values);
  }

  [[nodiscard]] std::uint64_t eval_word_with_pin(GateId id,
                                                 const std::uint64_t* values,
                                                 std::int32_t pin,
                                                 std::uint64_t forced) const {
    return eval_value_with_pin<std::uint64_t>(id, values, pin, forced);
  }

  /// Width-generic eval_suffix: identical program walk for any word type.
  /// The narrow eval_suffix() above delegates here (compiled.cpp), so
  /// there is exactly one copy of the run-dispatch logic.
  template <typename W>
  void eval_suffix_t(std::size_t from_level, W* values,
                     GateId skip = kNoGate) const {
    const std::size_t run_count = runs_.size();
    const EvalStep* steps = steps_.data();
    std::size_t r =
        from_level > depth_ ? run_count : run_level_begin_[from_level];

// One tight loop per run kind; the `skip` test is a never-taken branch for
// every gate but an injected fault site.
#define LSIQ_RUN_LOOP(expr)                                   \
  for (std::uint32_t s = run.begin; s < run.end; ++s) {       \
    const EvalStep& step = steps[s];                          \
    if (step.dest == skip) continue;                          \
    values[step.dest] = (expr);                               \
  }                                                           \
  break;

    for (; r < run_count; ++r) {
      const EvalRun& run = runs_[r];
      switch (run.kind) {
        case RunKind::kAnd2:
          LSIQ_RUN_LOOP(values[step.a] & values[step.b])
        case RunKind::kNand2:
          LSIQ_RUN_LOOP(~(values[step.a] & values[step.b]))
        case RunKind::kOr2:
          LSIQ_RUN_LOOP(values[step.a] | values[step.b])
        case RunKind::kNor2:
          LSIQ_RUN_LOOP(~(values[step.a] | values[step.b]))
        case RunKind::kXor2:
          LSIQ_RUN_LOOP(values[step.a] ^ values[step.b])
        case RunKind::kXnor2:
          LSIQ_RUN_LOOP(~(values[step.a] ^ values[step.b]))
        case RunKind::kBuf1:
          LSIQ_RUN_LOOP(values[step.a])
        case RunKind::kNot1:
          LSIQ_RUN_LOOP(~values[step.a])
        case RunKind::kGeneric:
          LSIQ_RUN_LOOP(eval_value(step.dest, values))
      }
    }
#undef LSIQ_RUN_LOOP
  }

 private:
  const Circuit* source_;
  std::vector<std::uint8_t> type_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> fanin_offset_;   ///< size node_count()+1
  std::vector<GateId> fanin_;
  std::vector<std::uint32_t> fanout_offset_;  ///< size node_count()+1
  std::vector<GateId> fanout_;
  void build_program();

  std::vector<GateId> eval_order_;
  std::vector<std::uint32_t> eval_level_begin_;  ///< size depth()+2
  std::vector<EvalStep> steps_;     ///< aligned 1:1 with eval_order_
  std::vector<EvalRun> runs_;
  std::vector<std::uint32_t> run_level_begin_;   ///< size depth()+2
  std::vector<GateId> pattern_inputs_;
  std::vector<GateId> observed_points_;
  std::vector<std::uint32_t> point_index_of_;
  std::size_t depth_ = 0;
};

}  // namespace lsiq::circuit
