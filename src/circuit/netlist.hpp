// The Circuit container: a levelized gate-level netlist.
//
// A Circuit is built incrementally (add_input / add_gate / mark_output) and
// then sealed with finalize(), which derives fanout lists, levelizes the
// graph, verifies structural invariants, and freezes the topology. All
// downstream consumers (simulators, fault enumeration, ATPG) require a
// finalized circuit; they index per-gate state densely by GateId.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/gate.hpp"

namespace lsiq::circuit {

/// Summary counters for reporting and sizing (see Circuit::stats()).
struct CircuitStats {
  std::size_t gates = 0;            ///< total nodes incl. inputs and DFFs
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t flip_flops = 0;
  std::size_t combinational_gates = 0;  ///< excludes inputs, constants, DFFs
  std::size_t depth = 0;            ///< maximum level
  std::size_t literals = 0;         ///< total fanin pins
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;
};

class Circuit {
 public:
  explicit Circuit(std::string name = "circuit");

  // ---- construction (pre-finalize) ----

  /// Add a primary input. Name must be unique and non-empty.
  GateId add_input(const std::string& name);

  /// Add a gate of the given type driven by `fanin` (all previously added).
  /// An empty name is auto-generated from the id. Returns the new id.
  GateId add_gate(GateType type, const std::vector<GateId>& fanin,
                  const std::string& name = "");

  /// Add a scan flip-flop whose D input is not known yet. Sequential .bench
  /// netlists commonly define a flip-flop before the gate that feeds it
  /// (feedback loops), so construction is split: add_dff() now,
  /// connect_dff() once the driver exists. finalize() rejects circuits with
  /// unconnected flip-flops.
  GateId add_dff(const std::string& name = "");

  /// Connect the D input of a flip-flop created with add_dff().
  void connect_dff(GateId dff, GateId driver);

  /// ECO-style netlist surgery (pre-finalize): replace a gate's fanin list
  /// wholesale. Unlike add_gate this deliberately skips the arity check and
  /// allows references to later gates, so a rewire can leave the netlist
  /// damaged — combinational cycles, undriven gates — which is exactly what
  /// analyze::analyze() lints for and finalize() still rejects. Sources
  /// (inputs, constants) cannot be rewired.
  void set_fanin(GateId id, const std::vector<GateId>& fanin);

  /// Declare an existing gate to be a primary output. A gate may be marked
  /// at most once; inputs may be marked (wire-through pins exist in ISCAS
  /// netlists).
  void mark_output(GateId id);

  /// Derive fanouts and levels, check invariants (acyclic, arity, unique
  /// names), and freeze the circuit. Throws lsiq::Error on violations.
  void finalize();

  // ---- observers (post-construction; most require finalized()) ----

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] std::size_t gate_count() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] const Gate& gate(GateId id) const;

  [[nodiscard]] const std::vector<GateId>& primary_inputs() const noexcept {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<GateId>& primary_outputs() const noexcept {
    return primary_outputs_;
  }
  [[nodiscard]] const std::vector<GateId>& flip_flops() const noexcept {
    return flip_flops_;
  }

  /// Pattern inputs under the full-scan model: primary inputs followed by
  /// flip-flop outputs. The simulator reads one pattern bit per entry.
  [[nodiscard]] const std::vector<GateId>& pattern_inputs() const;

  /// Observed outputs under the full-scan model: primary outputs followed by
  /// flip-flop data inputs (the driver gate of each DFF).
  [[nodiscard]] const std::vector<GateId>& observed_points() const;

  /// Gates in non-decreasing level order (inputs first). Valid after
  /// finalize(); simulation and fault propagation walk this order.
  [[nodiscard]] const std::vector<GateId>& topological_order() const;

  /// Lookup by unique name; returns kNoGate when absent.
  [[nodiscard]] GateId find(const std::string& name) const;

  [[nodiscard]] CircuitStats stats() const;

 private:
  void require_finalized(const char* what) const;
  void require_not_finalized(const char* what) const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> primary_inputs_;
  std::vector<GateId> primary_outputs_;
  std::vector<GateId> flip_flops_;
  std::vector<GateId> pattern_inputs_;
  std::vector<GateId> observed_points_;
  std::vector<GateId> topo_order_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<bool> is_output_;
  bool finalized_ = false;
};

}  // namespace lsiq::circuit
