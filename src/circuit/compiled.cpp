#include "circuit/compiled.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::circuit {

CompiledCircuit::CompiledCircuit(const Circuit& circuit) : source_(&circuit) {
  LSIQ_EXPECT(circuit.finalized(),
              "CompiledCircuit requires a finalized circuit");
  const std::size_t n = circuit.gate_count();

  type_.resize(n);
  level_.resize(n);
  fanin_offset_.resize(n + 1, 0);
  fanout_offset_.resize(n + 1, 0);
  point_index_of_.assign(n, kNoPoint);

  std::size_t pin_total = 0;
  std::size_t fanout_total = 0;
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(id);
    type_[id] = static_cast<std::uint8_t>(g.type);
    level_[id] = g.level;
    depth_ = std::max<std::size_t>(depth_, g.level);
    pin_total += g.fanin.size();
    fanout_total += g.fanout.size();
  }

  fanin_.reserve(pin_total);
  fanout_.reserve(fanout_total);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(id);
    fanin_offset_[id] = static_cast<std::uint32_t>(fanin_.size());
    fanin_.insert(fanin_.end(), g.fanin.begin(), g.fanin.end());
    fanout_offset_[id] = static_cast<std::uint32_t>(fanout_.size());
    fanout_.insert(fanout_.end(), g.fanout.begin(), g.fanout.end());
  }
  fanin_offset_[n] = static_cast<std::uint32_t>(fanin_.size());
  fanout_offset_[n] = static_cast<std::uint32_t>(fanout_.size());

  eval_order_.reserve(n);
  for (const GateId id : circuit.topological_order()) {
    const GateType t = static_cast<GateType>(type_[id]);
    if (t == GateType::kInput || t == GateType::kDff) continue;
    eval_order_.push_back(id);
  }
  // Stable-sort by level (level order is a topological order, so evaluation
  // semantics are unchanged) and record per-level suffix boundaries. Within
  // a level, order is free — sorting by gate kind turns the evaluation
  // program into long single-operation runs with no per-gate dispatch.
  std::stable_sort(eval_order_.begin(), eval_order_.end(),
                   [this](GateId a, GateId b) {
                     if (level_[a] != level_[b]) return level_[a] < level_[b];
                     if (type_[a] != type_[b]) return type_[a] < type_[b];
                     return fanin_count(a) < fanin_count(b);
                   });
  eval_level_begin_.assign(depth_ + 2,
                           static_cast<std::uint32_t>(eval_order_.size()));
  for (std::size_t i = eval_order_.size(); i > 0; --i) {
    eval_level_begin_[level_[eval_order_[i - 1]]] =
        static_cast<std::uint32_t>(i - 1);
  }
  // Levels with no evaluable gate inherit the next populated level's start.
  for (std::size_t level = depth_ + 1; level > 0; --level) {
    eval_level_begin_[level - 1] =
        std::min(eval_level_begin_[level - 1], eval_level_begin_[level]);
  }

  pattern_inputs_ = circuit.pattern_inputs();
  observed_points_ = circuit.observed_points();

  // Gate -> observed-point index. Points are primary outputs first, then
  // one pseudo output per flip-flop (its D driver). The pseudo-output index
  // is recorded against the *flip-flop* gate, which is what DFF-pin fault
  // detection looks up; driver gates that also appear as primary outputs
  // keep their first (primary-output) index.
  const std::size_t num_po = circuit.primary_outputs().size();
  for (std::size_t i = 0; i < observed_points_.size(); ++i) {
    const GateId point = observed_points_[i];
    if (point_index_of_[point] == kNoPoint) {
      point_index_of_[point] = static_cast<std::uint32_t>(i);
    }
  }
  // Written last so a flip-flop that itself drives another flip-flop's D
  // input still maps to its own pseudo output, not the capture it feeds.
  const auto& ffs = circuit.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    point_index_of_[ffs[i]] = static_cast<std::uint32_t>(num_po + i);
  }

  build_program();
}

void CompiledCircuit::build_program() {
  steps_.reserve(eval_order_.size());
  for (const GateId id : eval_order_) {
    const GateId* pins = fanin(id);
    const std::size_t count = fanin_count(id);
    EvalStep step;
    step.a = count > 0 ? pins[0] : id;
    step.b = count > 1 ? pins[1] : step.a;
    step.dest = id;
    steps_.push_back(step);
  }

  const auto kind_of = [this](GateId id) {
    const std::size_t count = fanin_count(id);
    switch (static_cast<GateType>(type_[id])) {
      case GateType::kAnd:
        if (count == 2) return RunKind::kAnd2;
        break;
      case GateType::kNand:
        if (count == 2) return RunKind::kNand2;
        break;
      case GateType::kOr:
        if (count == 2) return RunKind::kOr2;
        break;
      case GateType::kNor:
        if (count == 2) return RunKind::kNor2;
        break;
      case GateType::kXor:
        if (count == 2) return RunKind::kXor2;
        break;
      case GateType::kXnor:
        if (count == 2) return RunKind::kXnor2;
        break;
      case GateType::kBuf:
        return RunKind::kBuf1;
      case GateType::kNot:
        return RunKind::kNot1;
      default:
        break;
    }
    return RunKind::kGeneric;
  };

  // Runs break at level boundaries (so a suffix sweep can start at any
  // level) and at kind changes; the (level, type, arity) evaluation order
  // makes same-kind gates adjacent already.
  run_level_begin_.assign(depth_ + 2, 0);
  std::size_t i = 0;
  for (std::size_t level = 0; level <= depth_; ++level) {
    run_level_begin_[level] = static_cast<std::uint32_t>(runs_.size());
    const std::size_t level_end = eval_level_begin(level + 1);
    while (i < level_end) {
      const RunKind kind = kind_of(eval_order_[i]);
      std::size_t j = i + 1;
      while (j < level_end && kind_of(eval_order_[j]) == kind) ++j;
      runs_.push_back(EvalRun{static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j), kind});
      i = j;
    }
  }
  run_level_begin_[depth_ + 1] = static_cast<std::uint32_t>(runs_.size());
}

void CompiledCircuit::eval_suffix(std::size_t from_level,
                                  std::uint64_t* values, GateId skip) const {
  eval_suffix_t<std::uint64_t>(from_level, values, skip);
}

}  // namespace lsiq::circuit
