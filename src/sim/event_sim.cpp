#include "sim/event_sim.hpp"

#include "sim/parallel_sim.hpp"
#include "util/error.hpp"

namespace lsiq::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

EventSimulator::EventSimulator(const Circuit& circuit)
    : circuit_(&circuit),
      values_(circuit.gate_count(), 0),
      queued_(circuit.gate_count(), 0) {
  LSIQ_EXPECT(circuit.finalized(),
              "EventSimulator requires a finalized circuit");
  std::size_t max_level = 0;
  for (GateId id = 0; id < circuit.gate_count(); ++id) {
    max_level = std::max<std::size_t>(max_level, circuit.gate(id).level);
  }
  level_buckets_.resize(max_level + 1);
}

void EventSimulator::schedule_fanout(GateId id) {
  for (const GateId reader : circuit_->gate(id).fanout) {
    const Gate& g = circuit_->gate(reader);
    if (g.type == GateType::kDff) continue;  // sources do not re-evaluate
    if (queued_[reader] != 0) continue;
    queued_[reader] = 1;
    level_buckets_[g.level].push_back(reader);
  }
}

void EventSimulator::propagate() {
  for (std::size_t level = 0; level < level_buckets_.size(); ++level) {
    auto& bucket = level_buckets_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId id = bucket[i];
      queued_[id] = 0;
      ++evaluations_;
      const std::uint64_t next =
          eval_gate_word(*circuit_, id, values_) & 1ULL;
      if (next != values_[id]) {
        values_[id] = next;
        schedule_fanout(id);
      }
    }
    bucket.clear();
  }
}

void EventSimulator::apply(const std::vector<bool>& inputs) {
  const auto& pattern_inputs = circuit_->pattern_inputs();
  LSIQ_EXPECT(inputs.size() == pattern_inputs.size(),
              "apply: wrong input count");
  if (!initialized_) {
    // First stimulus: force a full evaluation by scheduling every gate.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      values_[pattern_inputs[i]] = inputs[i] ? 1 : 0;
    }
    for (const GateId id : circuit_->topological_order()) {
      const Gate& g = circuit_->gate(id);
      if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
      if (queued_[id] == 0) {
        queued_[id] = 1;
        level_buckets_[g.level].push_back(id);
      }
    }
    initialized_ = true;
    propagate();
    return;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const GateId id = pattern_inputs[i];
    const bool v = inputs[i];
    if ((values_[id] != 0) != v) {
      values_[id] = v ? 1 : 0;
      schedule_fanout(id);
    }
  }
  propagate();
}

void EventSimulator::set_input(std::size_t input_index, bool value) {
  const auto& pattern_inputs = circuit_->pattern_inputs();
  LSIQ_EXPECT(input_index < pattern_inputs.size(),
              "set_input: index out of range");
  LSIQ_EXPECT(initialized_, "set_input requires a prior apply()");
  const GateId id = pattern_inputs[input_index];
  if ((values_[id] != 0) != value) {
    values_[id] = value ? 1 : 0;
    schedule_fanout(id);
  }
  propagate();
}

bool EventSimulator::value(GateId id) const {
  LSIQ_EXPECT(id < values_.size(), "value: gate id out of range");
  LSIQ_EXPECT(initialized_, "value requires a prior apply()");
  return values_[id] != 0;
}

std::vector<bool> EventSimulator::observed_values() const {
  LSIQ_EXPECT(initialized_, "observed_values requires a prior apply()");
  std::vector<bool> out;
  out.reserve(circuit_->observed_points().size());
  for (const GateId id : circuit_->observed_points()) {
    out.push_back(values_[id] != 0);
  }
  return out;
}

}  // namespace lsiq::sim
