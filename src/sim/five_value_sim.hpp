// Five-valued (D-calculus) circuit simulator with single stuck-at fault
// injection — the evaluation engine behind the PODEM test generator.
//
// The simulator carries a (good, faulty) rail pair per gate. The injected
// fault pins the faulty rail of its line to the stuck value; implication is
// a full forward pass in topological order (simple, allocation-free, and
// fast enough for the circuit sizes ATPG is asked to handle here).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/logic_value.hpp"

namespace lsiq::sim {

class FiveValueSimulator {
 public:
  explicit FiveValueSimulator(const circuit::Circuit& circuit);

  /// Inject the single stuck-at fault at (gate, pin). pin == -1 denotes the
  /// gate output (stem); pin >= 0 denotes that input pin (branch). Clears
  /// all input assignments.
  void set_fault(circuit::GateId gate, int pin, bool stuck_at_one);

  /// Reset every pattern input to X (keeps the injected fault).
  void clear_assignments();

  /// Assign a pattern input (index into Circuit::pattern_inputs()).
  void assign_input(std::size_t input_index, Tri value);

  [[nodiscard]] Tri input_assignment(std::size_t input_index) const;

  /// Forward five-valued implication over the whole circuit.
  void imply();

  /// Value of a gate after imply().
  [[nodiscard]] const FiveValue& value(circuit::GateId id) const;

  /// Gates whose output is X while at least one input carries D/D'.
  [[nodiscard]] std::vector<circuit::GateId> d_frontier() const;

  /// True when a fault effect (D/D') has reached an observed point.
  [[nodiscard]] bool fault_effect_observed() const;

  /// True when the fault could still be activated: the good rail of the
  /// faulted line is X or differs from the stuck value.
  [[nodiscard]] bool activation_possible() const;

  /// True when some D-frontier gate has a path of all-X gates to an
  /// observed point (the classic X-path check).
  [[nodiscard]] bool x_path_exists() const;

  /// The signal the activation objective concerns: the faulted gate itself
  /// for a stem fault, the driver of the faulted pin for a branch fault.
  [[nodiscard]] circuit::GateId fault_line() const;

  [[nodiscard]] bool stuck_at_one() const noexcept { return stuck_at_one_; }

  [[nodiscard]] const circuit::Circuit& circuit() const noexcept {
    return *circuit_;
  }

 private:
  [[nodiscard]] FiveValue observed_value(std::size_t point_index) const;

  const circuit::Circuit* circuit_;
  std::vector<FiveValue> values_;
  std::vector<Tri> assignments_;
  circuit::GateId fault_gate_ = circuit::kNoGate;
  int fault_pin_ = -1;
  bool stuck_at_one_ = false;
};

}  // namespace lsiq::sim
