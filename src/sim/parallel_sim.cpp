#include "sim/parallel_sim.hpp"

#include <atomic>

#include "util/error.hpp"

namespace lsiq::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

namespace {

std::uint64_t eval_from_operands(GateType type, const std::uint64_t* ops,
                                 std::size_t count) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kBuf:
      return ops[0];
    case GateType::kNot:
      return ~ops[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ops[0];
      for (std::size_t i = 1; i < count; ++i) acc &= ops[i];
      return type == GateType::kNand ? ~acc : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = ops[0];
      for (std::size_t i = 1; i < count; ++i) acc |= ops[i];
      return type == GateType::kNor ? ~acc : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = ops[0];
      for (std::size_t i = 1; i < count; ++i) acc ^= ops[i];
      return type == GateType::kXnor ? ~acc : acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate_word: sources are assigned, not evaluated");
}

}  // namespace

std::uint64_t eval_gate_word(const Circuit& circuit, GateId id,
                             const std::vector<std::uint64_t>& values) {
  const Gate& g = circuit.gate(id);
  std::uint64_t small[8];
  if (g.fanin.size() <= 8) {
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      small[i] = values[g.fanin[i]];
    }
    return eval_from_operands(g.type, small, g.fanin.size());
  }
  std::vector<std::uint64_t> ops(g.fanin.size());
  for (std::size_t i = 0; i < g.fanin.size(); ++i) {
    ops[i] = values[g.fanin[i]];
  }
  return eval_from_operands(g.type, ops.data(), ops.size());
}

std::uint64_t eval_gate_word_with_pin(const Circuit& circuit, GateId id,
                                      const std::vector<std::uint64_t>& values,
                                      int pin, std::uint64_t forced) {
  const Gate& g = circuit.gate(id);
  LSIQ_EXPECT(pin >= 0 && static_cast<std::size_t>(pin) < g.fanin.size(),
              "eval_gate_word_with_pin: pin out of range");
  std::uint64_t small[8];
  if (g.fanin.size() <= 8) {
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      small[i] = (static_cast<int>(i) == pin) ? forced : values[g.fanin[i]];
    }
    return eval_from_operands(g.type, small, g.fanin.size());
  }
  std::vector<std::uint64_t> ops(g.fanin.size());
  for (std::size_t i = 0; i < g.fanin.size(); ++i) {
    ops[i] = (static_cast<int>(i) == pin) ? forced : values[g.fanin[i]];
  }
  return eval_from_operands(g.type, ops.data(), ops.size());
}

ParallelSimulator::ParallelSimulator(const Circuit& circuit)
    : ParallelSimulator(
          std::make_shared<const circuit::CompiledCircuit>(circuit)) {}

ParallelSimulator::ParallelSimulator(
    std::shared_ptr<const circuit::CompiledCircuit> compiled)
    : compiled_([&] {
        // Checked before any member initializer dereferences the pointer.
        LSIQ_EXPECT(compiled != nullptr,
                    "ParallelSimulator requires a compiled circuit");
        return std::move(compiled);
      }()),
      // One extra word: the trailing block-epoch stamp (see
      // next_block_epoch()).
      values_(compiled_->node_count() + 1, 0) {}

std::uint64_t ParallelSimulator::next_block_epoch() {
  // Relaxed is enough: the stamp is data, not a synchronization edge. The
  // MT grading engine publishes the buffer to its lanes through the thread
  // pool's own barrier. Epoch 0 is never handed out, so a zero-initialized
  // buffer can never pass a stamp comparison by accident.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ParallelSimulator::simulate_block(
    const std::vector<std::uint64_t>& input_words) {
  const auto& inputs = compiled_->pattern_inputs();
  LSIQ_EXPECT(input_words.size() == inputs.size(),
              "simulate_block: one word per pattern input required");
  std::uint64_t* values = values_.data();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values[inputs[i]] = input_words[i];
  }
  compiled_->eval_suffix(0, values);
  values_[compiled_->node_count()] = next_block_epoch();
}

std::uint64_t ParallelSimulator::value(GateId id) const {
  LSIQ_EXPECT(id < compiled_->node_count(), "value: gate id out of range");
  return values_[id];
}

std::vector<std::uint64_t> ParallelSimulator::observed_values() const {
  const auto& points = compiled_->observed_points();
  std::vector<std::uint64_t> out;
  out.reserve(points.size());
  for (const GateId id : points) {
    out.push_back(values_[id]);
  }
  return out;
}

std::vector<bool> ParallelSimulator::simulate_single(
    const std::vector<bool>& inputs) {
  const auto& pattern_inputs = compiled_->pattern_inputs();
  LSIQ_EXPECT(inputs.size() == pattern_inputs.size(),
              "simulate_single: wrong input count");
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? 1ULL : 0ULL;
  }
  simulate_block(words);
  std::vector<bool> out;
  out.reserve(compiled_->observed_points().size());
  for (const GateId id : compiled_->observed_points()) {
    out.push_back((values_[id] & 1ULL) != 0);
  }
  return out;
}

}  // namespace lsiq::sim
