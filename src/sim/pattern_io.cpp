#include "sim/pattern_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace lsiq::sim {

void write_patterns(const PatternSet& patterns, std::ostream& out) {
  out << "# lsiq patterns inputs=" << patterns.input_count() << "\n";
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    for (std::size_t i = 0; i < patterns.input_count(); ++i) {
      out << (patterns.bit(p, i) ? '1' : '0');
    }
    out << "\n";
  }
}

std::string write_patterns_string(const PatternSet& patterns) {
  std::ostringstream out;
  write_patterns(patterns, out);
  return out.str();
}

PatternSet read_patterns(std::istream& in) {
  std::string line;
  std::size_t input_count = 0;
  bool have_header = false;
  int line_no = 0;

  // Header: first non-empty line must carry inputs=N.
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] != '#') {
      throw ParseError("patterns line 1: missing '# lsiq patterns' header");
    }
    const std::string key = "inputs=";
    const std::size_t at = line.find(key);
    if (at == std::string::npos) {
      throw ParseError("patterns header lacks inputs=N");
    }
    try {
      input_count = std::stoul(line.substr(at + key.size()));
    } catch (const std::exception&) {
      throw ParseError("patterns header: malformed inputs=N");
    }
    have_header = true;
    break;
  }
  if (!have_header || input_count == 0) {
    throw ParseError("patterns: empty stream or inputs=0");
  }

  PatternSet patterns(input_count);
  std::vector<bool> bits(input_count);
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.size() != input_count) {
      throw ParseError("patterns line " + std::to_string(line_no) +
                       ": expected " + std::to_string(input_count) +
                       " bits, got " + std::to_string(line.size()));
    }
    for (std::size_t i = 0; i < input_count; ++i) {
      if (line[i] == '0') {
        bits[i] = false;
      } else if (line[i] == '1') {
        bits[i] = true;
      } else {
        throw ParseError("patterns line " + std::to_string(line_no) +
                         ": invalid character '" + line[i] + "'");
      }
    }
    patterns.append(bits);
  }
  return patterns;
}

PatternSet read_patterns_string(const std::string& text) {
  std::istringstream in(text);
  return read_patterns(in);
}

void write_patterns_file(const PatternSet& patterns,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open pattern file for writing: " + path);
  }
  write_patterns(patterns, out);
}

PatternSet read_patterns_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open pattern file: " + path);
  }
  return read_patterns(in);
}

}  // namespace lsiq::sim
