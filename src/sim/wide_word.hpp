// WideWord<N>: an N x 64-lane bit-parallel pattern word.
//
// The grading kernels (src/fault/fault_sim.cpp) evaluate one gate per
// word with pure bitwise ops, so widening the word widens the pattern
// throughput of every pass: N=1 is the classic 64-pattern PPSFP block,
// N=4 grades 256 patterns per sweep, N=8 grades 512. Because every
// operation here is bitwise AND/OR/XOR/NOT, the wide kernels are
// bit-identical to N independent narrow blocks — the width is purely a
// blocking/vectorization choice, never a semantic one.
//
// When the translation unit is compiled with AVX2 (-mavx2 or
// -march=native), the N%4==0 widths use 256-bit vector ops; otherwise a
// portable unrolled loop is used. Both paths compute the same bits, so
// results do not depend on the ISA. Storage is 32-byte aligned either
// way so the AVX2 path can use aligned loads.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lsiq::sim {

template <std::size_t N>
struct alignas(32) WideWord {
  static_assert(N >= 1, "WideWord needs at least one lane word");
  std::uint64_t w[N];

  static constexpr std::size_t lane_words() { return N; }
  static constexpr std::size_t lane_count() { return N * 64; }

  // Broadcast helpers: WideWord<N>::zeros() / ones() mirror the 0 /
  // ~0ULL literals of the narrow kernels.
  static constexpr WideWord zeros() {
    WideWord out{};
    return out;
  }
  static constexpr WideWord ones() {
    WideWord out{};
    for (std::size_t i = 0; i < N; ++i) out.w[i] = ~std::uint64_t{0};
    return out;
  }

  constexpr bool any() const {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < N; ++i) acc |= w[i];
    return acc != 0;
  }

  friend constexpr bool operator==(const WideWord& a, const WideWord& b) {
    for (std::size_t i = 0; i < N; ++i) {
      if (a.w[i] != b.w[i]) return false;
    }
    return true;
  }

#if defined(__AVX2__)
  static constexpr bool kVectorized = (N % 4) == 0;
#else
  static constexpr bool kVectorized = false;
#endif

  friend WideWord operator&(const WideWord& a, const WideWord& b) {
#if defined(__AVX2__)
    if constexpr (kVectorized) {
      WideWord out;
      for (std::size_t i = 0; i < N; i += 4) {
        const __m256i va =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(a.w + i));
        const __m256i vb =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(b.w + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(out.w + i),
                           _mm256_and_si256(va, vb));
      }
      return out;
    }
#endif
    WideWord out;
    for (std::size_t i = 0; i < N; ++i) out.w[i] = a.w[i] & b.w[i];
    return out;
  }

  friend WideWord operator|(const WideWord& a, const WideWord& b) {
#if defined(__AVX2__)
    if constexpr (kVectorized) {
      WideWord out;
      for (std::size_t i = 0; i < N; i += 4) {
        const __m256i va =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(a.w + i));
        const __m256i vb =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(b.w + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(out.w + i),
                           _mm256_or_si256(va, vb));
      }
      return out;
    }
#endif
    WideWord out;
    for (std::size_t i = 0; i < N; ++i) out.w[i] = a.w[i] | b.w[i];
    return out;
  }

  friend WideWord operator^(const WideWord& a, const WideWord& b) {
#if defined(__AVX2__)
    if constexpr (kVectorized) {
      WideWord out;
      for (std::size_t i = 0; i < N; i += 4) {
        const __m256i va =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(a.w + i));
        const __m256i vb =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(b.w + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(out.w + i),
                           _mm256_xor_si256(va, vb));
      }
      return out;
    }
#endif
    WideWord out;
    for (std::size_t i = 0; i < N; ++i) out.w[i] = a.w[i] ^ b.w[i];
    return out;
  }

  friend WideWord operator~(const WideWord& a) {
#if defined(__AVX2__)
    if constexpr (kVectorized) {
      WideWord out;
      const __m256i all = _mm256_set1_epi64x(-1);
      for (std::size_t i = 0; i < N; i += 4) {
        const __m256i va =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(a.w + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(out.w + i),
                           _mm256_xor_si256(va, all));
      }
      return out;
    }
#endif
    WideWord out;
    for (std::size_t i = 0; i < N; ++i) out.w[i] = ~a.w[i];
    return out;
  }

  WideWord& operator&=(const WideWord& b) { return *this = *this & b; }
  WideWord& operator|=(const WideWord& b) { return *this = *this | b; }
  WideWord& operator^=(const WideWord& b) { return *this = *this ^ b; }
};

// word_traits unify the narrow and wide kernels: the grading templates
// in fault_sim.cpp are written against these four operations so the
// same code instantiates for uint64_t (the historical kernel) and for
// WideWord<N>.
template <typename W>
struct word_traits;

template <>
struct word_traits<std::uint64_t> {
  static constexpr std::size_t lane_words = 1;
  static constexpr std::uint64_t zeros() { return 0; }
  static constexpr std::uint64_t ones() { return ~std::uint64_t{0}; }
  static constexpr bool any(std::uint64_t w) { return w != 0; }
  static constexpr std::uint64_t sub_word(std::uint64_t w, std::size_t) {
    return w;
  }
  static constexpr void set_sub_word(std::uint64_t& w, std::size_t,
                                     std::uint64_t value) {
    w = value;
  }
};

template <std::size_t N>
struct word_traits<WideWord<N>> {
  static constexpr std::size_t lane_words = N;
  static constexpr WideWord<N> zeros() { return WideWord<N>::zeros(); }
  static constexpr WideWord<N> ones() { return WideWord<N>::ones(); }
  static constexpr bool any(const WideWord<N>& w) { return w.any(); }
  static constexpr std::uint64_t sub_word(const WideWord<N>& w,
                                          std::size_t i) {
    return w.w[i];
  }
  static constexpr void set_sub_word(WideWord<N>& w, std::size_t i,
                                     std::uint64_t value) {
    w.w[i] = value;
  }
};

}  // namespace lsiq::sim
