// Plain-text pattern set serialization.
//
// Format (one pattern per line, LSB-first input order, '#' comments):
//
//     # lsiq patterns inputs=5
//     01101
//     11100
//
// Deliberately trivial so pattern sets round-trip through version control
// and diff cleanly; the bit-packed PatternSet remains the in-memory form.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/pattern.hpp"

namespace lsiq::sim {

/// Write a pattern set; inverse of read_patterns.
void write_patterns(const PatternSet& patterns, std::ostream& out);

/// Serialize to a string.
std::string write_patterns_string(const PatternSet& patterns);

/// Parse a pattern set. Throws lsiq::ParseError on malformed input
/// (missing header, ragged lines, characters outside {0,1}).
PatternSet read_patterns(std::istream& in);

/// Parse from a string.
PatternSet read_patterns_string(const std::string& text);

/// Write to / read from a file path.
void write_patterns_file(const PatternSet& patterns, const std::string& path);
PatternSet read_patterns_file(const std::string& path);

}  // namespace lsiq::sim
