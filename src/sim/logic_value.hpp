// Logic value algebras.
//
// Two engines share these definitions:
//   * the pattern simulators use plain two-valued logic packed 64 patterns
//     to a machine word (word ops live in parallel_sim), and
//   * the ATPG uses the classic five-valued D-calculus {0, 1, X, D, D'}
//     (Roth), implemented here as a pair of three-valued rails
//     (good machine, faulty machine) so that every gate type — including
//     XOR — gets a correct table for free.
#pragma once

#include <cstdint>
#include <string_view>

#include "circuit/gate.hpp"

namespace lsiq::sim {

/// Three-valued (Kleene) logic: the building block of the D-calculus.
enum class Tri : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

Tri tri_not(Tri a) noexcept;
Tri tri_and(Tri a, Tri b) noexcept;
Tri tri_or(Tri a, Tri b) noexcept;
Tri tri_xor(Tri a, Tri b) noexcept;

/// Five-valued composite value: a good-machine rail and a faulty-machine
/// rail. kD means good = 1 / faulty = 0; kDbar the reverse.
struct FiveValue {
  Tri good = Tri::kX;
  Tri faulty = Tri::kX;

  friend bool operator==(const FiveValue&, const FiveValue&) = default;
};

inline constexpr FiveValue kFiveZero{Tri::kZero, Tri::kZero};
inline constexpr FiveValue kFiveOne{Tri::kOne, Tri::kOne};
inline constexpr FiveValue kFiveX{Tri::kX, Tri::kX};
inline constexpr FiveValue kFiveD{Tri::kOne, Tri::kZero};
inline constexpr FiveValue kFiveDbar{Tri::kZero, Tri::kOne};

/// True when the value carries a fault effect (good and faulty rails are
/// both known and differ).
bool is_d_or_dbar(const FiveValue& v) noexcept;

/// True when either rail is X.
bool has_x(const FiveValue& v) noexcept;

/// "0", "1", "X", "D", "D'" or "g/f" for mixed partially-known values.
std::string_view five_value_name(const FiveValue& v);

/// Evaluate a gate of the given type over five-valued operands.
/// `operands`/`count` follow the gate's fanin order. Not valid for kInput /
/// kDff (those are assigned, not evaluated).
FiveValue eval_five_value(circuit::GateType type, const FiveValue* operands,
                          int count);

/// Evaluate over three-valued operands (used for good-machine implication).
Tri eval_tri(circuit::GateType type, const Tri* operands, int count);

}  // namespace lsiq::sim
