// Event-driven two-valued simulator.
//
// Complements the compiled parallel simulator: instead of evaluating every
// gate for every block, it propagates only from changed inputs, level by
// level. Useful when consecutive stimuli differ in a few bits (scan-style
// testing, incremental what-if analysis) and as an independent oracle the
// test suite cross-checks the compiled simulator against. Also exposes
// activity counters, which the performance benches report.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace lsiq::sim {

class EventSimulator {
 public:
  explicit EventSimulator(const circuit::Circuit& circuit);

  /// Set all pattern inputs (order of Circuit::pattern_inputs()) and
  /// propagate. Cheap when few bits changed since the previous call.
  void apply(const std::vector<bool>& inputs);

  /// Change a single pattern input and propagate.
  void set_input(std::size_t input_index, bool value);

  /// Current value of any gate.
  [[nodiscard]] bool value(circuit::GateId id) const;

  /// Values at the observed points, in Circuit::observed_points() order.
  [[nodiscard]] std::vector<bool> observed_values() const;

  /// Gate evaluations performed since construction (activity metric).
  [[nodiscard]] std::uint64_t evaluation_count() const noexcept {
    return evaluations_;
  }

 private:
  void schedule_fanout(circuit::GateId id);
  void propagate();

  const circuit::Circuit* circuit_;
  /// 0/1 per gate, stored as words so gate evaluation can share the
  /// compiled simulator's word-level tables without conversion.
  std::vector<std::uint64_t> values_;
  std::vector<char> queued_;
  /// One bucket of pending gates per level; processed in ascending order so
  /// each gate is evaluated at most once per propagation wave.
  std::vector<std::vector<circuit::GateId>> level_buckets_;
  std::uint64_t evaluations_ = 0;
  bool initialized_ = false;
};

}  // namespace lsiq::sim
