// Compiled, levelized, 64-way parallel-pattern logic simulator.
//
// One machine word per net carries bit p = the net's value under pattern p
// of the current block, so a single pass over the topological order
// evaluates 64 patterns. This is the classic parallel-pattern technique the
// 1981-era simulators (LAMP among them) used, and it is the engine under
// both the coverage-curve computation and the PPSFP fault simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/compiled.hpp"
#include "circuit/netlist.hpp"

namespace lsiq::sim {

/// Evaluate one gate over word-level fanin values taken from `values`
/// (indexed by GateId). Not valid for kInput/kDff (sources).
std::uint64_t eval_gate_word(const circuit::Circuit& circuit,
                             circuit::GateId id,
                             const std::vector<std::uint64_t>& values);

/// Same, but the fanin at `pin` reads `forced` instead of its driver value.
/// This is how input-pin (branch) stuck-at faults are injected.
std::uint64_t eval_gate_word_with_pin(const circuit::Circuit& circuit,
                                      circuit::GateId id,
                                      const std::vector<std::uint64_t>& values,
                                      int pin, std::uint64_t forced);

class ParallelSimulator {
 public:
  /// Process-wide block-epoch counter. Every simulate_block() call draws a
  /// fresh epoch and stamps it into the extra trailing word of values(), so
  /// a fault::Propagator can detect that the good-value buffer it synced
  /// with begin_block() has since been overwritten (the classic forgotten
  /// re-sync bug the fault_sim header used to merely document).
  static std::uint64_t next_block_epoch();

  /// Compiles the circuit privately. When several engines simulate the same
  /// circuit, compile once and use the shared-view constructor instead.
  explicit ParallelSimulator(const circuit::Circuit& circuit);

  /// Share an existing compiled view (no recompilation).
  explicit ParallelSimulator(
      std::shared_ptr<const circuit::CompiledCircuit> compiled);

  /// Simulate one block of up to 64 patterns. `input_words` has one word per
  /// pattern input (see Circuit::pattern_inputs()); bit p of each word is
  /// that input's value under pattern p. All 64 lanes are computed; the
  /// caller masks the lanes it populated.
  void simulate_block(const std::vector<std::uint64_t>& input_words);

  /// Word-level value of a gate after simulate_block.
  [[nodiscard]] std::uint64_t value(circuit::GateId id) const;

  /// All gate values (indexed by GateId) after simulate_block. The vector
  /// carries one extra trailing word — the block epoch stamped by the last
  /// simulate_block() — so consumers that size-check should use
  /// node_count(), not values().size().
  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept {
    return values_;
  }

  /// Values at the observed points (primary outputs then flip-flop D pins),
  /// in Circuit::observed_points() order.
  [[nodiscard]] std::vector<std::uint64_t> observed_values() const;

  /// Convenience: simulate a single pattern (bit vector over
  /// pattern_inputs()) and return the observed outputs.
  std::vector<bool> simulate_single(const std::vector<bool>& inputs);

  [[nodiscard]] const circuit::Circuit& circuit() const noexcept {
    return compiled_->source();
  }

  [[nodiscard]] const std::shared_ptr<const circuit::CompiledCircuit>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  std::shared_ptr<const circuit::CompiledCircuit> compiled_;
  std::vector<std::uint64_t> values_;
};

}  // namespace lsiq::sim
