#include "sim/five_value_sim.hpp"

#include <queue>

#include "util/error.hpp"

namespace lsiq::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;
using circuit::kNoGate;

FiveValueSimulator::FiveValueSimulator(const Circuit& circuit)
    : circuit_(&circuit),
      values_(circuit.gate_count(), kFiveX),
      assignments_(circuit.pattern_inputs().size(), Tri::kX) {
  LSIQ_EXPECT(circuit.finalized(),
              "FiveValueSimulator requires a finalized circuit");
}

void FiveValueSimulator::set_fault(GateId gate, int pin, bool stuck_at_one) {
  LSIQ_EXPECT(gate < circuit_->gate_count(), "set_fault: gate out of range");
  const Gate& g = circuit_->gate(gate);
  LSIQ_EXPECT(pin >= -1 && pin < static_cast<int>(g.fanin.size()),
              "set_fault: pin out of range");
  fault_gate_ = gate;
  fault_pin_ = pin;
  stuck_at_one_ = stuck_at_one;
  clear_assignments();
}

void FiveValueSimulator::clear_assignments() {
  for (Tri& a : assignments_) a = Tri::kX;
  for (FiveValue& v : values_) v = kFiveX;
}

void FiveValueSimulator::assign_input(std::size_t input_index, Tri value) {
  LSIQ_EXPECT(input_index < assignments_.size(),
              "assign_input: index out of range");
  assignments_[input_index] = value;
}

Tri FiveValueSimulator::input_assignment(std::size_t input_index) const {
  LSIQ_EXPECT(input_index < assignments_.size(),
              "input_assignment: index out of range");
  return assignments_[input_index];
}

GateId FiveValueSimulator::fault_line() const {
  LSIQ_EXPECT(fault_gate_ != kNoGate, "no fault injected");
  if (fault_pin_ < 0) return fault_gate_;
  return circuit_->gate(fault_gate_).fanin[static_cast<std::size_t>(
      fault_pin_)];
}

void FiveValueSimulator::imply() {
  LSIQ_EXPECT(fault_gate_ != kNoGate, "imply: no fault injected");
  const Tri sv = stuck_at_one_ ? Tri::kOne : Tri::kZero;

  // Seed sources.
  const auto& inputs = circuit_->pattern_inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tri a = assignments_[i];
    values_[inputs[i]] = FiveValue{a, a};
  }

  // Stem fault on a source: faulty rail pinned immediately.
  auto pin_stem_if_faulted = [&](GateId id) {
    if (id == fault_gate_ && fault_pin_ < 0) {
      values_[id].faulty = sv;
    }
  };
  for (const GateId id : inputs) pin_stem_if_faulted(id);

  std::vector<FiveValue> operands;
  for (const GateId id : circuit_->topological_order()) {
    const Gate& g = circuit_->gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;

    operands.resize(g.fanin.size());
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      operands[i] = values_[g.fanin[i]];
    }
    if (id == fault_gate_ && fault_pin_ >= 0) {
      operands[static_cast<std::size_t>(fault_pin_)].faulty = sv;
    }
    values_[id] = eval_five_value(g.type, operands.data(),
                                  static_cast<int>(operands.size()));
    pin_stem_if_faulted(id);
  }
}

const FiveValue& FiveValueSimulator::value(GateId id) const {
  LSIQ_EXPECT(id < values_.size(), "value: gate id out of range");
  return values_[id];
}

std::vector<GateId> FiveValueSimulator::d_frontier() const {
  std::vector<GateId> frontier;
  for (GateId id = 0; id < circuit_->gate_count(); ++id) {
    const Gate& g = circuit_->gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) continue;
    if (!has_x(values_[id])) continue;
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      FiveValue in = values_[g.fanin[k]];
      if (id == fault_gate_ && fault_pin_ == static_cast<int>(k)) {
        in.faulty = stuck_at_one_ ? Tri::kOne : Tri::kZero;
      }
      if (is_d_or_dbar(in)) {
        frontier.push_back(id);
        break;
      }
    }
  }
  return frontier;
}

FiveValue FiveValueSimulator::observed_value(std::size_t point_index) const {
  const auto& points = circuit_->observed_points();
  const GateId point = points[point_index];
  FiveValue v = values_[point];
  // A branch fault on a flip-flop's D pin is observed directly at that
  // pseudo primary output: the scan capture sees the stuck value.
  if (fault_gate_ != kNoGate && fault_pin_ == 0 &&
      circuit_->gate(fault_gate_).type == GateType::kDff) {
    const GateId driver = circuit_->gate(fault_gate_).fanin.front();
    if (point == driver &&
        point_index >= circuit_->primary_outputs().size()) {
      v.faulty = stuck_at_one_ ? Tri::kOne : Tri::kZero;
    }
  }
  return v;
}

bool FiveValueSimulator::fault_effect_observed() const {
  const auto& points = circuit_->observed_points();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (is_d_or_dbar(observed_value(i))) return true;
  }
  return false;
}

bool FiveValueSimulator::activation_possible() const {
  const Tri good = values_[fault_line()].good;
  const Tri sv = stuck_at_one_ ? Tri::kOne : Tri::kZero;
  return good == Tri::kX || good != sv;
}

bool FiveValueSimulator::x_path_exists() const {
  // BFS from D-frontier gates through X-valued gates to an observed point.
  std::vector<char> visited(circuit_->gate_count(), 0);
  std::vector<char> is_observed(circuit_->gate_count(), 0);
  for (const GateId p : circuit_->observed_points()) is_observed[p] = 1;

  std::queue<GateId> frontier;
  for (const GateId id : d_frontier()) {
    visited[id] = 1;
    frontier.push(id);
  }
  while (!frontier.empty()) {
    const GateId id = frontier.front();
    frontier.pop();
    if (is_observed[id]) return true;
    for (const GateId reader : circuit_->gate(id).fanout) {
      if (visited[reader] != 0) continue;
      const Gate& g = circuit_->gate(reader);
      if (g.type == GateType::kDff) continue;  // capture boundary
      if (!has_x(values_[reader])) continue;
      visited[reader] = 1;
      frontier.push(reader);
    }
  }
  return false;
}

}  // namespace lsiq::sim
