#include "sim/logic_value.hpp"

#include "util/error.hpp"

namespace lsiq::sim {

using circuit::GateType;

Tri tri_not(Tri a) noexcept {
  switch (a) {
    case Tri::kZero: return Tri::kOne;
    case Tri::kOne:  return Tri::kZero;
    default:         return Tri::kX;
  }
}

Tri tri_and(Tri a, Tri b) noexcept {
  if (a == Tri::kZero || b == Tri::kZero) return Tri::kZero;
  if (a == Tri::kOne && b == Tri::kOne) return Tri::kOne;
  return Tri::kX;
}

Tri tri_or(Tri a, Tri b) noexcept {
  if (a == Tri::kOne || b == Tri::kOne) return Tri::kOne;
  if (a == Tri::kZero && b == Tri::kZero) return Tri::kZero;
  return Tri::kX;
}

Tri tri_xor(Tri a, Tri b) noexcept {
  if (a == Tri::kX || b == Tri::kX) return Tri::kX;
  return (a == b) ? Tri::kZero : Tri::kOne;
}

bool is_d_or_dbar(const FiveValue& v) noexcept {
  return v.good != Tri::kX && v.faulty != Tri::kX && v.good != v.faulty;
}

bool has_x(const FiveValue& v) noexcept {
  return v.good == Tri::kX || v.faulty == Tri::kX;
}

std::string_view five_value_name(const FiveValue& v) {
  if (v == kFiveZero) return "0";
  if (v == kFiveOne) return "1";
  if (v == kFiveX) return "X";
  if (v == kFiveD) return "D";
  if (v == kFiveDbar) return "D'";
  return "?";
}

Tri eval_tri(GateType type, const Tri* operands, int count) {
  switch (type) {
    case GateType::kConst0:
      return Tri::kZero;
    case GateType::kConst1:
      return Tri::kOne;
    case GateType::kBuf:
      LSIQ_EXPECT(count == 1, "BUF arity");
      return operands[0];
    case GateType::kNot:
      LSIQ_EXPECT(count == 1, "NOT arity");
      return tri_not(operands[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      LSIQ_EXPECT(count >= 1, "AND arity");
      Tri acc = operands[0];
      for (int i = 1; i < count; ++i) acc = tri_and(acc, operands[i]);
      return type == GateType::kNand ? tri_not(acc) : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      LSIQ_EXPECT(count >= 1, "OR arity");
      Tri acc = operands[0];
      for (int i = 1; i < count; ++i) acc = tri_or(acc, operands[i]);
      return type == GateType::kNor ? tri_not(acc) : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      LSIQ_EXPECT(count >= 1, "XOR arity");
      Tri acc = operands[0];
      for (int i = 1; i < count; ++i) acc = tri_xor(acc, operands[i]);
      return type == GateType::kXnor ? tri_not(acc) : acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_tri: sources are assigned, not evaluated");
}

namespace {

/// Fold one rail of a five-valued evaluation without materializing operand
/// arrays (fanin is unbounded for the variadic gate types).
template <typename Project>
Tri eval_rail(GateType type, const FiveValue* operands, int count,
              Project rail) {
  switch (type) {
    case GateType::kConst0:
      return Tri::kZero;
    case GateType::kConst1:
      return Tri::kOne;
    case GateType::kBuf:
      LSIQ_EXPECT(count == 1, "BUF arity");
      return rail(operands[0]);
    case GateType::kNot:
      LSIQ_EXPECT(count == 1, "NOT arity");
      return tri_not(rail(operands[0]));
    case GateType::kAnd:
    case GateType::kNand: {
      LSIQ_EXPECT(count >= 1, "AND arity");
      Tri acc = rail(operands[0]);
      for (int i = 1; i < count; ++i) acc = tri_and(acc, rail(operands[i]));
      return type == GateType::kNand ? tri_not(acc) : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      LSIQ_EXPECT(count >= 1, "OR arity");
      Tri acc = rail(operands[0]);
      for (int i = 1; i < count; ++i) acc = tri_or(acc, rail(operands[i]));
      return type == GateType::kNor ? tri_not(acc) : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      LSIQ_EXPECT(count >= 1, "XOR arity");
      Tri acc = rail(operands[0]);
      for (int i = 1; i < count; ++i) acc = tri_xor(acc, rail(operands[i]));
      return type == GateType::kXnor ? tri_not(acc) : acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_five_value: sources are assigned, not evaluated");
}

}  // namespace

FiveValue eval_five_value(GateType type, const FiveValue* operands,
                          int count) {
  // Evaluate each rail independently; the D-calculus tables are exactly the
  // product of the three-valued tables on (good, faulty).
  return FiveValue{
      eval_rail(type, operands, count,
                [](const FiveValue& v) { return v.good; }),
      eval_rail(type, operands, count,
                [](const FiveValue& v) { return v.faulty; })};
}

}  // namespace lsiq::sim
