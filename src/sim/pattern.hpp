// Bit-packed test pattern storage.
//
// Patterns are stored column-major — one word stream per circuit input,
// 64 patterns per word — which is exactly the layout the parallel-pattern
// simulator consumes, so simulation reads the store without transposition.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lsiq::sim {

class PatternSet {
 public:
  /// An empty pattern set for a circuit with `input_count` pattern inputs.
  explicit PatternSet(std::size_t input_count);

  [[nodiscard]] std::size_t input_count() const noexcept {
    return input_count_;
  }
  /// Number of patterns stored.
  [[nodiscard]] std::size_t size() const noexcept { return pattern_count_; }
  [[nodiscard]] bool empty() const noexcept { return pattern_count_ == 0; }

  /// Append one pattern given as a bit vector over the inputs.
  void append(const std::vector<bool>& pattern);

  /// Append `count` uniform random patterns.
  void append_random(std::size_t count, util::Rng& rng);

  /// Append `count` weighted random patterns; `one_probability[i]` is the
  /// probability that input i is 1 (biased random-pattern testing).
  void append_weighted_random(std::size_t count,
                              const std::vector<double>& one_probability,
                              util::Rng& rng);

  /// Value of input `input` under pattern `pattern`.
  [[nodiscard]] bool bit(std::size_t pattern, std::size_t input) const;

  /// Overwrite one bit.
  void set_bit(std::size_t pattern, std::size_t input, bool value);

  /// Pattern `pattern` as a bit vector.
  [[nodiscard]] std::vector<bool> pattern(std::size_t pattern) const;

  /// Number of 64-pattern blocks (the last one may be partial).
  [[nodiscard]] std::size_t block_count() const noexcept;

  /// Word for `input` in block `block`: bit p = pattern block*64+p.
  [[nodiscard]] std::uint64_t block_word(std::size_t input,
                                         std::size_t block) const;

  /// Mask of valid lanes in `block` (all-ones except for the final block).
  [[nodiscard]] std::uint64_t block_mask(std::size_t block) const;

  /// Input words for one block, in pattern-input order — the exact argument
  /// ParallelSimulator::simulate_block takes.
  [[nodiscard]] std::vector<std::uint64_t> block_words(
      std::size_t block) const;

  /// A new set containing patterns [first, first+count).
  [[nodiscard]] PatternSet slice(std::size_t first, std::size_t count) const;

  /// Append all patterns of another set (same input count).
  void append_all(const PatternSet& other);

  /// Exact equality: same input count, pattern count and stored bits
  /// (unused lanes of the final block are always zero, so word compare is
  /// bit compare).
  friend bool operator==(const PatternSet&, const PatternSet&) = default;

 private:
  std::size_t input_count_;
  std::size_t pattern_count_ = 0;
  /// words_[input][block]
  std::vector<std::vector<std::uint64_t>> words_;
};

}  // namespace lsiq::sim
