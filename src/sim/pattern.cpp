#include "sim/pattern.hpp"

#include "util/error.hpp"

namespace lsiq::sim {

PatternSet::PatternSet(std::size_t input_count)
    : input_count_(input_count), words_(input_count) {
  LSIQ_EXPECT(input_count > 0, "PatternSet requires at least one input");
}

void PatternSet::append(const std::vector<bool>& pattern) {
  LSIQ_EXPECT(pattern.size() == input_count_,
              "append: pattern width mismatch");
  const std::size_t block = pattern_count_ / 64;
  const std::size_t lane = pattern_count_ % 64;
  for (std::size_t i = 0; i < input_count_; ++i) {
    if (words_[i].size() <= block) words_[i].push_back(0);
    if (pattern[i]) {
      words_[i][block] |= (1ULL << lane);
    }
  }
  ++pattern_count_;
}

void PatternSet::append_random(std::size_t count, util::Rng& rng) {
  std::vector<bool> p(input_count_);
  for (std::size_t n = 0; n < count; ++n) {
    for (std::size_t i = 0; i < input_count_; ++i) {
      p[i] = rng.bernoulli(0.5);
    }
    append(p);
  }
}

void PatternSet::append_weighted_random(
    std::size_t count, const std::vector<double>& one_probability,
    util::Rng& rng) {
  LSIQ_EXPECT(one_probability.size() == input_count_,
              "append_weighted_random: weight vector width mismatch");
  std::vector<bool> p(input_count_);
  for (std::size_t n = 0; n < count; ++n) {
    for (std::size_t i = 0; i < input_count_; ++i) {
      p[i] = rng.bernoulli(one_probability[i]);
    }
    append(p);
  }
}

bool PatternSet::bit(std::size_t pattern, std::size_t input) const {
  LSIQ_EXPECT(pattern < pattern_count_, "bit: pattern index out of range");
  LSIQ_EXPECT(input < input_count_, "bit: input index out of range");
  return (words_[input][pattern / 64] >> (pattern % 64)) & 1ULL;
}

void PatternSet::set_bit(std::size_t pattern, std::size_t input, bool value) {
  LSIQ_EXPECT(pattern < pattern_count_, "set_bit: pattern index out of range");
  LSIQ_EXPECT(input < input_count_, "set_bit: input index out of range");
  const std::uint64_t bit = 1ULL << (pattern % 64);
  if (value) {
    words_[input][pattern / 64] |= bit;
  } else {
    words_[input][pattern / 64] &= ~bit;
  }
}

std::vector<bool> PatternSet::pattern(std::size_t pattern) const {
  LSIQ_EXPECT(pattern < pattern_count_, "pattern: index out of range");
  std::vector<bool> out(input_count_);
  for (std::size_t i = 0; i < input_count_; ++i) {
    out[i] = bit(pattern, i);
  }
  return out;
}

std::size_t PatternSet::block_count() const noexcept {
  return (pattern_count_ + 63) / 64;
}

std::uint64_t PatternSet::block_word(std::size_t input,
                                     std::size_t block) const {
  LSIQ_EXPECT(input < input_count_, "block_word: input index out of range");
  LSIQ_EXPECT(block < block_count(), "block_word: block index out of range");
  return words_[input][block];
}

std::uint64_t PatternSet::block_mask(std::size_t block) const {
  LSIQ_EXPECT(block < block_count(), "block_mask: block index out of range");
  const std::size_t valid =
      (block + 1 < block_count()) ? 64 : pattern_count_ - block * 64;
  return valid == 64 ? ~0ULL : ((1ULL << valid) - 1);
}

std::vector<std::uint64_t> PatternSet::block_words(std::size_t block) const {
  LSIQ_EXPECT(block < block_count(), "block_words: block index out of range");
  std::vector<std::uint64_t> out(input_count_);
  for (std::size_t i = 0; i < input_count_; ++i) {
    out[i] = words_[i][block];
  }
  return out;
}

PatternSet PatternSet::slice(std::size_t first, std::size_t count) const {
  LSIQ_EXPECT(first + count <= pattern_count_, "slice: range out of bounds");
  PatternSet out(input_count_);
  if (count == 0) return out;
  // Word-level copy: each output word is the source word at the slice
  // start shifted down, ORed with the spill of the next source word when
  // the slice is not 64-aligned. The old per-pattern append path cost
  // O(count x inputs) bit operations; this is O(count/64 x inputs) words.
  const std::size_t out_blocks = (count + 63) / 64;
  const std::size_t src_block = first / 64;
  const std::size_t off = first % 64;
  const std::size_t tail = count % 64;  // valid lanes of the final block
  for (std::size_t i = 0; i < input_count_; ++i) {
    const std::vector<std::uint64_t>& src = words_[i];
    std::vector<std::uint64_t>& dst = out.words_[i];
    dst.assign(out_blocks, 0);
    for (std::size_t k = 0; k < out_blocks; ++k) {
      std::uint64_t word = src[src_block + k] >> off;
      if (off != 0 && src_block + k + 1 < src.size()) {
        word |= src[src_block + k + 1] << (64 - off);
      }
      dst[k] = word;
    }
    // Unused lanes of the final block must stay zero — operator== and
    // block-level consumers rely on that invariant.
    if (tail != 0) dst[out_blocks - 1] &= (1ULL << tail) - 1;
  }
  out.pattern_count_ = count;
  return out;
}

void PatternSet::append_all(const PatternSet& other) {
  LSIQ_EXPECT(other.input_count_ == input_count_,
              "append_all: input count mismatch");
  for (std::size_t p = 0; p < other.size(); ++p) {
    append(other.pattern(p));
  }
}

}  // namespace lsiq::sim
