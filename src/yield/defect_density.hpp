// Defect-density characterization for a fabrication process.
//
// Packages the (D0, X, A) triple of Eq. 3 with conversions between areas,
// densities and yields, so examples and the wafer simulator speak in
// process terms ("0.8 defects/cm^2, clustering 0.5, 30 mm^2 die") rather
// than raw lambdas. Also models the fine-line shrink scenario of Section 8:
// scaling feature size changes area (and hence yield) while raising the
// fault multiplicity per defect.
#pragma once

namespace lsiq::yield_model {

struct Process {
  double defect_density = 1.0;  ///< D0, defects per unit area
  double variance_ratio = 0.5;  ///< X, normalized variance of D0 (Eq. 3)
};

class DefectModel {
 public:
  /// A process characterized by D0 and X, applied to a die of `area`.
  DefectModel(Process process, double area);

  [[nodiscard]] double area() const noexcept { return area_; }
  [[nodiscard]] const Process& process() const noexcept { return process_; }

  /// lambda = D0 * A, the mean defect count per chip.
  [[nodiscard]] double defects_per_chip() const;

  /// Chip yield from Eq. 3.
  [[nodiscard]] double yield() const;

  /// A new model for the same circuit shrunk by `linear_factor` < 1 in
  /// feature size: area scales by the square of the factor (Section 8).
  [[nodiscard]] DefectModel shrunk(double linear_factor) const;

  /// Characterize a process from an observed yield (fixing X): returns the
  /// model whose Eq. 3 yield matches.
  static DefectModel from_yield(double yield, double area,
                                double variance_ratio);

 private:
  Process process_;
  double area_;
};

}  // namespace lsiq::yield_model
