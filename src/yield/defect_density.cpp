#include "yield/defect_density.hpp"

#include "util/error.hpp"
#include "yield/models.hpp"

namespace lsiq::yield_model {

DefectModel::DefectModel(Process process, double area)
    : process_(process), area_(area) {
  LSIQ_EXPECT(process.defect_density >= 0.0,
              "DefectModel requires D0 >= 0");
  LSIQ_EXPECT(process.variance_ratio >= 0.0, "DefectModel requires X >= 0");
  LSIQ_EXPECT(area > 0.0, "DefectModel requires area > 0");
}

double DefectModel::defects_per_chip() const {
  return process_.defect_density * area_;
}

double DefectModel::yield() const {
  return negative_binomial_yield(defects_per_chip(),
                                 process_.variance_ratio);
}

DefectModel DefectModel::shrunk(double linear_factor) const {
  LSIQ_EXPECT(linear_factor > 0.0, "shrunk requires a positive factor");
  return DefectModel(process_, area_ * linear_factor * linear_factor);
}

DefectModel DefectModel::from_yield(double yield, double area,
                                    double variance_ratio) {
  LSIQ_EXPECT(area > 0.0, "from_yield requires area > 0");
  const double lambda = defects_per_chip_for_yield(yield, variance_ratio);
  return DefectModel(Process{lambda / area, variance_ratio}, area);
}

}  // namespace lsiq::yield_model
