// Integrated-circuit yield models.
//
// The paper computes chip yield from Eq. 3,
//     y = (1 + X * D0 * A)^(-1/X),
// the clustered-defect (negative-binomial) formula of Stapper [10,12] and
// Sredni [11], where D0 is the mean defect density, A the chip area and X
// the normalized variance of D0. The classical alternatives from the
// paper's reference list ([7] Murphy, [8] Seeds, [9] Price, plus the pure
// Poisson limit) are implemented alongside for comparison and for the
// fine-line scaling example; they all map the same "average defects per
// chip" lambda = D0 * A to a yield.
#pragma once

#include <cstddef>
#include <vector>

namespace lsiq::yield_model {

/// Poisson model: y = exp(-lambda). The zero-clustering limit (X -> 0 in
/// Eq. 3); pessimistic for large chips.
double poisson_yield(double defects_per_chip);

/// Murphy's model [7]: y = ((1 - e^-lambda) / lambda)^2 — triangular
/// approximation to a bell-shaped defect-density distribution.
double murphy_yield(double defects_per_chip);

/// Seeds' model [8]: y = exp(-sqrt(lambda)) — strong clustering,
/// optimistic for large chips.
double seeds_yield(double defects_per_chip);

/// Price's model [9] (Bose-Einstein statistics): y = 1 / (1 + lambda).
double price_yield(double defects_per_chip);

/// Eq. 3 of the paper / negative-binomial model [10-12]:
/// y = (1 + X * lambda)^(-1/X), lambda = D0 * A, X = normalized variance
/// of the defect density. X -> 0 recovers the Poisson model; X = 1
/// recovers Price's model.
double negative_binomial_yield(double defects_per_chip,
                               double variance_ratio);

/// Invert negative_binomial_yield for lambda at a given X: the average
/// defects per chip implied by an observed yield. Used to characterize a
/// process from measured yield.
double defects_per_chip_for_yield(double yield, double variance_ratio);

/// Clustering parameter alpha = 1/X of the equivalent negative-binomial
/// distribution of per-chip defect counts.
double cluster_alpha(double variance_ratio);

/// Probability that a chip carries exactly k defects under the
/// gamma-mixed Poisson (negative-binomial) defect model of Eq. 3.
/// negative_binomial_yield(lambda, X) == defect_count_pmf(0, lambda, X).
double defect_count_pmf(unsigned k, double defects_per_chip,
                        double variance_ratio);

/// Process parameters estimated from inspection data.
struct ProcessEstimate {
  double defect_density = 0.0;  ///< D0 (defects per unit area)
  double variance_ratio = 0.0;  ///< X of Eq. 3 (0 = Poisson-compatible)
  double mean_defects_per_chip = 0.0;
  std::size_t sample_size = 0;
};

/// Method-of-moments fit of the Eq. 3 parameters (D0, X) from per-die
/// defect counts, as produced by optical inspection (or the wafer-map
/// simulator): mean m = D0*A; X = (var - m) / m^2, clamped at 0 when the
/// sample is under-dispersed. Requires at least two counts and a positive
/// mean.
ProcessEstimate estimate_process_from_defect_counts(
    const std::vector<std::size_t>& defect_counts, double die_area);

}  // namespace lsiq::yield_model
