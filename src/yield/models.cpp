#include "yield/models.hpp"

#include <cmath>

#include "util/brent.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

#include <algorithm>

namespace lsiq::yield_model {

namespace {

void require_lambda(double lambda) {
  LSIQ_EXPECT(lambda >= 0.0, "yield model requires defects_per_chip >= 0");
}

}  // namespace

double poisson_yield(double defects_per_chip) {
  require_lambda(defects_per_chip);
  return std::exp(-defects_per_chip);
}

double murphy_yield(double defects_per_chip) {
  require_lambda(defects_per_chip);
  if (defects_per_chip == 0.0) return 1.0;
  const double t = -std::expm1(-defects_per_chip) / defects_per_chip;
  return t * t;
}

double seeds_yield(double defects_per_chip) {
  require_lambda(defects_per_chip);
  return std::exp(-std::sqrt(defects_per_chip));
}

double price_yield(double defects_per_chip) {
  require_lambda(defects_per_chip);
  return 1.0 / (1.0 + defects_per_chip);
}

double negative_binomial_yield(double defects_per_chip,
                               double variance_ratio) {
  require_lambda(defects_per_chip);
  LSIQ_EXPECT(variance_ratio >= 0.0,
              "negative_binomial_yield requires X >= 0");
  if (variance_ratio == 0.0) {
    return poisson_yield(defects_per_chip);  // X -> 0 limit
  }
  return std::pow(1.0 + variance_ratio * defects_per_chip,
                  -1.0 / variance_ratio);
}

double defects_per_chip_for_yield(double yield, double variance_ratio) {
  LSIQ_EXPECT(yield > 0.0 && yield <= 1.0,
              "defects_per_chip_for_yield requires yield in (0, 1]");
  LSIQ_EXPECT(variance_ratio >= 0.0,
              "defects_per_chip_for_yield requires X >= 0");
  if (yield == 1.0) return 0.0;
  if (variance_ratio == 0.0) {
    return -std::log(yield);
  }
  // Closed-form inversion of Eq. 3.
  return (std::pow(yield, -variance_ratio) - 1.0) / variance_ratio;
}

double cluster_alpha(double variance_ratio) {
  LSIQ_EXPECT(variance_ratio > 0.0, "cluster_alpha requires X > 0");
  return 1.0 / variance_ratio;
}

double defect_count_pmf(unsigned k, double defects_per_chip,
                        double variance_ratio) {
  require_lambda(defects_per_chip);
  LSIQ_EXPECT(variance_ratio >= 0.0, "defect_count_pmf requires X >= 0");
  if (defects_per_chip == 0.0) return k == 0 ? 1.0 : 0.0;

  if (variance_ratio == 0.0) {
    // Poisson pmf in log space.
    const double log_p = static_cast<double>(k) * std::log(defects_per_chip) -
                         defects_per_chip -
                         util::log_factorial(static_cast<std::int64_t>(k));
    return std::exp(log_p);
  }
  // Negative binomial with shape alpha = 1/X and mean lambda:
  // P(k) = C(k + alpha - 1, k) * (1-p)^alpha * p^k,  p = lambda/(lambda+alpha)
  const double alpha = 1.0 / variance_ratio;
  const double p = defects_per_chip / (defects_per_chip + alpha);
  const double log_coeff = util::log_gamma(static_cast<double>(k) + alpha) -
                           util::log_factorial(static_cast<std::int64_t>(k)) -
                           util::log_gamma(alpha);
  const double log_pmf = log_coeff + alpha * std::log1p(-p) +
                         static_cast<double>(k) * std::log(p);
  return std::exp(log_pmf);
}

ProcessEstimate estimate_process_from_defect_counts(
    const std::vector<std::size_t>& defect_counts, double die_area) {
  LSIQ_EXPECT(defect_counts.size() >= 2,
              "process estimation requires >= 2 die counts");
  LSIQ_EXPECT(die_area > 0.0, "process estimation requires die_area > 0");

  const double n = static_cast<double>(defect_counts.size());
  util::KahanSum sum;
  for (const std::size_t k : defect_counts) {
    sum.add(static_cast<double>(k));
  }
  const double mean = sum.value() / n;
  LSIQ_EXPECT(mean > 0.0,
              "process estimation requires at least one observed defect");

  util::KahanSum squares;
  for (const std::size_t k : defect_counts) {
    const double d = static_cast<double>(k) - mean;
    squares.add(d * d);
  }
  const double variance = squares.value() / (n - 1.0);

  ProcessEstimate estimate;
  estimate.mean_defects_per_chip = mean;
  estimate.defect_density = mean / die_area;
  // NB moments: var = m + X m^2  ->  X = (var - m) / m^2; an
  // under-dispersed sample clamps to the Poisson boundary.
  estimate.variance_ratio = std::max(0.0, (variance - mean) / (mean * mean));
  estimate.sample_size = defect_counts.size();
  return estimate;
}

}  // namespace lsiq::yield_model
