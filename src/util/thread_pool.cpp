#include "util/thread_pool.hpp"

#include <algorithm>

namespace lsiq::util {

std::size_t resolve_worker_count(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  thread_count = resolve_worker_count(thread_count);
  workers_.reserve(thread_count);
  for (std::size_t lane = 0; lane < thread_count; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      (*job)(lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) {
        job_done_.notify_one();
      }
    }
  }
}

}  // namespace lsiq::util
