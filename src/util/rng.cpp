#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LSIQ_EXPECT(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  LSIQ_EXPECT(bound > 0, "uniform_below requires bound > 0");
  // Rejection from the top of the range kills modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) {
  LSIQ_EXPECT(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  LSIQ_EXPECT(sigma >= 0.0, "normal requires sigma >= 0");
  return mean + sigma * normal();
}

std::uint64_t Rng::poisson(double mean) {
  LSIQ_EXPECT(mean >= 0.0, "poisson requires mean >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Transformed rejection with squeeze (Hörmann's PTRS), exact for large
  // means and far faster than Knuth's O(mean) loop.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(k);
    }
    if (k < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    const double log_accept = std::log(v * inv_alpha / (a / (us * us) + b));
    if (log_accept <= k * std::log(mean) - mean - log_factorial(
                                                     static_cast<std::int64_t>(
                                                         k))) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::gamma(double shape, double scale) {
  LSIQ_EXPECT(shape > 0.0, "gamma requires shape > 0");
  LSIQ_EXPECT(scale > 0.0, "gamma requires scale > 0");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return scale * d * v;
    }
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::uint64_t Rng::negative_binomial(double mean, double shape) {
  LSIQ_EXPECT(mean >= 0.0, "negative_binomial requires mean >= 0");
  LSIQ_EXPECT(shape > 0.0, "negative_binomial requires shape > 0");
  if (mean == 0.0) return 0;
  const double lambda = gamma(shape, mean / shape);
  return poisson(lambda);
}

std::uint64_t Rng::hypergeometric(std::uint64_t population,
                                  std::uint64_t successes,
                                  std::uint64_t draws) {
  LSIQ_EXPECT(successes <= population,
              "hypergeometric requires successes <= population");
  LSIQ_EXPECT(draws <= population,
              "hypergeometric requires draws <= population");
  // Symmetry: drawing the smaller of (draws, population - draws) halves work.
  if (draws > population - draws) {
    const std::uint64_t complement =
        hypergeometric(population, successes, population - draws);
    return successes - complement;
  }
  // Sequential urn simulation. Our call sites keep draws modest (pattern
  // blocks, per-chip fault placement), so O(draws) is fine and exact.
  std::uint64_t black = successes;
  std::uint64_t total = population;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < draws; ++i) {
    if (black == 0) break;
    if (uniform_below(total) < black) {
      ++hits;
      --black;
    }
    --total;
  }
  return hits;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(
    std::uint64_t population, std::uint64_t k) {
  LSIQ_EXPECT(k <= population,
              "sample_without_replacement requires k <= population");
  // Floyd's algorithm: expected O(k) with a small hash set.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  for (std::uint64_t j = population - k; j < population; ++j) {
    const std::uint64_t t = uniform_below(j + 1);
    bool seen = false;
    for (const std::uint64_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

Rng Rng::split() {
  // Two raw words build the child's seed; the parent state advances so that
  // successive splits are independent.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31));
}

}  // namespace lsiq::util
