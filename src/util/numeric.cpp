#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace lsiq::util {

double log_gamma(double x) {
  LSIQ_EXPECT(x > 0.0, "log_gamma requires x > 0");
  return std::lgamma(x);
}

double log_factorial(std::int64_t n) {
  LSIQ_EXPECT(n >= 0, "log_factorial requires n >= 0");
  // Small-n cache: factorial arguments in the fault-count pmf are almost
  // always < 64, and table lookup keeps the pmf loop branch-light.
  static const std::vector<double> cache = [] {
    std::vector<double> c(64);
    c[0] = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i) {
      c[i] = c[i - 1] + std::log(static_cast<double>(i));
    }
    return c;
  }();
  if (static_cast<std::size_t>(n) < cache.size()) {
    return cache[static_cast<std::size_t>(n)];
  }
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  LSIQ_EXPECT(n >= 0, "log_binomial requires n >= 0");
  LSIQ_EXPECT(k >= 0 && k <= n, "log_binomial requires 0 <= k <= n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_sum_exp(double a, double b) {
  if (std::isinf(a) && a < 0.0) return b;
  if (std::isinf(b) && b < 0.0) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log1m_exp(double x) {
  LSIQ_EXPECT(x < 0.0, "log1m_exp requires x < 0");
  // Split at log(2) per Maechler's note: use log(-expm1(x)) near zero and
  // log1p(-exp(x)) for very negative x.
  constexpr double kLog2 = 0.6931471805599453;
  if (x > -kLog2) {
    return std::log(-std::expm1(x));
  }
  return std::log1p(-std::exp(x));
}

double clamp01(double p) { return std::clamp(p, 0.0, 1.0); }

bool almost_equal(double a, double b, double rel_tol, double abs_tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= abs_tol + rel_tol * scale;
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  LSIQ_EXPECT(count >= 2, "linspace requires count >= 2");
  std::vector<double> xs(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    xs[i] = lo + step * static_cast<double>(i);
  }
  xs.back() = hi;  // avoid accumulated rounding on the endpoint
  return xs;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  LSIQ_EXPECT(lo > 0.0 && hi > lo, "logspace requires 0 < lo < hi");
  std::vector<double> xs = linspace(std::log(lo), std::log(hi), count);
  for (double& x : xs) x = std::exp(x);
  xs.back() = hi;
  return xs;
}

void KahanSum::add(double x) noexcept {
  // Neumaier variant: also compensates when |x| > |sum_|.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

double kahan_total(const std::vector<double>& xs) {
  KahanSum acc;
  for (double x : xs) acc.add(x);
  return acc.value();
}

}  // namespace lsiq::util
