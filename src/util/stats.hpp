// Descriptive statistics, regression and goodness-of-fit helpers.
//
// Used by the estimation layer (fitting P(f) curves to lot data, Fig. 5),
// by the wafer experiments (empirical reject rates with uncertainty), and by
// the test suite (distribution checks on the samplers).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace lsiq::util {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// the long Monte-Carlo streams produced by the wafer simulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Fit a line to (x, y) pairs. Requires at least two points with distinct x.
LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys);

/// Least squares fit of y = slope * x (line through the origin). Used for
/// the paper's initial-slope estimate of P'(0) over the first few strobes.
double regression_through_origin(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics. The input is copied and sorted.
double percentile(std::vector<double> xs, double p);

/// Two-sided Kolmogorov–Smirnov statistic between a sample and a model CDF
/// evaluated at the sample points. Returns sup |F_empirical - F_model|.
double ks_statistic(std::vector<double> sample,
                    const std::vector<double>& model_cdf_at_sorted_sample);

/// Pearson chi-square statistic for observed vs expected counts. Bins with
/// expected < 1e-12 are skipped. Sizes must match.
double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected);

/// Wilson score interval for a binomial proportion: given `successes` out of
/// `trials`, the interval covering the true rate with ~95% confidence
/// (z = 1.96). Used to put error bars on empirical reject rates.
std::pair<double, double> wilson_interval(std::size_t successes,
                                          std::size_t trials,
                                          double z = 1.959963984540054);

}  // namespace lsiq::util
