// Deterministic pseudo-random source and the samplers the wafer/pattern
// layers need.
//
// Why not <random>: the standard distributions are not reproducible across
// library implementations, and the Monte-Carlo experiments (virtual chip
// lots, random patterns) must produce bit-identical tables on any toolchain
// so that EXPERIMENTS.md stays meaningful. The generator is xoshiro256**
// seeded through SplitMix64, and every sampler is implemented here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace lsiq::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via SplitMix64 so that any 64-bit seed — including 0 — yields a
/// well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). bound must be positive; rejection
  /// sampling removes modulo bias.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Standard normal via polar Box–Muller (cached spare deviate).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Poisson-distributed count with the given mean >= 0. Exact: Knuth
  /// multiplication for small means, PTRD-style transformed rejection above.
  std::uint64_t poisson(double mean);

  /// Gamma variate with the given shape > 0 and scale > 0
  /// (Marsaglia–Tsang squeeze, with the alpha < 1 boost).
  double gamma(double shape, double scale);

  /// Negative-binomial count via the gamma–Poisson mixture:
  /// N ~ Poisson(Lambda), Lambda ~ Gamma(shape, mean/shape). This is exactly
  /// the compound model behind the clustered-defect yield formula (Eq. 3).
  std::uint64_t negative_binomial(double mean, double shape);

  /// Number of "black balls" drawn in `draws` unordered selections without
  /// replacement from a population of `population` balls of which `successes`
  /// are black — the urn experiment of Section 4 of the paper.
  std::uint64_t hypergeometric(std::uint64_t population,
                               std::uint64_t successes, std::uint64_t draws);

  /// k distinct indices sampled uniformly from [0, population) (Floyd's
  /// algorithm; O(k) expected time). Order is unspecified.
  std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t population, std::uint64_t k);

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      std::swap(xs[i - 1], xs[j]);
    }
  }

  /// Derive an independent generator (for per-chip / per-worker streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace lsiq::util
