#include "util/interpolate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::util {

LinearInterpolator::LinearInterpolator(std::vector<double> xs,
                                       std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  LSIQ_EXPECT(xs_.size() == ys_.size(), "interpolator: size mismatch");
  LSIQ_EXPECT(!xs_.empty(), "interpolator: empty input");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    LSIQ_EXPECT(xs_[i] > xs_[i - 1],
                "interpolator: x values must be strictly increasing");
  }
}

double LinearInterpolator::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double w = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] * (1.0 - w) + ys_[hi] * w;
}

double LinearInterpolator::inverse(double y) const {
  if (y <= ys_.front()) return xs_.front();
  if (y >= ys_.back()) return xs_.back();
  // ys_ is assumed non-decreasing for inversion; find the first segment
  // whose upper value reaches y.
  const auto it = std::lower_bound(ys_.begin(), ys_.end(), y);
  const std::size_t hi = static_cast<std::size_t>(it - ys_.begin());
  if (hi == 0) return xs_.front();
  const std::size_t lo = hi - 1;
  const double span = ys_[hi] - ys_[lo];
  if (span <= 0.0) return xs_[hi];  // flat segment: earliest x reaching y
  const double w = (y - ys_[lo]) / span;
  return xs_[lo] * (1.0 - w) + xs_[hi] * w;
}

}  // namespace lsiq::util
