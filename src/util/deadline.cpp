#include "util/deadline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::util {

namespace detail {

thread_local const DeadlineFrame* tl_deadline = nullptr;

void poll_deadline_slow() {
  const DeadlineFrame* frame = tl_deadline;
  if (frame == nullptr) return;
  if (std::chrono::steady_clock::now() >= frame->deadline) {
    throw DeadlineExceeded("deadline exceeded");
  }
}

}  // namespace detail

DeadlineScope::DeadlineScope(std::chrono::milliseconds budget) {
  frame_.deadline = std::chrono::steady_clock::now() + budget;
  if (detail::tl_deadline != nullptr) {
    // Nesting may only tighten: an inner scope cannot outlive its outer
    // budget, or a wedged inner stage would mask the outer watchdog.
    frame_.deadline = std::min(frame_.deadline,
                               detail::tl_deadline->deadline);
  }
  frame_.outer = detail::tl_deadline;
  detail::tl_deadline = &frame_;
}

DeadlineScope::~DeadlineScope() { detail::tl_deadline = frame_.outer; }

}  // namespace lsiq::util
