#include "util/deadline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::util {

namespace detail {

thread_local const DeadlineFrame* tl_deadline = nullptr;

void poll_deadline_slow() {
  const DeadlineFrame* top = tl_deadline;
  if (top == nullptr) return;
  // Cancellation first: it is the more specific verdict, and checking the
  // flags costs no clock read. Every frame is checked — an outer
  // CancelScope must stay visible under nested DeadlineScopes.
  for (const DeadlineFrame* frame = top; frame != nullptr;
       frame = frame->outer) {
    if (frame->cancel != nullptr &&
        frame->cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("cancelled");
    }
  }
  if (std::chrono::steady_clock::now() >= top->deadline) {
    throw DeadlineExceeded("deadline exceeded");
  }
}

}  // namespace detail

DeadlineScope::DeadlineScope(std::chrono::milliseconds budget) {
  frame_.deadline = std::chrono::steady_clock::now() + budget;
  if (detail::tl_deadline != nullptr) {
    // Nesting may only tighten: an inner scope cannot outlive its outer
    // budget, or a wedged inner stage would mask the outer watchdog.
    frame_.deadline = std::min(frame_.deadline,
                               detail::tl_deadline->deadline);
  }
  frame_.outer = detail::tl_deadline;
  detail::tl_deadline = &frame_;
}

DeadlineScope::~DeadlineScope() { detail::tl_deadline = frame_.outer; }

CancelScope::CancelScope(const std::atomic<bool>& flag) {
  // No deadline of its own: inherit the enclosing scope's, or never.
  frame_.deadline = detail::tl_deadline != nullptr
                        ? detail::tl_deadline->deadline
                        : std::chrono::steady_clock::time_point::max();
  frame_.cancel = &flag;
  frame_.outer = detail::tl_deadline;
  detail::tl_deadline = &frame_;
}

CancelScope::~CancelScope() { detail::tl_deadline = frame_.outer; }

}  // namespace lsiq::util
