// Scalar root finding and minimization (Brent's methods).
//
// The model layer needs two inversions that have no closed form:
//   * required fault coverage: solve r(f) = r_target for f in [0, 1]
//     (Eq. 8 of the paper, monotone decreasing in f), and
//   * continuous n0 estimation: minimize a least-squares objective over n0.
// Brent's algorithms are derivative-free, bracketing, and converge
// superlinearly — exactly right for these smooth one-dimensional problems.
#pragma once

#include <functional>

namespace lsiq::util {

/// Result of a root search.
struct RootResult {
  double x = 0.0;          ///< abscissa of the root
  double fx = 0.0;         ///< residual f(x) at the returned point
  int iterations = 0;      ///< iterations consumed
  bool converged = false;  ///< true when |f(x)| or bracket met tolerance
};

/// Find x in [lo, hi] with f(x) = 0 using Brent's method.
///
/// Preconditions: lo < hi and f(lo), f(hi) have opposite signs (a zero at an
/// endpoint is accepted). Throws NumericError if the bracket is invalid.
RootResult find_root_brent(const std::function<double(double)>& f, double lo,
                           double hi, double x_tol = 1e-12,
                           int max_iterations = 200);

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;          ///< abscissa of the minimum
  double fx = 0.0;         ///< objective value at x
  int iterations = 0;
  bool converged = false;
};

/// Minimize f over [lo, hi] using Brent's parabolic/golden-section method.
/// f must be unimodal on the interval for a global result; otherwise a local
/// minimum is returned.
MinimizeResult minimize_brent(const std::function<double(double)>& f,
                              double lo, double hi, double x_tol = 1e-10,
                              int max_iterations = 200);

}  // namespace lsiq::util
