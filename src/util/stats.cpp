#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  LSIQ_EXPECT(xs.size() == ys.size(), "linear_regression: size mismatch");
  LSIQ_EXPECT(xs.size() >= 2, "linear_regression requires >= 2 points");

  const double n = static_cast<double>(xs.size());
  KahanSum sx;
  KahanSum sy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx.add(xs[i]);
    sy.add(ys[i]);
  }
  const double mean_x = sx.value() / n;
  const double mean_y = sy.value() / n;

  KahanSum sxx;
  KahanSum sxy;
  KahanSum syy;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx.add(dx * dx);
    sxy.add(dx * dy);
    syy.add(dy * dy);
  }
  LSIQ_EXPECT(sxx.value() > 0.0, "linear_regression: all x identical");

  LinearFit fit;
  fit.slope = sxy.value() / sxx.value();
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy.value() > 0.0) {
    const double ss_res = syy.value() - fit.slope * sxy.value();
    fit.r_squared = clamp01(1.0 - ss_res / syy.value());
  } else {
    fit.r_squared = 1.0;  // constant y fitted exactly
  }
  return fit;
}

double regression_through_origin(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  LSIQ_EXPECT(xs.size() == ys.size(),
              "regression_through_origin: size mismatch");
  LSIQ_EXPECT(!xs.empty(), "regression_through_origin requires >= 1 point");
  KahanSum sxy;
  KahanSum sxx;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy.add(xs[i] * ys[i]);
    sxx.add(xs[i] * xs[i]);
  }
  LSIQ_EXPECT(sxx.value() > 0.0, "regression_through_origin: all x zero");
  return sxy.value() / sxx.value();
}

double percentile(std::vector<double> xs, double p) {
  LSIQ_EXPECT(!xs.empty(), "percentile of empty sample");
  LSIQ_EXPECT(p >= 0.0 && p <= 100.0, "percentile requires p in [0,100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double w = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - w) + xs[hi] * w;
}

double ks_statistic(std::vector<double> sample,
                    const std::vector<double>& model_cdf_at_sorted_sample) {
  LSIQ_EXPECT(sample.size() == model_cdf_at_sorted_sample.size(),
              "ks_statistic: size mismatch");
  LSIQ_EXPECT(!sample.empty(), "ks_statistic of empty sample");
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double cdf = model_cdf_at_sorted_sample[i];
    const double upper = static_cast<double>(i + 1) / n - cdf;
    const double lower = cdf - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  return d;
}

double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected) {
  LSIQ_EXPECT(observed.size() == expected.size(),
              "chi_square_statistic: size mismatch");
  KahanSum chi2;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) continue;
    const double diff = observed[i] - expected[i];
    chi2.add(diff * diff / expected[i]);
  }
  return chi2.value();
}

std::pair<double, double> wilson_interval(std::size_t successes,
                                          std::size_t trials, double z) {
  LSIQ_EXPECT(trials > 0, "wilson_interval requires trials > 0");
  LSIQ_EXPECT(successes <= trials,
              "wilson_interval requires successes <= trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {clamp01(center - half), clamp01(center + half)};
}

}  // namespace lsiq::util
