// Minimal flat JSON: the wire format shared by the batch result store and
// the flow-service protocol.
//
// Both speak line-delimited JSON whose every line is one FLAT object of
// string / number / boolean values — no nesting, no arrays. A hand-rolled
// writer/reader keeps the stack dependency-free and the format under this
// file's control; anything richer (a list of jobs, say) is expressed as
// multiple lines, not nested JSON.
//
// Escaping contract: the writer escapes '"', '\\', control characters
// (\n \r \t and \u00xx for the rest); UTF-8 payload bytes pass through
// untouched. parse_flat_object accepts exactly what the writer emits plus
// the standard whitespace and \/ \b \f escapes, and returns false on any
// malformation — callers treat such a line as torn/foreign and skip it.
#pragma once

#include <map>
#include <string>

namespace lsiq::util::json {

/// Append `text` as a JSON string literal (quotes included) to `out`.
void append_string(std::string& out, const std::string& text);

/// Round-trippable double text (%.17g): format(parse(format(x))) ==
/// format(x), which is what keeps a record byte-stable across a
/// parse/reserialize cycle.
std::string format_double(double value);

/// One parsed value of a flat object.
struct Value {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kString;
  std::string text;      // kString: unescaped payload; kNumber: raw text
  double number = 0.0;
  bool boolean = false;
};

/// Parse one flat JSON object of string/number/bool values into `out`
/// (which is NOT cleared first). Returns false on any malformation.
bool parse_flat_object(const std::string& line,
                       std::map<std::string, Value>* out);

/// The value under `key` when present AND of `kind`; nullptr otherwise.
const Value* find(const std::map<std::string, Value>& values,
                  const std::string& key, Value::Kind kind);

}  // namespace lsiq::util::json
