// Cooperative per-thread deadline watchdog.
//
// C++ offers no safe way to kill a wedged computation from outside, so the
// batch runner's per-spec deadline is COOPERATIVE: the thread that runs a
// spec installs a DeadlineScope, and long-running loops poll poll_deadline()
// at natural checkpoints — every failpoint site (util/failpoint.hpp) and
// every 64-pattern block of the grading engines. When the deadline has
// passed, the poll throws DeadlineExceeded (ErrorCode::kDeadline,
// classified permanent), which unwinds the run cleanly through the same
// error path as any other failure.
//
// The disabled fast path is one thread-local pointer load — cheap enough
// for per-block polling; the clock is only read while a scope is active.
// Scopes nest: an inner scope may only tighten the deadline (the effective
// deadline is the minimum), and destruction restores the outer one.
//
// Cancellation rides the same rail: a CancelScope installs an external
// std::atomic<bool> flag, and the same poll that checks the clock checks
// every flag on the scope stack — when one is set the poll throws
// CancelledError (ErrorCode::kCancelled). This is how the flow service
// (src/service/) cancels a RUNNING job: the worker lane installs a
// CancelScope around the whole attempt loop, a `cancel` request flips the
// job's flag, and the run unwinds at its next checkpoint through the same
// structured error path a deadline overrun takes.
#pragma once

#include <atomic>
#include <chrono>

namespace lsiq::util {

namespace detail {
struct DeadlineFrame {
  std::chrono::steady_clock::time_point deadline;
  /// Optional external cancellation flag; every frame on the stack is
  /// checked, so an outer CancelScope stays live under inner
  /// DeadlineScopes (the batch retry loop nests exactly that way).
  const std::atomic<bool>* cancel = nullptr;
  const DeadlineFrame* outer;
};
extern thread_local const DeadlineFrame* tl_deadline;
/// Checks every cancel flag on the scope stack (throws CancelledError),
/// then reads the clock and throws DeadlineExceeded when the effective
/// deadline passed.
void poll_deadline_slow();
}  // namespace detail

/// RAII: installs `now + budget` as this thread's deadline (clamped to the
/// enclosing scope's deadline, if any) for the scope's lifetime.
class DeadlineScope {
 public:
  explicit DeadlineScope(std::chrono::milliseconds budget);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  detail::DeadlineFrame frame_;
};

/// RAII: installs an external cancellation flag for the scope's lifetime.
/// poll_deadline() throws lsiq::CancelledError once the flag reads true;
/// the flag's owner (the flow service's job table) must outlive the scope.
/// Carries no deadline of its own — an enclosing DeadlineScope, if any,
/// stays effective.
class CancelScope {
 public:
  explicit CancelScope(const std::atomic<bool>& flag);
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  detail::DeadlineFrame frame_;
};

/// True while a DeadlineScope is active on this thread.
[[nodiscard]] inline bool deadline_active() noexcept {
  return detail::tl_deadline != nullptr;
}

/// Checkpoint: throws lsiq::DeadlineExceeded if this thread's deadline has
/// passed; a no-op (one pointer load) when no scope is active.
inline void poll_deadline() {
  if (detail::tl_deadline != nullptr) detail::poll_deadline_slow();
}

}  // namespace lsiq::util
