// The one shared version constant. Both CLI front doors (tools/lsiq_flow,
// tools/lsiq_flowd) print it for --version, so the two binaries of one
// build can never disagree about what they are.
#pragma once

namespace lsiq {

/// Library + tools version, bumped per release PR.
inline constexpr const char* kVersion = "0.9.0";

}  // namespace lsiq
