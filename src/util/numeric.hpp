// Numeric building blocks used throughout the model code.
//
// Probability expressions in the paper (hypergeometric densities, Poisson
// tails) overflow naive factorial arithmetic long before the interesting
// parameter range (N ~ 10^4..10^5 faults), so everything here is phrased in
// log space with explicit compensated summation where series are involved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsiq::util {

/// Natural log of the gamma function. Domain: x > 0.
double log_gamma(double x);

/// log(n!) for integer n >= 0.
double log_factorial(std::int64_t n);

/// log of the binomial coefficient C(n, k). Requires 0 <= k <= n.
double log_binomial(std::int64_t n, std::int64_t k);

/// Numerically careful log(exp(a) + exp(b)).
double log_sum_exp(double a, double b);

/// log(1 - exp(x)) for x < 0, stable for x near 0 and for very negative x.
double log1m_exp(double x);

/// Clamp a value into [0, 1]; used to de-noise probabilities assembled from
/// differences of nearly equal terms.
double clamp01(double p);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool almost_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12);

/// `count` evenly spaced values covering [lo, hi] inclusive. count >= 2.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` log-spaced values covering [lo, hi] inclusive. Requires
/// 0 < lo < hi and count >= 2.
std::vector<double> logspace(double lo, double hi, std::size_t count);

/// Kahan–Neumaier compensated accumulator. Probability series in the model
/// (e.g. the exact escape-yield sum, Eq. 6) mix terms spanning ~20 orders of
/// magnitude; plain += loses the small tail that the reject rate is made of.
class KahanSum {
 public:
  void add(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }
  void reset() noexcept { sum_ = 0.0; compensation_ = 0.0; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sum of a vector using compensated accumulation.
double kahan_total(const std::vector<double>& xs);

}  // namespace lsiq::util
