// Piecewise-linear interpolation over monotone abscissae.
//
// The fault simulator produces a cumulative coverage curve as a step/broken
// line in (pattern index, coverage); the estimation procedure needs to read
// that curve at arbitrary points and to invert it ("first pattern reaching
// coverage 0.05"). Both directions live here.
#pragma once

#include <vector>

namespace lsiq::util {

/// Piecewise-linear function through (x_i, y_i) with strictly increasing x.
/// Evaluation outside [x_front, x_back] clamps to the end values (curves we
/// interpolate — coverage, CDFs — are saturating).
class LinearInterpolator {
 public:
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;

  /// Smallest x with value(x) >= y, assuming y values are non-decreasing.
  /// Returns x_back when y exceeds the final value.
  [[nodiscard]] double inverse(double y) const;

  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace lsiq::util
