#include "util/failpoint.hpp"

#include <cctype>
#include <cstdlib>
#include <thread>
#include <vector>

namespace lsiq::util {

namespace {

[[noreturn]] void config_error(const std::string& config,
                               const std::string& message) {
  throw ParseError("failpoint config '" + config + "': " + message);
}

std::string trim(const std::string& text) {
  std::size_t first = 0;
  std::size_t last = text.size();
  while (first < last &&
         std::isspace(static_cast<unsigned char>(text[first])) != 0) {
    ++first;
  }
  while (last > first &&
         std::isspace(static_cast<unsigned char>(text[last - 1])) != 0) {
    --last;
  }
  return text.substr(first, last - first);
}

/// Throw the lsiq error type whose code() matches `code` — armed errors
/// must be catchable both by type and by code.
[[noreturn]] void throw_code(ErrorCode code, const std::string& what) {
  switch (code) {
    case ErrorCode::kContract: throw ContractViolation(what);
    case ErrorCode::kParse: throw ParseError(what);
    case ErrorCode::kNumeric: throw NumericError(what);
    case ErrorCode::kIo: throw IoError(what);
    case ErrorCode::kTransient: throw TransientError(what);
    case ErrorCode::kDeadline: throw DeadlineExceeded(what);
    case ErrorCode::kCancelled: throw CancelledError(what);
    case ErrorCode::kOk:
    case ErrorCode::kUnknown:
    case ErrorCode::kInvalidSpec:
    case ErrorCode::kLint:
    case ErrorCode::kQueueFull:
    case ErrorCode::kShutdown:
    case ErrorCode::kNotFound:
      break;
  }
  throw Error(what, code);
}

/// Parse "name(arg[,arg])" → (name, args); args may be empty.
bool split_call(const std::string& action, std::string* name,
                std::vector<std::string>* args) {
  const std::size_t open = action.find('(');
  if (open == std::string::npos) {
    *name = action;
    return true;
  }
  if (action.empty() || action.back() != ')') return false;
  *name = trim(action.substr(0, open));
  const std::string inner =
      action.substr(open + 1, action.size() - open - 2);
  std::size_t start = 0;
  while (start <= inner.size()) {
    const std::size_t comma = inner.find(',', start);
    const std::size_t end =
        comma == std::string::npos ? inner.size() : comma;
    const std::string arg = trim(inner.substr(start, end - start));
    if (!arg.empty()) args->push_back(arg);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

int parse_int(const std::string& text, const std::string& config,
              const std::string& what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed != text.size() || value < 0) {
      config_error(config, what + " needs a non-negative integer, got '" +
                               text + "'");
    }
    return value;
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception&) {
    config_error(config,
                 what + " needs a non-negative integer, got '" + text + "'");
  }
}

}  // namespace

Failpoints& Failpoints::instance() {
  static Failpoints registry;
  return registry;
}

void Failpoints::arm(const std::string& site, FailpointAction action) {
  const std::lock_guard<std::mutex> lock(mutex_);
  actions_[site] = action;
  any_armed_.store(true, std::memory_order_relaxed);
}

void Failpoints::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  actions_.erase(site);
  if (actions_.empty()) {
    any_armed_.store(false, std::memory_order_relaxed);
  }
}

void Failpoints::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  actions_.clear();
  hits_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

std::size_t Failpoints::arm_from_string(const std::string& config) {
  std::size_t applied = 0;
  std::size_t start = 0;
  while (start <= config.size()) {
    const std::size_t semi = config.find(';', start);
    const std::size_t end = semi == std::string::npos ? config.size() : semi;
    const std::string entry = trim(config.substr(start, end - start));
    start = end + 1;
    if (semi == std::string::npos && entry.empty()) break;
    if (entry.empty()) continue;

    const std::size_t equals = entry.find('=');
    if (equals == std::string::npos) {
      config_error(config, "expected 'site=action', got '" + entry + "'");
    }
    const std::string site = trim(entry.substr(0, equals));
    const std::string action_text = trim(entry.substr(equals + 1));
    if (site.empty()) config_error(config, "missing site before '='");

    std::string name;
    std::vector<std::string> args;
    if (!split_call(action_text, &name, &args)) {
      config_error(config, "malformed action '" + action_text + "'");
    }
    FailpointAction action;
    if (name == "off") {
      if (!args.empty()) config_error(config, "'off' takes no arguments");
      disarm(site);
      ++applied;
      continue;
    }
    if (name == "error") {
      if (args.empty() || args.size() > 2) {
        config_error(config, "'error' needs (code[,times])");
      }
      const std::optional<ErrorCode> code = error_code_from_name(args[0]);
      if (!code.has_value() || *code == ErrorCode::kOk) {
        config_error(config, "unknown error code '" + args[0] + "'");
      }
      action.throws = true;
      action.code = *code;
      action.times =
          args.size() == 2 ? parse_int(args[1], config, "'error' times") : -1;
    } else if (name == "sleep") {
      if (args.empty() || args.size() > 2) {
        config_error(config, "'sleep' needs (millis[,times])");
      }
      action.sleep_ms = parse_int(args[0], config, "'sleep' millis");
      action.times =
          args.size() == 2 ? parse_int(args[1], config, "'sleep' times") : -1;
    } else {
      config_error(config, "unknown action '" + name +
                               "' (expected error, sleep, or off)");
    }
    arm(site, action);
    ++applied;
  }
  return applied;
}

std::size_t Failpoints::arm_from_env() {
  const char* config = std::getenv("LSIQ_FAILPOINTS");
  if (config == nullptr || *config == '\0') return 0;
  return arm_from_string(config);
}

void Failpoints::hit(const char* site) {
  // Every site doubles as a cooperative cancellation checkpoint.
  poll_deadline();
  if (!any_armed_.load(std::memory_order_relaxed)) return;

  FailpointAction fired;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++hits_[site];
    const auto it = actions_.find(site);
    if (it == actions_.end() || it->second.times == 0) return;
    if (it->second.times > 0) --it->second.times;
    fired = it->second;
  }
  if (fired.sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.sleep_ms));
    // A sleep exists to burn wall clock; make the overrun observable at
    // the site itself rather than at the next poll.
    poll_deadline();
  }
  if (fired.throws) {
    throw_code(fired.code, std::string("failpoint '") + site + "' injected " +
                               error_code_name(fired.code));
  }
}

std::uint64_t Failpoints::hit_count(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

bool Failpoints::armed(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = actions_.find(site);
  return it != actions_.end() && it->second.times != 0;
}

}  // namespace lsiq::util
