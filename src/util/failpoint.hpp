// Deterministic fault injection: named failpoints at flow checkpoints.
//
// Robustness code is only as good as its tests, and real failures (full
// disks, wedged engines, torn files) are miserable to reproduce. A
// failpoint is a named site — `LSIQ_FAILPOINT("flow.grade")` — that does
// nothing in production and, when ARMED, injects a failure on demand:
// throw a classified lsiq error, sleep (to trip a deadline watchdog), or
// both, a bounded number of times. The batch test suite arms sites through
// the API; end-to-end harnesses (CI) arm them through the LSIQ_FAILPOINTS
// environment variable without touching the binary:
//
//     LSIQ_FAILPOINTS='flow.grade=error(transient,1);spec.read=error(io)'
//
//     config := entry (';' entry)*
//     entry  := site '=' action
//     action := 'error(' code [',' times] ')'   throw; code is an
//                                               error_code_name
//             | 'sleep(' millis [',' times] ')' delay, then continue
//             | 'off'                           disarm the site
//
// `times` bounds how many hits fire (omitted = every hit) — `error(
// transient,1)` is the canonical "fails once, then recovers" failure that
// retry logic must turn into success. Every site is also a cooperative
// cancellation checkpoint: hit() polls util::poll_deadline() even when
// the registry is empty.
//
// Sites installed today: "spec.read" (flow spec-file reading),
// "flow.run" (entry of flow::run), "flow.patterns" (pattern
// materialization), "flow.grade" (before grading), "batch.record"
// (before a batch result record is committed), "service.accept" (a flow
// service connection was accepted; injected errors drop the connection)
// and "service.job" (a flow service worker lane picked up a job; injected
// errors become structured failure records).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/deadline.hpp"
#include "util/error.hpp"

namespace lsiq::util {

/// What an armed site does when hit.
struct FailpointAction {
  /// Throw an error of `code` after the (optional) sleep.
  bool throws = false;
  ErrorCode code = ErrorCode::kUnknown;
  /// Milliseconds to sleep before throwing / returning.
  int sleep_ms = 0;
  /// How many hits fire this action; negative = unlimited. Counts down as
  /// hits fire; a site with 0 remaining stays registered but inert.
  int times = -1;
};

class Failpoints {
 public:
  /// The process-wide registry (sites are global names).
  static Failpoints& instance();

  /// Arm `site` with `action` (replacing any previous arming).
  void arm(const std::string& site, FailpointAction action);

  /// Disarm one site / every site. clear() also resets hit counts.
  void disarm(const std::string& site);
  void clear();

  /// Arm sites from a config string (grammar in the header comment).
  /// Returns the number of entries applied; throws lsiq::ParseError on a
  /// malformed config — a mistyped injection plan must fail loudly, not
  /// silently test nothing.
  std::size_t arm_from_string(const std::string& config);

  /// arm_from_string(getenv("LSIQ_FAILPOINTS")); 0 when unset or empty.
  std::size_t arm_from_env();

  /// The injection site: polls the deadline watchdog, then fires the
  /// armed action, if any. Prefer the LSIQ_FAILPOINT macro at call sites.
  void hit(const char* site);

  /// Hits observed at `site` since the last clear(). Only counted while
  /// at least one site is armed (the disarmed fast path skips the lock).
  [[nodiscard]] std::uint64_t hit_count(const std::string& site) const;

  /// True when `site` is armed with a live (times != 0) action.
  [[nodiscard]] bool armed(const std::string& site) const;

 private:
  Failpoints() = default;

  mutable std::mutex mutex_;
  /// Disarmed fast path: hit() returns after one relaxed load when false.
  std::atomic<bool> any_armed_{false};
  std::unordered_map<std::string, FailpointAction> actions_;
  std::unordered_map<std::string, std::uint64_t> hits_;
};

}  // namespace lsiq::util

/// Mark a named injection site. Expands to one relaxed atomic load when no
/// failpoint is armed and no deadline scope is active on this thread.
#define LSIQ_FAILPOINT(site) ::lsiq::util::Failpoints::instance().hit(site)
